//! Engine-level invariants checked over random schedulable workloads and
//! every policy:
//!
//! * trace segments on one processor never overlap and fall inside the
//!   horizon;
//! * a processor's busy time equals the sum of its segments; busy + idle
//!   partitions its lifetime;
//! * mandatory copies never execute before their (postponed) release;
//! * per-task job outcomes are resolved in release order;
//! * active energy equals busy time under the active-only power model.

use mkss::obs::{CounterId, Registry};
use mkss::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn schedulable_set(seed: u64, util_pct: u64) -> Option<TaskSet> {
    let config = WorkloadConfig {
        tasks_min: 3,
        tasks_max: 6,
        ..WorkloadConfig::paper()
    };
    Generator::new(config, seed).schedulable_set(util_pct as f64 / 100.0)
}

fn check_trace(report: &SimReport, horizon: Time) {
    let trace = report.trace.as_ref().expect("trace recorded");
    for &proc in &ProcId::ALL {
        let mut last_end = Time::ZERO;
        let mut busy = Time::ZERO;
        for seg in trace.segments_on(proc) {
            assert!(seg.start >= last_end, "overlapping segments on {proc}");
            assert!(seg.end <= horizon, "segment beyond horizon");
            assert!(seg.start < seg.end, "empty segment recorded");
            busy += seg.len();
            last_end = seg.end;
        }
        let breakdown = report.energy[proc.index()];
        assert_eq!(
            breakdown.busy_time, busy,
            "bookkept busy time disagrees with trace on {proc}"
        );
    }
}

fn check_resolution_order(report: &SimReport) {
    let trace = report.trace.as_ref().expect("trace recorded");
    let mut last_index: HashMap<TaskId, u64> = HashMap::new();
    for r in &trace.resolutions {
        let prev = last_index.entry(r.job.task).or_insert(0);
        assert!(
            r.job.index > *prev,
            "job {} resolved out of order (prev index {})",
            r.job,
            prev
        );
        *prev = r.job.index;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn trace_and_energy_invariants(seed in 0u64..5_000, util_pct in 15u64..65) {
        let Some(ts) = schedulable_set(seed, util_pct) else { return Ok(()); };
        let horizon = Time::from_ms(300);
        for kind in [PolicyKind::Static, PolicyKind::DualPriority, PolicyKind::Greedy, PolicyKind::Selective] {
            let config = SimConfig::builder().horizon(horizon).active_only().build();
            let mut policy = kind.build(&ts, &BuildOptions::default()).unwrap();
            let report = simulate(&ts, policy.as_mut(), &config);
            check_trace(&report, horizon);
            check_resolution_order(&report);
            // Active-only model: energy units == busy milliseconds.
            let busy_ms: f64 = ProcId::ALL
                .iter()
                .map(|p| report.energy[p.index()].busy_time.as_ms_f64())
                .sum();
            prop_assert!((report.active_energy().units() - busy_ms).abs() < 1e-9);
            // Busy + idle partitions both processor lifetimes.
            for p in ProcId::ALL {
                let b = report.energy[p.index()];
                prop_assert_eq!(b.busy_time + b.idle_time, horizon);
            }
        }
    }

    #[test]
    fn trace_invariants_with_faults(
        seed in 0u64..3_000,
        util_pct in 15u64..55,
        fault_ms in 0u64..300,
        on_primary in any::<bool>(),
    ) {
        let Some(ts) = schedulable_set(seed, util_pct) else { return Ok(()); };
        let horizon = Time::from_ms(300);
        let proc = if on_primary { ProcId::PRIMARY } else { ProcId::SPARE };
        let config = SimConfig::builder()
            .horizon(horizon)
            .active_only()
            .faults(FaultConfig::combined(proc, Time::from_ms(fault_ms), 0.005, seed))
            .build();
        let mut policy = MkssSelective::new(&ts).unwrap();
        let report = simulate(&ts, &mut policy, &config);
        check_trace(&report, horizon);
        check_resolution_order(&report);
        // The dead processor never executes after the fault.
        let trace = report.trace.as_ref().unwrap();
        for seg in trace.segments_on(proc) {
            prop_assert!(seg.end <= Time::from_ms(fault_ms));
        }
        // Its accounted lifetime stops at the fault.
        let b = report.energy[proc.index()];
        prop_assert_eq!(b.busy_time + b.idle_time, Time::from_ms(fault_ms));
    }

    /// The clock only ever moves forward: job resolutions land in
    /// nondecreasing time order across the whole run (each is recorded
    /// at the then-current clock), and the engine never takes a
    /// zero-length step — the `engine_stalls` counter, bumped by the
    /// event loop's hard no-progress guard, stays at zero on every
    /// reachable input.
    #[test]
    fn clock_progress_is_monotone_and_stall_free(
        seed in 0u64..5_000,
        util_pct in 15u64..65,
        fault_ms in 0u64..300,
    ) {
        let Some(ts) = schedulable_set(seed, util_pct) else { return Ok(()); };
        let registry = Arc::new(Registry::new(1));
        let mut ws = SimWorkspace::with_recorder(Arc::new(registry.handle_at(0)));
        let horizon = Time::from_ms(300);
        let configs = [
            SimConfig::builder().horizon(horizon).active_only().build(),
            SimConfig::builder()
                .horizon(horizon)
                .active_only()
                .faults(FaultConfig::combined(ProcId::SPARE, Time::from_ms(fault_ms), 0.01, seed))
                .build(),
        ];
        for kind in [PolicyKind::Static, PolicyKind::DualPriority, PolicyKind::Greedy, PolicyKind::Selective] {
            for config in &configs {
                let mut policy = kind.build(&ts, &BuildOptions::default()).unwrap();
                let report = simulate_in(&mut ws, &ts, policy.as_mut(), config);
                let trace = report.trace.as_ref().expect("trace recorded");
                let mut last = Time::ZERO;
                for r in &trace.resolutions {
                    prop_assert!(
                        r.at >= last,
                        "resolution of {} at {} after one at {}", r.job, r.at, last
                    );
                    last = r.at;
                }
            }
        }
        prop_assert_eq!(registry.snapshot().counter(CounterId::EngineStalls), 0);
    }

    /// Optional jobs never displace mandatory work: both the selective
    /// and static schemes assure (m,k) on every schedulable set, and the
    /// selective scheme's executed jobs (mandatory + selected optional)
    /// all come from real releases.
    #[test]
    fn selective_never_starves_mandatory(seed in 0u64..3_000, util_pct in 15u64..60) {
        let Some(ts) = schedulable_set(seed, util_pct) else { return Ok(()); };
        let config = SimConfig::new(Time::from_ms(300));
        let sel = simulate(&ts, &mut MkssSelective::new(&ts).unwrap(), &config);
        let st = simulate(&ts, &mut MkssSt::new(), &config);
        prop_assert!(sel.mk_assured());
        prop_assert!(st.mk_assured());
        prop_assert_eq!(
            sel.stats.mandatory + sel.stats.optional_selected + sel.stats.optional_skipped,
            sel.stats.released
        );
        // The selective scheme never *fails* a mandatory job in a
        // fault-free run: misses only come from unselected/abandoned
        // optional jobs.
        prop_assert!(sel.stats.missed <= sel.stats.optional_skipped + sel.stats.optional_abandoned);
    }
}
