//! End-to-end validation of the pattern-rotation extension: rotated
//! assignments found by the search run on the real dual-processor engine
//! — with standby-sparing, faults, and the (m,k) monitor — and never
//! violate the constraint.

use mkss::prelude::*;
use mkss_policies::MkssStRotated;
use proptest::prelude::*;

fn harmonic_set(seed: u64, util_pct: u64) -> Option<TaskSet> {
    let config = WorkloadConfig {
        tasks_min: 3,
        tasks_max: 6,
        period_ms: (4, 32),
        k_range: (2, 8),
        pow2_harmonics: true,
        ..WorkloadConfig::paper()
    };
    Generator::new(config, seed).raw_set(util_pct as f64 / 100.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any schedulable rotation assignment runs fault-free with zero
    /// violations and zero mandatory misses.
    #[test]
    fn rotated_assignments_run_clean(seed in 0u64..20_000, util_pct in 40u64..85) {
        let Some(ts) = harmonic_set(seed, util_pct) else { return Ok(()); };
        let Some(assignment) = find_rotation(&ts, RotationConfig::default()) else {
            return Ok(());
        };
        prop_assume!(assignment.schedulable());
        let mut policy = MkssStRotated::new(assignment.patterns.clone());
        let horizon = ts.hyperperiod() * 4;
        let report = simulate(&ts, &mut policy, &SimConfig::new(horizon));
        prop_assert!(report.mk_assured(), "violations: {:?}", report.violations);
        // Every mandatory job met: misses are exactly the skipped
        // optional jobs.
        prop_assert_eq!(report.stats.missed, report.stats.optional_skipped);
    }

    /// The same under a permanent fault at an arbitrary instant: the
    /// concurrent backups take over seamlessly.
    #[test]
    fn rotated_assignments_survive_permanent_faults(
        seed in 0u64..20_000,
        util_pct in 40u64..80,
        fault_pct in 0u64..100,
        on_primary in any::<bool>(),
    ) {
        let Some(ts) = harmonic_set(seed, util_pct) else { return Ok(()); };
        let Some(assignment) = find_rotation(&ts, RotationConfig::default()) else {
            return Ok(());
        };
        prop_assume!(assignment.schedulable());
        let horizon = ts.hyperperiod() * 4;
        let at = Time::from_ticks(horizon.ticks() * fault_pct / 100);
        let proc = if on_primary { ProcId::PRIMARY } else { ProcId::SPARE };
        let config = SimConfig::builder()
            .horizon(horizon)
            .faults(FaultConfig::permanent(proc, at))
            .build();
        let mut policy = MkssStRotated::new(assignment.patterns.clone());
        let report = simulate(&ts, &mut policy, &config);
        prop_assert!(
            report.mk_assured(),
            "violations with {proc} fault at {at}: {:?}",
            report.violations
        );
    }
}

#[test]
fn rescued_set_runs_where_deeply_red_cannot() {
    // The doc example: unschedulable deeply-red, rescued by rotation.
    let ts = TaskSet::new(vec![
        Task::from_ms(4, 4, 2, 2, 3).unwrap(),
        Task::from_ms(6, 6, 3, 1, 2).unwrap(),
    ])
    .unwrap();
    assert!(!is_schedulable_r_pattern(&ts));
    let assignment = find_rotation(&ts, RotationConfig::default()).unwrap();
    assert!(assignment.schedulable());

    // Deeply-red on the engine: mandatory jobs miss (and the run reports
    // it); the rotated assignment is clean.
    let horizon = ts.hyperperiod() * 8;
    let red = simulate(&ts, &mut MkssSt::new(), &SimConfig::new(horizon));
    assert!(
        red.stats.missed > red.stats.optional_skipped,
        "deeply-red should miss mandatory jobs here"
    );
    let mut rotated = MkssStRotated::new(assignment.patterns.clone());
    let rot = simulate(&ts, &mut rotated, &SimConfig::new(horizon));
    assert!(rot.mk_assured());
    assert_eq!(rot.stats.missed, rot.stats.optional_skipped);
}
