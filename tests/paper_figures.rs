//! Integration tests pinning the paper's worked examples (Section III /
//! Figs. 1–5) to exact numbers. These are the strongest evidence that the
//! simulator implements the paper's execution model: each figure's energy
//! count is reproduced to the unit.

use mkss::prelude::*;

fn fig1_set() -> TaskSet {
    TaskSet::new(vec![
        Task::from_ms(5, 4, 3, 2, 4).unwrap(),
        Task::from_ms(10, 10, 3, 1, 2).unwrap(),
    ])
    .unwrap()
}

fn fig3_set() -> TaskSet {
    TaskSet::new(vec![
        Task::new(
            Time::from_ms(5),
            Time::from_us(2_500),
            Time::from_ms(2),
            2,
            4,
        )
        .unwrap(),
        Task::from_ms(4, 4, 2, 2, 4).unwrap(),
    ])
    .unwrap()
}

#[test]
fn fig1_dual_priority_consumes_15_units() {
    let ts = fig1_set();
    // Promotion times from Eq. (2): Y1 = Y2 = 1 (paper Section III).
    let dp = MkssDp::new(&ts).unwrap();
    assert_eq!(dp.promotion(), &[Time::from_ms(1), Time::from_ms(1)]);

    let report = simulate(
        &ts,
        &mut MkssDp::new(&ts).unwrap(),
        &SimConfig::active_only(Time::from_ms(20)),
    );
    assert!((report.active_energy().units() - 15.0).abs() < 1e-9);
    assert!(report.mk_assured());
}

#[test]
fn fig1_schedule_structure() {
    let ts = fig1_set();
    let report = simulate(
        &ts,
        &mut MkssDp::new(&ts).unwrap(),
        &SimConfig::active_only(Time::from_ms(20)),
    );
    let trace = report.trace.unwrap();
    // Paper Fig. 1(a): primary runs main τ1 and (canceled) backup τ'2;
    // Fig. 1(b): spare runs main τ2 and (canceled) backups τ'1.
    assert!(trace
        .segments_on(ProcId::PRIMARY)
        .all(|s| (s.job.task == TaskId(0) && s.kind == CopyKind::Main)
            || (s.job.task == TaskId(1) && s.kind == CopyKind::Backup)));
    assert!(trace
        .segments_on(ProcId::SPARE)
        .all(|s| (s.job.task == TaskId(1) && s.kind == CopyKind::Main)
            || (s.job.task == TaskId(0) && s.kind == CopyKind::Backup)));
    // All three backups were canceled after their mains completed.
    assert_eq!(report.stats.backups_canceled, 3);
}

#[test]
fn fig2_dynamic_pattern_consumes_12_units() {
    // Fig. 2's schedule: dynamic patterns, optional jobs with flexibility
    // degree 1 executed on the primary. 12 units = 20% below Fig. 1.
    let ts = fig1_set();
    let mut policy = DynamicPolicy::with_config(
        "fig2",
        &ts,
        DynamicConfig {
            selection: SelectionRule::FdExactlyOne,
            placement: OptionalPlacement::PrimaryOnly,
            backup_delay: BackupDelay::Promotion,
        },
    )
    .unwrap();
    let report = simulate(&ts, &mut policy, &SimConfig::active_only(Time::from_ms(20)));
    assert!(
        (report.active_energy().units() - 12.0).abs() < 1e-9,
        "got {}",
        report.active_energy()
    );
    assert!(report.mk_assured());
    // No job was ever forced mandatory: every executed job was optional.
    assert_eq!(report.stats.mandatory, 0);
    // O21, O12, O13, O22 selected and executed; O11 (FD = 2) and O14
    // (FD = 2) were skipped at release. (The paper's footnote instead has
    // O11 admitted and dropped for infeasibility — same schedule either
    // way; our greedy policy covers the admit-then-abandon path.)
    assert_eq!(report.stats.optional_selected, 4);
    assert_eq!(report.stats.optional_skipped, 2);
    assert_eq!(report.stats.optional_abandoned, 0);
}

#[test]
fn fig2_executes_the_papers_job_sequence() {
    let ts = fig1_set();
    let mut policy = DynamicPolicy::with_config(
        "fig2",
        &ts,
        DynamicConfig {
            selection: SelectionRule::FdExactlyOne,
            placement: OptionalPlacement::PrimaryOnly,
            backup_delay: BackupDelay::Promotion,
        },
    )
    .unwrap();
    let report = simulate(&ts, &mut policy, &SimConfig::active_only(Time::from_ms(20)));
    let trace = report.trace.unwrap();
    let executed: Vec<(JobId, Time, Time)> = trace
        .segments_on(ProcId::PRIMARY)
        .map(|s| (s.job, s.start, s.end))
        .collect();
    // O21 [0,3), O12 [5,8), O13 [10,13), O22 [13,16) — as in Fig. 2(a).
    assert_eq!(
        executed,
        vec![
            (JobId::new(TaskId(1), 1), Time::ZERO, Time::from_ms(3)),
            (JobId::new(TaskId(0), 2), Time::from_ms(5), Time::from_ms(8)),
            (
                JobId::new(TaskId(0), 3),
                Time::from_ms(10),
                Time::from_ms(13)
            ),
            (
                JobId::new(TaskId(1), 2),
                Time::from_ms(13),
                Time::from_ms(16)
            ),
        ]
    );
    // The spare processor never ran anything: all backups dropped.
    assert_eq!(trace.segments_on(ProcId::SPARE).count(), 0);
}

#[test]
fn footnote1_fd_ordering_and_infeasibility() {
    // Footnote 1 of the paper: at t = 0 both O11 (FD 2) and O21 (FD 1)
    // are optional; O21 runs first because it is less flexible. By the
    // time O21 completes (t = 3), O11 can no longer finish by its
    // deadline (4) and "will not be invoked at all". The greedy policy
    // (admits every optional job) reproduces this exactly.
    let ts = fig1_set();
    let report = simulate(
        &ts,
        &mut DynamicPolicy::greedy(&ts).unwrap(),
        &SimConfig::active_only(Time::from_ms(20)),
    );
    let trace = report.trace.as_ref().unwrap();
    let first = trace
        .segments_on(ProcId::PRIMARY)
        .next()
        .expect("something ran");
    // O21 (τ2 job 1) runs first despite τ1 having higher fixed priority.
    assert_eq!(first.job, JobId::new(TaskId(1), 1));
    assert_eq!((first.start, first.end), (Time::ZERO, Time::from_ms(3)));
    // O11 was admitted but abandoned without ever executing.
    assert!(report.stats.optional_abandoned >= 1);
    assert!(!trace
        .segments
        .iter()
        .any(|s| s.job == JobId::new(TaskId(0), 1)));
}

#[test]
fn fig3_greedy_wastes_energy() {
    // The paper's greedy schedule consumes 20 units before t = 25 vs the
    // selective scheme's 14. Our greedy reconstruction (execute every
    // optional job, FD-ordered, primary-only) lands at 23 — the paper's
    // exact variant is under-specified (see EXPERIMENTS.md) but the
    // qualitative claim (well above selective) is what matters.
    let ts = fig3_set();
    let report = simulate(
        &ts,
        &mut DynamicPolicy::greedy(&ts).unwrap(),
        &SimConfig::active_only(Time::from_ms(25)),
    );
    assert!(report.mk_assured());
    let greedy_units = report.active_energy().units();
    assert!(
        (20.0..=23.0).contains(&greedy_units),
        "greedy at {greedy_units} units"
    );
}

#[test]
fn fig4_selective_consumes_14_units() {
    let ts = fig3_set();
    let report = simulate(
        &ts,
        &mut MkssSelective::new(&ts).unwrap(),
        &SimConfig::active_only(Time::from_ms(25)),
    );
    assert!(
        (report.active_energy().units() - 14.0).abs() < 1e-9,
        "got {}",
        report.active_energy()
    );
    assert!(report.mk_assured());
    // 30% below the paper's greedy number (20), as claimed.
    assert!(report.active_energy().units() <= 0.7 * 20.0 + 1e-9);
}

#[test]
fn fig5_postponement_intervals() {
    let ts = TaskSet::new(vec![
        Task::from_ms(10, 10, 3, 2, 3).unwrap(),
        Task::from_ms(15, 15, 8, 1, 2).unwrap(),
    ])
    .unwrap();
    let post = postponement_intervals(&ts, PostponeConfig::default()).unwrap();
    // Paper: θ1 = 7, θ2 = 4; Y2 = 1 ≪ θ2.
    assert_eq!(post.theta, vec![Time::from_ms(7), Time::from_ms(4)]);
    assert_eq!(post.promotion[1], Time::from_ms(1));
    // Postponed releases of Fig. 5(b): J'11 at 7, J'12 at 17, J'21 at 4.
    assert_eq!(post.postponed_release(&ts, TaskId(0), 1), Time::from_ms(7));
    assert_eq!(post.postponed_release(&ts, TaskId(0), 2), Time::from_ms(17));
    assert_eq!(post.postponed_release(&ts, TaskId(1), 1), Time::from_ms(4));
}

#[test]
fn fig5_postponed_backups_meet_deadlines_in_simulation() {
    // Force the worst case: every main faults, so every backup must run
    // to completion from its postponed release — and still meets its
    // deadline, as the schedule of Fig. 5(b) shows.
    let ts = TaskSet::new(vec![
        Task::from_ms(10, 10, 3, 2, 3).unwrap(),
        Task::from_ms(15, 15, 8, 1, 2).unwrap(),
    ])
    .unwrap();
    // Deterministically fault only MAIN copies: easiest is a permanent
    // fault on the primary at t=0, so only backups exist.
    let config = SimConfig::builder()
        .horizon_ms(30)
        .active_only()
        .faults(FaultConfig::permanent(ProcId::PRIMARY, Time::ZERO))
        .build();
    let report = simulate(&ts, &mut MkssSelective::new(&ts).unwrap(), &config);
    assert!(report.mk_assured());
    // All mandatory jobs met via backups alone.
    assert_eq!(report.stats.missed, 0);
}

#[test]
fn section_iii_energy_ordering_across_schemes() {
    // ST (18) > DP (15) > fig2-dynamic (12) on the Fig. 1 set.
    let ts = fig1_set();
    let config = SimConfig::active_only(Time::from_ms(20));
    let st = simulate(&ts, &mut MkssSt::new(), &config);
    let dp = simulate(&ts, &mut MkssDp::new(&ts).unwrap(), &config);
    let sel = simulate(&ts, &mut MkssSelective::new(&ts).unwrap(), &config);
    assert_eq!(st.active_energy().units(), 18.0);
    assert_eq!(dp.active_energy().units(), 15.0);
    assert!(sel.active_energy().units() < dp.active_energy().units());
}
