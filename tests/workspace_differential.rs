//! Differential test for the reusable-workspace entry point: a single
//! [`SimWorkspace`] reused across many runs must produce reports that are
//! **bit-identical** (byte-for-byte under serde_json) to the legacy
//! throwaway-arena [`simulate`] path — across seeded random task sets,
//! every paper policy, fault scenarios on and off, and trace recording
//! on and off. This is the contract that lets the experiment harness
//! thread one workspace per worker without any risk to Figure 6.
//!
//! This same matrix doubles as the calendar-vs-scan differential: every
//! run here advances time through the event calendar, and in debug
//! builds the engine cross-checks each chosen event time against the
//! pre-calendar linear-scan oracle (`Engine::next_event_time_scan`,
//! kept under `#[cfg(test)]`) via a per-step `debug_assert_eq!`. The
//! whole-run report comparison lives next to the oracle in
//! `crates/sim/src/engine.rs` (`scan_oracle_and_calendar_reports_are_identical`).

use mkss::prelude::*;

/// The fault scenarios exercised per task set: fault-free, a permanent
/// fault on either processor mid-horizon, and combined
/// permanent + transient faults (seeded, hence deterministic).
fn fault_configs() -> Vec<FaultConfig> {
    vec![
        FaultConfig::none(),
        FaultConfig::permanent(ProcId::PRIMARY, Time::from_ms(137)),
        FaultConfig::permanent(ProcId::SPARE, Time::from_ms(61)),
        FaultConfig::combined(ProcId::PRIMARY, Time::from_ms(333), 1e-4, 0xfa17),
        FaultConfig::transient(5e-4, 0x7ea5),
    ]
}

#[test]
fn reused_workspace_reports_are_byte_identical_to_fresh_runs() {
    let horizon = Time::from_ms(500);
    // One workspace deliberately reused across *everything*: different
    // task-set shapes, policies, fault plans, and trace settings, so any
    // state leaking between runs shows up as a diff.
    let mut ws = SimWorkspace::new();
    let mut runs = 0u32;
    for (seed, util) in [(11u64, 0.3), (22, 0.5), (33, 0.7), (44, 0.9)] {
        let Some(ts) = Generator::new(WorkloadConfig::paper(), seed).schedulable_set(util) else {
            continue;
        };
        for faults in fault_configs() {
            for record_trace in [false, true] {
                let config = SimConfig::builder()
                    .horizon(horizon)
                    .faults(faults)
                    .record_trace(record_trace)
                    .build();
                for kind in PolicyKind::PAPER {
                    let mut fresh_policy = kind
                        .build(&ts, &BuildOptions::default())
                        .expect("schedulable");
                    let mut reuse_policy = kind
                        .build(&ts, &BuildOptions::default())
                        .expect("schedulable");
                    let fresh = simulate(&ts, fresh_policy.as_mut(), &config);
                    let reused = simulate_in(&mut ws, &ts, reuse_policy.as_mut(), &config);
                    let fresh_json = serde_json::to_string(&fresh).expect("report serializes");
                    let reused_json = serde_json::to_string(&reused).expect("report serializes");
                    assert_eq!(
                        fresh_json, reused_json,
                        "divergence: seed {seed} util {util} policy {kind} \
                         trace {record_trace} faults {faults:?}"
                    );
                    runs += 1;
                }
            }
        }
    }
    assert!(runs >= 80, "differential probe barely ran ({runs} pairs)");
}

#[test]
fn back_to_back_reuse_is_self_consistent() {
    // Same workspace, same inputs, run twice in a row: the second run
    // must not observe any residue from the first.
    let ts = Generator::new(WorkloadConfig::paper(), 7)
        .schedulable_set(0.6)
        .expect("generatable");
    let config = SimConfig::builder()
        .horizon_ms(800)
        .record_trace(true)
        .build();
    let mut ws = SimWorkspace::new();
    let mut policy_a = PolicyKind::Selective
        .build(&ts, &BuildOptions::default())
        .unwrap();
    let mut policy_b = PolicyKind::Selective
        .build(&ts, &BuildOptions::default())
        .unwrap();
    let first = simulate_in(&mut ws, &ts, policy_a.as_mut(), &config);
    let second = simulate_in(&mut ws, &ts, policy_b.as_mut(), &config);
    assert_eq!(
        serde_json::to_string(&first).unwrap(),
        serde_json::to_string(&second).unwrap()
    );
}
