//! Cross-validation of the offline analyses against the simulator:
//!
//! * every observed mandatory-job response time is bounded by the
//!   busy-window RTA result;
//! * backups postponed by θ (Definitions 2–5) always meet their
//!   deadlines even when they must run to completion (main processor
//!   dead from t = 0) — the soundness claim behind Theorem 1;
//! * promotion-time-delayed backups do too (the dual-priority baseline).

use mkss::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;

fn schedulable_set(seed: u64, util_pct: u64) -> Option<TaskSet> {
    let config = WorkloadConfig {
        tasks_min: 3,
        tasks_max: 7,
        ..WorkloadConfig::paper()
    };
    Generator::new(config, seed).schedulable_set(util_pct as f64 / 100.0)
}

/// Completion time per job id from the trace (only fully completed
/// executions).
fn completions(trace: &Trace, proc: ProcId) -> HashMap<JobId, Time> {
    let mut map = HashMap::new();
    for seg in trace.segments_on(proc) {
        if seg.ended == SegmentEnd::Completed {
            map.insert(seg.job, seg.end);
        }
    }
    map
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Observed response times of mandatory main jobs on a single
    /// processor never exceed the analyzed worst case.
    #[test]
    fn rta_bounds_observed_response_times(seed in 0u64..5_000, util_pct in 15u64..65) {
        let Some(ts) = schedulable_set(seed, util_pct) else { return Ok(()); };
        let report = analyze(&ts, InterferenceModel::MandatoryOnly(Pattern::DeeplyRed));
        prop_assert!(report.schedulable());

        // All mains on the primary: the primary's schedule is exactly the
        // mandatory-only FP schedule the analysis models.
        let mut policy = PolicyKind::DualPriorityPrimary.build(&ts, &BuildOptions::default()).unwrap();
        let config = SimConfig::builder().horizon_ms(400).active_only().build();
        let sim = simulate(&ts, policy.as_mut(), &config);
        let trace = sim.trace.as_ref().unwrap();
        let done = completions(trace, ProcId::PRIMARY);
        for (job, finish) in done {
            let task = ts.task(job.task);
            let release = task.release_of(job.index);
            let response = finish - release;
            let bound = report.response_time(job.task).unwrap();
            prop_assert!(
                response <= bound,
                "{job}: observed response {response} exceeds bound {bound} (seed {seed})"
            );
        }
    }

    /// With the primary dead from t = 0, every θ-postponed backup runs to
    /// completion and still meets its deadline: zero missed jobs.
    #[test]
    fn postponed_backups_always_meet_deadlines(seed in 0u64..5_000, util_pct in 15u64..65) {
        let Some(ts) = schedulable_set(seed, util_pct) else { return Ok(()); };
        let config = SimConfig::builder()
            .horizon_ms(400)
            .faults(FaultConfig::permanent(ProcId::PRIMARY, Time::ZERO))
            .build();
        // Static classification (R-pattern) isolates the postponement
        // machinery from dynamic-pattern effects.
        let mut policy = PolicyKind::SelectiveNoPostpone.build(&ts, &BuildOptions::default()).unwrap();
        let nopost = simulate(&ts, policy.as_mut(), &config);
        prop_assert!(nopost.mk_assured());

        let mut policy = PolicyKind::Selective.build(&ts, &BuildOptions::default()).unwrap();
        let sel = simulate(&ts, policy.as_mut(), &config);
        prop_assert!(sel.mk_assured(), "violations: {:?} (seed {seed})", sel.violations);

        // The per-job extension (static patterns) must be just as safe.
        let mut policy = PolicyKind::DualPriorityJobTheta.build(&ts, &BuildOptions::default()).unwrap();
        let job = simulate(&ts, policy.as_mut(), &config);
        prop_assert!(job.mk_assured(), "job-theta violations: {:?} (seed {seed})", job.violations);
        let mut policy = PolicyKind::DualPriorityTheta.build(&ts, &BuildOptions::default()).unwrap();
        let theta = simulate(&ts, policy.as_mut(), &config);
        prop_assert!(theta.mk_assured(), "dp-theta violations: {:?} (seed {seed})", theta.violations);
    }

    /// The same for the dual-priority baseline's promotion-time delays.
    #[test]
    fn promoted_backups_always_meet_deadlines(seed in 0u64..5_000, util_pct in 15u64..65) {
        let Some(ts) = schedulable_set(seed, util_pct) else { return Ok(()); };
        let config = SimConfig::builder()
            .horizon_ms(400)
            .faults(FaultConfig::permanent(ProcId::PRIMARY, Time::ZERO))
            .build();
        let mut policy = PolicyKind::DualPriority.build(&ts, &BuildOptions::default()).unwrap();
        let report = simulate(&ts, policy.as_mut(), &config);
        prop_assert!(report.mk_assured(), "violations: {:?} (seed {seed})", report.violations);
    }

    /// θ is always at least the promotion time (the fallback of
    /// Section IV) and the postponement analysis is deterministic.
    #[test]
    fn theta_at_least_promotion(seed in 0u64..5_000, util_pct in 15u64..65) {
        let Some(ts) = schedulable_set(seed, util_pct) else { return Ok(()); };
        let post = postponement_intervals(&ts, PostponeConfig::default()).unwrap();
        for (theta, y) in post.theta.iter().zip(&post.promotion) {
            prop_assert!(theta >= y);
        }
        let again = postponement_intervals(&ts, PostponeConfig::default()).unwrap();
        prop_assert_eq!(post, again);
    }
}
