//! Differential test for the observability layer's central contract: a
//! recorder attached to the workspace **observes** the simulation but
//! never feeds back into it, so a recorder-on run's [`SimReport`] must be
//! byte-for-byte identical (under serde_json) to the recorder-off run —
//! across task sets, every paper policy, fault scenarios, and trace
//! recording on and off. Alongside, the registry totals themselves must
//! be deterministic: two recorder-on runs of the same input count the
//! same events.

use std::io::Write;
use std::sync::{Arc, Mutex};

use mkss::obs::{CounterId, EchoRecorder, Registry, Reporter, TraceRecorder};
use mkss::prelude::*;

/// A cloneable in-memory `Reporter` sink, so a test can read back what
/// the `MKSS_LOG=events` narration wrote.
#[derive(Clone, Default)]
struct SharedSink(Arc<Mutex<Vec<u8>>>);

impl SharedSink {
    fn text(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for SharedSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn fault_configs() -> Vec<FaultConfig> {
    vec![
        FaultConfig::none(),
        FaultConfig::permanent(ProcId::PRIMARY, Time::from_ms(137)),
        FaultConfig::combined(ProcId::PRIMARY, Time::from_ms(333), 1e-4, 0xfa17),
        FaultConfig::transient(5e-4, 0x7ea5),
    ]
}

#[test]
fn recorder_on_reports_are_byte_identical_to_recorder_off() {
    let horizon = Time::from_ms(500);
    let registry = Arc::new(Registry::new(1));
    let mut plain_ws = SimWorkspace::new();
    let mut observed_ws = SimWorkspace::with_recorder(Arc::new(registry.handle_at(0)));
    let mut runs = 0u32;
    for (seed, util) in [(11u64, 0.3), (22, 0.5), (33, 0.7)] {
        let Some(ts) = Generator::new(WorkloadConfig::paper(), seed).schedulable_set(util) else {
            continue;
        };
        for faults in fault_configs() {
            for record_trace in [false, true] {
                let config = SimConfig::builder()
                    .horizon(horizon)
                    .faults(faults)
                    .record_trace(record_trace)
                    .build();
                for kind in PolicyKind::PAPER {
                    let mut plain_policy = kind
                        .build(&ts, &BuildOptions::default())
                        .expect("schedulable");
                    let mut observed_policy = kind
                        .build(&ts, &BuildOptions::default())
                        .expect("schedulable");
                    let plain = simulate_in(&mut plain_ws, &ts, plain_policy.as_mut(), &config);
                    let observed =
                        simulate_in(&mut observed_ws, &ts, observed_policy.as_mut(), &config);
                    assert_eq!(
                        serde_json::to_string(&plain).expect("report serializes"),
                        serde_json::to_string(&observed).expect("report serializes"),
                        "recorder changed the report: seed {seed} util {util} \
                         policy {kind} trace {record_trace} faults {faults:?}"
                    );
                    runs += 1;
                }
            }
        }
    }
    assert!(runs >= 48, "differential probe barely ran ({runs} pairs)");
    // The whole sweep released work, so the registry actually heard it.
    let snap = registry.snapshot();
    assert!(snap.counter(CounterId::JobsReleased) > 0);
    assert_eq!(
        snap.counter(CounterId::JobsMet) + snap.counter(CounterId::JobsMissed),
        snap.counter(CounterId::JobsReleased),
    );
}

#[test]
fn echo_narration_carries_sim_time_and_leaves_the_report_untouched() {
    let ts = Generator::new(WorkloadConfig::paper(), 5)
        .schedulable_set(0.5)
        .expect("generatable");
    let config = SimConfig::builder()
        .horizon_ms(300)
        .faults(FaultConfig::transient(5e-4, 0x0b5))
        .build();
    let kind = PolicyKind::Selective;

    let mut plain_ws = SimWorkspace::new();
    let mut plain_policy = kind.build(&ts, &BuildOptions::default()).unwrap();
    let plain = simulate_in(&mut plain_ws, &ts, plain_policy.as_mut(), &config);

    // The MKSS_LOG=events backend: an EchoRecorder narrating to a sink
    // this test can read back.
    let sink = SharedSink::default();
    let registry = Arc::new(Registry::new(1));
    let echo = EchoRecorder::new(
        registry.handle_at(0),
        Arc::new(Reporter::with_sink(Box::new(sink.clone()))),
    );
    let mut echo_ws = SimWorkspace::with_recorder(Arc::new(echo));
    let mut echo_policy = kind.build(&ts, &BuildOptions::default()).unwrap();
    let echoed = simulate_in(&mut echo_ws, &ts, echo_policy.as_mut(), &config);

    assert_eq!(
        serde_json::to_string(&plain).unwrap(),
        serde_json::to_string(&echoed).unwrap(),
        "narration changed the report"
    );
    let narration = sink.text();
    let timed: Vec<&str> = narration
        .lines()
        .filter(|l| l.starts_with("event t="))
        .collect();
    assert!(
        !timed.is_empty(),
        "no structured-event narration lines in:\n{narration}"
    );
    for line in &timed {
        // Every structured line stamps the simulated instant, not wall
        // time: `event t=<N>us <kind> task=... job=...`.
        let t = line
            .strip_prefix("event t=")
            .and_then(|r| r.split_once("us "))
            .map(|(n, _)| n)
            .expect("sim-time prefix");
        assert!(
            t.chars().all(|c| c.is_ascii_digit()) && !t.is_empty(),
            "bad sim-time in narration line: {line}"
        );
        assert!(line.contains(" task="), "{line}");
        assert!(line.contains(" job="), "{line}");
    }
    // Counter narration rides along too — both hooks share the reporter.
    assert!(narration.contains("event jobs_released"), "{narration}");
}

#[test]
fn flight_recorder_capture_leaves_the_report_untouched() {
    let ts = Generator::new(WorkloadConfig::paper(), 9)
        .schedulable_set(0.6)
        .expect("generatable");
    let config = SimConfig::builder()
        .horizon_ms(400)
        .faults(FaultConfig::combined(
            ProcId::SPARE,
            Time::from_ms(123),
            3e-4,
            0x77,
        ))
        .build();
    for kind in PolicyKind::PAPER {
        let mut plain_ws = SimWorkspace::new();
        let mut plain_policy = kind.build(&ts, &BuildOptions::default()).unwrap();
        let plain = simulate_in(&mut plain_ws, &ts, plain_policy.as_mut(), &config);

        let tracer = Arc::new(TraceRecorder::with_capacity(4096));
        let mut traced_ws = SimWorkspace::with_recorder(Arc::clone(&tracer) as _);
        let mut traced_policy = kind.build(&ts, &BuildOptions::default()).unwrap();
        let traced = simulate_in(&mut traced_ws, &ts, traced_policy.as_mut(), &config);

        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&traced).unwrap(),
            "flight recorder changed the report for {kind}"
        );
        assert!(
            !tracer.snapshot().is_empty(),
            "flight recorder captured nothing for {kind}"
        );
    }
}

#[test]
fn registry_totals_are_reproducible() {
    let ts = Generator::new(WorkloadConfig::paper(), 7)
        .schedulable_set(0.6)
        .expect("generatable");
    let config = SimConfig::builder()
        .horizon_ms(800)
        .faults(FaultConfig::combined(
            ProcId::PRIMARY,
            Time::from_ms(444),
            2e-4,
            99,
        ))
        .build();
    let mut snapshots = Vec::new();
    for _ in 0..2 {
        let registry = Arc::new(Registry::new(4));
        let mut ws = SimWorkspace::with_recorder(Arc::new(registry.handle()));
        for kind in PolicyKind::PAPER {
            let mut policy = kind.build(&ts, &BuildOptions::default()).unwrap();
            simulate_in(&mut ws, &ts, policy.as_mut(), &config);
        }
        snapshots.push(registry.snapshot());
    }
    assert_eq!(snapshots[0], snapshots[1]);
    assert!(!snapshots[0].is_zero());
}
