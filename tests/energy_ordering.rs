//! The evaluation's headline behaviour as integration tests over the
//! real workload generator — the shape of the paper's Figure 6, as our
//! reproduction actually measures it (see EXPERIMENTS.md):
//!
//! * both procrastinating schemes always beat the `MKSS_ST` reference;
//! * `MKSS_selective` beats `MKSS_DP` at moderate-to-high
//!   (m,k)-utilization, by a double-digit percentage at the top — the
//!   paper's headline direction;
//! * at the lowest utilizations our (strong) dual-priority baseline edges
//!   out the selective scheme, because there its promotion slack already
//!   cancels almost every backup while the selective scheme provably
//!   executes `m/(k−1) ≥ m/k` single copies — a documented deviation
//!   from the paper, which claims a win in *all* intervals.

use mkss::prelude::*;
use mkss_bench::experiment::{run_experiment, ExperimentConfig, ExperimentResult, Scenario};

fn quick(scenario: Scenario) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::fig6(scenario);
    cfg.plan.sets_per_bucket = 6;
    cfg.plan.from = 0.2;
    cfg.plan.to = 0.8;
    cfg.horizon = Time::from_ms(500);
    cfg
}

/// DP−selective normalized-energy gap per populated bucket, low→high.
fn gaps(result: &ExperimentResult) -> Vec<(f64, f64)> {
    result
        .buckets
        .iter()
        .filter(|b| b.sets > 0)
        .map(|b| {
            (
                b.midpoint,
                b.normalized[&PolicyKind::DualPriority] - b.normalized[&PolicyKind::Selective],
            )
        })
        .collect()
}

#[test]
fn fig6a_shape_no_fault() {
    let result = run_experiment(&quick(Scenario::NoFault));
    assert_eq!(result.total_violations(), 0);
    for bucket in result.buckets.iter().filter(|b| b.sets > 0) {
        let st = bucket.normalized[&PolicyKind::Static];
        let dp = bucket.normalized[&PolicyKind::DualPriority];
        let sel = bucket.normalized[&PolicyKind::Selective];
        assert!((st - 1.0).abs() < 1e-9);
        // Both schemes always save substantially vs the reference.
        assert!(
            dp <= 0.9,
            "dp {dp} barely below reference at {}",
            bucket.midpoint
        );
        assert!(
            sel <= 0.9,
            "selective {sel} barely below reference at {}",
            bucket.midpoint
        );
    }
    // Selective wins the top populated bucket…
    let g = gaps(&result);
    let (top_util, top_gap) = *g.last().expect("populated buckets");
    assert!(
        top_gap > 0.0,
        "selective should win at the top bucket ({top_util}), gap {top_gap}"
    );
    // …and the advantage somewhere is a real percentage.
    let max_red = result
        .max_reduction_pct(PolicyKind::Selective, PolicyKind::DualPriority)
        .expect("populated buckets compare both policies");
    assert!(max_red >= 4.0, "max reduction only {max_red:.1}%");
}

#[test]
fn fig6a_selective_advantage_grows_with_utilization() {
    // In our model the selective advantage comes from displacing
    // duplicated mandatory work, which only exists in quantity once the
    // dual-priority baseline's promotion slack runs out — so the gap
    // *increases* with (m,k)-utilization (crossing zero on the way).
    let result = run_experiment(&quick(Scenario::NoFault));
    let g = gaps(&result);
    assert!(g.len() >= 4, "too few populated buckets");
    let low = (g[0].1 + g[1].1) / 2.0;
    let high = (g[g.len() - 2].1 + g[g.len() - 1].1) / 2.0;
    assert!(
        high >= low - 0.01,
        "gap should not shrink with utilization: low {low:.3}, high {high:.3}"
    );
}

#[test]
fn fig6b_shape_permanent_fault() {
    let result = run_experiment(&quick(Scenario::Permanent));
    assert_eq!(result.total_violations(), 0);
    for bucket in result.buckets.iter().filter(|b| b.sets > 0) {
        let dp = bucket.normalized[&PolicyKind::DualPriority];
        let sel = bucket.normalized[&PolicyKind::Selective];
        assert!(dp <= 1.0 + 1e-9);
        assert!(sel <= 1.0 + 1e-9);
        // The two schemes stay close post-failover (single copies both
        // ways); allow a modest band instead of a strict ordering.
        assert!(
            (dp - sel).abs() <= 0.15,
            "dp {dp} vs selective {sel} diverged at {}",
            bucket.midpoint
        );
    }
}

#[test]
fn fig6b_late_fault_recovers_no_fault_shape() {
    // The paper reports the permanent-fault energies as "similar to the
    // case when no fault ever occurred" — which is what we measure when
    // the fault falls late in the simulated span (most energy is spent
    // in normal dual-processor operation).
    let mut cfg = quick(Scenario::Permanent);
    cfg.permanent_fault_window = (0.9, 1.0);
    let faulted = run_experiment(&cfg);
    let clean = run_experiment(&quick(Scenario::NoFault));
    assert_eq!(faulted.total_violations(), 0);
    let f_sel = faulted.mean_normalized(PolicyKind::Selective);
    let c_sel = clean.mean_normalized(PolicyKind::Selective);
    assert!(
        (f_sel - c_sel).abs() < 0.08,
        "late-fault selective {f_sel:.3} should be close to no-fault {c_sel:.3}"
    );
}

#[test]
fn fig6c_shape_combined_faults() {
    let result = run_experiment(&quick(Scenario::Combined));
    assert_eq!(result.total_violations(), 0);
    // At the paper's 1e-6 transient rate the combined scenario is
    // observationally equivalent to the permanent-only one.
    let permanent = run_experiment(&quick(Scenario::Permanent));
    let a = result.mean_normalized(PolicyKind::Selective);
    let b = permanent.mean_normalized(PolicyKind::Selective);
    assert!((a - b).abs() < 0.02, "combined {a:.3} vs permanent {b:.3}");
}

#[test]
fn ablation_postponement_helps() {
    // θ-postponement should never hurt vs promotion-only on average.
    let mut cfg = quick(Scenario::NoFault);
    cfg.policies = vec![PolicyKind::Selective, PolicyKind::SelectiveNoPostpone];
    let result = run_experiment(&cfg);
    let with_theta = result.mean_normalized(PolicyKind::Selective);
    let without = result.mean_normalized(PolicyKind::SelectiveNoPostpone);
    assert!(
        with_theta <= without + 0.01,
        "θ-postponement made things worse: {with_theta} vs {without}"
    );
}

#[test]
fn ablation_postponement_ladder_on_static_scheme() {
    // More procrastination can only increase backup cancellations:
    // Y_alljobs (paper) ≥ energy of θ ≥ energy of per-job θ_ij.
    let mut cfg = quick(Scenario::NoFault);
    cfg.policies = vec![
        PolicyKind::DualPriority,
        PolicyKind::DualPriorityTheta,
        PolicyKind::DualPriorityJobTheta,
    ];
    let result = run_experiment(&cfg);
    assert_eq!(result.total_violations(), 0);
    let y = result.mean_normalized(PolicyKind::DualPriority);
    let theta = result.mean_normalized(PolicyKind::DualPriorityTheta);
    let job = result.mean_normalized(PolicyKind::DualPriorityJobTheta);
    assert!(theta <= y + 0.01, "θ {theta} worse than Y {y}");
    assert!(job <= theta + 0.01, "θ_ij {job} worse than θ {theta}");
}
