//! Theorem 1 as an executable property: for any task set schedulable
//! under the R-pattern, the selective scheme (and every other scheme in
//! the crate) assures the (m,k)-deadlines — fault-free, under one
//! permanent fault at an arbitrary instant, and with the backup-recovery
//! path exercised by transient faults.

use mkss::prelude::*;
use proptest::prelude::*;

/// Strategy: a schedulable random task set from the Section-V generator,
/// parameterized by seed and target utilization.
fn schedulable_set(seed: u64, util_pct: u64) -> Option<TaskSet> {
    let config = WorkloadConfig {
        tasks_min: 3,
        tasks_max: 6,
        ..WorkloadConfig::paper()
    };
    Generator::new(config, seed).schedulable_set(util_pct as f64 / 100.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fault-free runs never violate (m,k) for any scheme.
    #[test]
    fn no_violations_fault_free(seed in 0u64..10_000, util_pct in 15u64..70) {
        let Some(ts) = schedulable_set(seed, util_pct) else { return Ok(()); };
        let config = SimConfig::new(Time::from_ms(500));
        for kind in PolicyKind::ALL {
            let mut policy = kind.build(&ts, &BuildOptions::default()).unwrap();
            let report = simulate(&ts, policy.as_mut(), &config);
            prop_assert!(
                report.mk_assured(),
                "{} violated (m,k) on seed {seed} util {util_pct}: {:?}",
                kind, report.violations
            );
            // Sanity: everything mandatory was met.
            prop_assert!(report.stats.met + report.stats.missed == report.stats.released);
        }
    }

    /// One permanent fault anywhere, on either processor: still assured.
    #[test]
    fn no_violations_under_permanent_fault(
        seed in 0u64..10_000,
        util_pct in 15u64..65,
        fault_ms in 0u64..500,
        on_primary in any::<bool>(),
    ) {
        let Some(ts) = schedulable_set(seed, util_pct) else { return Ok(()); };
        let proc = if on_primary { ProcId::PRIMARY } else { ProcId::SPARE };
        let config = SimConfig::builder()
            .horizon_ms(500)
            .faults(FaultConfig::permanent(proc, Time::from_ms(fault_ms)))
            .build();
        for kind in [PolicyKind::Static, PolicyKind::DualPriority, PolicyKind::Selective] {
            let mut policy = kind.build(&ts, &BuildOptions::default()).unwrap();
            let report = simulate(&ts, policy.as_mut(), &config);
            prop_assert!(
                report.mk_assured(),
                "{} violated (m,k) with {proc} fault at {fault_ms}ms (seed {seed})",
                kind
            );
        }
    }

    /// Transient faults at a rate high enough to exercise the
    /// backup-recovery path (but low enough that double faults — the only
    /// unprotected case — stay absent for the sampled seeds).
    #[test]
    fn transients_recovered_by_backups(seed in 0u64..2_000, util_pct in 15u64..50) {
        let Some(ts) = schedulable_set(seed, util_pct) else { return Ok(()); };
        let config = SimConfig::builder()
            .horizon_ms(400)
            .faults(FaultConfig::transient(0.002, seed))
            .build();
        let mut policy = MkssSelective::new(&ts).unwrap();
        let report = simulate(&ts, &mut policy, &config);
        // A mandatory job only misses if BOTH copies fault (probability
        // ~1e-4 per job here); a selected optional job's fault is
        // tolerated by design (the next job turns mandatory). Either way
        // the constraint must hold.
        prop_assert!(report.mk_assured(), "violations: {:?}", report.violations);
    }

    /// Determinism: identical configuration ⇒ identical outcome.
    #[test]
    fn runs_are_deterministic(seed in 0u64..5_000) {
        let Some(ts) = schedulable_set(seed, 40) else { return Ok(()); };
        let config = SimConfig::builder()
            .horizon_ms(300)
            .faults(FaultConfig::combined(ProcId::SPARE, Time::from_ms(123), 0.001, seed))
            .build();
        let run = |ts: &TaskSet| {
            let mut policy = MkssSelective::new(ts).unwrap();
            let r = simulate(ts, &mut policy, &config);
            (r.total_energy().units(), r.stats)
        };
        prop_assert_eq!(run(&ts), run(&ts));
    }
}
