//! Serde round-trips of every serializable data structure the crates
//! expose — configurations, task sets, reports, and traces survive a
//! JSON round-trip bit-for-bit (modulo f64 text formatting, which
//! serde_json preserves exactly for finite values).

use mkss::prelude::*;

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + for<'de> serde::Deserialize<'de>,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

fn sample_set() -> TaskSet {
    TaskSet::new(vec![
        Task::from_ms(5, 4, 3, 2, 4).unwrap(),
        Task::from_ms(10, 10, 3, 1, 2).unwrap(),
    ])
    .unwrap()
}

#[test]
fn task_set_roundtrip() {
    let ts = sample_set();
    assert_eq!(roundtrip(&ts), ts);
}

#[test]
fn time_and_constraint_roundtrip() {
    let t = Time::from_us(2_500);
    assert_eq!(roundtrip(&t), t);
    let mk = MkConstraint::new(3, 7).unwrap();
    assert_eq!(roundtrip(&mk), mk);
    let p = Pattern::EvenlyDistributed;
    assert_eq!(roundtrip(&p), p);
}

#[test]
fn history_and_monitor_roundtrip() {
    let mut h = MkHistory::new(MkConstraint::new(2, 5).unwrap());
    h.record(JobOutcome::Missed);
    h.record(JobOutcome::Met);
    let h2 = roundtrip(&h);
    assert_eq!(h2, h);
    assert_eq!(h2.flexibility_degree(), h.flexibility_degree());

    let mut mon = MkMonitor::new(MkConstraint::new(1, 2).unwrap());
    mon.record(false);
    assert_eq!(roundtrip(&mon), mon);
}

#[test]
fn sim_config_and_fault_config_roundtrip() {
    let config = SimConfig::builder()
        .horizon_ms(500)
        .faults(FaultConfig::combined(
            ProcId::SPARE,
            Time::from_ms(33),
            1e-6,
            77,
        ))
        .build();
    let back = roundtrip(&config);
    assert_eq!(back, config);
}

#[test]
fn report_with_trace_roundtrip() {
    let ts = sample_set();
    let mut policy = MkssSelective::new(&ts).unwrap();
    let report = simulate(&ts, &mut policy, &SimConfig::active_only(Time::from_ms(40)));
    let back = roundtrip(&report);
    assert_eq!(back.policy, report.policy);
    assert_eq!(back.trace, report.trace);
    assert_eq!(back.stats, report.stats);
    assert!((back.total_energy().units() - report.total_energy().units()).abs() < 1e-12);
}

#[test]
fn workload_config_roundtrip() {
    let cfg = WorkloadConfig::paper();
    assert_eq!(roundtrip(&cfg), cfg);
    let plan = BucketPlan::default();
    assert_eq!(roundtrip(&plan), plan);
}

#[test]
fn experiment_result_roundtrip() {
    use mkss_bench::experiment::{run_experiment, ExperimentConfig, Scenario};
    let mut cfg = ExperimentConfig::fig6(Scenario::Combined);
    cfg.plan.sets_per_bucket = 1;
    cfg.plan.from = 0.3;
    cfg.plan.to = 0.4;
    cfg.horizon = Time::from_ms(200);
    let result = run_experiment(&cfg);
    let json = serde_json::to_string_pretty(&result).expect("serializes");
    let back: mkss_bench::experiment::ExperimentResult =
        serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back.buckets.len(), result.buckets.len());
    for (a, b) in back.buckets.iter().zip(&result.buckets) {
        assert_eq!(a.normalized, b.normalized);
    }
}
