//! Differential testing of the event-driven engine against an
//! independent, brutally simple millisecond-tick reference simulator.
//!
//! The reference re-implements the shared execution model (MJQ ≻ OJQ
//! fixed-priority dispatch, sibling cancellation on success, optional
//! feasibility abandonment, dynamic flexibility-degree classification)
//! with none of the engine's event bookkeeping. On whole-millisecond
//! task sets every engine event falls on a millisecond boundary, so the
//! two must agree exactly on busy time, energy, and every job outcome.

use mkss::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeMap;

const STEP_MS: u64 = 1;

#[derive(Debug, Clone, Copy, PartialEq)]
enum RefPolicy {
    Static,
    DualPriority,
    Selective,
}

#[derive(Debug, Clone)]
struct RefCopy {
    task: usize,
    index: u64,
    release_ms: u64,
    deadline_ms: u64,
    remaining_ms: u64,
    proc: usize,
    mandatory: bool,
    fd: u32,
    sibling: Option<usize>,
    state: u8, // 0 pending, 1 done, 2 canceled, 3 abandoned
}

#[derive(Debug, Default, Clone)]
struct RefOutcome {
    busy_ms: [u64; 2],
    met: u64,
    missed: u64,
    outcomes: Vec<(usize, u64, bool)>, // (task, index, met)
}

/// The reference simulator: 1 ms ticks; optionally one permanent fault.
fn reference_run(
    ts: &TaskSet,
    policy: RefPolicy,
    horizon_ms: u64,
    fault: Option<(usize, u64)>, // (processor, time in ms)
) -> RefOutcome {
    let n = ts.len();
    let delays: Vec<u64> = match policy {
        RefPolicy::Static => vec![0; n],
        RefPolicy::DualPriority => {
            // MKSS_DP promotes with the hard real-time all-jobs analysis,
            // falling back to zero where it diverges (see MkssDp docs).
            let report = analyze(ts, InterferenceModel::AllJobs);
            ts.ids()
                .map(|id| match report.response_time(id) {
                    Some(r) => (ts.task(id).deadline() - r).ticks() / 1000,
                    None => 0,
                })
                .collect()
        }
        RefPolicy::Selective => postponement_intervals(ts, PostponeConfig::default())
            .expect("schedulable")
            .theta
            .iter()
            .map(|t| t.ticks() / 1000)
            .collect(),
    };
    let mut histories: Vec<MkHistory> = ts.iter().map(|(_, t)| MkHistory::new(t.mk())).collect();
    let mut alternate: Vec<bool> = vec![false; n];
    let mut next_index: Vec<u64> = vec![1; n];
    let mut copies: Vec<RefCopy> = Vec::new();
    // job id -> (copies, resolved, succeeded)
    let mut jobs: BTreeMap<(usize, u64), (Vec<usize>, bool)> = BTreeMap::new();
    let mut out = RefOutcome::default();

    let resolve = |histories: &mut Vec<MkHistory>,
                   copies: &mut Vec<RefCopy>,
                   jobs: &mut BTreeMap<(usize, u64), (Vec<usize>, bool)>,
                   out: &mut RefOutcome,
                   task: usize,
                   index: u64,
                   met: bool| {
        let entry = jobs.get_mut(&(task, index)).expect("job exists");
        assert!(!entry.1, "double resolution");
        entry.1 = true;
        histories[task].record(if met {
            JobOutcome::Met
        } else {
            JobOutcome::Missed
        });
        if met {
            out.met += 1;
        } else {
            out.missed += 1;
            for &c in &entry.0 {
                if copies[c].state == 0 {
                    copies[c].state = 3;
                }
            }
        }
        out.outcomes.push((task, index, met));
    };

    let mut alive = [true, true];
    for t in (0..horizon_ms).step_by(STEP_MS as usize) {
        // 0. permanent fault at t: kill the processor's pending copies.
        if let Some((proc, at)) = fault {
            if alive[proc] && at <= t {
                alive[proc] = false;
                for c in copies.iter_mut() {
                    if c.proc == proc && c.state == 0 {
                        c.state = 4; // lost
                    }
                }
            }
        }
        // 1. deadline misses at t.
        let due: Vec<(usize, u64)> = jobs
            .iter()
            .filter(|(&(task, index), &(_, resolved))| {
                !resolved && ts.task(TaskId(task)).deadline_of(index).ticks() / 1000 <= t
            })
            .map(|(&k, _)| k)
            .collect();
        for (task, index) in due {
            resolve(
                &mut histories,
                &mut copies,
                &mut jobs,
                &mut out,
                task,
                index,
                false,
            );
        }
        // 2. releases at t.
        for task in 0..n {
            let tk = ts.task(TaskId(task));
            loop {
                let index = next_index[task];
                let release_ms = tk.release_of(index).ticks() / 1000;
                let deadline_ms = tk.deadline_of(index).ticks() / 1000;
                if deadline_ms > horizon_ms || release_ms > t {
                    break;
                }
                next_index[task] += 1;
                let c_ms = tk.wcet().ticks() / 1000;
                let fd = histories[task].flexibility_degree();
                let statically_mandatory = Pattern::DeeplyRed.is_mandatory(tk.mk(), index);
                let mandatory = match policy {
                    RefPolicy::Static | RefPolicy::DualPriority => statically_mandatory,
                    RefPolicy::Selective => fd == 0,
                };
                let mut job_copies = Vec::new();
                if mandatory {
                    let main_proc = match policy {
                        RefPolicy::DualPriority => task % 2,
                        _ => 0,
                    };
                    if alive[main_proc] {
                        let main = copies.len();
                        copies.push(RefCopy {
                            task,
                            index,
                            release_ms,
                            deadline_ms,
                            remaining_ms: c_ms,
                            proc: main_proc,
                            mandatory: true,
                            fd: 0,
                            sibling: None,
                            state: 0,
                        });
                        job_copies.push(main);
                        if alive[1 - main_proc] {
                            copies.push(RefCopy {
                                task,
                                index,
                                release_ms: release_ms + delays[task],
                                deadline_ms,
                                remaining_ms: c_ms,
                                proc: 1 - main_proc,
                                mandatory: true,
                                fd: 0,
                                sibling: Some(main),
                                state: 0,
                            });
                            copies[main].sibling = Some(main + 1);
                            job_copies.push(main + 1);
                        }
                    } else {
                        // Main processor dead: single backup-delayed copy
                        // on the survivor (mirrors the engine's jitter
                        // avoidance).
                        let idx = copies.len();
                        copies.push(RefCopy {
                            task,
                            index,
                            release_ms: release_ms + delays[task],
                            deadline_ms,
                            remaining_ms: c_ms,
                            proc: 1 - main_proc,
                            mandatory: true,
                            fd: 0,
                            sibling: None,
                            state: 0,
                        });
                        job_copies.push(idx);
                    }
                } else if policy == RefPolicy::Selective && fd == 1 {
                    let mut proc = usize::from(alternate[task]);
                    alternate[task] = !alternate[task];
                    if !alive[proc] {
                        proc = 1 - proc;
                    }
                    let idx = copies.len();
                    copies.push(RefCopy {
                        task,
                        index,
                        release_ms,
                        deadline_ms,
                        remaining_ms: c_ms,
                        proc,
                        mandatory: false,
                        fd,
                        sibling: None,
                        state: 0,
                    });
                    job_copies.push(idx);
                }
                jobs.insert((task, index), (job_copies, false));
            }
        }
        // 3. abandon infeasible optionals, then dispatch one tick.
        let mut completed: Vec<usize> = Vec::new();
        for (proc, &alive_here) in alive.iter().enumerate() {
            if !alive_here {
                continue;
            }
            for cp in copies.iter_mut() {
                if cp.proc == proc
                    && cp.state == 0
                    && !cp.mandatory
                    && cp.release_ms <= t
                    && t + cp.remaining_ms > cp.deadline_ms
                {
                    cp.state = 3;
                }
            }
            let pick = copies
                .iter()
                .enumerate()
                .filter(|(_, c)| c.proc == proc && c.state == 0 && c.release_ms <= t && c.mandatory)
                .min_by_key(|(_, c)| (c.task, c.index))
                .map(|(i, _)| i)
                .or_else(|| {
                    copies
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| {
                            c.proc == proc && c.state == 0 && c.release_ms <= t && !c.mandatory
                        })
                        .min_by_key(|(_, c)| (c.fd, c.task, c.index))
                        .map(|(i, _)| i)
                });
            if let Some(c) = pick {
                out.busy_ms[proc] += STEP_MS;
                copies[c].remaining_ms -= STEP_MS;
                if copies[c].remaining_ms == 0 {
                    completed.push(c);
                }
            }
        }
        // 4. completions take effect at t+1: mark done, resolve, cancel.
        for c in completed.clone() {
            copies[c].state = 1;
        }
        for c in completed {
            let (task, index) = (copies[c].task, copies[c].index);
            if !jobs[&(task, index)].1 {
                resolve(
                    &mut histories,
                    &mut copies,
                    &mut jobs,
                    &mut out,
                    task,
                    index,
                    true,
                );
            }
            if let Some(s) = copies[c].sibling {
                if copies[s].state == 0 {
                    copies[s].state = 2;
                }
            }
        }
    }
    // Final pass at the horizon.
    let due: Vec<(usize, u64)> = jobs
        .iter()
        .filter(|(_, &(_, resolved))| !resolved)
        .map(|(&k, _)| k)
        .collect();
    for (task, index) in due {
        resolve(
            &mut histories,
            &mut copies,
            &mut jobs,
            &mut out,
            task,
            index,
            false,
        );
    }
    out
}

/// Whole-millisecond schedulable sets only (so every engine event is
/// ms-aligned and the reference's 1 ms ticks are exact).
fn schedulable_set(seed: u64, util_pct: u64) -> Option<TaskSet> {
    let config = WorkloadConfig {
        tasks_min: 2,
        tasks_max: 5,
        period_ms: (4, 20),
        ..WorkloadConfig::paper()
    };
    let mut generator = Generator::new(config, seed);
    for _ in 0..200 {
        // Round WCETs to whole milliseconds and re-validate.
        if let Some(ts) = generator.raw_set(util_pct as f64 / 100.0) {
            let rounded: Option<Vec<Task>> = ts
                .iter()
                .map(|(_, t)| {
                    let ms = t.wcet().ticks().div_ceil(1000);
                    Task::with_constraint(
                        t.period(),
                        t.deadline(),
                        Time::from_ms(ms.max(1)),
                        t.mk(),
                    )
                    .ok()
                })
                .collect();
            if let Some(tasks) = rounded {
                if let Ok(ts) = TaskSet::new(tasks) {
                    if is_schedulable_r_pattern(&ts) {
                        return Some(ts);
                    }
                }
            }
        }
    }
    None
}

fn engine_run(
    ts: &TaskSet,
    policy: RefPolicy,
    horizon_ms: u64,
    fault: Option<(usize, u64)>,
) -> SimReport {
    let mut builder = SimConfig::builder().horizon_ms(horizon_ms).active_only();
    if let Some((proc, at)) = fault {
        builder = builder.faults(FaultConfig::permanent(ProcId(proc), Time::from_ms(at)));
    }
    let config = builder.build();
    match policy {
        RefPolicy::Static => simulate(ts, &mut MkssSt::new(), &config),
        RefPolicy::DualPriority => simulate(ts, &mut MkssDp::new(ts).unwrap(), &config),
        RefPolicy::Selective => simulate(ts, &mut MkssSelective::new(ts).unwrap(), &config),
    }
}

fn compare(ts: &TaskSet, policy: RefPolicy, horizon_ms: u64) {
    compare_with_fault(ts, policy, horizon_ms, None)
}

fn compare_with_fault(
    ts: &TaskSet,
    policy: RefPolicy,
    horizon_ms: u64,
    fault: Option<(usize, u64)>,
) {
    let reference = reference_run(ts, policy, horizon_ms, fault);
    let engine = engine_run(ts, policy, horizon_ms, fault);
    for proc in 0..2 {
        assert_eq!(
            engine.energy[proc].busy_time,
            Time::from_ms(reference.busy_ms[proc]),
            "{policy:?}: busy time mismatch on proc {proc} for\n{ts}\nengine trace:\n{}",
            engine
                .trace
                .as_ref()
                .map(|t| t.render_gantt_ms(Time::from_ms(horizon_ms.min(60))))
                .unwrap_or_default()
        );
    }
    assert_eq!(engine.stats.met, reference.met, "{policy:?}: met mismatch");
    assert_eq!(
        engine.stats.missed, reference.missed,
        "{policy:?}: missed mismatch"
    );
    // Outcome-by-outcome comparison via the resolution log.
    let engine_outcomes: Vec<(usize, u64, bool)> = engine
        .trace
        .as_ref()
        .unwrap()
        .resolutions
        .iter()
        .map(|r| (r.job.task.0, r.job.index, r.outcome.is_met()))
        .collect();
    let mut sorted_ref = reference.outcomes.clone();
    sorted_ref.sort();
    let mut sorted_engine = engine_outcomes;
    sorted_engine.sort();
    assert_eq!(sorted_engine, sorted_ref, "{policy:?}: outcome mismatch");
}

#[test]
fn engine_matches_reference_on_paper_sets() {
    let fig1 = TaskSet::new(vec![
        Task::from_ms(5, 4, 3, 2, 4).unwrap(),
        Task::from_ms(10, 10, 3, 1, 2).unwrap(),
    ])
    .unwrap();
    for policy in [
        RefPolicy::Static,
        RefPolicy::DualPriority,
        RefPolicy::Selective,
    ] {
        compare(&fig1, policy, 100);
    }
    let fig5 = TaskSet::new(vec![
        Task::from_ms(10, 10, 3, 2, 3).unwrap(),
        Task::from_ms(15, 15, 8, 1, 2).unwrap(),
    ])
    .unwrap();
    for policy in [
        RefPolicy::Static,
        RefPolicy::DualPriority,
        RefPolicy::Selective,
    ] {
        compare(&fig5, policy, 120);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_matches_reference_on_random_sets(seed in 0u64..20_000, util_pct in 10u64..60) {
        let Some(ts) = schedulable_set(seed, util_pct) else { return Ok(()); };
        for policy in [RefPolicy::Static, RefPolicy::DualPriority, RefPolicy::Selective] {
            compare(&ts, policy, 200);
        }
    }

    /// The same job-for-job agreement with a permanent fault at an
    /// arbitrary whole-millisecond instant on either processor.
    #[test]
    fn engine_matches_reference_under_permanent_fault(
        seed in 0u64..20_000,
        util_pct in 10u64..55,
        fault_ms in 0u64..200,
        on_primary in any::<bool>(),
    ) {
        let Some(ts) = schedulable_set(seed, util_pct) else { return Ok(()); };
        let fault = Some((usize::from(!on_primary), fault_ms));
        for policy in [RefPolicy::Static, RefPolicy::DualPriority, RefPolicy::Selective] {
            compare_with_fault(&ts, policy, 200, fault);
        }
    }
}
