//! Policy construction errors.

use mkss_core::task::TaskId;
use std::error::Error as StdError;
use std::fmt;

/// Error building a policy for a task set.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildPolicyError {
    /// The task set is not schedulable under the deeply-red pattern, so
    /// promotion times / postponement intervals do not exist and the
    /// paper's guarantee (Theorem 1) cannot be given.
    Unschedulable {
        /// First task failing the response-time analysis.
        task: TaskId,
    },
    /// θ-based backup postponement (Definitions 2–5) is only sound when
    /// the spare processor hosts nothing but consistently-postponed
    /// backups, i.e. with all mains on the primary; preference-oriented
    /// placement mixes offset-0 mains into the spare and voids the
    /// inspecting-point analysis.
    PostponementNeedsMainsOnPrimary,
}

impl fmt::Display for BuildPolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildPolicyError::Unschedulable { task } => {
                write!(f, "task {task} is unschedulable under the R-pattern")
            }
            BuildPolicyError::PostponementNeedsMainsOnPrimary => write!(
                f,
                "θ-postponed backups require all mains on the primary processor"
            ),
        }
    }
}

impl StdError for BuildPolicyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            BuildPolicyError::Unschedulable { task: TaskId(2) }.to_string(),
            "task τ3 is unschedulable under the R-pattern"
        );
    }
}
