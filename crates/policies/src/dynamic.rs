//! Dynamic-pattern schemes: the paper's `MKSS_selective` (Algorithm 1)
//! and the *greedy* strawman of Section III, as one configurable policy
//! family.
//!
//! Both classify each job **at release** from the task's execution
//! history: a job with flexibility degree 0 is mandatory (runs duplicated
//! with a procrastinated backup), any other job is optional. They differ
//! in *which* optional jobs are selected for execution and *where*:
//!
//! * **Selective** (Section IV): only optional jobs with flexibility
//!   degree exactly 1, alternating between the primary and the spare
//!   processor per task; backups are postponed by the inspecting-point
//!   intervals `θ_i` of Definitions 2–5.
//! * **Greedy** (Section III, Figs. 2–3): every optional job is selected,
//!   all on the primary processor; backups use the promotion times `Y_i`.

use mkss_analysis::postpone::{postponement_intervals, PostponeConfig};
use mkss_analysis::rta::{promotion_times, InterferenceModel};
use mkss_core::mk::Pattern;
use mkss_core::task::TaskSet;
use mkss_core::time::Time;
use mkss_sim::policy::{Policy, ReleaseCtx, ReleaseDecision};
use mkss_sim::proc::ProcId;

use crate::dual_priority::first_unschedulable;
use crate::error::BuildPolicyError;

/// Which optional jobs are selected for execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// mkss-lint: allow(pub-api-hygiene) — closed variant set: Algorithm 1's selection principles are a fixed catalog; consumers match exhaustively
pub enum SelectionRule {
    /// Only jobs with flexibility degree exactly 1 (Algorithm 1,
    /// principle (i)).
    FdExactlyOne,
    /// Jobs with flexibility degree in `1..=max` (ablation knob).
    FdAtMost(u32),
    /// Every optional job (the greedy strawman).
    All,
}

impl SelectionRule {
    fn selects(self, fd: u32) -> bool {
        debug_assert!(fd >= 1, "fd 0 jobs are mandatory, not optional");
        match self {
            SelectionRule::FdExactlyOne => fd == 1,
            SelectionRule::FdAtMost(max) => fd <= max,
            SelectionRule::All => true,
        }
    }
}

/// Where selected optional jobs execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// mkss-lint: allow(pub-api-hygiene) — closed variant set: Algorithm 1 principle (ii) defines exactly these placements; matched exhaustively
pub enum OptionalPlacement {
    /// Alternate per task between the two processors, starting with the
    /// primary (Algorithm 1, principle (ii) / Fig. 4).
    Alternate,
    /// All on the primary (the greedy strawman of Figs. 2–3).
    PrimaryOnly,
    /// All on the spare (ablation knob).
    SpareOnly,
}

/// How much each mandatory job's backup is procrastinated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// mkss-lint: allow(pub-api-hygiene) — closed variant set: the paper's procrastination modes are a fixed catalog; matched exhaustively
pub enum BackupDelay {
    /// No procrastination (concurrent copies).
    None,
    /// Promotion times `Y_i = D_i − R_i` (Eq. 2).
    Promotion,
    /// The postponement intervals `θ_i` of Definitions 2–5 (never less
    /// than the promotion times).
    ///
    /// Note that the per-job `θ_ij` of
    /// [`mkss_analysis::postpone::job_postponement`] is **not** offered
    /// here: under a dynamic pattern mandatory jobs occur at arbitrary
    /// positions, so only the position-independent task-level minimum is
    /// covered by Theorem 1's shifting argument (the per-job variant is
    /// sound for static patterns and available on
    /// [`crate::MkssDp`]).
    Postponement,
}

/// Configuration of a [`DynamicPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynamicConfig {
    /// Optional-job selection rule.
    pub selection: SelectionRule,
    /// Optional-job placement.
    pub placement: OptionalPlacement,
    /// Backup procrastination.
    pub backup_delay: BackupDelay,
}

impl DynamicConfig {
    /// The paper's `MKSS_selective` configuration.
    pub fn selective() -> Self {
        DynamicConfig {
            selection: SelectionRule::FdExactlyOne,
            placement: OptionalPlacement::Alternate,
            backup_delay: BackupDelay::Postponement,
        }
    }

    /// The greedy strawman of Section III.
    pub fn greedy() -> Self {
        DynamicConfig {
            selection: SelectionRule::All,
            placement: OptionalPlacement::PrimaryOnly,
            backup_delay: BackupDelay::Promotion,
        }
    }
}

/// A dynamic-pattern standby-sparing policy (selective / greedy / custom).
///
/// # Examples
///
/// ```
/// use mkss_core::prelude::*;
/// use mkss_policies::MkssSelective;
/// use mkss_sim::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // The Fig. 3/4 task set; τ1's deadline is 2.5 ms.
/// let ts = TaskSet::new(vec![
///     Task::new(Time::from_ms(5), Time::from_us(2_500), Time::from_ms(2), 2, 4)?,
///     Task::from_ms(4, 4, 2, 2, 4)?,
/// ])?;
/// let mut selective = MkssSelective::new(&ts)?;
/// let report = simulate(&ts, &mut selective, &SimConfig::active_only(Time::from_ms(25)));
/// // Fig. 4: 14 active energy units before t = 25.
/// assert!((report.active_energy().units() - 14.0).abs() < 1e-9);
/// assert!(report.mk_assured());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynamicPolicy {
    name: String,
    config: DynamicConfig,
    /// Per-task backup delay (resolved from `config.backup_delay`).
    delay: Vec<Time>,
    /// Per-task alternation state: next optional goes to the spare when
    /// set (used by [`OptionalPlacement::Alternate`]).
    next_on_spare: Vec<bool>,
}

/// The paper's `MKSS_selective` (Algorithm 1): a [`DynamicPolicy`] with
/// FD = 1 selection, alternating placement, and θ-postponed backups.
pub type MkssSelective = DynamicPolicy;

impl DynamicPolicy {
    /// Builds the paper's `MKSS_selective` scheme.
    ///
    /// # Errors
    ///
    /// Returns [`BuildPolicyError::Unschedulable`] if the task set fails
    /// the R-pattern response-time analysis (the premise of Theorem 1).
    pub fn new(ts: &TaskSet) -> Result<Self, BuildPolicyError> {
        Self::with_config("MKSS_selective", ts, DynamicConfig::selective())
    }

    /// Builds the greedy strawman of Section III.
    ///
    /// # Errors
    ///
    /// Same as [`DynamicPolicy::new`].
    pub fn greedy(ts: &TaskSet) -> Result<Self, BuildPolicyError> {
        Self::with_config("MKSS_greedy", ts, DynamicConfig::greedy())
    }

    /// Builds a custom variant (ablations).
    ///
    /// # Errors
    ///
    /// Same as [`DynamicPolicy::new`].
    pub fn with_config(
        name: &str,
        ts: &TaskSet,
        config: DynamicConfig,
    ) -> Result<Self, BuildPolicyError> {
        let pattern = Pattern::DeeplyRed;
        let postpone_config = PostponeConfig {
            pattern,
            ..PostponeConfig::default()
        };
        let delay = match config.backup_delay {
            BackupDelay::None => vec![Time::ZERO; ts.len()],
            BackupDelay::Promotion => {
                promotion_times(ts, InterferenceModel::MandatoryOnly(pattern))
                    .ok_or_else(|| first_unschedulable(ts, pattern))?
            }
            BackupDelay::Postponement => postponement_intervals(ts, postpone_config)
                .map(|p| p.theta)
                .map_err(|_| first_unschedulable(ts, pattern))?,
        };
        Ok(DynamicPolicy {
            name: name.to_owned(),
            config,
            delay,
            next_on_spare: vec![false; ts.len()],
        })
    }

    /// The per-task backup delays in use.
    pub fn backup_delays(&self) -> &[Time] {
        &self.delay
    }

    /// The configuration in use.
    pub fn config(&self) -> DynamicConfig {
        self.config
    }
}

impl Policy for DynamicPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_release(&mut self, ctx: &ReleaseCtx<'_>) -> ReleaseDecision {
        let fd = ctx.history.flexibility_degree();
        if fd == 0 {
            return ReleaseDecision::Mandatory {
                main_proc: ProcId::PRIMARY,
                backup_delay: self.delay[ctx.task.0],
            };
        }
        if !self.config.selection.selects(fd) {
            return ReleaseDecision::Skip;
        }
        let proc = match self.config.placement {
            OptionalPlacement::PrimaryOnly => ProcId::PRIMARY,
            OptionalPlacement::SpareOnly => ProcId::SPARE,
            OptionalPlacement::Alternate => {
                let flag = &mut self.next_on_spare[ctx.task.0];
                let proc = if *flag {
                    ProcId::SPARE
                } else {
                    ProcId::PRIMARY
                };
                *flag = !*flag;
                proc
            }
        };
        ReleaseDecision::Optional { proc }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkss_core::prelude::*;
    use mkss_sim::prelude::*;

    fn fig1_set() -> TaskSet {
        TaskSet::new(vec![
            Task::from_ms(5, 4, 3, 2, 4).unwrap(),
            Task::from_ms(10, 10, 3, 1, 2).unwrap(),
        ])
        .unwrap()
    }

    fn fig3_set() -> TaskSet {
        TaskSet::new(vec![
            Task::new(
                Time::from_ms(5),
                Time::from_us(2_500),
                Time::from_ms(2),
                2,
                4,
            )
            .unwrap(),
            Task::from_ms(4, 4, 2, 2, 4).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn selective_fig4_energy() {
        let ts = fig3_set();
        let mut p = DynamicPolicy::new(&ts).unwrap();
        let report = simulate(&ts, &mut p, &SimConfig::active_only(Time::from_ms(25)));
        assert!(
            (report.active_energy().units() - 14.0).abs() < 1e-9,
            "expected 14 units, got {} \n{}",
            report.active_energy(),
            report
                .trace
                .as_ref()
                .unwrap()
                .render_gantt_ms(Time::from_ms(25))
        );
        assert!(report.mk_assured());
    }

    #[test]
    fn selective_alternates_processors() {
        let ts = fig3_set();
        let mut p = DynamicPolicy::new(&ts).unwrap();
        let report = simulate(&ts, &mut p, &SimConfig::active_only(Time::from_ms(25)));
        let trace = report.trace.unwrap();
        // Optional copies of τ1 must appear on both processors (Fig. 4:
        // O12 on the primary, then J13 "re-selected" on the spare).
        let procs: std::collections::BTreeSet<ProcId> = trace
            .segments
            .iter()
            .filter(|s| s.kind == CopyKind::Optional && s.job.task == TaskId(0))
            .map(|s| s.proc)
            .collect();
        assert_eq!(procs.len(), 2, "τ1's optional jobs should alternate");
    }

    #[test]
    fn greedy_fig2_variant_energy() {
        // Greedy restricted to FD = 1 on the Fig. 1/2 set reproduces the
        // schedule of Fig. 2: 12 active units (20% below Fig. 1's 15).
        let ts = fig1_set();
        let mut p = DynamicPolicy::with_config(
            "greedy_fd1",
            &ts,
            DynamicConfig {
                selection: SelectionRule::FdExactlyOne,
                placement: OptionalPlacement::PrimaryOnly,
                backup_delay: BackupDelay::Promotion,
            },
        )
        .unwrap();
        let report = simulate(&ts, &mut p, &SimConfig::active_only(Time::from_ms(20)));
        assert!(
            (report.active_energy().units() - 12.0).abs() < 1e-9,
            "expected 12 units, got {}\n{}",
            report.active_energy(),
            report
                .trace
                .as_ref()
                .unwrap()
                .render_gantt_ms(Time::from_ms(20))
        );
        assert!(report.mk_assured());
    }

    #[test]
    fn greedy_executes_excessive_jobs_fig3() {
        // Section III's point: on the Fig. 3 set the greedy scheme burns
        // substantially more energy than the selective one (the paper
        // reports 20 vs 14; our greedy reconstruction lands in the same
        // regime — strictly more than selective).
        let ts = fig3_set();
        let config = SimConfig::active_only(Time::from_ms(25));
        let greedy = simulate(&ts, &mut DynamicPolicy::greedy(&ts).unwrap(), &config);
        let selective = simulate(&ts, &mut DynamicPolicy::new(&ts).unwrap(), &config);
        assert!(greedy.mk_assured());
        assert!(
            greedy.active_energy().units() >= selective.active_energy().units() + 4.0,
            "greedy {} vs selective {}",
            greedy.active_energy(),
            selective.active_energy()
        );
    }

    #[test]
    fn selective_uses_postponement_delays() {
        let ts = TaskSet::new(vec![
            Task::from_ms(10, 10, 3, 2, 3).unwrap(),
            Task::from_ms(15, 15, 8, 1, 2).unwrap(),
        ])
        .unwrap();
        let p = DynamicPolicy::new(&ts).unwrap();
        assert_eq!(p.backup_delays(), &[Time::from_ms(7), Time::from_ms(4)]);
    }

    #[test]
    fn unschedulable_set_rejected() {
        let ts = TaskSet::new(vec![
            Task::from_ms(4, 4, 3, 2, 3).unwrap(),
            Task::from_ms(6, 6, 3, 2, 3).unwrap(),
        ])
        .unwrap();
        assert!(matches!(
            DynamicPolicy::new(&ts),
            Err(BuildPolicyError::Unschedulable { .. })
        ));
        assert!(matches!(
            DynamicPolicy::greedy(&ts),
            Err(BuildPolicyError::Unschedulable { .. })
        ));
    }

    #[test]
    fn selection_rules() {
        assert!(SelectionRule::FdExactlyOne.selects(1));
        assert!(!SelectionRule::FdExactlyOne.selects(2));
        assert!(SelectionRule::FdAtMost(2).selects(1));
        assert!(SelectionRule::FdAtMost(2).selects(2));
        assert!(!SelectionRule::FdAtMost(2).selects(3));
        assert!(SelectionRule::All.selects(7));
    }

    #[test]
    fn selective_beats_dp_on_fig1_set() {
        let ts = fig1_set();
        let config = SimConfig::active_only(Time::from_ms(20));
        let dp = simulate(&ts, &mut crate::MkssDp::new(&ts).unwrap(), &config);
        let sel = simulate(&ts, &mut DynamicPolicy::new(&ts).unwrap(), &config);
        assert!(sel.mk_assured());
        assert!(
            sel.active_energy().units() < dp.active_energy().units(),
            "selective {} vs dp {}",
            sel.active_energy(),
            dp.active_energy()
        );
    }

    #[test]
    fn spare_only_placement_puts_optionals_on_the_spare() {
        let ts = fig3_set();
        let mut p = DynamicPolicy::with_config(
            "spare_only",
            &ts,
            DynamicConfig {
                placement: OptionalPlacement::SpareOnly,
                ..DynamicConfig::selective()
            },
        )
        .unwrap();
        assert_eq!(p.config().placement, OptionalPlacement::SpareOnly);
        let report = simulate(&ts, &mut p, &SimConfig::active_only(Time::from_ms(25)));
        assert!(report.mk_assured());
        let trace = report.trace.unwrap();
        assert!(trace
            .segments
            .iter()
            .filter(|s| s.kind == CopyKind::Optional)
            .all(|s| s.proc == ProcId::SPARE));
    }

    #[test]
    fn selective_mk_holds_under_permanent_fault_any_time() {
        let ts = fig1_set();
        for at_ms in 0..20 {
            for proc in ProcId::ALL {
                let config = SimConfig::builder()
                    .horizon_ms(20)
                    .active_only()
                    .faults(FaultConfig::permanent(proc, Time::from_ms(at_ms)))
                    .build();
                let mut p = DynamicPolicy::new(&ts).unwrap();
                let report = simulate(&ts, &mut p, &config);
                assert!(
                    report.mk_assured(),
                    "violation with {proc} fault at {at_ms}ms:\n{}",
                    report.trace.unwrap().render_gantt_ms(Time::from_ms(20))
                );
            }
        }
    }
}
