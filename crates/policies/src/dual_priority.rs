//! `MKSS_DP` — static patterns with dual-priority backup procrastination
//! and preference-oriented task placement (Section V's second approach,
//! after Haque et al. \[7\] and Begam et al. \[8\], without DVS).
//!
//! Mandatory jobs are chosen by the static deeply-red pattern. Under the
//! *preference-oriented* placement every task has its main copy on one
//! processor and its backup on the other, alternating by priority index
//! (Fig. 1 runs main τ1 + backup τ′2 on the primary and backup τ′1 +
//! main τ2 on the spare). Each backup is procrastinated by its task's
//! promotion time `Y_i = D_i − R_i` (Eq. 2), so a main job that finishes
//! early cancels a backup that has barely started.

use mkss_analysis::postpone::{job_postponement, postponement_intervals, PostponeConfig};
use mkss_analysis::rta::InterferenceModel;
use mkss_core::mk::Pattern;
use mkss_core::task::TaskSet;
use mkss_core::time::Time;
use mkss_sim::policy::{Policy, ReleaseCtx, ReleaseDecision};
use mkss_sim::proc::ProcId;

use crate::error::BuildPolicyError;

/// Placement of the main copies across the two processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
// mkss-lint: allow(pub-api-hygiene) — closed variant set: the paper's two placement strategies; the CLI matches exhaustively to name them
pub enum MainPlacement {
    /// Preference-oriented: mains alternate between the processors by
    /// priority index (τ1 → primary, τ2 → spare, τ3 → primary, …), as in
    /// Fig. 1. Balances the load and lets each processor hold exactly one
    /// copy of every task.
    #[default]
    PreferenceOriented,
    /// All mains on the primary, all backups on the spare (the placement
    /// of Haque et al. \[7\]).
    MainsOnPrimary,
}

/// How the backups of the static schemes are procrastinated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
// mkss-lint: allow(pub-api-hygiene) — closed variant set: the two procrastination modes of the static baselines [7, 8]; matched exhaustively
pub enum StaticBackupDelay {
    /// Promotion times from the hard real-time all-jobs analysis of the
    /// baselines [7, 8]; `Y_i = 0` where that analysis diverges. The
    /// paper's `MKSS_DP`.
    #[default]
    PromotionAllJobs,
    /// Promotion times from the (m,k)-aware mandatory-only analysis — a
    /// stronger baseline than the paper's.
    PromotionMandatory,
    /// The task-level postponement intervals `θ_i` (Defs. 2–5).
    Postponement,
    /// Per-job postponement `θ_ij` (Def. 4 without Def. 5's per-task
    /// minimum) — an extension beyond the paper. Sound **only** for
    /// static patterns, where every mandatory job sits at its analyzed
    /// position; the dynamic schemes must use the task-level minimum
    /// (see [`crate::BackupDelay::Postponement`]).
    JobPostponement,
}

/// Resolved static-scheme delay lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
enum StaticDelayTable {
    PerTask(Vec<Time>),
    PerJob(Box<mkss_analysis::postpone::JobPostponement>),
}

/// The dual-priority standby-sparing scheme (`MKSS_DP`).
///
/// # Examples
///
/// ```
/// use mkss_core::prelude::*;
/// use mkss_policies::MkssDp;
/// use mkss_sim::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ts = TaskSet::new(vec![
///     Task::from_ms(5, 4, 3, 2, 4)?,
///     Task::from_ms(10, 10, 3, 1, 2)?,
/// ])?;
/// let mut dp = MkssDp::new(&ts)?;
/// let report = simulate(&ts, &mut dp, &SimConfig::active_only(Time::from_ms(20)));
/// // The paper's Fig. 1: 15 active energy units in [0, 20).
/// assert!((report.active_energy().units() - 15.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MkssDp {
    pattern: Pattern,
    placement: MainPlacement,
    delay_model: StaticBackupDelay,
    delay: StaticDelayTable,
    /// Task-level view of the delays (promotion times for the promotion
    /// models; θ for the postponement models).
    promotion: Vec<Time>,
}

impl MkssDp {
    /// Builds the scheme with preference-oriented placement (the
    /// evaluation's `MKSS_DP`).
    ///
    /// # Errors
    ///
    /// Returns [`BuildPolicyError::Unschedulable`] if the set fails the
    /// mandatory-only response-time analysis (no promotion times exist).
    pub fn new(ts: &TaskSet) -> Result<Self, BuildPolicyError> {
        Self::with_placement(ts, MainPlacement::PreferenceOriented)
    }

    /// Builds the scheme with an explicit main-copy placement.
    ///
    /// The promotion times are computed exactly as the hard real-time
    /// dual-priority baselines [7, 8] do — with **every** job of every
    /// higher-priority task interfering — because those schemes predate
    /// the (m,k) model and know nothing about optional jobs. On (m,k)
    /// workloads the all-jobs analysis frequently fails (the full
    /// utilization exceeds 1 even when the mandatory load is light); a
    /// task whose all-jobs response time diverges gets `Y_i = 0`, i.e.
    /// its backups are not procrastinated at all. This is the
    /// inefficiency the paper's selective scheme exploits. (Delaying by
    /// the all-jobs `Y_i` is sound for the mandatory-only spare workload
    /// since the all-jobs response time dominates the mandatory-only
    /// one.)
    ///
    /// # Errors
    ///
    /// Same as [`MkssDp::new`].
    pub fn with_placement(
        ts: &TaskSet,
        placement: MainPlacement,
    ) -> Result<Self, BuildPolicyError> {
        Self::with_options(ts, placement, StaticBackupDelay::PromotionAllJobs)
    }

    /// Builds the scheme with explicit placement and backup-delay model.
    ///
    /// # Errors
    ///
    /// Same as [`MkssDp::new`].
    pub fn with_options(
        ts: &TaskSet,
        placement: MainPlacement,
        delay_model: StaticBackupDelay,
    ) -> Result<Self, BuildPolicyError> {
        let pattern = Pattern::DeeplyRed;
        if placement == MainPlacement::PreferenceOriented
            && matches!(
                delay_model,
                StaticBackupDelay::Postponement | StaticBackupDelay::JobPostponement
            )
        {
            // Defs. 2–5 analyze a spare that runs postponed backups only;
            // preference-oriented placement would mix offset-0 mains in.
            return Err(BuildPolicyError::PostponementNeedsMainsOnPrimary);
        }
        // The standby-sparing guarantee needs the mandatory jobs to be
        // schedulable (Theorem 1's premise); gate on that.
        let report = mkss_analysis::rta::analyze(ts, InterferenceModel::MandatoryOnly(pattern));
        if !report.schedulable() {
            return Err(first_unschedulable(ts, pattern));
        }
        let postpone_config = PostponeConfig {
            pattern,
            ..PostponeConfig::default()
        };
        let (delay, promotion) = match delay_model {
            StaticBackupDelay::PromotionAllJobs => {
                let all_jobs = mkss_analysis::rta::analyze(ts, InterferenceModel::AllJobs);
                let y: Vec<Time> = ts
                    .ids()
                    .map(|id| match all_jobs.response_time(id) {
                        Some(r) => ts.task(id).deadline() - r,
                        None => Time::ZERO,
                    })
                    .collect();
                (StaticDelayTable::PerTask(y.clone()), y)
            }
            StaticBackupDelay::PromotionMandatory => {
                // `response_time` is None only for unschedulable tasks;
                // the gate above makes that unreachable, but propagating
                // keeps this arm correct even if the gate moves.
                let y = ts
                    .ids()
                    .map(|id| {
                        report
                            .response_time(id)
                            .map(|r| ts.task(id).deadline() - r)
                            .ok_or_else(|| first_unschedulable(ts, pattern))
                    })
                    .collect::<Result<Vec<Time>, BuildPolicyError>>()?;
                (StaticDelayTable::PerTask(y.clone()), y)
            }
            StaticBackupDelay::Postponement => {
                let theta = postponement_intervals(ts, postpone_config)
                    .map_err(|_| first_unschedulable(ts, pattern))?
                    .theta;
                (StaticDelayTable::PerTask(theta.clone()), theta)
            }
            StaticBackupDelay::JobPostponement => {
                let jp = job_postponement(ts, postpone_config)
                    .map_err(|_| first_unschedulable(ts, pattern))?;
                let theta = jp.task_level.theta.clone();
                (StaticDelayTable::PerJob(Box::new(jp)), theta)
            }
        };
        Ok(MkssDp {
            pattern,
            placement,
            delay_model,
            delay,
            promotion,
        })
    }

    /// The promotion times `Y_i` in use.
    pub fn promotion(&self) -> &[Time] {
        &self.promotion
    }
}

/// Identifies the first unschedulable task for the error value.
pub(crate) fn first_unschedulable(ts: &TaskSet, pattern: Pattern) -> BuildPolicyError {
    let report = mkss_analysis::rta::analyze(ts, InterferenceModel::MandatoryOnly(pattern));
    let task = report
        .tasks
        .iter()
        .find(|t| t.response_time.is_none())
        .map(|t| t.task)
        .unwrap_or(mkss_core::task::TaskId(0));
    BuildPolicyError::Unschedulable { task }
}

impl Policy for MkssDp {
    fn name(&self) -> &str {
        match (self.placement, self.delay_model) {
            (MainPlacement::PreferenceOriented, StaticBackupDelay::PromotionAllJobs) => "MKSS_DP",
            (MainPlacement::MainsOnPrimary, StaticBackupDelay::PromotionAllJobs) => {
                "MKSS_DP_primary"
            }
            (_, StaticBackupDelay::PromotionMandatory) => "MKSS_DP_ymand",
            (_, StaticBackupDelay::Postponement) => "MKSS_DP_theta",
            (_, StaticBackupDelay::JobPostponement) => "MKSS_DP_jobtheta",
        }
    }

    fn on_release(&mut self, ctx: &ReleaseCtx<'_>) -> ReleaseDecision {
        let mk = ctx.history.constraint();
        if !self.pattern.is_mandatory(mk, ctx.job_index) {
            return ReleaseDecision::Skip;
        }
        let main_proc = match self.placement {
            MainPlacement::PreferenceOriented => {
                if ctx.task.0.is_multiple_of(2) {
                    ProcId::PRIMARY
                } else {
                    ProcId::SPARE
                }
            }
            MainPlacement::MainsOnPrimary => ProcId::PRIMARY,
        };
        let backup_delay = match &self.delay {
            StaticDelayTable::PerTask(v) => v[ctx.task.0],
            StaticDelayTable::PerJob(jp) => jp.delay_of(ctx.task, ctx.job_index),
        };
        ReleaseDecision::Mandatory {
            main_proc,
            backup_delay,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkss_core::prelude::*;
    use mkss_sim::prelude::*;

    fn fig1_set() -> TaskSet {
        TaskSet::new(vec![
            Task::from_ms(5, 4, 3, 2, 4).unwrap(),
            Task::from_ms(10, 10, 3, 1, 2).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn fig1_exact_schedule() {
        let ts = fig1_set();
        let mut dp = MkssDp::new(&ts).unwrap();
        assert_eq!(dp.promotion(), &[Time::from_ms(1), Time::from_ms(1)]);
        let report = simulate(&ts, &mut dp, &SimConfig::active_only(Time::from_ms(20)));
        assert!((report.active_energy().units() - 15.0).abs() < 1e-9);
        assert!(report.mk_assured());

        // Verify the schedule structure of Fig. 1 via the trace:
        let trace = report.trace.as_ref().unwrap();
        // Primary: J11 [0,3), J'21 [3,5) canceled, J12 [5,8).
        let primary: Vec<_> = trace.segments_on(ProcId::PRIMARY).collect();
        assert_eq!(primary[0].job, JobId::new(TaskId(0), 1));
        assert_eq!(
            (primary[0].start, primary[0].end),
            (Time::ZERO, Time::from_ms(3))
        );
        assert_eq!(primary[1].kind, CopyKind::Backup);
        assert_eq!(primary[1].ended, SegmentEnd::Canceled);
        assert_eq!(
            (primary[1].start, primary[1].end),
            (Time::from_ms(3), Time::from_ms(5))
        );
        // Spare: J21 [0,1), J'11 [1,3) canceled, J21 [3,5), J'12 [6,8) canceled.
        let spare: Vec<_> = trace.segments_on(ProcId::SPARE).collect();
        assert_eq!(spare[0].job, JobId::new(TaskId(1), 1));
        assert_eq!(
            (spare[0].start, spare[0].end),
            (Time::ZERO, Time::from_ms(1))
        );
        assert_eq!(spare[1].kind, CopyKind::Backup);
        assert_eq!(spare[1].ended, SegmentEnd::Canceled);
        assert_eq!(spare[3].kind, CopyKind::Backup);
        assert_eq!(
            (spare[3].start, spare[3].end),
            (Time::from_ms(6), Time::from_ms(8))
        );
    }

    #[test]
    fn beats_static_reference() {
        let ts = fig1_set();
        let config = SimConfig::active_only(Time::from_ms(20));
        let st = simulate(&ts, &mut crate::MkssSt::new(), &config);
        let dp = simulate(&ts, &mut MkssDp::new(&ts).unwrap(), &config);
        assert!(dp.active_energy().units() < st.active_energy().units());
    }

    #[test]
    fn mains_on_primary_variant() {
        let ts = fig1_set();
        let mut dp = MkssDp::with_placement(&ts, MainPlacement::MainsOnPrimary).unwrap();
        assert_eq!(dp.name(), "MKSS_DP_primary");
        let report = simulate(&ts, &mut dp, &SimConfig::active_only(Time::from_ms(20)));
        assert!(report.mk_assured());
        // All mains on primary → primary busy = 9ms of mains.
        let trace = report.trace.as_ref().unwrap();
        assert!(trace
            .segments_on(ProcId::PRIMARY)
            .all(|s| s.kind == CopyKind::Main));
        assert!(trace
            .segments_on(ProcId::SPARE)
            .all(|s| s.kind == CopyKind::Backup));
    }

    #[test]
    fn unschedulable_set_rejected() {
        let ts = TaskSet::new(vec![
            Task::from_ms(4, 4, 3, 2, 3).unwrap(),
            Task::from_ms(6, 6, 3, 2, 3).unwrap(),
        ])
        .unwrap();
        assert_eq!(
            MkssDp::new(&ts),
            Err(BuildPolicyError::Unschedulable { task: TaskId(1) })
        );
    }

    #[test]
    fn mk_holds_under_permanent_fault_any_time() {
        let ts = fig1_set();
        for at_ms in 0..20 {
            for proc in ProcId::ALL {
                let config = SimConfig::builder()
                    .horizon_ms(20)
                    .active_only()
                    .faults(FaultConfig::permanent(proc, Time::from_ms(at_ms)))
                    .build();
                let mut dp = MkssDp::new(&ts).unwrap();
                let report = simulate(&ts, &mut dp, &config);
                assert!(
                    report.mk_assured(),
                    "violation with {proc} fault at {at_ms}ms:\n{}",
                    report.trace.unwrap().render_gantt_ms(Time::from_ms(20))
                );
            }
        }
    }
}
