//! # mkss-policies
//!
//! The scheduling schemes evaluated in *Niu & Zhu, DATE 2020*:
//!
//! * [`MkssSt`] — static deeply-red patterns, concurrent main/backup
//!   execution (the energy reference);
//! * [`MkssDp`] — static patterns with preference-oriented placement and
//!   dual-priority backup procrastination by the promotion times
//!   `Y_i = D_i − R_i` (after Haque et al. and Begam et al., no DVS);
//! * [`MkssSelective`] — the paper's contribution (Algorithm 1):
//!   dynamic patterns via flexibility degrees, selective execution of
//!   FD = 1 optional jobs alternating across both processors, and backup
//!   release postponement by the inspecting-point intervals `θ_i`;
//! * [`DynamicPolicy`] with a custom [`DynamicConfig`] — the greedy
//!   strawman of Section III and the ablation variants.
//!
//! All schemes implement the [`mkss_sim::policy::Policy`] trait and run on
//! the shared [`mkss_sim`] engine.
//!
//! ## Example
//!
//! ```
//! use mkss_core::prelude::*;
//! use mkss_policies::{MkssDp, MkssSelective, MkssSt};
//! use mkss_sim::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ts = TaskSet::new(vec![
//!     Task::from_ms(5, 4, 3, 2, 4)?,
//!     Task::from_ms(10, 10, 3, 1, 2)?,
//! ])?;
//! let config = SimConfig::active_only(Time::from_ms(20));
//! let st = simulate(&ts, &mut MkssSt::new(), &config);
//! let dp = simulate(&ts, &mut MkssDp::new(&ts)?, &config);
//! let sel = simulate(&ts, &mut MkssSelective::new(&ts)?, &config);
//! assert!(sel.active_energy().units() < dp.active_energy().units());
//! assert!(dp.active_energy().units() < st.active_energy().units());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dual_priority;
pub mod dvs;
pub mod dynamic;
pub mod error;
pub mod registry;
pub mod static_pattern;

pub use dual_priority::{MainPlacement, MkssDp, StaticBackupDelay};
pub use dvs::MkssDpDvs;
pub use dynamic::{
    BackupDelay, DynamicConfig, DynamicPolicy, MkssSelective, OptionalPlacement, SelectionRule,
};
pub use error::BuildPolicyError;
pub use registry::{BuildOptions, ParsePolicyKindError, PolicyKind};
pub use static_pattern::{MkssSt, MkssStRotated};
