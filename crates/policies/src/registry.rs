//! A small factory enumerating every available scheme, used by the
//! benchmark harness and the examples to build policies by name.

use mkss_core::task::TaskSet;
use mkss_sim::policy::Policy;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

use crate::dual_priority::{MainPlacement, MkssDp, StaticBackupDelay};
use crate::dynamic::{BackupDelay, DynamicConfig, DynamicPolicy, OptionalPlacement, SelectionRule};
use crate::error::BuildPolicyError;
use crate::static_pattern::MkssSt;

/// Every scheme the crate can build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum PolicyKind {
    /// [`MkssSt`]: static patterns, concurrent copies (the reference).
    Static,
    /// [`MkssDp`]: preference-oriented dual-priority procrastination.
    DualPriority,
    /// [`MkssDp`] with all mains on the primary (Haque-style placement).
    DualPriorityPrimary,
    /// [`DynamicPolicy::greedy`]: all optional jobs, primary only.
    Greedy,
    /// The paper's selective scheme (Algorithm 1).
    Selective,
    /// Selective without backup postponement (promotion times only) —
    /// ablation for the θ analysis.
    SelectiveNoPostpone,
    /// Selective with all optional jobs on the primary — ablation for the
    /// alternating placement.
    SelectivePrimaryOnly,
    /// Selective admitting optional jobs with flexibility degree ≤ 2 —
    /// ablation for the FD = 1 selection rule.
    SelectiveFd2,
    /// Selective admitting optional jobs with flexibility degree ≤ 3.
    SelectiveFd3,
    /// [`MkssSt`] with the evenly-distributed (E-)pattern instead of the
    /// deeply-red one — ablation for the static pattern shape.
    StaticEven,
    /// [`MkssDp`] with task-level θ-postponed backups instead of
    /// promotion times — ablation for the postponement analysis on
    /// static patterns.
    DualPriorityTheta,
    /// [`MkssDp`] with per-job θ_ij-postponed backups (an extension
    /// beyond the paper; sound for static patterns only).
    DualPriorityJobTheta,
    /// [`crate::MkssDpDvs`]: DVS-slowed mains with full-speed θ-postponed
    /// backups (the extension the paper's `MKSS_DP` explicitly omits).
    DvsDualPriority,
}

/// Options shared by every scheme [`PolicyKind::build`] can construct.
///
/// `#[non_exhaustive]` so new knobs can be added without breaking the
/// registry's callers; start from [`BuildOptions::default`] and set the
/// fields you need.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub struct BuildOptions {
    /// Fixed DVS speed (permil of full speed, `1..=1000`) for schemes
    /// that slow their mains ([`PolicyKind::DvsDualPriority`]); `None`
    /// searches for the lowest feasible speed. Full-speed schemes
    /// ignore it.
    pub dvs_speed_permil: Option<u32>,
}

impl BuildOptions {
    /// The defaults: every scheme built exactly as the paper describes.
    pub fn new() -> Self {
        BuildOptions::default()
    }

    /// Defaults with a fixed DVS speed for the DVS schemes.
    pub fn with_dvs_speed(speed_permil: u32) -> Self {
        BuildOptions {
            dvs_speed_permil: Some(speed_permil),
            ..BuildOptions::default()
        }
    }
}

impl PolicyKind {
    /// All kinds, in a stable presentation order.
    pub const ALL: [PolicyKind; 13] = [
        PolicyKind::Static,
        PolicyKind::DualPriority,
        PolicyKind::DualPriorityPrimary,
        PolicyKind::Greedy,
        PolicyKind::Selective,
        PolicyKind::SelectiveNoPostpone,
        PolicyKind::SelectivePrimaryOnly,
        PolicyKind::SelectiveFd2,
        PolicyKind::SelectiveFd3,
        PolicyKind::StaticEven,
        PolicyKind::DualPriorityTheta,
        PolicyKind::DualPriorityJobTheta,
        PolicyKind::DvsDualPriority,
    ];

    /// The three schemes compared in the paper's Figure 6.
    pub const PAPER: [PolicyKind; 3] = [
        PolicyKind::Static,
        PolicyKind::DualPriority,
        PolicyKind::Selective,
    ];

    /// Builds the policy for `ts` — the single entry point every
    /// harness, example, and test goes through.
    ///
    /// # Errors
    ///
    /// Returns [`BuildPolicyError::Unschedulable`] for sets failing the
    /// R-pattern analysis (all schemes except [`PolicyKind::Static`]
    /// need it).
    ///
    /// # Examples
    ///
    /// ```
    /// use mkss_core::prelude::*;
    /// use mkss_policies::{BuildOptions, PolicyKind};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let ts = TaskSet::new(vec![Task::from_ms(10, 10, 2, 1, 2)?])?;
    /// let policy = PolicyKind::Selective.build(&ts, &BuildOptions::default())?;
    /// assert_eq!(policy.name(), "MKSS_selective");
    /// # Ok(())
    /// # }
    /// ```
    pub fn build(
        self,
        ts: &TaskSet,
        opts: &BuildOptions,
    ) -> Result<Box<dyn Policy>, BuildPolicyError> {
        Ok(match self {
            PolicyKind::Static => Box::new(MkssSt::new()),
            PolicyKind::StaticEven => Box::new(MkssSt::with_pattern(
                mkss_core::mk::Pattern::EvenlyDistributed,
            )),
            PolicyKind::DualPriority => Box::new(MkssDp::new(ts)?),
            PolicyKind::DualPriorityPrimary => {
                Box::new(MkssDp::with_placement(ts, MainPlacement::MainsOnPrimary)?)
            }
            PolicyKind::Greedy => Box::new(DynamicPolicy::greedy(ts)?),
            PolicyKind::Selective => Box::new(DynamicPolicy::new(ts)?),
            PolicyKind::SelectiveNoPostpone => Box::new(DynamicPolicy::with_config(
                "MKSS_selective_nopost",
                ts,
                DynamicConfig {
                    backup_delay: BackupDelay::Promotion,
                    ..DynamicConfig::selective()
                },
            )?),
            PolicyKind::SelectivePrimaryOnly => Box::new(DynamicPolicy::with_config(
                "MKSS_selective_primary",
                ts,
                DynamicConfig {
                    placement: OptionalPlacement::PrimaryOnly,
                    ..DynamicConfig::selective()
                },
            )?),
            PolicyKind::SelectiveFd2 => Box::new(DynamicPolicy::with_config(
                "MKSS_selective_fd2",
                ts,
                DynamicConfig {
                    selection: SelectionRule::FdAtMost(2),
                    ..DynamicConfig::selective()
                },
            )?),
            PolicyKind::SelectiveFd3 => Box::new(DynamicPolicy::with_config(
                "MKSS_selective_fd3",
                ts,
                DynamicConfig {
                    selection: SelectionRule::FdAtMost(3),
                    ..DynamicConfig::selective()
                },
            )?),
            PolicyKind::DualPriorityTheta => Box::new(MkssDp::with_options(
                ts,
                MainPlacement::MainsOnPrimary,
                StaticBackupDelay::Postponement,
            )?),
            PolicyKind::DualPriorityJobTheta => Box::new(MkssDp::with_options(
                ts,
                MainPlacement::MainsOnPrimary,
                StaticBackupDelay::JobPostponement,
            )?),
            PolicyKind::DvsDualPriority => match opts.dvs_speed_permil {
                Some(speed) => Box::new(crate::MkssDpDvs::with_speed(ts, speed)?),
                None => Box::new(crate::MkssDpDvs::new(ts)?),
            },
        })
    }

    /// Stable identifier (also accepted by [`FromStr`]).
    pub fn id(self) -> &'static str {
        match self {
            PolicyKind::Static => "st",
            PolicyKind::DualPriority => "dp",
            PolicyKind::DualPriorityPrimary => "dp-primary",
            PolicyKind::Greedy => "greedy",
            PolicyKind::Selective => "selective",
            PolicyKind::SelectiveNoPostpone => "selective-nopost",
            PolicyKind::SelectivePrimaryOnly => "selective-primary",
            PolicyKind::SelectiveFd2 => "selective-fd2",
            PolicyKind::SelectiveFd3 => "selective-fd3",
            PolicyKind::StaticEven => "st-even",
            PolicyKind::DualPriorityTheta => "dp-theta",
            PolicyKind::DualPriorityJobTheta => "dp-jobtheta",
            PolicyKind::DvsDualPriority => "dp-dvs",
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// Error parsing a policy kind from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct ParsePolicyKindError {
    input: String,
}

impl fmt::Display for ParsePolicyKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown policy '{}'; expected one of: st, dp, dp-primary, greedy, selective, selective-nopost, selective-primary",
            self.input
        )
    }
}

impl std::error::Error for ParsePolicyKindError {}

impl FromStr for PolicyKind {
    type Err = ParsePolicyKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PolicyKind::ALL
            .into_iter()
            .find(|k| k.id() == s)
            .ok_or_else(|| ParsePolicyKindError {
                input: s.to_owned(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkss_core::task::Task;

    fn set() -> TaskSet {
        TaskSet::new(vec![
            Task::from_ms(5, 4, 3, 2, 4).unwrap(),
            Task::from_ms(10, 10, 3, 1, 2).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn every_kind_builds() {
        let ts = set();
        for kind in PolicyKind::ALL {
            let p = kind.build(&ts, &BuildOptions::default()).unwrap();
            assert!(!p.name().is_empty(), "{kind}");
        }
    }

    #[test]
    fn dvs_speed_option_pins_the_speed() {
        let ts = set();
        let opts = BuildOptions::with_dvs_speed(1000);
        let p = PolicyKind::DvsDualPriority.build(&ts, &opts).unwrap();
        // At full speed the DVS scheme degenerates to the θ-postponed
        // dual-priority scheme; the name still identifies the family.
        assert!(p.name().contains("DVS"), "name: {}", p.name());
        // Full-speed schemes ignore the knob entirely.
        let st = PolicyKind::Static.build(&ts, &opts).unwrap();
        assert_eq!(st.name(), "MKSS_ST");
    }

    #[test]
    fn roundtrip_ids() {
        for kind in PolicyKind::ALL {
            assert_eq!(kind.id().parse::<PolicyKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.id());
        }
        let err = "nope".parse::<PolicyKind>().unwrap_err();
        assert!(err.to_string().contains("unknown policy 'nope'"));
    }

    #[test]
    fn paper_subset() {
        assert_eq!(PolicyKind::PAPER.len(), 3);
        assert_eq!(PolicyKind::PAPER[0], PolicyKind::Static);
    }
}
