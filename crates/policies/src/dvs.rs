//! DVS-enabled standby-sparing (`MKSS_DP_DVS`) — the extension the paper
//! explicitly leaves out of its `MKSS_DP` baseline ("but without applying
//! DVS"), modeled on the energy-aware standby-sparing of Haque et
//! al. \[7\] / Ejlali et al. \[5\]:
//!
//! * main copies run on the primary at a reduced DVS speed `s ≤ 1`,
//!   drawing cubically less dynamic power (`s³`) while taking `1/s`
//!   longer — net dynamic energy `s²` per unit of work;
//! * backup copies run on the spare **at full speed** with θ-postponed
//!   releases, preserving the recovery capacity: whenever a (slowed)
//!   main fails, its full-speed backup still meets the deadline;
//! * the slowdown is the lowest speed at which the mandatory-only
//!   response-time analysis of the *scaled* WCETs still passes on the
//!   primary.
//!
//! The classic tension is visible in the ablations: slowing the mains
//! saves `1 − s²` on their energy but delays their completion, so
//! θ-postponed backups overlap more before cancellation.
//!
//! Reliability note: the simulator models the *exposure* effect of DVS on
//! transient faults (a stretched execution accumulates proportionally
//! more Poisson arrivals); the additional voltage-dependent fault-rate
//! increase studied by Zhu et al. (the paper's reference \[1\]) is not
//! modeled — backups run at full speed precisely so that recovery is
//! unaffected either way.

use mkss_analysis::postpone::{postponement_intervals, PostponeConfig};
use mkss_analysis::rta::{analyze, InterferenceModel};
use mkss_core::mk::Pattern;
use mkss_core::task::{Task, TaskSet};
use mkss_core::time::Time;
use mkss_sim::policy::{Policy, ReleaseCtx, ReleaseDecision};
use mkss_sim::proc::ProcId;

use crate::dual_priority::first_unschedulable;
use crate::error::BuildPolicyError;

/// Lowest DVS speed the search considers (25% of full speed — a typical
/// minimum operating point).
pub const MIN_SPEED_PERMIL: u32 = 250;

/// Search granularity of the slowdown (2.5% steps).
pub const SPEED_STEP_PERMIL: u32 = 25;

/// The DVS-enabled static standby-sparing scheme.
///
/// # Examples
///
/// ```
/// use mkss_core::prelude::*;
/// use mkss_policies::MkssDpDvs;
/// use mkss_sim::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A light set: the mains can be slowed far below full speed.
/// let ts = TaskSet::new(vec![
///     Task::from_ms(20, 20, 2, 1, 2)?,
///     Task::from_ms(30, 30, 3, 1, 3)?,
/// ])?;
/// let mut dvs = MkssDpDvs::new(&ts)?;
/// assert!(dvs.speed_permil() < 1000);
/// let report = simulate(&ts, &mut dvs, &SimConfig::active_only(Time::from_ms(120)));
/// assert!(report.mk_assured());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MkssDpDvs {
    pattern: Pattern,
    speed_permil: u32,
    backup_delay: Vec<Time>,
}

/// Scales every WCET by `1000/speed_permil` (rounding up), failing where
/// a stretched WCET no longer fits its deadline.
fn scaled_task_set(ts: &TaskSet, speed_permil: u32) -> Option<TaskSet> {
    let tasks: Option<Vec<Task>> = ts
        .iter()
        .map(|(_, t)| {
            let stretched =
                Time::from_ticks((t.wcet().ticks() * 1000).div_ceil(u64::from(speed_permil)));
            Task::with_constraint(t.period(), t.deadline(), stretched, t.mk()).ok()
        })
        .collect();
    TaskSet::new(tasks?).ok()
}

impl MkssDpDvs {
    /// Builds the scheme with the lowest feasible main-copy speed.
    ///
    /// # Errors
    ///
    /// Returns [`BuildPolicyError::Unschedulable`] if the set is not
    /// R-pattern schedulable even at full speed.
    pub fn new(ts: &TaskSet) -> Result<Self, BuildPolicyError> {
        let mut best = 1000;
        let mut speed = 1000;
        loop {
            if speed < MIN_SPEED_PERMIL {
                break;
            }
            let feasible = scaled_task_set(ts, speed)
                .map(|scaled| {
                    analyze(
                        &scaled,
                        InterferenceModel::MandatoryOnly(Pattern::DeeplyRed),
                    )
                    .schedulable()
                })
                .unwrap_or(false);
            if feasible {
                best = speed;
                speed -= SPEED_STEP_PERMIL;
            } else {
                break;
            }
        }
        if best == 1000 {
            // Validate full speed explicitly so an unschedulable set errors.
            let report = analyze(ts, InterferenceModel::MandatoryOnly(Pattern::DeeplyRed));
            if !report.schedulable() {
                return Err(first_unschedulable(ts, Pattern::DeeplyRed));
            }
        }
        Self::with_speed(ts, best)
    }

    /// Builds the scheme with an explicit main-copy speed (permil).
    ///
    /// # Errors
    ///
    /// Returns [`BuildPolicyError::Unschedulable`] if the scaled mains or
    /// the full-speed backups fail their analyses.
    ///
    /// # Panics
    ///
    /// Panics if `speed_permil` is outside `1..=1000`.
    pub fn with_speed(ts: &TaskSet, speed_permil: u32) -> Result<Self, BuildPolicyError> {
        assert!(
            (1..=1000).contains(&speed_permil),
            "speed must be in 1..=1000 permil"
        );
        let pattern = Pattern::DeeplyRed;
        let scaled =
            scaled_task_set(ts, speed_permil).ok_or_else(|| first_unschedulable(ts, pattern))?;
        if !analyze(&scaled, InterferenceModel::MandatoryOnly(pattern)).schedulable() {
            return Err(first_unschedulable(&scaled, pattern));
        }
        // Backups run at full speed on a pure-backup spare: the θ
        // analysis of the *unscaled* set applies (Defs. 2–5).
        let backup_delay = postponement_intervals(
            ts,
            PostponeConfig {
                pattern,
                ..PostponeConfig::default()
            },
        )
        .map(|p| p.theta)
        .map_err(|_| first_unschedulable(ts, pattern))?;
        Ok(MkssDpDvs {
            pattern,
            speed_permil,
            backup_delay,
        })
    }

    /// The selected main-copy speed in permil of full speed.
    pub fn speed_permil(&self) -> u32 {
        self.speed_permil
    }
}

impl Policy for MkssDpDvs {
    fn name(&self) -> &str {
        "MKSS_DP_DVS"
    }

    fn on_release(&mut self, ctx: &ReleaseCtx<'_>) -> ReleaseDecision {
        let mk = ctx.history.constraint();
        if !self.pattern.is_mandatory(mk, ctx.job_index) {
            return ReleaseDecision::Skip;
        }
        ReleaseDecision::MandatoryScaled {
            main_proc: ProcId::PRIMARY,
            backup_delay: self.backup_delay[ctx.task.0],
            main_speed_permil: self.speed_permil,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkss_core::prelude::{Task, TaskSet, Time};
    use mkss_sim::prelude::*;

    fn light_set() -> TaskSet {
        TaskSet::new(vec![
            Task::from_ms(20, 20, 2, 1, 2).unwrap(),
            Task::from_ms(30, 30, 3, 1, 3).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn speed_search_slows_light_sets() {
        let dvs = MkssDpDvs::new(&light_set()).unwrap();
        assert!(dvs.speed_permil() <= 500, "got {}", dvs.speed_permil());
        assert!(dvs.speed_permil() >= MIN_SPEED_PERMIL);
    }

    #[test]
    fn heavy_sets_stay_near_full_speed() {
        let ts = TaskSet::new(vec![
            Task::from_ms(10, 10, 6, 2, 3).unwrap(),
            Task::from_ms(15, 15, 3, 1, 2).unwrap(),
        ])
        .unwrap();
        let dvs = MkssDpDvs::new(&ts).unwrap();
        assert!(dvs.speed_permil() > 700, "got {}", dvs.speed_permil());
    }

    #[test]
    fn unschedulable_rejected() {
        let ts = TaskSet::new(vec![
            Task::from_ms(4, 4, 3, 2, 3).unwrap(),
            Task::from_ms(6, 6, 3, 2, 3).unwrap(),
        ])
        .unwrap();
        assert!(matches!(
            MkssDpDvs::new(&ts),
            Err(BuildPolicyError::Unschedulable { .. })
        ));
    }

    #[test]
    fn dvs_saves_energy_vs_full_speed_dp() {
        let ts = light_set();
        let config = SimConfig::active_only(Time::from_ms(600));
        let mut dvs = MkssDpDvs::new(&ts).unwrap();
        let dvs_report = simulate(&ts, &mut dvs, &config);
        let mut full = MkssDpDvs::with_speed(&ts, 1000).unwrap();
        let full_report = simulate(&ts, &mut full, &config);
        assert!(dvs_report.mk_assured() && full_report.mk_assured());
        assert!(
            dvs_report.active_energy().units() < full_report.active_energy().units(),
            "dvs {} vs full {}",
            dvs_report.active_energy(),
            full_report.active_energy()
        );
    }

    #[test]
    fn energy_scales_quadratically_when_backups_cancel_early() {
        // One light task: backup postponed far enough to never start, so
        // the main's energy dominates: E(s) ≈ C·s² per job.
        let ts = TaskSet::new(vec![Task::from_ms(50, 50, 2, 1, 2).unwrap()]).unwrap();
        let config = SimConfig::active_only(Time::from_ms(500));
        let energy = |permil: u32| {
            let mut p = MkssDpDvs::with_speed(&ts, permil).unwrap();
            simulate(&ts, &mut p, &config).active_energy().units()
        };
        let full = energy(1000);
        let half = energy(500);
        assert!(
            (half - full * 0.25).abs() < full * 0.05,
            "half-speed energy {half} should be ≈ 25% of {full}"
        );
    }

    #[test]
    fn mk_holds_under_permanent_fault_any_time() {
        let ts = light_set();
        for at_ms in (0..120).step_by(7) {
            for proc in ProcId::ALL {
                let config = SimConfig::builder()
                    .horizon_ms(120)
                    .faults(FaultConfig::permanent(proc, Time::from_ms(at_ms)))
                    .build();
                let mut dvs = MkssDpDvs::new(&ts).unwrap();
                let report = simulate(&ts, &mut dvs, &config);
                assert!(
                    report.mk_assured(),
                    "violation with {proc} fault at {at_ms}ms"
                );
            }
        }
    }

    #[test]
    fn slowed_mains_still_meet_deadlines() {
        let ts = light_set();
        let mut dvs = MkssDpDvs::new(&ts).unwrap();
        let config = SimConfig::builder()
            .horizon_ms(600)
            .active_only()
            .record_trace(true)
            .build();
        let report = simulate(&ts, &mut dvs, &config);
        assert_eq!(report.stats.missed, report.stats.optional_skipped);
        assert!(report.mk_assured());
    }
}
