//! `MKSS_ST` — the static reference scheme of the evaluation (Section V).
//!
//! Task sets are partitioned with the static deeply-red pattern; mandatory
//! jobs execute concurrently on both processors (main on the primary,
//! backup on the spare, no procrastination), and optional jobs are never
//! executed. This is the energy *reference* the paper normalizes against.

use mkss_core::mk::Pattern;
use mkss_core::time::Time;
use mkss_sim::policy::{Policy, ReleaseCtx, ReleaseDecision};
use mkss_sim::proc::ProcId;

/// The static standby-sparing scheme (`MKSS_ST`).
///
/// # Examples
///
/// ```
/// use mkss_core::prelude::*;
/// use mkss_policies::MkssSt;
/// use mkss_sim::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ts = TaskSet::new(vec![
///     Task::from_ms(5, 4, 3, 2, 4)?,
///     Task::from_ms(10, 10, 3, 1, 2)?,
/// ])?;
/// let report = simulate(&ts, &mut MkssSt::new(), &SimConfig::active_only(Time::from_ms(20)));
/// assert!(report.mk_assured());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MkssSt {
    pattern: Pattern,
}

impl MkssSt {
    /// Creates the scheme with the deeply-red pattern.
    pub fn new() -> Self {
        MkssSt {
            pattern: Pattern::DeeplyRed,
        }
    }

    /// Creates the scheme with a custom static pattern (for ablations).
    pub fn with_pattern(pattern: Pattern) -> Self {
        MkssSt { pattern }
    }
}

impl Policy for MkssSt {
    fn name(&self) -> &str {
        match self.pattern {
            Pattern::DeeplyRed => "MKSS_ST",
            Pattern::EvenlyDistributed => "MKSS_ST_E",
            _ => "MKSS_ST_custom",
        }
    }

    fn on_release(&mut self, ctx: &ReleaseCtx<'_>) -> ReleaseDecision {
        let mk = ctx.history.constraint();
        if self.pattern.is_mandatory(mk, ctx.job_index) {
            ReleaseDecision::Mandatory {
                main_proc: ProcId::PRIMARY,
                backup_delay: Time::ZERO,
            }
        } else {
            ReleaseDecision::Skip
        }
    }
}

/// The static scheme with per-task *rotated* patterns (Quan & Hu style,
/// the paper's reference \[13\]): identical execution model to [`MkssSt`],
/// but the mandatory positions of each task are cyclically shifted by a
/// per-task offset found by
/// [`mkss_analysis::rotation::find_rotation`]. Rotation de-clusters the
/// synchronous release and rescues task sets the deeply-red pattern
/// cannot schedule.
///
/// # Examples
///
/// ```
/// use mkss_analysis::rotation::{find_rotation, RotationConfig};
/// use mkss_core::prelude::*;
/// use mkss_policies::MkssStRotated;
/// use mkss_sim::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Deeply-red-unschedulable set rescued by rotation.
/// let ts = TaskSet::new(vec![
///     Task::from_ms(4, 4, 2, 2, 3)?,
///     Task::from_ms(6, 6, 3, 1, 2)?,
/// ])?;
/// let assignment = find_rotation(&ts, RotationConfig::default()).expect("searchable");
/// assert!(assignment.schedulable());
/// let mut policy = MkssStRotated::new(assignment.patterns);
/// let report = simulate(&ts, &mut policy, &SimConfig::active_only(ts.hyperperiod()));
/// assert!(report.mk_assured());
/// assert_eq!(report.stats.missed, report.stats.optional_skipped);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MkssStRotated {
    patterns: Vec<mkss_core::mk::RotatedPattern>,
}

impl MkssStRotated {
    /// Creates the scheme from a per-task pattern assignment (one entry
    /// per task, priority order).
    pub fn new(patterns: Vec<mkss_core::mk::RotatedPattern>) -> Self {
        MkssStRotated { patterns }
    }

    /// The pattern assignment in use.
    pub fn patterns(&self) -> &[mkss_core::mk::RotatedPattern] {
        &self.patterns
    }
}

impl Policy for MkssStRotated {
    fn name(&self) -> &str {
        "MKSS_ST_rotated"
    }

    fn on_release(&mut self, ctx: &ReleaseCtx<'_>) -> ReleaseDecision {
        let mk = ctx.history.constraint();
        let pattern = self.patterns[ctx.task.0];
        if pattern.is_mandatory(mk, ctx.job_index) {
            ReleaseDecision::Mandatory {
                main_proc: ProcId::PRIMARY,
                backup_delay: Time::ZERO,
            }
        } else {
            ReleaseDecision::Skip
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkss_core::prelude::*;
    use mkss_sim::prelude::*;

    fn fig1_set() -> TaskSet {
        TaskSet::new(vec![
            Task::from_ms(5, 4, 3, 2, 4).unwrap(),
            Task::from_ms(10, 10, 3, 1, 2).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn reference_energy_on_fig1_set() {
        let report = simulate(
            &fig1_set(),
            &mut MkssSt::new(),
            &SimConfig::active_only(Time::from_ms(20)),
        );
        // Main and backup start together and see identical FP schedules →
        // no cancellation savings: 2 × (3+3+3) = 18 active units.
        assert!((report.active_energy().units() - 18.0).abs() < 1e-9);
        assert!(report.mk_assured());
    }

    #[test]
    fn optional_jobs_never_execute() {
        let report = simulate(
            &fig1_set(),
            &mut MkssSt::new(),
            &SimConfig::active_only(Time::from_ms(20)),
        );
        assert_eq!(report.stats.optional_selected, 0);
        assert_eq!(report.stats.optional_skipped, 3);
    }

    #[test]
    fn mk_holds_under_permanent_fault_any_time() {
        let ts = fig1_set();
        for at_ms in 0..20 {
            for proc in ProcId::ALL {
                let config = SimConfig::builder()
                    .horizon_ms(20)
                    .active_only()
                    .faults(FaultConfig::permanent(proc, Time::from_ms(at_ms)))
                    .build();
                let report = simulate(&ts, &mut MkssSt::new(), &config);
                assert!(
                    report.mk_assured(),
                    "violation with {proc} fault at {at_ms}ms"
                );
            }
        }
    }

    #[test]
    fn e_pattern_variant_also_assures_mk() {
        let ts = fig1_set();
        let mut p = MkssSt::with_pattern(Pattern::EvenlyDistributed);
        let report = simulate(&ts, &mut p, &SimConfig::active_only(Time::from_ms(40)));
        assert!(report.mk_assured());
    }
}
