//! `float-fold-determinism` (MKSS-L011): float addition is not
//! associative, so any float accumulation whose order could ever be
//! refactored (parallel chunking, iterator fusion, reversed ranges)
//! silently breaks the bit-identical-across-`--jobs` guarantee. In
//! non-test library code, float reductions must go through the
//! fixed-order `mkss_core::fold` helpers — one canonical left fold,
//! one place to audit — or carry a reasoned allow explaining why the
//! accumulation order is already pinned (e.g. the simulation engine
//! accumulating energy in event order within a single run).
//!
//! Float-ness is resolved through the item graph: `f64`/`f32` tokens
//! and literals, struct fields whose type is float
//! ([`ItemGraph::float_fields`]), and float newtypes like
//! `Energy(f64)` ([`ItemGraph::float_newtypes`]) — including
//! `self.0 += …` inside an impl of a float newtype.
//!
//! [`ItemGraph::float_fields`]: crate::parser::ItemGraph::float_fields
//! [`ItemGraph::float_newtypes`]: crate::parser::ItemGraph::float_newtypes

use super::{scope, FileCtx, Finding, FLOAT_FOLD_DETERMINISM};
use crate::lexer::TokKind;

const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !scope::in_lib_crate(ctx.path)
        || scope::is_test_source(ctx.path)
        || scope::is_fold_helper(ctx.path)
    {
        return;
    }
    for (sig, open, close) in ctx.items.fn_bodies() {
        if !ctx.live(open) {
            continue; // test-masked fn
        }
        let ret_floaty = return_type_floaty(ctx, sig, open);
        let mut i = open + 1;
        while i < close {
            let t = ctx.tok(i);
            // `a += b` — two glued puncts.
            if t.is_punct('+') && ctx.tok(i + 1).is_punct('=') && t.adjacent(&ctx.tok(i + 1)) {
                let (lo, hi) = stmt_span(ctx, open, close, i);
                if lhs_floaty(ctx, open, lo, i) || span_floaty(ctx, i + 2, hi) {
                    out.push(
                        ctx.finding(
                            t.line,
                            FLOAT_FOLD_DETERMINISM,
                            "float `+=` accumulation outside mkss_core::fold; use the \
                         fixed-order helpers or allow with the reason the order \
                         is pinned"
                                .to_string(),
                        ),
                    );
                }
                i += 2;
                continue;
            }
            // `.sum()` / `.product()` / `.fold(0.0, …)`.
            if t.is_punct('.')
                && matches!(ctx.tok(i + 1).text, "sum" | "product" | "fold")
                && ctx.tok(i + 1).kind == TokKind::Ident
                && ctx.live(i + 1)
            {
                let name = ctx.tok(i + 1).text;
                let (lo, hi) = stmt_span(ctx, open, close, i);
                let stmt_float = span_floaty(ctx, lo, hi);
                let stmt_int = span_has_int_type(ctx, lo, hi);
                let fold_float_seed = name == "fold"
                    && ctx.tok(i + 2).is_punct('(')
                    && ctx.tok(i + 3).is_float_literal();
                let fires = match name {
                    "fold" => fold_float_seed,
                    _ => stmt_float || (ret_floaty && !stmt_int),
                };
                if fires {
                    out.push(ctx.finding(
                        ctx.tok(i + 1).line,
                        FLOAT_FOLD_DETERMINISM,
                        format!(
                            "float `.{name}()` reduction outside mkss_core::fold; \
                             use sum_f64/sum_f64_by or allow with the reason the \
                             order is pinned"
                        ),
                    ));
                }
            }
            i += 1;
        }
    }
}

/// The statement's token span `[lo, hi)` around token `i`: from the
/// previous `;`/`{`/`}` to the next `;` at the same brace depth.
fn stmt_span(ctx: &FileCtx<'_>, open: usize, close: usize, i: usize) -> (usize, usize) {
    let mut lo = i;
    while lo > open + 1 {
        let t = ctx.tok(lo - 1);
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        lo -= 1;
    }
    let mut hi = i;
    let mut depth = 0i32;
    while hi < close {
        let t = ctx.tok(hi);
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            if depth == 0 {
                break;
            }
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 {
            break;
        }
        hi += 1;
    }
    (lo, hi)
}

/// Float evidence anywhere in `[lo, hi)`: an `f64`/`f32` token, a
/// float literal, or a float-newtype name.
fn span_floaty(ctx: &FileCtx<'_>, lo: usize, hi: usize) -> bool {
    (lo..hi).any(|j| {
        let t = ctx.tok(j);
        match t.kind {
            TokKind::Ident => {
                t.text == "f64" || t.text == "f32" || ctx.graph.float_newtypes.contains(t.text)
            }
            TokKind::Literal => t.is_float_literal(),
            _ => false,
        }
    })
}

fn span_has_int_type(ctx: &FileCtx<'_>, lo: usize, hi: usize) -> bool {
    (lo..hi).any(|j| {
        let t = ctx.tok(j);
        t.kind == TokKind::Ident && (INT_TYPES.contains(&t.text) || t.text == "Time")
    })
}

/// Whether the fn's return type (tokens after `->` in the signature)
/// mentions a float or float newtype.
fn return_type_floaty(ctx: &FileCtx<'_>, sig: usize, open: usize) -> bool {
    let mut j = sig;
    while j + 1 < open {
        if ctx.tok(j).is_punct('-')
            && ctx.tok(j + 1).is_punct('>')
            && ctx.tok(j).adjacent(&ctx.tok(j + 1))
        {
            return span_floaty(ctx, j + 2, open);
        }
        j += 1;
    }
    false
}

/// Whether the `+=` left-hand side (tokens `[lo, plus)`) is float:
/// a float field, a tuple index into a float newtype's impl, or a
/// local whose binding shows float evidence.
fn lhs_floaty(ctx: &FileCtx<'_>, body_open: usize, lo: usize, plus: usize) -> bool {
    if plus == lo {
        return false;
    }
    // Direct float evidence in the LHS expression itself.
    if span_floaty(ctx, lo, plus) {
        return true;
    }
    // Find the last path component before the `+=` (skipping a closing
    // index bracket: `self.energy[p] +=` resolves `energy`).
    let mut j = plus;
    if ctx.tok(j - 1).is_punct(']') {
        let mut depth = 0i32;
        while j > lo {
            j -= 1;
            if ctx.tok(j).is_punct(']') {
                depth += 1;
            } else if ctx.tok(j).is_punct('[') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
        }
    }
    let last = ctx.tok(j.saturating_sub(1));
    if last.kind == TokKind::Literal && j >= 2 && ctx.tok(j - 2).is_punct('.') {
        // Tuple index `self.0 +=` — float when the enclosing impl is a
        // float newtype (AddAssign for Energy).
        return enclosing_impl_floaty(ctx, plus);
    }
    if last.kind != TokKind::Ident {
        return false;
    }
    let name = last.text;
    let is_field = j >= 2 && ctx.tok(j - 2).is_punct('.');
    if is_field {
        return ctx.graph.float_fields.contains(name);
    }
    // Plain local: look for its `let` binding earlier in the body and
    // check the rest of that statement for float evidence.
    let mut k = body_open;
    while k < plus {
        if ctx.tok(k).is_ident("let") {
            let mut n = k + 1;
            if ctx.tok(n).is_ident("mut") {
                n += 1;
            }
            if ctx.tok(n).is_ident(name) {
                let (_, hi) = stmt_span(ctx, body_open, plus, n);
                if span_floaty(ctx, n + 1, hi) {
                    return true;
                }
            }
        }
        k += 1;
    }
    false
}

/// Whether the fn containing token `at` sits in an impl of a float
/// newtype.
fn enclosing_impl_floaty(ctx: &FileCtx<'_>, at: usize) -> bool {
    ctx.items
        .items
        .iter()
        .enumerate()
        .filter(|(_, it)| {
            it.kind == crate::parser::ItemKind::Fn
                && it.body.is_some_and(|(o, c)| o <= at && at <= c)
        })
        .filter_map(|(idx, _)| ctx.items.enclosing_impl(idx))
        .any(|im| ctx.graph.float_newtypes.contains(&im.name))
}
