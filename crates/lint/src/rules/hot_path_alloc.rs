//! Rule `hot-path-alloc`: no allocating constructors inside declared
//! hot-path regions.
//!
//! PR 2's guarantee — the steady-state event loop performs zero
//! allocations per event — is enforced at runtime by the counting
//! global allocator in `crates/sim/tests/zero_alloc.rs`. This rule
//! makes the same contract visible at review time: the allocation-free
//! span of `crates/sim/src/engine.rs` is bracketed by
//!
//! ```text
//! // mkss-lint: hot-path begin
//! …
//! // mkss-lint: hot-path end
//! ```
//!
//! and inside such a region every allocating constructor pattern is a
//! finding. `Vec::push` and friends are deliberately *not* flagged:
//! pushing into a workspace-owned buffer only allocates past retained
//! capacity, which is exactly the arena design — the rule targets
//! fresh-allocation sites, the runtime test owns the amortized story.

use super::{FileCtx, Finding, HOT_PATH_ALLOC};
use crate::lexer::DirectiveKind;

/// Macros that always allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];
/// `Type::ctor` pairs that always allocate.
const ALLOC_TYPES: &[&str] = &["Vec", "Box", "String", "Arc", "Rc", "VecDeque"];
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from", "from_utf8", "to_string"];
/// Methods that clone into a fresh allocation.
const ALLOC_METHODS: &[&str] = &["to_vec", "to_owned", "to_string", "collect"];

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    // Resolve the marker comments into inclusive line regions, flagging
    // unbalanced markers (a silently-unclosed region would disable the
    // rule for the rest of the file — or worse, enable it forever).
    let mut regions: Vec<(u32, u32)> = Vec::new();
    let mut open: Option<u32> = None;
    for d in ctx.directives {
        match d.kind {
            DirectiveKind::HotPathBegin => {
                if let Some(begin) = open {
                    out.push(ctx.finding(
                        d.line,
                        HOT_PATH_ALLOC,
                        format!("nested `hot-path begin` (region already open since line {begin})"),
                    ));
                } else {
                    open = Some(d.line);
                }
            }
            DirectiveKind::HotPathEnd => match open.take() {
                Some(begin) => regions.push((begin, d.line)),
                None => out.push(ctx.finding(
                    d.line,
                    HOT_PATH_ALLOC,
                    "`hot-path end` without a matching begin".to_string(),
                )),
            },
            _ => {}
        }
    }
    if let Some(begin) = open {
        out.push(ctx.finding(
            begin,
            HOT_PATH_ALLOC,
            "unclosed `hot-path begin` region".to_string(),
        ));
    }
    if regions.is_empty() {
        return;
    }
    let in_region = |line: u32| regions.iter().any(|&(b, e)| b <= line && line <= e);

    for i in 0..ctx.toks.len() {
        if !ctx.live(i) {
            continue;
        }
        let t = ctx.tok(i);
        if !in_region(t.line) {
            continue;
        }
        let mut hit: Option<String> = None;
        if ALLOC_MACROS.iter().any(|m| t.is_ident(m)) && ctx.tok(i + 1).is_punct('!') {
            hit = Some(format!("{}!", t.text));
        } else if ALLOC_TYPES.iter().any(|ty| t.is_ident(ty))
            && ctx.tok(i + 1).is_punct(':')
            && ctx.tok(i + 2).is_punct(':')
            && ALLOC_CTORS.iter().any(|c| ctx.tok(i + 3).is_ident(c))
        {
            hit = Some(format!("{}::{}", t.text, ctx.tok(i + 3).text));
        } else if ALLOC_METHODS.iter().any(|m| t.is_ident(m))
            && ctx.tok(i.wrapping_sub(1)).is_punct('.')
            && ctx.tok(i + 1).is_punct('(')
        {
            hit = Some(format!(".{}()", t.text));
        }
        if let Some(what) = hit {
            out.push(ctx.finding(
                t.line,
                HOT_PATH_ALLOC,
                format!(
                    "allocating constructor `{what}` inside a hot-path region; \
                     the engine event loop must stay zero-allocation \
                     (see crates/sim/tests/zero_alloc.rs)"
                ),
            ));
        }
    }
}
