//! Rule `vendored-deps-only`: every Cargo.toml dependency must be a
//! `path` dep (into `vendor/` or the workspace) or a `workspace = true`
//! reference to one.
//!
//! The build container has no registry or network access; PR 1 made
//! that a policy by vendoring every external crate as an in-tree subset
//! under `vendor/`. A registry (`foo = "1.0"`) or git dependency can
//! therefore *never* build here — this rule catches one at review time
//! instead of at the first clean checkout.
//!
//! The scanner is a minimal hand-rolled pass over the manifest — it
//! understands `[dependencies]`-family sections (including
//! `[workspace.dependencies]` and target-specific tables), dotted keys
//! (`serde.workspace = true`), inline tables, and
//! `[dependencies.<name>]` subsections; that covers every manifest in
//! this workspace and fails loudly (a finding, not a skip) on what it
//! cannot prove is a path dep.

use super::{Finding, VENDORED_DEPS_ONLY};
use crate::lexer::{parse_directive, Directive};

/// Result of scanning one manifest: findings plus any suppression
/// directives found in `#` comments.
#[derive(Debug, Default)]
pub struct ManifestScan {
    pub findings: Vec<Finding>,
    pub directives: Vec<Directive>,
}

/// Keys that mark a dependency as resolvable offline.
const OK_KEYS: &[&str] = &["path", "workspace"];
/// Keys that mark a dependency as needing the network.
const BAD_KEYS: &[&str] = &["version", "git", "registry"];

pub fn check(path: &str, src: &str) -> ManifestScan {
    let mut scan = ManifestScan::default();
    let mut section: Section = Section::Other;
    for (idx, raw) in src.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let line = strip_comment(raw, line_no, &mut scan.directives);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            flush_subdep(path, &mut section, &mut scan.findings);
            section = classify_section(line.trim_matches(['[', ']']), line_no);
            continue;
        }
        let Some((lhs, value)) = line.split_once('=') else {
            continue;
        };
        let (lhs, value) = (lhs.trim(), value.trim());
        match &mut section {
            Section::Deps => check_entry(path, line_no, lhs, value, &mut scan.findings),
            Section::SubDep { ok, bad, .. } => {
                if OK_KEYS.contains(&lhs) {
                    *ok = true;
                }
                if BAD_KEYS.contains(&lhs) {
                    *bad = Some(lhs.to_string());
                }
            }
            Section::Other => {}
        }
    }
    flush_subdep(path, &mut section, &mut scan.findings);
    scan
}

enum Section {
    /// A `[dependencies]`-family table of `name = spec` entries.
    Deps,
    /// A `[dependencies.<name>]` subsection; judged when it closes.
    SubDep {
        name: String,
        line: u32,
        ok: bool,
        bad: Option<String>,
    },
    Other,
}

const DEP_TABLES: &[&str] = &["dependencies", "dev-dependencies", "build-dependencies"];

fn classify_section(name: &str, line: u32) -> Section {
    let is_dep_table = |s: &str| {
        DEP_TABLES.contains(&s) || DEP_TABLES.iter().any(|t| s.ends_with(&format!(".{t}")))
    };
    if is_dep_table(name) {
        return Section::Deps;
    }
    // `[dependencies.foo]` / `[workspace.dependencies.foo]` …
    for table in DEP_TABLES {
        for prefix in [format!("{table}."), format!("workspace.{table}.")] {
            if let Some(dep) = name.strip_prefix(&prefix) {
                if !dep.contains('.') {
                    return Section::SubDep {
                        name: dep.to_string(),
                        line,
                        ok: false,
                        bad: None,
                    };
                }
            }
        }
    }
    Section::Other
}

fn flush_subdep(path: &str, section: &mut Section, out: &mut Vec<Finding>) {
    if let Section::SubDep {
        name,
        line,
        ok: false,
        bad,
    } = section
    {
        out.push(registry_finding(path, *line, name, bad.as_deref()));
    }
    *section = Section::Other;
}

/// One `name = spec` / `name.key = value` entry in a dep table.
fn check_entry(path: &str, line: u32, lhs: &str, value: &str, out: &mut Vec<Finding>) {
    if let Some((dep, key)) = lhs.split_once('.') {
        if BAD_KEYS.contains(&key.trim()) {
            out.push(registry_finding(path, line, dep.trim(), Some(key.trim())));
        }
        return; // `foo.workspace = true`, `foo.features = […]`, …
    }
    if value.starts_with('"') {
        out.push(registry_finding(path, line, lhs, Some("version")));
    } else if let Some(table) = value.strip_prefix('{') {
        let table = table.trim_end_matches('}');
        let mut keys = table
            .split(',')
            .filter_map(|kv| kv.split_once('=').map(|(k, _)| k.trim().to_string()));
        let bad = keys.clone().find(|k| BAD_KEYS.contains(&k.as_str()));
        let has_path = keys.any(|k| OK_KEYS.contains(&k.as_str()));
        if !has_path {
            out.push(registry_finding(path, line, lhs, bad.as_deref()));
        }
    }
    // Bare booleans/numbers/arrays carry no source location; ignore.
}

fn registry_finding(path: &str, line: u32, dep: &str, key: Option<&str>) -> Finding {
    let how = match key {
        Some(k) => format!("uses `{k}`"),
        None => "has no `path`/`workspace` key".to_string(),
    };
    Finding {
        path: path.to_string(),
        line,
        rule: VENDORED_DEPS_ONLY,
        message: format!(
            "dependency `{dep}` {how}; this container has no registry/network \
             access — vendor it under vendor/ and use a path or workspace dep"
        ),
    }
}

/// Strips a `#` comment (quote-aware) and harvests any directive in it.
fn strip_comment<'a>(raw: &'a str, line: u32, directives: &mut Vec<Directive>) -> &'a str {
    let mut in_str = false;
    for (i, c) in raw.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => {
                if let Some(d) = parse_directive(&raw[i + 1..], line) {
                    directives.push(d);
                }
                return &raw[..i];
            }
            _ => {}
        }
    }
    raw
}
