//! Rule `recorder-gated-emit`: observability must stay one branch per
//! emit site when no recorder is attached.
//!
//! PR 3 threads an optional `Recorder` through the engine with the
//! contract that the recorder-off path costs exactly one predictable
//! branch per emit site — that is what keeps the zero-alloc test and
//! the `sim_hot_path` bench numbers unchanged. The shape that
//! guarantees it is
//!
//! ```text
//! if let Some(recorder) = &self.ws.recorder.0 {
//!     recorder.incr(counter, 1);
//! }
//! ```
//!
//! so this rule requires every `.incr(` / `.observe(` / `.event(` call
//! in `crates/sim/src/` to sit lexically inside a block whose opening
//! statement is an `if let Some(…)` mentioning `recorder`. A call via
//! `.unwrap()`, an `else` branch, or a hoisted handle all land outside
//! such a block and are flagged. `.event(` is the structured
//! flight-recorder hook: its `EngineEvent` argument is a stack-built
//! `Copy` value, so constructing it inside the gate keeps the detached
//! path allocation-free too.

use super::{scope, FileCtx, Finding, RECORDER_GATED_EMIT};
use crate::lexer::TokKind;

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !scope::in_sim_src(ctx.path) {
        return;
    }
    // Stack of "is this block a recorder gate" flags, one per open
    // brace. A block is a gate when the statement that opened it
    // contains `if let Some` and the identifier `recorder`.
    let mut gates: Vec<bool> = Vec::new();
    let mut stmt_start = 0usize;
    for i in 0..ctx.toks.len() {
        let t = ctx.tok(i);
        match t.kind {
            TokKind::Punct('{') => {
                let stmt = &ctx.toks[stmt_start..i];
                let has = |text: &str| stmt.iter().any(|s| s.is_ident(text));
                let is_gate = has("if") && has("let") && has("Some") && has("recorder");
                gates.push(is_gate);
                stmt_start = i + 1;
            }
            TokKind::Punct('}') => {
                gates.pop();
                stmt_start = i + 1;
            }
            TokKind::Punct(';') => stmt_start = i + 1,
            TokKind::Ident
                if (t.is_ident("incr") || t.is_ident("observe") || t.is_ident("event"))
                    && ctx.tok(i.wrapping_sub(1)).is_punct('.')
                    && ctx.tok(i + 1).is_punct('(')
                    && ctx.live(i)
                    && !gates.iter().any(|&g| g) =>
            {
                out.push(ctx.finding(
                    t.line,
                    RECORDER_GATED_EMIT,
                    format!(
                        "recorder `.{}()` call outside an `if let Some(recorder)` \
                         gate; the detached path must stay one branch per emit \
                         site",
                        t.text
                    ),
                ));
            }
            _ => {}
        }
    }
}
