//! Rule `no-unwrap-in-lib`: no `unwrap()` / `expect()` / `panic!` /
//! `todo!` / `unimplemented!` in non-test code of the library crates.
//!
//! The library crates are consumed by the harness across millions of
//! simulated runs; a panic there aborts a whole sweep. Fallible
//! operations must return the crates' `#[non_exhaustive]` error types
//! (see rule `error-hygiene`); provably-infallible sites keep an
//! `expect` with an invariant message plus an explicit
//! `// mkss-lint: allow(no-unwrap-in-lib) — <why it cannot fail>`.
//!
//! Doc-comment examples and `#[cfg(test)]` / `#[test]` code are exempt
//! (the lexer drops comments; the engine masks test items).

use super::{scope, FileCtx, Finding, NO_UNWRAP_IN_LIB};

/// Panicking macros flagged alongside the methods.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !scope::in_lib_crate(ctx.path) {
        return;
    }
    for i in 0..ctx.toks.len() {
        if !ctx.live(i) {
            continue;
        }
        let t = ctx.tok(i);
        // `.unwrap()` / `::unwrap()` — but not `unwrap_or`, which is a
        // different identifier token entirely.
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && (ctx.tok(i.wrapping_sub(1)).is_punct('.')
                || ctx.tok(i.wrapping_sub(1)).is_punct(':'))
            && ctx.tok(i + 1).is_punct('(')
        {
            out.push(ctx.finding(
                t.line,
                NO_UNWRAP_IN_LIB,
                format!(
                    "`{}` in library non-test code: return the crate's error \
                     type, or annotate a provably-infallible site with \
                     `// mkss-lint: allow({NO_UNWRAP_IN_LIB}) — <invariant>`",
                    t.text
                ),
            ));
        }
        if PANIC_MACROS.iter().any(|m| t.is_ident(m)) && ctx.tok(i + 1).is_punct('!') {
            out.push(ctx.finding(
                t.line,
                NO_UNWRAP_IN_LIB,
                format!("`{}!` in library non-test code aborts whole sweeps", t.text),
            ));
        }
    }
}
