//! `pub-api-hygiene` (MKSS-L013): the library crates are the paper
//! reproduction's public surface — every `pub` item needs a doc
//! comment (what invariant does it uphold? what units? what panics?),
//! and every `pub` enum is `#[non_exhaustive]` unless a reasoned allow
//! records that the variant set is closed for good (a catalog enum the
//! consumers *should* exhaustively match).
//!
//! Effective visibility comes from the item tree: a `pub fn` inside a
//! private `mod` is not API; a method is API only when its inherent
//! impl targets a `pub` type (trait impls document through the trait).
//! `pub mod x;` declarations resolve cross-file through the item graph
//! to `x.rs` / `x/mod.rs` and are satisfied by that file's `//!`
//! module docs. `*Error` enums are owned by `error-hygiene` and
//! skipped here.

use super::{scope, FileCtx, Finding, PUB_API_HYGIENE};
use crate::parser::{ItemKind, Vis};

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !scope::in_lib_crate(ctx.path) || scope::is_test_source(ctx.path) {
        return;
    }
    for (idx, it) in ctx.items.items.iter().enumerate() {
        let kind_name = match it.kind {
            ItemKind::Fn => "fn",
            ItemKind::Struct => "struct",
            ItemKind::Union => "union",
            ItemKind::Enum => "enum",
            ItemKind::Trait => "trait",
            ItemKind::TypeAlias => "type alias",
            ItemKind::Const => "const",
            ItemKind::Static => "static",
            ItemKind::Mod => "mod",
            ItemKind::Impl | ItemKind::Macro => continue,
        };
        if it.vis != Vis::Pub || !ctx.items.effectively_pub(idx) {
            continue;
        }
        if !ctx.live(it.first_tok) {
            continue; // test-masked item
        }
        // Methods: API only on an inherent impl of a pub type.
        if let Some(im) = ctx.items.enclosing_impl(idx) {
            if im.trait_impl || !ctx.graph.pub_types.contains(&im.name) {
                continue;
            }
        }
        let documented = it.doc
            || (it.kind == ItemKind::Mod
                && it.body.is_none()
                && ctx
                    .graph
                    .module_has_docs(ctx.path, &it.name)
                    .unwrap_or(true));
        if !documented {
            out.push(ctx.finding(
                it.line,
                PUB_API_HYGIENE,
                format!("public {kind_name} `{}` has no doc comment", it.name),
            ));
        }
        if it.kind == ItemKind::Enum && !it.non_exhaustive && !it.name.ends_with("Error") {
            out.push(ctx.finding(
                it.line,
                PUB_API_HYGIENE,
                format!(
                    "public enum `{}` is not #[non_exhaustive]; annotate it, or \
                     allow with the reason the variant set is closed",
                    it.name
                ),
            ));
        }
    }
}
