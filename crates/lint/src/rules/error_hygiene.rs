//! Rule `error-hygiene`: every `pub` `*Error` type follows the PR-2
//! convention — `#[non_exhaustive]`, plus `Display` and
//! `std::error::Error` impls.
//!
//! `#[non_exhaustive]` keeps adding variants/fields non-breaking; the
//! two impls make every error usable with `?` into
//! `Box<dyn std::error::Error>` and printable in harness diagnostics.
//!
//! Declarations are collected per file and resolved against impls seen
//! *anywhere* in the linted universe (impls commonly live next to the
//! type, but the rule does not require that), so this is the one rule
//! with a workspace-wide finalize step.

use super::{FileCtx, Finding, ERROR_HYGIENE};

/// Accumulates declarations and impls across files; [`finalize`]
/// produces the findings.
///
/// [`finalize`]: ErrorHygiene::finalize
#[derive(Debug, Default)]
pub struct ErrorHygiene {
    /// (path, line, type name, has `#[non_exhaustive]`).
    decls: Vec<(String, u32, String, bool)>,
    display_for: Vec<String>,
    error_for: Vec<String>,
}

impl ErrorHygiene {
    pub fn collect(&mut self, ctx: &FileCtx<'_>) {
        for i in 0..ctx.toks.len() {
            if !ctx.live(i) {
                continue;
            }
            let t = ctx.tok(i);
            // `pub struct XError` / `pub(crate) enum XError`.
            if t.is_ident("pub") {
                let mut j = i + 1;
                if ctx.tok(j).is_punct('(') {
                    while j < ctx.toks.len() && !ctx.tok(j).is_punct(')') {
                        j += 1;
                    }
                    j += 1;
                }
                if ctx.tok(j).is_ident("struct") || ctx.tok(j).is_ident("enum") {
                    let name = ctx.tok(j + 1);
                    if name.text.len() > "Error".len() && name.text.ends_with("Error") {
                        self.decls.push((
                            ctx.path.to_string(),
                            name.line,
                            name.text.to_string(),
                            has_non_exhaustive_attr(ctx, i),
                        ));
                    }
                }
            }
            // `impl … Display for X` / `impl … Error for X`. `StdError`
            // is accepted as the workspace's conventional alias
            // (`use std::error::Error as StdError`).
            if t.is_ident("for") && ctx.tok(i + 1).kind == crate::lexer::TokKind::Ident {
                let prev = ctx.tok(i.wrapping_sub(1));
                let target = || ctx.tok(i + 1).text.to_string();
                if prev.is_ident("Display") {
                    self.display_for.push(target());
                } else if prev.is_ident("Error") || prev.is_ident("StdError") {
                    self.error_for.push(target());
                }
            }
        }
    }

    pub fn finalize(self) -> Vec<Finding> {
        let mut out = Vec::new();
        for (path, line, name, non_exhaustive) in self.decls {
            let mut missing = Vec::new();
            if !non_exhaustive {
                missing.push("#[non_exhaustive]");
            }
            if !self.display_for.iter().any(|n| n == &name) {
                missing.push("a Display impl");
            }
            if !self.error_for.iter().any(|n| n == &name) {
                missing.push("a std::error::Error impl");
            }
            if !missing.is_empty() {
                out.push(Finding {
                    path,
                    line,
                    rule: ERROR_HYGIENE,
                    message: format!(
                        "pub error type `{name}` is missing {} (convention: every \
                         pub *Error is non_exhaustive and implements Display + Error)",
                        missing.join(" and ")
                    ),
                });
            }
        }
        out
    }
}

/// Scans the attribute groups immediately preceding token `i` (the
/// `pub` keyword) for `#[non_exhaustive]`. Consecutive attributes in
/// any order are understood; doc comments contribute no tokens and so
/// never break the chain.
fn has_non_exhaustive_attr(ctx: &FileCtx<'_>, i: usize) -> bool {
    let mut k = i;
    while k >= 1 && ctx.tok(k - 1).is_punct(']') {
        // Walk back to the nearest `#[`.
        let close = k - 1;
        let mut open = close;
        while open > 0 && !(ctx.tok(open).is_punct('[') && ctx.tok(open - 1).is_punct('#')) {
            open -= 1;
        }
        if open == 0 {
            return false;
        }
        if ctx.toks[open..close]
            .iter()
            .any(|t| t.is_ident("non_exhaustive"))
        {
            return true;
        }
        k = open - 1; // continue before the `#`
    }
    false
}
