//! The rule catalog and the per-file context rules run against.
//!
//! Rules come in two layers. The original token rules are per-file
//! pattern passes over the lexed stream (plus, for `error-hygiene`, a
//! workspace-wide finalize step, and for `vendored-deps-only`, a
//! manifest scan). The v2 rules additionally see the item layer
//! ([`crate::parser`]): brace-matched fn bodies, struct fields, impls
//! and `use` resolution, and the cross-file [`crate::parser::ItemGraph`]
//! (float newtypes, pub types, module docs, lock-order edges).
//!
//! Every rule has a stable error code (`MKSS-L001`…, see
//! `DIAGNOSTICS.md`). Findings are suppressible only by an explicit
//! `// mkss-lint: allow(<rule>) — <reason>` on the same or the
//! preceding line; the reason is mandatory and unused allows are
//! themselves findings, so suppressions stay auditable.

use crate::lexer::{Directive, Tok};
use crate::parser::{FileItems, ItemGraph};

pub mod atomic_ordering;
pub mod condvar_wait;
pub mod error_hygiene;
pub mod float_fold;
pub mod hot_path_alloc;
pub mod lock_discipline;
pub mod no_unwrap;
pub mod nondeterminism;
pub mod pub_api;
pub mod recorder_gate;
pub mod vendored_deps;

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule ID from [`RULES`].
    pub rule: &'static str,
    pub message: String,
}

impl Finding {
    /// The rule's stable `MKSS-Lnnn` error code (see DIAGNOSTICS.md).
    pub fn code(&self) -> &'static str {
        code_for(self.rule)
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{} {}] {}",
            self.path,
            self.line,
            self.code(),
            self.rule,
            self.message
        )
    }
}

/// Static description of one rule, for `--list-rules` and the docs.
pub struct RuleInfo {
    pub id: &'static str,
    /// Stable error code, never reused (`MKSS-L001`…).
    pub code: &'static str,
    pub summary: &'static str,
}

/// Rule IDs (used by findings and `allow(...)` directives).
pub const HOT_PATH_ALLOC: &str = "hot-path-alloc";
pub const NO_UNWRAP_IN_LIB: &str = "no-unwrap-in-lib";
pub const NONDETERMINISM: &str = "nondeterminism";
pub const ERROR_HYGIENE: &str = "error-hygiene";
pub const VENDORED_DEPS_ONLY: &str = "vendored-deps-only";
pub const RECORDER_GATED_EMIT: &str = "recorder-gated-emit";
pub const MALFORMED_DIRECTIVE: &str = "malformed-directive";
pub const UNUSED_ALLOW: &str = "unused-allow";
pub const LOCK_DISCIPLINE: &str = "lock-discipline";
pub const ATOMIC_ORDERING_ANNOTATED: &str = "atomic-ordering-annotated";
pub const FLOAT_FOLD_DETERMINISM: &str = "float-fold-determinism";
pub const CONDVAR_WAIT_IN_LOOP: &str = "condvar-wait-in-loop";
pub const PUB_API_HYGIENE: &str = "pub-api-hygiene";

/// The full catalog, ordered by error code.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: HOT_PATH_ALLOC,
        code: "MKSS-L001",
        summary: "no allocating constructors (Vec::new, vec!, Box::new, to_vec, \
                  collect, String::from, format!, …) inside `mkss-lint: hot-path` \
                  regions — keeps the engine's zero-allocation guarantee visible \
                  at review time",
    },
    RuleInfo {
        id: NO_UNWRAP_IN_LIB,
        code: "MKSS-L002",
        summary: "no unwrap()/expect()/panic! in non-test code of the library \
                  crates (core, workload, policies, analysis, sim, obs); \
                  provably-infallible sites carry an annotated expect",
    },
    RuleInfo {
        id: NONDETERMINISM,
        code: "MKSS-L003",
        summary: "no HashMap/HashSet (iteration order varies per process), no \
                  Instant::now/SystemTime::now outside annotated harness timing \
                  sites, no thread_rng — protects cross-`--jobs` byte-identity",
    },
    RuleInfo {
        id: ERROR_HYGIENE,
        code: "MKSS-L004",
        summary: "every `pub` *Error type is #[non_exhaustive] and has Display \
                  and std::error::Error impls",
    },
    RuleInfo {
        id: VENDORED_DEPS_ONLY,
        code: "MKSS-L005",
        summary: "every Cargo.toml dependency is a path/workspace dep (vendored \
                  or in-tree); registry and git deps can never build here",
    },
    RuleInfo {
        id: RECORDER_GATED_EMIT,
        code: "MKSS-L006",
        summary: "every recorder incr/observe/event call in crates/sim sits \
                  inside an `if let Some(recorder)` gate, so the recorder-off \
                  path stays one branch per emit site",
    },
    RuleInfo {
        id: MALFORMED_DIRECTIVE,
        code: "MKSS-L007",
        summary: "an `mkss-lint:` comment that does not parse (typo, missing \
                  reason, unknown rule) is an error, never silently ignored",
    },
    RuleInfo {
        id: UNUSED_ALLOW,
        code: "MKSS-L008",
        summary: "an allow(...) annotation that suppresses nothing must be \
                  removed",
    },
    RuleInfo {
        id: LOCK_DISCIPLINE,
        code: "MKSS-L009",
        summary: "no Mutex/RwLock guard held across a blocking call (condvar \
                  wait on another lock, channel send/recv, IO, join, sleep) or \
                  across a second acquisition that inverts a lock order seen \
                  elsewhere in the workspace",
    },
    RuleInfo {
        id: ATOMIC_ORDERING_ANNOTATED,
        code: "MKSS-L010",
        summary: "every atomic Ordering::{Relaxed,Acquire,Release,AcqRel,SeqCst} \
                  site carries a `// mkss-lint: ordering — reason` note saying \
                  why that strength is right; unused notes are findings too",
    },
    RuleInfo {
        id: FLOAT_FOLD_DETERMINISM,
        code: "MKSS-L011",
        summary: "float accumulation (`+=`, `.sum()`, float folds) in non-test \
                  library code goes through the fixed-order mkss_core::fold \
                  helpers or carries a reasoned allow — protects bit-identical \
                  results across `--jobs`",
    },
    RuleInfo {
        id: CONDVAR_WAIT_IN_LOOP,
        code: "MKSS-L012",
        summary: "a Condvar .wait()/.wait_timeout() must sit inside a loop that \
                  re-checks its predicate (spurious wakeups); .wait_while or a \
                  reasoned allow for deliberate single waits",
    },
    RuleInfo {
        id: PUB_API_HYGIENE,
        code: "MKSS-L013",
        summary: "public items in library crates carry doc comments, `pub mod`s \
                  resolve to module-documented files, and public enums are \
                  #[non_exhaustive] unless a reasoned allow says growth is \
                  impossible",
    },
];

/// True when `id` names a catalogued rule.
pub fn is_known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// The stable error code for a rule ID (`"?"` for unknown IDs, which
/// cannot arise from catalogued findings).
pub fn code_for(rule: &str) -> &'static str {
    RULES
        .iter()
        .find(|r| r.id == rule)
        .map_or("MKSS-L???", |r| r.code)
}

/// Everything a rule sees about one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path with forward slashes.
    pub path: &'a str,
    pub toks: &'a [Tok<'a>],
    /// `mask[i]` is true when token `i` sits in test-only code
    /// (`#[cfg(test)]` / `#[test]` items); rules skip those tokens.
    pub mask: &'a [bool],
    pub directives: &'a [Directive],
    /// Line spans of test-only items (for directive placement checks).
    pub test_spans: &'a [(u32, u32)],
    /// The file's item skeletons (fns, impls, structs, uses).
    pub items: &'a FileItems,
    /// Cross-file facts over the whole lint universe.
    pub graph: &'a ItemGraph,
}

impl<'a> FileCtx<'a> {
    /// Token at `i`, or a sentinel that matches nothing.
    pub fn tok(&self, i: usize) -> Tok<'a> {
        const NONE: Tok<'static> = Tok {
            kind: crate::lexer::TokKind::Punct('\0'),
            text: "",
            line: 0,
            start: 0,
            end: 0,
        };
        self.toks.get(i).copied().unwrap_or(NONE)
    }

    /// True when token `i` is live (exists and is not test-masked).
    pub fn live(&self, i: usize) -> bool {
        i < self.toks.len() && !self.mask.get(i).copied().unwrap_or(false)
    }

    /// True when `line` falls inside a test-only item.
    pub fn in_test_span(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    pub fn finding(&self, line: u32, rule: &'static str, message: String) -> Finding {
        Finding {
            path: self.path.to_string(),
            line,
            rule,
            message,
        }
    }
}

/// Path helpers shared by rule scopes. Paths are workspace-relative
/// with forward slashes.
pub mod scope {
    /// The eight library crates covered by `no-unwrap-in-lib`.
    pub const LIB_CRATES: &[&str] = &[
        "crates/core/src/",
        "crates/workload/src/",
        "crates/policies/src/",
        "crates/analysis/src/",
        "crates/sim/src/",
        "crates/obs/src/",
        "crates/serve/src/",
        "crates/top/src/",
    ];

    pub fn in_lib_crate(path: &str) -> bool {
        LIB_CRATES.iter().any(|p| path.starts_with(p))
    }

    /// Integration-test and bench sources: exempt from the rules that
    /// only guard shipped code paths.
    pub fn is_test_source(path: &str) -> bool {
        path.starts_with("tests/") || path.contains("/tests/") || path.contains("/benches/")
    }

    pub fn in_sim_src(path: &str) -> bool {
        path.starts_with("crates/sim/src/")
    }

    /// The fixed-order fold helpers themselves — the one place float
    /// accumulation is the point.
    pub fn is_fold_helper(path: &str) -> bool {
        path == "crates/core/src/fold.rs"
    }
}
