//! The rule catalog and the per-file context rules run against.
//!
//! Every rule is a token-pattern pass over one lexed file (plus, for
//! `error-hygiene`, a workspace-wide finalize step, and for
//! `vendored-deps-only`, a manifest scan instead of a token scan).
//! Findings are suppressible only by an explicit
//! `// mkss-lint: allow(<rule>) — <reason>` on the same or the
//! preceding line; the reason is mandatory and unused allows are
//! themselves findings, so suppressions stay auditable.

use crate::lexer::{Directive, Tok};

pub mod error_hygiene;
pub mod hot_path_alloc;
pub mod no_unwrap;
pub mod nondeterminism;
pub mod recorder_gate;
pub mod vendored_deps;

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule ID from [`RULES`].
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Static description of one rule, for `--list-rules` and the docs.
pub struct RuleInfo {
    pub id: &'static str,
    pub summary: &'static str,
}

/// Rule IDs (used by findings and `allow(...)` directives).
pub const HOT_PATH_ALLOC: &str = "hot-path-alloc";
pub const NO_UNWRAP_IN_LIB: &str = "no-unwrap-in-lib";
pub const NONDETERMINISM: &str = "nondeterminism";
pub const ERROR_HYGIENE: &str = "error-hygiene";
pub const VENDORED_DEPS_ONLY: &str = "vendored-deps-only";
pub const RECORDER_GATED_EMIT: &str = "recorder-gated-emit";
pub const MALFORMED_DIRECTIVE: &str = "malformed-directive";
pub const UNUSED_ALLOW: &str = "unused-allow";

/// The full catalog.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: HOT_PATH_ALLOC,
        summary: "no allocating constructors (Vec::new, vec!, Box::new, to_vec, \
                  collect, String::from, format!, …) inside `mkss-lint: hot-path` \
                  regions — keeps the engine's zero-allocation guarantee visible \
                  at review time",
    },
    RuleInfo {
        id: NO_UNWRAP_IN_LIB,
        summary: "no unwrap()/expect()/panic! in non-test code of the library \
                  crates (core, workload, policies, analysis, sim, obs); \
                  provably-infallible sites carry an annotated expect",
    },
    RuleInfo {
        id: NONDETERMINISM,
        summary: "no HashMap/HashSet (iteration order varies per process), no \
                  Instant::now/SystemTime::now outside annotated harness timing \
                  sites, no thread_rng — protects cross-`--jobs` byte-identity",
    },
    RuleInfo {
        id: ERROR_HYGIENE,
        summary: "every `pub` *Error type is #[non_exhaustive] and has Display \
                  and std::error::Error impls",
    },
    RuleInfo {
        id: VENDORED_DEPS_ONLY,
        summary: "every Cargo.toml dependency is a path/workspace dep (vendored \
                  or in-tree); registry and git deps can never build here",
    },
    RuleInfo {
        id: RECORDER_GATED_EMIT,
        summary: "every recorder incr/observe/event call in crates/sim sits \
                  inside an `if let Some(recorder)` gate, so the recorder-off \
                  path stays one branch per emit site",
    },
    RuleInfo {
        id: MALFORMED_DIRECTIVE,
        summary: "an `mkss-lint:` comment that does not parse (typo, missing \
                  reason, unknown rule) is an error, never silently ignored",
    },
    RuleInfo {
        id: UNUSED_ALLOW,
        summary: "an allow(...) annotation that suppresses nothing must be \
                  removed",
    },
];

/// True when `id` names a catalogued rule.
pub fn is_known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// Everything a token rule sees about one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path with forward slashes.
    pub path: &'a str,
    pub toks: &'a [Tok<'a>],
    /// `mask[i]` is true when token `i` sits in test-only code
    /// (`#[cfg(test)]` / `#[test]` items); rules skip those tokens.
    pub mask: &'a [bool],
    pub directives: &'a [Directive],
}

impl<'a> FileCtx<'a> {
    /// Token at `i`, or a sentinel that matches nothing.
    pub fn tok(&self, i: usize) -> Tok<'a> {
        const NONE: Tok<'static> = Tok {
            kind: crate::lexer::TokKind::Punct('\0'),
            text: "",
            line: 0,
        };
        self.toks.get(i).copied().unwrap_or(NONE)
    }

    /// True when token `i` is live (exists and is not test-masked).
    pub fn live(&self, i: usize) -> bool {
        i < self.toks.len() && !self.mask.get(i).copied().unwrap_or(false)
    }

    pub fn finding(&self, line: u32, rule: &'static str, message: String) -> Finding {
        Finding {
            path: self.path.to_string(),
            line,
            rule,
            message,
        }
    }
}

/// Path helpers shared by rule scopes. Paths are workspace-relative
/// with forward slashes.
pub mod scope {
    /// The eight library crates covered by `no-unwrap-in-lib`.
    pub const LIB_CRATES: &[&str] = &[
        "crates/core/src/",
        "crates/workload/src/",
        "crates/policies/src/",
        "crates/analysis/src/",
        "crates/sim/src/",
        "crates/obs/src/",
        "crates/serve/src/",
        "crates/top/src/",
    ];

    pub fn in_lib_crate(path: &str) -> bool {
        LIB_CRATES.iter().any(|p| path.starts_with(p))
    }

    /// Integration-test and bench sources: exempt from the rules that
    /// only guard shipped code paths.
    pub fn is_test_source(path: &str) -> bool {
        path.starts_with("tests/") || path.contains("/tests/") || path.contains("/benches/")
    }

    pub fn in_sim_src(path: &str) -> bool {
        path.starts_with("crates/sim/src/")
    }
}
