//! `lock-discipline` (MKSS-L009): guard lifetimes vs. blocking calls,
//! plus a workspace-wide lock-order graph.
//!
//! Three shapes fire, all scoped to non-test library-crate code:
//!
//! 1. **guard across blocking** — a `Mutex`/`RwLock` guard is live at a
//!    call that can block indefinitely (channel `send`/`recv`, socket
//!    `accept`/`connect`, `join`, `sleep`, line-oriented reads, buffered
//!    writes). Holding a lock there turns one slow peer into a
//!    system-wide stall. A condvar `.wait(g)` *consuming* its own guard
//!    is the protocol working as designed and is exempt — but any
//!    *other* guard live across that wait fires.
//! 2. **double acquisition** — acquiring a lock whose key is already
//!    held in the same fn (self-deadlock with `std::sync::Mutex`).
//! 3. **order inversion** — fn A acquires `x` then `y`, fn B (anywhere
//!    in the lint universe) acquires `y` then `x`. Edges are collected
//!    per file and checked in a finalize pass, like `error-hygiene`.
//!
//! Guards are tracked structurally: `let g = …lock…;` binds to the
//! enclosing block, `if let/while let/for/match …lock… {` to the block
//! it opens, anything else is a temporary that dies at the `;`.
//! `drop(g)` releases early. Lock keys are the last two path segments
//! of the receiver (`self.shared.conns.lock()` and `lock(&self.shared.
//! conns)` both key as `shared.conns`), which makes keys comparable
//! across fns without type resolution.

use super::{scope, FileCtx, Finding, LOCK_DISCIPLINE};
use crate::lexer::TokKind;
use std::collections::BTreeMap;

/// Method names that block indefinitely. `.join()` only matches with
/// empty parens (thread join), so `sep.join(parts)` never fires.
const BLOCKING: &[&str] = &[
    "wait",
    "wait_timeout",
    "wait_while",
    "wait_timeout_while",
    "recv",
    "recv_timeout",
    "send",
    "accept",
    "connect",
    "join",
    "sleep",
    "park",
    "read_line",
    "read_until",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write_all",
    "flush",
];

#[derive(Debug, Clone)]
struct Guard {
    key: String,
    /// Binding name when `let`-bound (for `drop(name)` release).
    name: Option<String>,
    /// Brace depth the guard lives at; popped when the block closes.
    depth: usize,
    /// Dies at the next `;` at its depth (un-bound temporary).
    temp: bool,
    line: u32,
}

/// Cross-file state: first-seen site of every ordered pair of lock
/// keys. Collect per file, then [`finalize`](Self::finalize) reports
/// inversions.
#[derive(Debug, Default)]
pub struct LockDiscipline {
    edges: BTreeMap<(String, String), (String, u32)>,
}

impl LockDiscipline {
    pub fn collect(&mut self, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
        if !scope::in_lib_crate(ctx.path) || scope::is_test_source(ctx.path) {
            return;
        }
        let mentions_rwlock = ctx.toks.iter().any(|t| t.is_ident("RwLock"));
        for (_sig, open, close) in ctx.items.fn_bodies() {
            if !ctx.live(open) {
                continue; // test-masked fn
            }
            self.scan_body(ctx, open, close, mentions_rwlock, out);
        }
    }

    fn scan_body(
        &mut self,
        ctx: &FileCtx<'_>,
        open: usize,
        close: usize,
        rwlock: bool,
        out: &mut Vec<Finding>,
    ) {
        let mut guards: Vec<Guard> = Vec::new();
        let mut depth = 1usize; // inside the body's `{`
        let mut i = open + 1;
        while i < close {
            let t = ctx.tok(i);
            match t.kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    guards.retain(|g| g.depth <= depth);
                }
                TokKind::Punct(';') => guards.retain(|g| !(g.temp && g.depth == depth)),
                TokKind::Ident if t.text == "drop" && ctx.tok(i + 1).is_punct('(') => {
                    let dropped = ctx.tok(i + 2).text;
                    guards.retain(|g| g.name.as_deref() != Some(dropped));
                }
                _ => {}
            }

            if let Some(key) = acquisition_at(ctx, i, rwlock) {
                // Re-acquisition of a held key is a self-deadlock.
                if let Some(held) = guards.iter().find(|g| g.key == key) {
                    out.push(ctx.finding(
                        t.line,
                        LOCK_DISCIPLINE,
                        format!(
                            "acquires `{key}` while already holding it \
                             (guard taken on line {}): std::sync::Mutex \
                             self-deadlocks",
                            held.line
                        ),
                    ));
                } else {
                    for held in &guards {
                        self.edges
                            .entry((held.key.clone(), key.clone()))
                            .or_insert_with(|| (ctx.path.to_string(), t.line));
                    }
                    guards.push(bind_guard(ctx, open, i, key, depth, t.line));
                }
            } else if let Some((op, op_line)) = blocking_at(ctx, i) {
                // A condvar wait consumes (and keeps) the guard it is
                // given; every *other* live guard is a finding.
                let consumed = if op.starts_with("wait") {
                    ctx.tok(i + 3).text.to_string()
                } else {
                    String::new()
                };
                for g in &guards {
                    let is_consumed = op.starts_with("wait")
                        && (g.name.as_deref() == Some(consumed.as_str())
                            || g.key.ends_with(consumed.as_str()));
                    if is_consumed {
                        continue;
                    }
                    out.push(ctx.finding(
                        op_line,
                        LOCK_DISCIPLINE,
                        format!(
                            "guard `{}` (taken on line {}) is held across \
                             blocking `.{op}()`; release it first",
                            g.key, g.line
                        ),
                    ));
                }
            }
            i += 1;
        }
    }

    /// Reports every inverted pair once, at the lexicographically later
    /// edge, citing the earlier one.
    pub fn finalize(self) -> Vec<Finding> {
        let mut out = Vec::new();
        for ((a, b), (path, line)) in &self.edges {
            if a <= b {
                continue; // report each pair once, from the (a > b) side
            }
            if let Some((opath, oline)) = self.edges.get(&(b.clone(), a.clone())) {
                out.push(Finding {
                    path: path.clone(),
                    line: *line,
                    rule: LOCK_DISCIPLINE,
                    message: format!(
                        "lock order inversion: `{b}` then `{a}` here, but \
                         `{a}` then `{b}` at {opath}:{oline} — a deadlock \
                         under contention"
                    ),
                });
            }
        }
        out
    }
}

/// When token `i` starts a lock acquisition, returns its key.
///
/// Recognised: `recv.lock()` / `recv.lock_timeout()` methods, the
/// workspace's `lock(&mutex)` free helper, and `.read()` / `.write()`
/// only in files that mention `RwLock` (plain `File::read` stays cold).
fn acquisition_at(ctx: &FileCtx<'_>, i: usize, rwlock: bool) -> Option<String> {
    let t = ctx.tok(i);
    if !ctx.live(i) || t.kind != TokKind::Ident {
        return None;
    }
    let is_method = i > 0 && ctx.tok(i - 1).is_punct('.') && ctx.tok(i + 1).is_punct('(');
    if is_method {
        let lockish = t.text == "lock"
            || t.text.starts_with("lock_")
            || (rwlock && (t.text == "read" || t.text == "write") && ctx.tok(i + 2).is_punct(')'));
        if lockish {
            return Some(receiver_key(ctx, i - 1));
        }
        return None;
    }
    // Free helper `lock(&self.state)` — but not its own `fn lock` decl.
    if t.text == "lock"
        && ctx.tok(i + 1).is_punct('(')
        && !(i > 0 && (ctx.tok(i - 1).is_ident("fn") || ctx.tok(i - 1).is_punct(':')))
    {
        return Some(args_key(ctx, i + 1));
    }
    None
}

/// When token `i` is a blocking call site, returns (name, line).
fn blocking_at(ctx: &FileCtx<'_>, i: usize) -> Option<(&'static str, u32)> {
    let t = ctx.tok(i);
    if !ctx.live(i) || !t.is_punct('.') {
        return None;
    }
    let m = ctx.tok(i + 1);
    if m.kind != TokKind::Ident || !ctx.tok(i + 2).is_punct('(') {
        return None;
    }
    let name = BLOCKING.iter().find(|b| **b == m.text)?;
    // String/path `.join(sep)` and iterator-ish calls with args are not
    // thread joins; thread `.join()` is argless.
    if *name == "join" && !ctx.tok(i + 3).is_punct(')') {
        return None;
    }
    Some((name, m.line))
}

/// Key of a method receiver ending at the `.` token `dot`: the last
/// two non-`self` path segments. `self.shared.conns.lock()` → key
/// `shared.conns`.
fn receiver_key(ctx: &FileCtx<'_>, dot: usize) -> String {
    let mut segs: Vec<&str> = Vec::new();
    let mut j = dot;
    loop {
        if j == 0 {
            break;
        }
        let prev = ctx.tok(j - 1);
        if prev.kind == TokKind::Ident {
            if prev.text != "self" {
                segs.push(prev.text);
            }
            j -= 1;
            if j > 0 && ctx.tok(j - 1).is_punct('.') {
                j -= 1;
                continue;
            }
        } else if prev.is_punct(')') || prev.is_punct(']') {
            // Call or index in the receiver chain (`shards[i].lock()`):
            // skip the group and keep walking the path.
            let mut depth = 0i32;
            let open = if prev.is_punct(')') { '(' } else { '[' };
            let close_c = if prev.is_punct(')') { ')' } else { ']' };
            while j > 0 {
                j -= 1;
                if ctx.tok(j).is_punct(close_c) {
                    depth += 1;
                } else if ctx.tok(j).is_punct(open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
            continue;
        }
        break;
    }
    key_of(segs)
}

/// Key of a free-helper call: the idents inside `lock( … )`.
fn args_key(ctx: &FileCtx<'_>, open: usize) -> String {
    let mut segs: Vec<&str> = Vec::new();
    let mut depth = 0i32;
    let mut j = open;
    while j < ctx.toks.len() {
        let t = ctx.tok(j);
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == TokKind::Ident && t.text != "self" && t.text != "mut" {
            segs.push(t.text);
        }
        j += 1;
    }
    segs.reverse(); // key_of expects innermost-first
    key_of(segs)
}

/// Joins up to the last two segments (collected innermost-first).
fn key_of(segs: Vec<&str>) -> String {
    let take: Vec<&str> = segs.into_iter().take(2).collect();
    take.into_iter().rev().collect::<Vec<_>>().join(".")
}

/// Classifies how the guard acquired at token `i` is bound.
fn bind_guard(
    ctx: &FileCtx<'_>,
    body_open: usize,
    i: usize,
    key: String,
    depth: usize,
    line: u32,
) -> Guard {
    // Walk back to the statement boundary.
    let mut j = i;
    let mut stmt_start = body_open;
    while j > body_open {
        j -= 1;
        let t = ctx.tok(j);
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            stmt_start = j + 1;
            break;
        }
    }
    // `let [mut] name = …lock…` binds to the enclosing block.
    if ctx.tok(stmt_start).is_ident("let") {
        let mut n = stmt_start + 1;
        if ctx.tok(n).is_ident("mut") {
            n += 1;
        }
        if ctx.tok(n).kind == TokKind::Ident {
            return Guard {
                key,
                name: Some(ctx.tok(n).text.to_string()),
                depth,
                temp: false,
                line,
            };
        }
    }
    // A block-opener scrutinee (`for … in …lock… {`, `if let … =
    // …lock… {`, `match …lock… {`) lives for the block it opens.
    let opener = matches!(ctx.tok(stmt_start).text, "for" | "if" | "while" | "match")
        && ctx.tok(stmt_start).kind == TokKind::Ident;
    if opener {
        return Guard {
            key,
            name: None,
            depth: depth + 1,
            temp: false,
            line,
        };
    }
    Guard {
        key,
        name: None,
        depth,
        temp: true,
        line,
    }
}
