//! Rule `nondeterminism`: sources of run-to-run variation are banned
//! from shipped code paths.
//!
//! PR 1's contract is that every experiment binary produces
//! byte-identical output for every `--jobs` value; PR 3 extends that to
//! jobs-invariant counters. Three source patterns can silently break it:
//!
//! * `HashMap` / `HashSet` — iteration order varies per process
//!   (SipHash keys are randomized), so any fold over one is
//!   nondeterministic; use `BTreeMap`/`BTreeSet` or a sorted `Vec`;
//! * `Instant::now` / `SystemTime::now` — wall-clock reads are fine for
//!   *timing* but must never feed results; the harness timing sites are
//!   annotated individually;
//! * `thread_rng` — an OS-seeded RNG; all randomness must come from the
//!   per-bucket seeded `ChaCha` streams.
//!
//! Integration tests and benches are exempt (they may hash or time
//! freely); `#[cfg(test)]` code is masked by the engine.

use super::{scope, FileCtx, Finding, NONDETERMINISM};

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if scope::is_test_source(ctx.path) {
        return;
    }
    for i in 0..ctx.toks.len() {
        if !ctx.live(i) {
            continue;
        }
        let t = ctx.tok(i);
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            out.push(ctx.finding(
                t.line,
                NONDETERMINISM,
                format!(
                    "`{}` has randomized iteration order; use BTreeMap/BTreeSet \
                     or a sorted Vec so folds stay jobs-invariant",
                    t.text
                ),
            ));
        }
        if t.is_ident("thread_rng") {
            out.push(ctx.finding(
                t.line,
                NONDETERMINISM,
                "`thread_rng` is OS-seeded; use the per-bucket seeded ChaCha streams".to_string(),
            ));
        }
        // `Instant::now` / `SystemTime::now` as a path expression.
        if (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && ctx.tok(i + 1).is_punct(':')
            && ctx.tok(i + 2).is_punct(':')
            && ctx.tok(i + 3).is_ident("now")
        {
            out.push(ctx.finding(
                t.line,
                NONDETERMINISM,
                format!(
                    "`{}::now` outside an annotated harness timing site; \
                     wall-clock reads must never feed results",
                    t.text
                ),
            ));
        }
    }
}
