//! `condvar-wait-in-loop` (MKSS-L012): condition variables wake
//! spuriously, so a naked `.wait(guard)` / `.wait_timeout(guard, …)`
//! whose result is not re-checked in an enclosing loop is a latent
//! missed-wakeup / early-continue bug. `.wait_while` /
//! `.wait_timeout_while` re-check by construction and are exempt;
//! deliberate single waits (e.g. a bounded grace period where acting
//! early is harmless) carry a reasoned allow.
//!
//! The receiver is recognised structurally: condvar waits always pass
//! the guard as an argument, so `child.wait()` (no arguments) never
//! matches.

use super::{scope, FileCtx, Finding, CONDVAR_WAIT_IN_LOOP};
use crate::lexer::TokKind;

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if scope::is_test_source(ctx.path) {
        return;
    }
    for (_sig, open, close) in ctx.items.fn_bodies() {
        // Stack of enclosing blocks: true when the block is a loop body.
        let mut loops: Vec<bool> = Vec::new();
        let mut i = open + 1;
        while i < close {
            let t = ctx.tok(i);
            if t.is_punct('{') {
                loops.push(block_is_loop(ctx, open, i));
            } else if t.is_punct('}') {
                loops.pop();
            } else if t.is_punct('.')
                && matches!(ctx.tok(i + 1).text, "wait" | "wait_timeout")
                && ctx.tok(i + 1).kind == TokKind::Ident
                && ctx.tok(i + 2).is_punct('(')
                && !ctx.tok(i + 3).is_punct(')')
                && ctx.live(i + 1)
                && !loops.iter().any(|&l| l)
            {
                let w = ctx.tok(i + 1);
                out.push(ctx.finding(
                    w.line,
                    CONDVAR_WAIT_IN_LOOP,
                    format!(
                        ".{}() outside a loop: spurious wakeups mean the predicate \
                         must be re-checked (use a `while` loop or .wait_while)",
                        w.text
                    ),
                ));
            }
            i += 1;
        }
    }
}

/// Whether the block opening at token `at` is a loop body: the tokens
/// between the previous statement boundary and the `{` start with
/// `loop`, `while`, or `for`.
fn block_is_loop(ctx: &FileCtx<'_>, lo: usize, at: usize) -> bool {
    let mut j = at;
    while j > lo {
        j -= 1;
        let t = ctx.tok(j);
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        if t.is_ident("loop") || t.is_ident("while") || t.is_ident("for") {
            return true;
        }
    }
    false
}
