//! `atomic-ordering-annotated` (MKSS-L010): every atomic memory
//! ordering choice is a proof obligation, so every
//! `Ordering::{Relaxed,Acquire,Release,AcqRel,SeqCst}` site must carry
//! a `// mkss-lint: ordering — reason` note on its line or the line
//! above saying why that strength is sufficient (for the weak ones)
//! and necessary (for SeqCst). A note that covers no site is itself a
//! finding, so the inventory cannot rot.
//!
//! `std::cmp::Ordering` never collides: its variants (`Less`, `Equal`,
//! `Greater`) are not memory-ordering names.

use super::{scope, FileCtx, Finding, ATOMIC_ORDERING_ANNOTATED};
use crate::lexer::DirectiveKind;

const VARIANTS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// A note on line L covers sites on lines L..=L+2 — the slack admits
/// one rustfmt wrap between the note and the `Ordering::` token.
const NOTE_WINDOW: u32 = 2;

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if scope::is_test_source(ctx.path) {
        return;
    }
    let notes: Vec<u32> = ctx
        .directives
        .iter()
        .filter(|d| matches!(d.kind, DirectiveKind::Ordering { .. }))
        .map(|d| d.line)
        .collect();
    let mut used = vec![false; notes.len()];

    for i in 0..ctx.toks.len() {
        if !ctx.live(i) || i < 3 {
            continue;
        }
        let t = ctx.tok(i);
        let is_site = t.kind == crate::lexer::TokKind::Ident
            && VARIANTS.contains(&t.text)
            && ctx.tok(i - 1).is_punct(':')
            && ctx.tok(i - 2).is_punct(':')
            && ctx.tok(i - 3).is_ident("Ordering");
        if !is_site {
            continue;
        }
        let covered = notes
            .iter()
            .enumerate()
            .find(|(_, &n)| n <= t.line && t.line - n <= NOTE_WINDOW);
        match covered {
            Some((slot, _)) => used[slot] = true,
            None => out.push(ctx.finding(
                t.line,
                ATOMIC_ORDERING_ANNOTATED,
                format!(
                    "Ordering::{} has no `// mkss-lint: ordering — reason` note \
                     justifying this strength",
                    t.text
                ),
            )),
        }
    }

    for (slot, &line) in notes.iter().enumerate() {
        if !used[slot] && !ctx.in_test_span(line) {
            out.push(ctx.finding(
                line,
                ATOMIC_ORDERING_ANNOTATED,
                "ordering note justifies no Ordering:: site; remove it".to_string(),
            ));
        }
    }
}
