//! The baseline mechanism: lets a *new* rule land as a hard CI error
//! without a big-bang cleanup. A checked-in baseline file absorbs a
//! known set of findings — matched findings are counted as
//! `baselined` instead of failing the run — while anything *new*
//! still fails, and a baseline entry that matches nothing is **stale**
//! and fails too, so debt can only shrink.
//!
//! Format (line-oriented, `#` comments, tab- or space-separated):
//!
//! ```text
//! # mkss-lint baseline — regenerate with --write-baseline
//! MKSS-L013  3  crates/obs/src/event.rs
//! MKSS-L011  crates/sim/src/engine.rs      # count defaults to 1
//! ```
//!
//! This repo's policy (enforced by `tests/workspace_clean.rs`) is a
//! **zero-entry** baseline at merge: every suppression must be a
//! per-site reasoned allow. The mechanism exists for rule rollout
//! inside a PR, not as a place for debt to live.

use crate::rules::Finding;
use crate::LintReport;
use std::collections::BTreeMap;

/// One baseline line: up to `count` findings with this code in this
/// file are absorbed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub code: String,
    pub path: String,
    pub count: usize,
}

/// A parsed baseline file.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    pub entries: Vec<Entry>,
}

/// Parses baseline text; malformed lines are hard errors (a typo must
/// not silently absorb nothing).
pub fn parse(text: &str) -> Result<Baseline, String> {
    let mut entries = Vec::new();
    for (n, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let code = parts.next().unwrap_or("").to_string();
        let (count, path) = match (parts.next(), parts.next()) {
            (Some(c), Some(p)) => match c.parse::<usize>() {
                Ok(k) => (k, p.to_string()),
                Err(_) => return Err(format!("baseline line {}: bad count `{c}`", n + 1)),
            },
            (Some(p), None) => (1, p.to_string()),
            _ => {
                return Err(format!(
                    "baseline line {}: expected CODE [COUNT] PATH",
                    n + 1
                ))
            }
        };
        if !code.starts_with("MKSS-L") {
            return Err(format!(
                "baseline line {}: `{code}` is not an MKSS-Lnnn code",
                n + 1
            ));
        }
        if parts.next().is_some() {
            return Err(format!("baseline line {}: trailing fields", n + 1));
        }
        entries.push(Entry { code, path, count });
    }
    Ok(Baseline { entries })
}

/// Aggregates a report's findings into baseline entries (one per
/// code+path, with a count).
pub fn from_report(report: &LintReport) -> Baseline {
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for f in &report.findings {
        *counts
            .entry((f.code().to_string(), f.path.clone()))
            .or_insert(0) += 1;
    }
    Baseline {
        entries: counts
            .into_iter()
            .map(|((code, path), count)| Entry { code, path, count })
            .collect(),
    }
}

/// Renders a baseline file (with the regeneration header).
pub fn render(b: &Baseline) -> String {
    let mut s = String::from(
        "# mkss-lint baseline — absorbed findings (CODE [COUNT] PATH).\n\
         # Regenerate with: cargo run -p mkss-lint -- --write-baseline lint-baseline.txt\n\
         # Policy: this file is empty at merge; every suppression is a\n\
         # per-site `mkss-lint: allow(...)` with a reason.\n",
    );
    for e in &b.entries {
        s.push_str(&format!("{}\t{}\t{}\n", e.code, e.count, e.path));
    }
    s
}

impl Baseline {
    /// Removes baselined findings from `report` (bumping
    /// `report.baselined`) and returns the stale entries — baseline
    /// lines whose budget was not fully consumed. Stale entries must
    /// fail the run: the debt they tracked is gone.
    pub fn apply(&self, report: &mut LintReport) -> Vec<Entry> {
        let mut remaining: BTreeMap<(String, String), usize> = BTreeMap::new();
        for e in &self.entries {
            *remaining
                .entry((e.code.clone(), e.path.clone()))
                .or_insert(0) += e.count;
        }
        let mut baselined = 0usize;
        let absorb = |f: &Finding, remaining: &mut BTreeMap<(String, String), usize>| -> bool {
            let key = (f.code().to_string(), f.path.clone());
            match remaining.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    true
                }
                _ => false,
            }
        };
        report.findings.retain(|f| {
            let hit = absorb(f, &mut remaining);
            if hit {
                baselined += 1;
            }
            !hit
        });
        report.baselined += baselined;
        remaining
            .into_iter()
            .filter(|(_, n)| *n > 0)
            .map(|((code, path), count)| Entry { code, path, count })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Finding, NONDETERMINISM, NO_UNWRAP_IN_LIB};

    fn report() -> LintReport {
        LintReport {
            findings: vec![
                Finding {
                    path: "a.rs".into(),
                    line: 1,
                    rule: NO_UNWRAP_IN_LIB,
                    message: "m".into(),
                },
                Finding {
                    path: "a.rs".into(),
                    line: 2,
                    rule: NO_UNWRAP_IN_LIB,
                    message: "m".into(),
                },
                Finding {
                    path: "b.rs".into(),
                    line: 3,
                    rule: NONDETERMINISM,
                    message: "m".into(),
                },
            ],
            ..LintReport::default()
        }
    }

    #[test]
    fn parse_apply_roundtrip() {
        let mut r = report();
        let b = from_report(&r);
        let rendered = render(&b);
        let b2 = parse(&rendered).unwrap();
        let stale = b2.apply(&mut r);
        assert!(r.findings.is_empty());
        assert_eq!(r.baselined, 3);
        assert!(stale.is_empty());
    }

    #[test]
    fn partial_absorb_and_stale() {
        let mut r = report();
        let b = parse("MKSS-L002 1 a.rs\nMKSS-L003 2 b.rs\n").unwrap();
        let stale = b.apply(&mut r);
        // One L002 absorbed, one left; one of two L003 budget used.
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.baselined, 2);
        assert_eq!(
            stale,
            vec![Entry {
                code: "MKSS-L003".into(),
                path: "b.rs".into(),
                count: 1
            }]
        );
    }

    #[test]
    fn malformed_lines_error() {
        assert!(parse("L002 a.rs").is_err());
        assert!(parse("MKSS-L002 x a.rs").is_err());
        assert!(parse("MKSS-L002 1 a.rs extra").is_err());
        assert!(parse("# just comments\n\n").unwrap().entries.is_empty());
    }
}
