//! Machine-readable report emission: a hand-rolled JSON writer in the
//! same zero-dependency style as `serve::json` (which is the parser
//! side of this format — the CLI test round-trips one through the
//! other). Shape, version-gated for downstream tooling:
//!
//! ```text
//! {
//!   "version": 1,
//!   "findings": [
//!     {"path": "...", "line": 7, "code": "MKSS-L002",
//!      "rule": "no-unwrap-in-lib", "message": "..."}
//!   ],
//!   "counts": {"findings": 1, "suppressed": 12,
//!              "baselined": 0, "files": 120}
//! }
//! ```

use crate::rules::Finding;
use crate::LintReport;

/// Report format version; bump only on breaking shape changes.
pub const FORMAT_VERSION: u32 = 1;

/// Renders the full report as a single JSON document (trailing
/// newline included, findings in their sorted order).
pub fn to_json(report: &LintReport) -> String {
    let mut s = String::with_capacity(256 + report.findings.len() * 128);
    s.push_str("{\n  \"version\": ");
    s.push_str(&FORMAT_VERSION.to_string());
    s.push_str(",\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    ");
        push_finding(&mut s, f);
    }
    if !report.findings.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n  \"counts\": {");
    s.push_str(&format!(
        "\"findings\": {}, \"suppressed\": {}, \"baselined\": {}, \"files\": {}",
        report.findings.len(),
        report.suppressed,
        report.baselined,
        report.files
    ));
    s.push_str("}\n}\n");
    s
}

fn push_finding(s: &mut String, f: &Finding) {
    s.push_str("{\"path\": ");
    push_json_str(s, &f.path);
    s.push_str(&format!(", \"line\": {}", f.line));
    s.push_str(", \"code\": ");
    push_json_str(s, f.code());
    s.push_str(", \"rule\": ");
    push_json_str(s, f.rule);
    s.push_str(", \"message\": ");
    push_json_str(s, &f.message);
    s.push('}');
}

/// JSON string escaping: quotes, backslashes, and control characters.
fn push_json_str(s: &mut String, v: &str) {
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Finding;

    #[test]
    fn escapes_and_shape() {
        let report = LintReport {
            findings: vec![Finding {
                path: "a\\b.rs".into(),
                line: 3,
                rule: crate::rules::NO_UNWRAP_IN_LIB,
                message: "say \"no\"\n".into(),
            }],
            suppressed: 2,
            baselined: 1,
            files: 5,
        };
        let j = to_json(&report);
        assert!(j.contains(r#""code": "MKSS-L002""#));
        assert!(j.contains(r#""path": "a\\b.rs""#));
        assert!(j.contains(r#"say \"no\"\n"#));
        assert!(j.contains(r#""suppressed": 2, "baselined": 1, "files": 5"#));
    }

    #[test]
    fn empty_report_is_flat() {
        let j = to_json(&LintReport::default());
        assert!(j.contains("\"findings\": []"));
    }
}
