//! The item-level layer of mkss-lint: a lightweight parser that turns
//! the token stream into a tree of *items* (fns, impls, structs, enums,
//! traits, mods, uses) with brace-matched body spans, plus a
//! workspace-wide [`ItemGraph`] shared by every rule.
//!
//! This is deliberately not a full Rust parser. It recognises item
//! *skeletons* — attributes, visibility, the declaring keyword, the
//! name, and the balanced `{…}` body — and stays heuristic about
//! everything inside expression position. On anything it does not
//! understand it skips a token and resynchronises, so a novel construct
//! degrades to "no item recorded", never to a crash or a false claim.
//!
//! What the rules get out of it:
//!
//! * `pub-api-hygiene` walks [`Item`]s with effective visibility
//!   (a `pub` fn inside a private mod is not API) and doc placement;
//! * `float-fold-determinism` resolves struct fields and float
//!   newtypes (`Energy(f64)`) through [`ItemGraph::float_fields`] /
//!   [`ItemGraph::float_newtypes`], and return types through the
//!   enclosing fn signature span;
//! * `lock-discipline` and `condvar-wait-in-loop` analyse one fn body
//!   at a time via [`FileItems::fn_bodies`];
//! * `use` declarations are resolved workspace-locally
//!   ([`ItemGraph::resolve`]) so aliased imports (`use std::error::Error
//!   as StdError`) do not defeat name-based rules.

use crate::lexer::{Lexed, Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// Item visibility as written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    /// `pub`
    Pub,
    /// `pub(crate)` / `pub(super)` / `pub(in …)`
    Scoped,
    /// No visibility keyword.
    Private,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    Fn,
    Struct,
    Union,
    Enum,
    Trait,
    TypeAlias,
    Const,
    Static,
    Mod,
    Impl,
    Macro,
}

/// One parsed item skeleton.
#[derive(Debug, Clone)]
pub struct Item {
    pub kind: ItemKind,
    /// Declared name; for impls the self-type name instead.
    pub name: String,
    pub vis: Vis,
    /// Index of the item's first token (first attribute, visibility,
    /// or keyword token).
    pub first_tok: usize,
    /// Line of the declaring keyword.
    pub line: u32,
    /// Token indices of the `{` and matching `}` of the body, if any.
    pub body: Option<(usize, usize)>,
    /// True when the item is documented: a doc comment ends on the
    /// line directly above its first token, or it carries `#[doc…]`.
    pub doc: bool,
    /// True when the item carries `#[non_exhaustive]`.
    pub non_exhaustive: bool,
    /// Index into [`FileItems::items`] of the enclosing mod/impl.
    pub parent: Option<usize>,
    /// Impls only: true for `impl Trait for Type`.
    pub trait_impl: bool,
}

/// One `use` declaration, flattened (groups expanded).
#[derive(Debug, Clone)]
pub struct UseDecl {
    pub line: u32,
    /// Full path segments, e.g. `["std", "error", "Error"]`.
    pub segments: Vec<String>,
    /// The name the import binds (`as` alias, last segment, or `*`).
    pub alias: String,
}

/// A struct's fields, for the float-propagation analysis.
#[derive(Debug, Clone)]
pub struct StructInfo {
    pub name: String,
    pub vis: Vis,
    /// Named fields as `(name, type head)` — the head is the last path
    /// segment of the field's type (`Energy` for `crate::power::Energy`,
    /// `f64` for `[f64; 2]`).
    pub fields: Vec<(String, String)>,
    /// Tuple-struct element type heads, in order.
    pub tuple_heads: Vec<String>,
}

/// Everything the parser extracts from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    pub items: Vec<Item>,
    pub uses: Vec<UseDecl>,
    pub structs: Vec<StructInfo>,
    /// True when the file opens with `//!` module docs.
    pub module_doc: bool,
}

impl FileItems {
    /// Effective visibility: `pub` only when the item and every
    /// enclosing mod are `pub`. Items inside impls take the impl's
    /// enclosing mods into account (the impl itself has no vis).
    pub fn effectively_pub(&self, idx: usize) -> bool {
        let mut cur = Some(idx);
        while let Some(i) = cur {
            let it = &self.items[i];
            if it.kind != ItemKind::Impl && it.vis != Vis::Pub {
                return false;
            }
            cur = it.parent;
        }
        true
    }

    /// Token ranges `(sig_start, open, close)` of every fn body: the
    /// signature starts at the fn's first token, the body is
    /// `toks[open..=close]` with braces included.
    pub fn fn_bodies(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        self.items.iter().filter_map(|it| {
            if it.kind != ItemKind::Fn {
                return None;
            }
            it.body.map(|(open, close)| (it.first_tok, open, close))
        })
    }

    /// The impl item enclosing `idx`, if any.
    pub fn enclosing_impl(&self, idx: usize) -> Option<&Item> {
        let mut cur = self.items[idx].parent;
        while let Some(i) = cur {
            if self.items[i].kind == ItemKind::Impl {
                return Some(&self.items[i]);
            }
            cur = self.items[i].parent;
        }
        None
    }
}

/// Parses one lexed file into its item skeletons.
pub fn parse<'a>(lexed: &Lexed<'a>) -> FileItems {
    let directive_lines: Vec<u32> = lexed.directives.iter().map(|d| d.line).collect();
    let mut p = P {
        toks: &lexed.toks,
        doc_lines: &lexed.doc_lines,
        directive_lines,
        out: FileItems {
            module_doc: lexed.module_doc,
            ..FileItems::default()
        },
    };
    p.items_in(0, lexed.toks.len(), None);
    p.out
}

struct P<'a, 't> {
    toks: &'t [Tok<'a>],
    doc_lines: &'t [u32],
    /// Lines holding `mkss-lint:` directives, in file order (sorted).
    directive_lines: Vec<u32>,
    out: FileItems,
}

impl<'a, 't> P<'a, 't> {
    fn tok(&self, i: usize) -> Tok<'a> {
        const NONE: Tok<'static> = Tok {
            kind: TokKind::Punct('\0'),
            text: "",
            line: 0,
            start: 0,
            end: 0,
        };
        self.toks.get(i).copied().unwrap_or(NONE)
    }

    fn items_in(&mut self, mut i: usize, hi: usize, parent: Option<usize>) {
        while i < hi {
            i = self.item_at(i, hi, parent);
        }
    }

    /// Parses one item starting at `i`; returns the index past it. On
    /// anything unrecognised, advances one token (resynchronisation).
    fn item_at(&mut self, i: usize, hi: usize, parent: Option<usize>) -> usize {
        let first = i;
        let mut j = i;

        // Attributes. `#![…]` inner attributes are skipped the same way.
        let mut non_exhaustive = false;
        let mut doc_attr = false;
        loop {
            let inner = self.tok(j).is_punct('#') && self.tok(j + 1).is_punct('!');
            let open = if inner { j + 2 } else { j + 1 };
            if j < hi && self.tok(j).is_punct('#') && self.tok(open).is_punct('[') {
                let (end, ne, doc) = self.scan_attr(open, hi);
                non_exhaustive |= ne && !inner;
                doc_attr |= doc && !inner;
                j = end;
            } else {
                break;
            }
        }

        // Visibility.
        let mut vis = Vis::Private;
        if self.tok(j).is_ident("pub") {
            vis = Vis::Pub;
            j += 1;
            if self.tok(j).is_punct('(') {
                vis = Vis::Scoped;
                j = self.skip_balanced(j, '(', ')', hi);
            }
        }

        // Modifier keywords before the declaring keyword.
        loop {
            let t = self.tok(j);
            if t.is_ident("unsafe") || t.is_ident("async") || t.is_ident("default") {
                j += 1;
            } else if t.is_ident("extern") && !self.tok(j + 1).is_ident("crate") {
                j += 1;
                if self.tok(j).kind == TokKind::Literal {
                    j += 1; // the ABI string: extern "C" fn …
                }
            } else if t.is_ident("const")
                && (self.tok(j + 1).is_ident("fn") || self.tok(j + 1).is_ident("unsafe"))
            {
                j += 1; // `const fn` / `const unsafe fn`
            } else {
                break;
            }
        }

        let kw = self.tok(j);
        if kw.kind != TokKind::Ident {
            return j.max(first) + 1;
        }
        let doc = doc_attr || self.doc_above(first);
        match kw.text {
            "fn" => self.finish_fn(first, j, hi, vis, doc, non_exhaustive, parent),
            "struct" | "union" => {
                self.finish_struct(first, j, hi, vis, doc, non_exhaustive, parent)
            }
            "enum" | "trait" => {
                let kind = if kw.text == "enum" {
                    ItemKind::Enum
                } else {
                    ItemKind::Trait
                };
                let name = self.tok(j + 1).text.to_string();
                let (body, end) = self.find_body_or_semi(j + 2, hi);
                self.push_item(Item {
                    kind,
                    name,
                    vis,
                    first_tok: first,
                    line: kw.line,
                    body,
                    doc,
                    non_exhaustive,
                    parent,
                    trait_impl: false,
                });
                end
            }
            "impl" => self.finish_impl(first, j, hi, doc, parent),
            "mod" => {
                let name = self.tok(j + 1).text.to_string();
                let (body, end) = self.find_body_or_semi(j + 2, hi);
                let idx = self.push_item(Item {
                    kind: ItemKind::Mod,
                    name,
                    vis,
                    first_tok: first,
                    line: kw.line,
                    body,
                    doc,
                    non_exhaustive,
                    parent,
                    trait_impl: false,
                });
                if let Some((open, close)) = body {
                    self.items_in(open + 1, close, Some(idx));
                }
                end
            }
            "use" => self.finish_use(j, hi),
            "const" | "static" => {
                let mut n = j + 1;
                if self.tok(n).is_ident("mut") {
                    n += 1;
                }
                let name = self.tok(n).text.to_string();
                let kind = if kw.text == "const" {
                    ItemKind::Const
                } else {
                    ItemKind::Static
                };
                let end = self.skip_to_semi(n + 1, hi);
                self.push_item(Item {
                    kind,
                    name,
                    vis,
                    first_tok: first,
                    line: kw.line,
                    body: None,
                    doc,
                    non_exhaustive,
                    parent,
                    trait_impl: false,
                });
                end
            }
            "type" => {
                let name = self.tok(j + 1).text.to_string();
                let end = self.skip_to_semi(j + 2, hi);
                self.push_item(Item {
                    kind: ItemKind::TypeAlias,
                    name,
                    vis,
                    first_tok: first,
                    line: kw.line,
                    body: None,
                    doc,
                    non_exhaustive,
                    parent,
                    trait_impl: false,
                });
                end
            }
            "macro_rules" => {
                // macro_rules! name { … }
                let name = self.tok(j + 2).text.to_string();
                let (body, end) = self.find_body_or_semi(j + 3, hi);
                self.push_item(Item {
                    kind: ItemKind::Macro,
                    name,
                    vis,
                    first_tok: first,
                    line: kw.line,
                    body,
                    doc,
                    non_exhaustive,
                    parent,
                    trait_impl: false,
                });
                end
            }
            _ => j + 1,
        }
    }

    fn push_item(&mut self, item: Item) -> usize {
        self.out.items.push(item);
        self.out.items.len() - 1
    }

    /// True when a doc comment ends on the line directly above token
    /// `first`'s line. Lint directives are ordinary comments to rustc,
    /// so `/// doc` → `// mkss-lint: allow(…)` → `pub fn` still counts
    /// as documented: directive-only lines are skipped while walking up.
    fn doc_above(&self, first: usize) -> bool {
        let mut line = self.tok(first).line;
        while line > 1 && self.directive_lines.binary_search(&(line - 1)).is_ok() {
            line -= 1;
        }
        line > 1 && self.doc_lines.binary_search(&(line - 1)).is_ok()
    }

    /// Scans one `[…]` attribute body starting at the `[`; returns
    /// (index past `]`, is-non_exhaustive, is-doc).
    fn scan_attr(&self, open: usize, hi: usize) -> (usize, bool, bool) {
        let mut depth = 0usize;
        let mut ne = false;
        let mut doc = false;
        let mut j = open;
        while j < hi {
            match self.tok(j).kind {
                TokKind::Punct('[') => depth += 1,
                TokKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        return (j + 1, ne, doc);
                    }
                }
                TokKind::Ident => {
                    let t = self.tok(j).text;
                    ne |= t == "non_exhaustive";
                    doc |= t == "doc" && j == open + 1;
                }
                _ => {}
            }
            j += 1;
        }
        (hi, ne, doc)
    }

    /// Skips a balanced `open…close` group starting at `open`'s index;
    /// returns the index past the closer.
    fn skip_balanced(&self, at: usize, open: char, close: char, hi: usize) -> usize {
        let mut depth = 0usize;
        let mut j = at;
        while j < hi {
            if self.tok(j).is_punct(open) {
                depth += 1;
            } else if self.tok(j).is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        hi
    }

    /// From `from`, finds either a `;` or the first `{` at zero
    /// paren/bracket depth, skipping its balanced body. Returns
    /// (body token range, index past the item).
    fn find_body_or_semi(&self, from: usize, hi: usize) -> (Option<(usize, usize)>, usize) {
        let mut j = from;
        let mut depth = 0i32;
        while j < hi {
            match self.tok(j).kind {
                TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                TokKind::Punct(';') if depth <= 0 => return (None, j + 1),
                TokKind::Punct('{') if depth <= 0 => {
                    let end = self.skip_balanced(j, '{', '}', hi);
                    return (Some((j, end - 1)), end);
                }
                _ => {}
            }
            j += 1;
        }
        (None, hi)
    }

    /// Skips to the `;` terminating a const/static/type item, balancing
    /// every bracket kind (initialisers may contain `{ … }` blocks).
    fn skip_to_semi(&self, from: usize, hi: usize) -> usize {
        let mut j = from;
        let mut depth = 0i32;
        while j < hi {
            match self.tok(j).kind {
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => depth -= 1,
                TokKind::Punct(';') if depth <= 0 => return j + 1,
                _ => {}
            }
            j += 1;
        }
        hi
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_fn(
        &mut self,
        first: usize,
        kw: usize,
        hi: usize,
        vis: Vis,
        doc: bool,
        non_exhaustive: bool,
        parent: Option<usize>,
    ) -> usize {
        let name = self.tok(kw + 1).text.to_string();
        let (body, end) = self.find_body_or_semi(kw + 2, hi);
        self.push_item(Item {
            kind: ItemKind::Fn,
            name,
            vis,
            first_tok: first,
            line: self.tok(kw).line,
            body,
            doc,
            non_exhaustive,
            parent,
            trait_impl: false,
        });
        end
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_struct(
        &mut self,
        first: usize,
        kw: usize,
        hi: usize,
        vis: Vis,
        doc: bool,
        non_exhaustive: bool,
        parent: Option<usize>,
    ) -> usize {
        let name = self.tok(kw + 1).text.to_string();
        let kind = if self.tok(kw).text == "union" {
            ItemKind::Union
        } else {
            ItemKind::Struct
        };
        let mut j = kw + 2;
        if self.tok(j).is_punct('<') {
            j = self.skip_generics(j, hi);
        }
        let mut info = StructInfo {
            name: name.clone(),
            vis,
            fields: Vec::new(),
            tuple_heads: Vec::new(),
        };
        let (body, end);
        if self.tok(j).is_punct('(') {
            // Tuple struct: element heads, then `;` (maybe a where
            // clause in between).
            let close = self.skip_balanced(j, '(', ')', hi) - 1;
            info.tuple_heads = self.tuple_elem_heads(j + 1, close);
            body = None;
            end = self.skip_to_semi(close + 1, hi);
        } else if self.tok(j).is_ident("where") || self.tok(j).is_punct('{') {
            while j < hi && !self.tok(j).is_punct('{') && !self.tok(j).is_punct(';') {
                j += 1;
            }
            if self.tok(j).is_punct('{') {
                let close = self.skip_balanced(j, '{', '}', hi) - 1;
                info.fields = self.named_field_heads(j + 1, close);
                body = Some((j, close));
                end = close + 1;
            } else {
                body = None;
                end = (j + 1).min(hi);
            }
        } else {
            // Unit struct `struct X;`.
            body = None;
            end = self.skip_to_semi(j, hi);
        }
        self.out.structs.push(info);
        self.push_item(Item {
            kind,
            name,
            vis,
            first_tok: first,
            line: self.tok(kw).line,
            body,
            doc,
            non_exhaustive,
            parent,
            trait_impl: false,
        });
        end
    }

    /// Skips a `<…>` generics group, `->`-aware (the `>` of an arrow
    /// inside `Fn() -> T` bounds is not a closer).
    fn skip_generics(&self, at: usize, hi: usize) -> usize {
        let mut depth = 0i32;
        let mut j = at;
        while j < hi {
            let t = self.tok(j);
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                let arrow = j > 0 && self.tok(j - 1).is_punct('-') && self.tok(j - 1).adjacent(&t);
                if !arrow {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
            }
            j += 1;
        }
        hi
    }

    /// Type heads of a tuple struct's elements between `(`+1 and `)`.
    fn tuple_elem_heads(&self, lo: usize, close: usize) -> Vec<String> {
        let mut heads = Vec::new();
        let mut j = lo;
        let mut start = lo;
        let mut depth = 0i32;
        while j <= close {
            let t = self.tok(j);
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
                depth -= 1;
            }
            if (t.is_punct(',') && depth == 0) || j == close {
                if start < j {
                    heads.push(self.type_head(start, j));
                }
                start = j + 1;
            }
            j += 1;
        }
        heads
    }

    /// Named struct fields between `{`+1 and `}` as (name, type head).
    fn named_field_heads(&self, lo: usize, close: usize) -> Vec<(String, String)> {
        let mut fields = Vec::new();
        let mut j = lo;
        while j < close {
            // Skip attributes and visibility on the field.
            while self.tok(j).is_punct('#') && self.tok(j + 1).is_punct('[') {
                j = self.skip_balanced(j + 1, '[', ']', close + 1);
            }
            if self.tok(j).is_ident("pub") {
                j += 1;
                if self.tok(j).is_punct('(') {
                    j = self.skip_balanced(j, '(', ')', close + 1);
                }
            }
            if self.tok(j).kind == TokKind::Ident && self.tok(j + 1).is_punct(':') {
                let name = self.tok(j).text.to_string();
                let ty_start = j + 2;
                // Field type runs to the `,` at depth 0 or the `}`.
                let mut depth = 0i32;
                let mut k = ty_start;
                while k < close {
                    let t = self.tok(k);
                    if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') || t.is_punct('{') {
                        depth += 1;
                    } else if t.is_punct(')')
                        || t.is_punct(']')
                        || t.is_punct('}')
                        || (t.is_punct('>')
                            && !(k > 0
                                && self.tok(k - 1).is_punct('-')
                                && self.tok(k - 1).adjacent(&t)))
                    {
                        depth -= 1;
                    } else if t.is_punct(',') && depth <= 0 {
                        break;
                    }
                    k += 1;
                }
                fields.push((name, self.type_head(ty_start, k)));
                j = k + 1;
            } else {
                j += 1;
            }
        }
        fields
    }

    /// The head of a type token run: the last segment of its first
    /// path, skipping reference/array/pointer/qualifier noise.
    /// `&'a mut crate::power::Energy` → `Energy`; `[f64; 2]` → `f64`;
    /// `Vec<Finding>` → `Vec`.
    fn type_head(&self, lo: usize, hi: usize) -> String {
        let mut j = lo;
        while j < hi {
            let t = self.tok(j);
            // Tuple elements carry their own visibility (`Energy(pub f64)`).
            if t.is_ident("pub") {
                j += 1;
                if self.tok(j).is_punct('(') {
                    j = self.skip_balanced(j, '(', ')', hi);
                }
                continue;
            }
            let skip = matches!(t.kind, TokKind::Punct('&' | '*' | '[' | '(' | '<'))
                || t.is_ident("dyn")
                || t.is_ident("mut")
                || t.is_ident("impl")
                || t.is_ident("const");
            if !skip {
                break;
            }
            j += 1;
        }
        if self.tok(j).kind != TokKind::Ident {
            return String::new();
        }
        let mut head = self.tok(j).text;
        // Follow `::` segments to the path's last ident.
        while self.tok(j + 1).is_punct(':')
            && self.tok(j + 2).is_punct(':')
            && self.tok(j + 3).kind == TokKind::Ident
            && j + 3 < hi
        {
            head = self.tok(j + 3).text;
            j += 3;
        }
        head.to_string()
    }

    fn finish_impl(
        &mut self,
        first: usize,
        kw: usize,
        hi: usize,
        doc: bool,
        parent: Option<usize>,
    ) -> usize {
        let mut j = kw + 1;
        if self.tok(j).is_punct('<') {
            j = self.skip_generics(j, hi);
        }
        // Read the head until `{` / `where`, noting a depth-0 `for`.
        let mut depth = 0i32;
        let mut for_at: Option<usize> = None;
        let head_start = j;
        while j < hi {
            let t = self.tok(j);
            if t.is_punct('<') || t.is_punct('(') || t.is_punct('[') {
                // `->` arrows: `>` handled below, `<` always opens.
                depth += 1;
            } else if t.is_punct('>') {
                let arrow = j > 0 && self.tok(j - 1).is_punct('-') && self.tok(j - 1).adjacent(&t);
                if !arrow {
                    depth -= 1;
                }
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if depth <= 0 && t.is_ident("for") {
                for_at = Some(j);
            } else if depth <= 0 && (t.is_punct('{') || t.is_ident("where")) {
                break;
            }
            j += 1;
        }
        let ty_start = for_at.map_or(head_start, |f| f + 1);
        let self_ty = self.last_depth0_ident(ty_start, j);
        while j < hi && !self.tok(j).is_punct('{') {
            j += 1;
        }
        let (body, end) = if self.tok(j).is_punct('{') {
            let close = self.skip_balanced(j, '{', '}', hi) - 1;
            (Some((j, close)), close + 1)
        } else {
            (None, hi)
        };
        let idx = self.push_item(Item {
            kind: ItemKind::Impl,
            name: self_ty,
            vis: Vis::Private,
            first_tok: first,
            line: self.tok(kw).line,
            body,
            doc,
            non_exhaustive: false,
            parent,
            trait_impl: for_at.is_some(),
        });
        if let Some((open, close)) = body {
            self.items_in(open + 1, close, Some(idx));
        }
        end
    }

    /// Last identifier at angle-depth 0 in `lo..hi` (the self-type name
    /// of an impl head: `Vec<Finding>` → `Vec`).
    fn last_depth0_ident(&self, lo: usize, hi: usize) -> String {
        let mut depth = 0i32;
        let mut last = "";
        for j in lo..hi {
            let t = self.tok(j);
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                let arrow = j > 0 && self.tok(j - 1).is_punct('-') && self.tok(j - 1).adjacent(&t);
                if !arrow {
                    depth -= 1;
                }
            } else if depth <= 0 && t.kind == TokKind::Ident && !t.is_ident("where") {
                last = t.text;
            }
        }
        last.to_string()
    }

    /// Parses `use …;` (groups, globs, aliases) into [`UseDecl`]s.
    fn finish_use(&mut self, kw: usize, hi: usize) -> usize {
        let end = self.skip_to_semi(kw + 1, hi);
        let line = self.tok(kw).line;
        let mut prefix: Vec<String> = Vec::new();
        self.use_tree(kw + 1, end.saturating_sub(1), &mut prefix, line);
        end
    }

    /// One use-tree between `lo..hi` (exclusive of the trailing `;`).
    fn use_tree(&mut self, mut lo: usize, hi: usize, prefix: &mut Vec<String>, line: u32) {
        let depth_before = prefix.len();
        loop {
            let t = self.tok(lo);
            if t.kind == TokKind::Ident && !t.is_ident("as") {
                prefix.push(t.text.to_string());
                lo += 1;
                if self.tok(lo).is_punct(':') && self.tok(lo + 1).is_punct(':') {
                    lo += 2;
                    continue;
                }
            }
            break;
        }
        let t = self.tok(lo);
        if t.is_punct('{') && lo < hi {
            // Group: split at depth-0 commas.
            let close = self.skip_balanced(lo, '{', '}', hi + 1) - 1;
            let mut start = lo + 1;
            let mut depth = 0i32;
            for j in lo + 1..=close.min(hi) {
                let t = self.tok(j);
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') && j != close {
                    depth -= 1;
                }
                if (t.is_punct(',') && depth == 0) || j == close {
                    if start < j {
                        self.use_tree(start, j, prefix, line);
                    }
                    start = j + 1;
                }
            }
        } else if t.is_punct('*') {
            self.emit_use(prefix, "*", line);
        } else if t.is_ident("as") && self.tok(lo + 1).kind == TokKind::Ident {
            let alias = self.tok(lo + 1).text.to_string();
            self.emit_use(prefix, &alias, line);
        } else if let Some(last) = prefix.last().cloned() {
            if last == "self" {
                let alias = prefix
                    .get(prefix.len().wrapping_sub(2))
                    .cloned()
                    .unwrap_or(last);
                self.emit_use(prefix, &alias, line);
            } else {
                self.emit_use(prefix, &last, line);
            }
        }
        prefix.truncate(depth_before);
    }

    fn emit_use(&mut self, segments: &[String], alias: &str, line: u32) {
        let segments: Vec<String> = segments.iter().filter(|s| *s != "self").cloned().collect();
        if segments.is_empty() {
            return;
        }
        self.out.uses.push(UseDecl {
            line,
            segments,
            alias: alias.to_string(),
        });
    }
}

// ---------------------------------------------------------------------
// The workspace-wide item graph
// ---------------------------------------------------------------------

/// Cross-file facts every rule can consult. Collections are BTree so
/// iteration (and therefore reporting) is deterministic.
#[derive(Debug, Default)]
pub struct ItemGraph {
    /// Tuple structs in library crates whose elements are floats
    /// (`struct Energy(f64)`), closed transitively.
    pub float_newtypes: BTreeSet<String>,
    /// Named struct fields in library crates whose type head is a
    /// float or a float newtype.
    pub float_fields: BTreeSet<String>,
    /// `pub` struct/enum/trait/union names declared in library crates.
    pub pub_types: BTreeSet<String>,
    /// Per file: does it open with `//!` module docs?
    module_docs: BTreeMap<String, bool>,
    /// `file-path|alias` → full `::`-joined import path.
    aliases: BTreeMap<String, String>,
}

impl ItemGraph {
    /// Builds the graph over every parsed file in the lint universe.
    pub fn build(files: &[(&str, &FileItems)]) -> ItemGraph {
        let mut g = ItemGraph::default();
        for (path, items) in files {
            g.module_docs.insert((*path).to_string(), items.module_doc);
            for u in &items.uses {
                g.aliases
                    .insert(format!("{path}|{}", u.alias), u.segments.join("::"));
            }
            if !crate::rules::scope::in_lib_crate(path) {
                continue;
            }
            for (i, it) in items.items.iter().enumerate() {
                let type_like = matches!(
                    it.kind,
                    ItemKind::Struct | ItemKind::Enum | ItemKind::Trait | ItemKind::Union
                );
                if type_like && items.effectively_pub(i) {
                    g.pub_types.insert(it.name.clone());
                }
            }
        }
        // Float newtypes close transitively (`struct J(Energy)`); two
        // rounds reach a fixpoint for any sane nesting depth.
        for _ in 0..3 {
            let mut changed = false;
            for (path, items) in files {
                if !crate::rules::scope::in_lib_crate(path) {
                    continue;
                }
                for s in &items.structs {
                    let floaty = s
                        .tuple_heads
                        .iter()
                        .any(|h| h == "f64" || h == "f32" || g.float_newtypes.contains(h));
                    if floaty && g.float_newtypes.insert(s.name.clone()) {
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        for (path, items) in files {
            if !crate::rules::scope::in_lib_crate(path) {
                continue;
            }
            for s in &items.structs {
                for (name, head) in &s.fields {
                    if head == "f64" || head == "f32" || g.float_newtypes.contains(head) {
                        g.float_fields.insert(name.clone());
                    }
                }
            }
        }
        g
    }

    /// Resolves `ident` as used in `file` through that file's imports:
    /// `resolve("crates/x/src/a.rs", "StdError")` →
    /// `Some("std::error::Error")` when `use std::error::Error as
    /// StdError;` is in scope.
    pub fn resolve(&self, file: &str, ident: &str) -> Option<&str> {
        self.aliases
            .get(&format!("{file}|{ident}"))
            .map(String::as_str)
    }

    /// Whether the file implementing `pub mod <name>;` declared in
    /// `decl_file` carries `//!` module docs. `None` when the module
    /// file is not in the lint universe (e.g. a path attribute).
    pub fn module_has_docs(&self, decl_file: &str, mod_name: &str) -> Option<bool> {
        let dir = decl_file.rsplit_once('/').map_or("", |(d, _)| d);
        let stem = decl_file
            .rsplit_once('/')
            .map_or(decl_file, |(_, f)| f)
            .trim_end_matches(".rs");
        let mut candidates = vec![
            format!("{dir}/{mod_name}.rs"),
            format!("{dir}/{mod_name}/mod.rs"),
        ];
        // `mod x;` inside lib.rs/main.rs/mod.rs resolves to siblings;
        // inside `foo.rs` it resolves to `foo/x.rs`.
        if stem != "lib" && stem != "main" && stem != "mod" {
            candidates.push(format!("{dir}/{stem}/{mod_name}.rs"));
            candidates.push(format!("{dir}/{stem}/{mod_name}/mod.rs"));
        }
        candidates
            .iter()
            .find_map(|c| self.module_docs.get(c.trim_start_matches('/')).copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> FileItems {
        parse(&lex(src))
    }

    #[test]
    fn fn_and_struct_skeletons() {
        let src = "\
/// Documented.
pub fn f(x: u32) -> u32 { x + 1 }
struct Energy(f64);
pub struct Row { pub wcet: u64, energy: crate::power::Energy }
";
        let fi = parse_src(src);
        let f = &fi.items[0];
        assert_eq!(
            (f.kind, f.name.as_str(), f.vis),
            (ItemKind::Fn, "f", Vis::Pub)
        );
        assert!(f.doc && f.body.is_some());
        let e = &fi.structs[0];
        assert_eq!(e.tuple_heads, vec!["f64"]);
        let r = &fi.structs[1];
        assert_eq!(
            r.fields,
            vec![
                ("wcet".to_string(), "u64".to_string()),
                ("energy".to_string(), "Energy".to_string())
            ]
        );
    }

    #[test]
    fn impls_and_nesting() {
        let src = "\
impl Display for Energy { fn fmt(&self) {} }
impl Energy { pub fn get(&self) -> f64 { self.0 } }
mod inner { pub fn hidden() {} }
pub mod outer { pub fn shown() {} }
";
        let fi = parse_src(src);
        let impls: Vec<_> = fi
            .items
            .iter()
            .filter(|i| i.kind == ItemKind::Impl)
            .collect();
        assert_eq!(impls.len(), 2);
        assert!(impls[0].trait_impl && impls[0].name == "Energy");
        assert!(!impls[1].trait_impl && impls[1].name == "Energy");
        let get = fi.items.iter().position(|i| i.name == "get").unwrap();
        assert!(fi.items[get].parent.is_some());
        assert!(fi.effectively_pub(get)); // inherent impl of pub path
        let hidden = fi.items.iter().position(|i| i.name == "hidden").unwrap();
        assert!(!fi.effectively_pub(hidden)); // private mod caps it
        let shown = fi.items.iter().position(|i| i.name == "shown").unwrap();
        assert!(fi.effectively_pub(shown));
    }

    #[test]
    fn use_groups_and_aliases() {
        let src = "use std::error::Error as StdError;\n\
                   use std::sync::{Arc, Mutex, atomic::{AtomicBool, Ordering}};\n\
                   use crate::power::*;\n";
        let fi = parse_src(src);
        let find = |alias: &str| {
            fi.uses
                .iter()
                .find(|u| u.alias == alias)
                .map(|u| u.segments.join("::"))
        };
        assert_eq!(find("StdError").as_deref(), Some("std::error::Error"));
        assert_eq!(find("Mutex").as_deref(), Some("std::sync::Mutex"));
        assert_eq!(
            find("Ordering").as_deref(),
            Some("std::sync::atomic::Ordering")
        );
        assert_eq!(find("*").as_deref(), Some("crate::power"));
    }

    #[test]
    fn enums_and_attrs() {
        let src = "\
#[non_exhaustive]\npub enum A { X }\n\
#[doc = \"hi\"]\npub enum B { Y }\n\
pub enum C { Z }\n";
        let fi = parse_src(src);
        assert!(fi.items[0].non_exhaustive);
        assert!(fi.items[1].doc && !fi.items[1].non_exhaustive);
        assert!(!fi.items[2].doc && !fi.items[2].non_exhaustive);
    }

    #[test]
    fn doc_above_multiline_attrs() {
        // The doc comment sits above a multi-line derive; the item is
        // still documented.
        let src = "/// Ticks.\n#[derive(\n    Clone,\n    Copy\n)]\npub struct Time(u64);\n";
        let fi = parse_src(src);
        let t = fi.items.iter().find(|i| i.name == "Time").unwrap();
        assert!(t.doc);
    }

    #[test]
    fn graph_float_propagation() {
        let a = parse_src("pub struct Energy(f64);\npub struct Joules(Energy);");
        let b = parse_src("pub struct S { idle: Joules, count: u64 }");
        let files = vec![
            ("crates/sim/src/power.rs", &a),
            ("crates/sim/src/engine.rs", &b),
        ];
        let g = ItemGraph::build(&files);
        assert!(g.float_newtypes.contains("Energy"));
        assert!(g.float_newtypes.contains("Joules"));
        assert!(g.float_fields.contains("idle"));
        assert!(!g.float_fields.contains("count"));
        assert!(g.pub_types.contains("Energy"));
    }

    #[test]
    fn fn_body_with_const_generics_and_closures() {
        let src = "pub fn f<const N: usize>(xs: [u8; N]) -> impl Fn(u32) -> u32 {\n\
                       move |x| x + xs.len() as u32\n\
                   }\nfn g();\n";
        let fi = parse_src(src);
        assert_eq!(fi.items.len(), 2);
        assert!(fi.items[0].body.is_some());
        assert!(fi.items[1].body.is_none());
    }
}
