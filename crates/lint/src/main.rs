//! `mkss-lint` CLI: lint the workspace (default) or explicit paths.
//!
//! ```text
//! mkss-lint [--root DIR] [--format text|json] [--out FILE]
//!           [--baseline FILE] [--write-baseline FILE]
//!           [--list-rules] [PATH…]
//! ```
//!
//! * no paths: walks every non-vendored `.rs` / `Cargo.toml` under the
//!   workspace root (found by ascending from the current directory);
//! * explicit paths: lints just those files/directories — used by the
//!   CI smoke that asserts a deliberately-bad file fails;
//! * `--format json` renders the machine-readable report (stable
//!   shape, see `DIAGNOSTICS.md`); `--out FILE` additionally writes
//!   the rendered report to a file (gitignored);
//! * `--baseline FILE` absorbs known findings (stale entries fail);
//!   `--write-baseline FILE` regenerates the file from this run;
//! * exit code: 0 clean, 1 findings or stale baseline entries,
//!   2 usage/IO error.

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

/// Writes to stdout, swallowing broken-pipe errors so `mkss-lint | head`
/// exits quietly instead of panicking in the default `print!` machinery.
fn emit(text: &str) {
    let _ = std::io::stdout().write_all(text.as_bytes());
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut out_file: Option<PathBuf> = None;
    let mut baseline_file: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--out" => match args.next() {
                Some(f) => out_file = Some(PathBuf::from(f)),
                None => return usage("--out needs a file"),
            },
            "--baseline" => match args.next() {
                Some(f) => baseline_file = Some(PathBuf::from(f)),
                None => return usage("--baseline needs a file"),
            },
            "--write-baseline" => match args.next() {
                Some(f) => write_baseline = Some(PathBuf::from(f)),
                None => return usage("--write-baseline needs a file"),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some(other) => return usage(&format!("unknown format `{other}`")),
                None => return usage("--format needs text|json"),
            },
            "--list-rules" => {
                for rule in mkss_lint::rules::RULES {
                    emit(&format!(
                        "{:<10} {:<26} {}\n",
                        rule.code,
                        rule.id,
                        squash(rule.summary)
                    ));
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => return usage(""),
            _ if arg.starts_with('-') => return usage(&format!("unknown flag {arg}")),
            _ => paths.push(PathBuf::from(arg)),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("mkss-lint: cannot read current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match mkss_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("mkss-lint: no workspace root above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = if paths.is_empty() {
        mkss_lint::lint_workspace(&root)
    } else {
        mkss_lint::lint_paths(&root, &paths)
    };
    let mut report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mkss-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(bp) = &write_baseline {
        let rendered = mkss_lint::baseline::render(&mkss_lint::baseline::from_report(&report));
        if let Err(e) = std::fs::write(bp, rendered) {
            eprintln!("mkss-lint: cannot write {}: {e}", bp.display());
            return ExitCode::from(2);
        }
        eprintln!("mkss-lint: baseline written to {}", bp.display());
    }

    let mut stale = Vec::new();
    if let Some(bp) = &baseline_file {
        let text = match std::fs::read_to_string(bp) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("mkss-lint: cannot read {}: {e}", bp.display());
                return ExitCode::from(2);
            }
        };
        let baseline = match mkss_lint::baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("mkss-lint: {e}");
                return ExitCode::from(2);
            }
        };
        stale = baseline.apply(&mut report);
    }

    let rendered = match format {
        Format::Json => mkss_lint::output::to_json(&report),
        Format::Text => {
            let mut s = String::new();
            for f in &report.findings {
                s.push_str(&f.to_string());
                s.push('\n');
            }
            s
        }
    };
    emit(&rendered);
    if let Some(out) = out_file {
        if let Err(e) = std::fs::write(&out, &rendered) {
            eprintln!("mkss-lint: cannot write {}: {e}", out.display());
            return ExitCode::from(2);
        }
    }
    for e in &stale {
        eprintln!(
            "mkss-lint: stale baseline entry {} {} {} — the debt it absorbed is gone; \
             remove the line",
            e.code, e.count, e.path
        );
    }
    eprintln!(
        "mkss-lint: {} finding{} ({} suppressed by allow annotations, {} baselined) \
         across {} files",
        report.findings.len(),
        if report.findings.len() == 1 { "" } else { "s" },
        report.suppressed,
        report.baselined,
        report.files,
    );
    if report.is_clean() && stale.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn squash(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("mkss-lint: {err}");
    }
    eprintln!(
        "usage: mkss-lint [--root DIR] [--format text|json] [--out FILE] \
         [--baseline FILE] [--write-baseline FILE] [--list-rules] [PATH…]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
