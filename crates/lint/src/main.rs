//! `mkss-lint` CLI: lint the workspace (default) or explicit paths.
//!
//! ```text
//! mkss-lint [--root DIR] [--out FILE] [--list-rules] [PATH…]
//! ```
//!
//! * no paths: walks every non-vendored `.rs` / `Cargo.toml` under the
//!   workspace root (found by ascending from the current directory);
//! * explicit paths: lints just those files/directories — used by the
//!   CI smoke that asserts a deliberately-bad file fails;
//! * `--out FILE` additionally writes the findings as a plain-text
//!   report (the file is gitignored);
//! * exit code: 0 clean, 1 findings, 2 usage/IO error.

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

/// Writes to stdout, swallowing broken-pipe errors so `mkss-lint | head`
/// exits quietly instead of panicking in the default `print!` machinery.
fn emit(text: &str) {
    let _ = std::io::stdout().write_all(text.as_bytes());
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut out_file: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--out" => match args.next() {
                Some(f) => out_file = Some(PathBuf::from(f)),
                None => return usage("--out needs a file"),
            },
            "--list-rules" => {
                for rule in mkss_lint::rules::RULES {
                    emit(&format!("{:<22} {}\n", rule.id, squash(rule.summary)));
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => return usage(""),
            _ if arg.starts_with('-') => return usage(&format!("unknown flag {arg}")),
            _ => paths.push(PathBuf::from(arg)),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("mkss-lint: cannot read current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match mkss_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("mkss-lint: no workspace root above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = if paths.is_empty() {
        mkss_lint::lint_workspace(&root)
    } else {
        mkss_lint::lint_paths(&root, &paths)
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mkss-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let mut rendered = String::new();
    for f in &report.findings {
        rendered.push_str(&f.to_string());
        rendered.push('\n');
    }
    emit(&rendered);
    if let Some(out) = out_file {
        if let Err(e) = std::fs::write(&out, &rendered) {
            eprintln!("mkss-lint: cannot write {}: {e}", out.display());
            return ExitCode::from(2);
        }
    }
    eprintln!(
        "mkss-lint: {} finding{} ({} suppressed by allow annotations) across {} files",
        report.findings.len(),
        if report.findings.len() == 1 { "" } else { "s" },
        report.suppressed,
        report.files,
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn squash(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("mkss-lint: {err}");
    }
    eprintln!("usage: mkss-lint [--root DIR] [--out FILE] [--list-rules] [PATH…]");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
