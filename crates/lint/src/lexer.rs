//! A hand-rolled Rust lexer, just deep enough for invariant linting.
//!
//! The lexer understands exactly the constructs that would otherwise
//! produce false positives in a token-pattern rule engine:
//!
//! * line comments (`//`), doc comments (`///`, `//!`) and nested block
//!   comments — skipped, so `unwrap()` in prose or a doc example never
//!   fires a rule;
//! * string, raw-string (`r#".."#`), byte-string and char literals —
//!   kept as opaque [`TokKind::Literal`] tokens, so `"Vec::new"` inside
//!   an error message is not a call;
//! * char literals vs. lifetimes (`'a'` vs. `'a`);
//! * raw identifiers (`r#type`);
//! * everything else becomes a [`Tok`] stream of identifiers,
//!   single-char punctuation, and opaque literals, each tagged with its
//!   1-based source line **and its byte span** — concatenating the
//!   spans of all tokens plus the whitespace/comment/lifetime gaps
//!   between them reproduces the file exactly (property-tested).
//!
//! Plain (non-doc) line comments are additionally scanned for
//! `mkss-lint:` control directives ([`Directive`]): suppression
//! annotations, `hot-path` region markers, and `ordering` notes for
//! atomic-ordering sites. Doc comment *placement* is also recorded
//! ([`Lexed::doc_lines`], [`Lexed::module_doc`]) so the item-level
//! parser ([`crate::parser`]) can tell documented public items from
//! bare ones without re-reading the source.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character (`::` arrives as two `:`).
    Punct(char),
    /// String/char/number literal; contents are opaque to the rules
    /// (but the raw source text is kept for float-literal detection).
    Literal,
}

/// One token with its 1-based source line and byte span.
#[derive(Debug, Clone, Copy)]
pub struct Tok<'a> {
    pub kind: TokKind,
    /// Identifier text, literal source text, or the punctuation char's
    /// source bytes. For raw identifiers the text is the bare ident
    /// (`type` for `r#type`) while the span covers the `r#` prefix.
    pub text: &'a str,
    pub line: u32,
    /// Byte offset of the token's first byte in the source.
    pub start: u32,
    /// Byte offset one past the token's last byte.
    pub end: u32,
}

impl<'a> Tok<'a> {
    /// True for an identifier token with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// True for this punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    /// True when `other` starts exactly where this token ends — i.e.
    /// the two are glued in the source (`+=`, `::`, `..`).
    pub fn adjacent(&self, other: &Tok<'_>) -> bool {
        self.end == other.start
    }

    /// True for a numeric literal that is spelled as a float (`1.5`,
    /// `2e9`, `1f64`): has a fraction dot, an exponent, or an `f32`/
    /// `f64` suffix. String/char literals never qualify.
    pub fn is_float_literal(&self) -> bool {
        if self.kind != TokKind::Literal {
            return false;
        }
        let t = self.text;
        if !t.starts_with(|c: char| c.is_ascii_digit()) {
            return false;
        }
        if t.starts_with("0x") || t.starts_with("0b") || t.starts_with("0o") {
            return false;
        }
        if t.contains('.') || t.ends_with("f32") || t.ends_with("f64") {
            return true;
        }
        // An exponent `e`/`E` is followed by a digit or a sign; the `e`
        // of an integer suffix (`0usize`) never is.
        let bytes = t.as_bytes();
        bytes.iter().enumerate().any(|(i, &b)| {
            (b == b'e' || b == b'E')
                && matches!(bytes.get(i + 1), Some(c) if c.is_ascii_digit() || *c == b'+' || *c == b'-')
        })
    }
}

/// A parsed `mkss-lint:` control comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirectiveKind {
    /// `// mkss-lint: allow(rule-a, rule-b) — reason`
    Allow { rules: Vec<String>, reason: String },
    /// `// mkss-lint: hot-path begin`
    HotPathBegin,
    /// `// mkss-lint: hot-path end`
    HotPathEnd,
    /// `// mkss-lint: ordering — reason`: justifies the atomic memory
    /// ordering chosen on this or the following line (rule
    /// `atomic-ordering-annotated`).
    Ordering { reason: String },
    /// A `mkss-lint:` comment that parses as none of the above; always
    /// reported (rule `malformed-directive`) so typos cannot silently
    /// disable enforcement.
    Malformed(String),
}

/// A directive and the line it appears on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    pub line: u32,
    pub kind: DirectiveKind,
}

/// Lexer output: the token stream plus any control directives and
/// doc-comment placement.
#[derive(Debug, Default)]
pub struct Lexed<'a> {
    pub toks: Vec<Tok<'a>>,
    pub directives: Vec<Directive>,
    /// Lines carrying an outer doc comment (`/// …` or the closing
    /// line of a `/** … */` block), ascending. Used by the parser to
    /// decide whether an item is documented.
    pub doc_lines: Vec<u32>,
    /// True when the file carries module docs (`//!` or `/*! … */`).
    pub module_doc: bool,
}

/// Marker every control comment must contain.
pub const DIRECTIVE_TAG: &str = "mkss-lint:";

/// Parses the text of one comment (without the `//` / `#` lead-in) into
/// a directive, if it contains the [`DIRECTIVE_TAG`].
pub fn parse_directive(comment: &str, line: u32) -> Option<Directive> {
    let at = comment.find(DIRECTIVE_TAG)?;
    let rest = comment[at + DIRECTIVE_TAG.len()..].trim();
    let kind = if rest == "hot-path begin" {
        DirectiveKind::HotPathBegin
    } else if rest == "hot-path end" {
        DirectiveKind::HotPathEnd
    } else if let Some(args) = rest.strip_prefix("allow(") {
        match args.split_once(')') {
            Some((list, tail)) => {
                let rules: Vec<String> = list
                    .split(',')
                    .map(|r| r.trim().to_string())
                    .filter(|r| !r.is_empty())
                    .collect();
                let reason = reason_after(tail);
                if rules.is_empty() {
                    DirectiveKind::Malformed("allow() lists no rules".into())
                } else if reason.is_empty() {
                    DirectiveKind::Malformed(
                        "allow(...) needs a reason: `// mkss-lint: allow(rule) — why`".into(),
                    )
                } else {
                    DirectiveKind::Allow {
                        rules,
                        reason: reason.to_string(),
                    }
                }
            }
            None => DirectiveKind::Malformed("unterminated allow(".into()),
        }
    } else if let Some(tail) = rest.strip_prefix("ordering") {
        // `ordering — why this Ordering is strong/weak enough`. The
        // tail must start with a reason separator, so e.g. a future
        // `orderings` directive cannot silently alias this one.
        let reason = reason_after(tail);
        if tail.trim_start() == tail && !tail.is_empty() {
            DirectiveKind::Malformed(format!("unknown directive {rest:?}"))
        } else if reason.is_empty() {
            DirectiveKind::Malformed(
                "ordering needs a reason: `// mkss-lint: ordering — why`".into(),
            )
        } else {
            DirectiveKind::Ordering {
                reason: reason.to_string(),
            }
        }
    } else {
        DirectiveKind::Malformed(format!("unknown directive {rest:?}"))
    };
    Some(Directive { line, kind })
}

/// The mandatory reason after a directive head: `— why`, `- why`, or
/// `: why`. Empty when missing.
fn reason_after(tail: &str) -> &str {
    let tail = tail.trim_start();
    tail.strip_prefix('\u{2014}')
        .or_else(|| tail.strip_prefix('-'))
        .or_else(|| tail.strip_prefix(':'))
        .map(str::trim)
        .unwrap_or("")
}

/// Lexes `src`, producing tokens and directives.
///
/// The lexer is lossless about *placement* (every token knows its line
/// and byte span) and opaque about literal contents, which no rule
/// interprets beyond the float-literal shape test.
pub fn lex(src: &str) -> Lexed<'_> {
    Lexer {
        src,
        b: src.as_bytes(),
        i: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    b: &'a [u8],
    i: usize,
    line: u32,
    out: Lexed<'a>,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        self.b.get(self.i + ahead).copied().unwrap_or(0)
    }

    /// Pushes a token whose span is `start..self.i` and whose text is
    /// that same source slice.
    fn push_span(&mut self, kind: TokKind, start: usize, line: u32) {
        self.out.toks.push(Tok {
            kind,
            text: &self.src[start..self.i],
            line,
            start: start as u32,
            end: self.i as u32,
        });
    }

    fn run(mut self) -> Lexed<'a> {
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b' ' | b'\t' | b'\r' => self.i += 1,
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => self.string_literal(self.i),
                b'\'' => self.char_or_lifetime(self.i),
                b'r' | b'b' if self.raw_or_byte_prefix() => {}
                c if is_ident_start(c) => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                _ => {
                    // Multi-byte UTF-8 (arrows in comments never reach
                    // here, but be safe) advances past the whole char.
                    let ch = self.src[self.i..].chars().next().unwrap_or('\u{fffd}');
                    let start = self.i;
                    self.i += ch.len_utf8();
                    self.push_span(TokKind::Punct(ch), start, self.line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i] != b'\n' {
            self.i += 1;
        }
        let text = &self.src[start..self.i];
        // Only plain `//` comments carry directives; doc text (`///`,
        // `//!`) is documentation, not control flow. `////…` is a plain
        // comment again (rustdoc's rule).
        if text.starts_with("//!") {
            self.out.module_doc = true;
        } else if text.starts_with("///") && !text.starts_with("////") {
            self.out.doc_lines.push(self.line);
        } else if let Some(d) = parse_directive(text, self.line) {
            self.out.directives.push(d);
        }
    }

    fn block_comment(&mut self) {
        // `/*!` is module docs, `/**` (but not `/**/`) an outer doc
        // block; the doc line recorded is the line the comment *ends*
        // on, which is what sits directly above the documented item.
        let is_module_doc = self.peek(2) == b'!';
        let is_doc = self.peek(2) == b'*' && self.peek(3) != b'/';
        self.i += 2;
        let mut depth = 1usize;
        while self.i < self.b.len() && depth > 0 {
            match self.b[self.i] {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'/' if self.peek(1) == b'*' => {
                    depth += 1;
                    self.i += 2;
                }
                b'*' if self.peek(1) == b'/' => {
                    depth -= 1;
                    self.i += 2;
                }
                _ => self.i += 1,
            }
        }
        if is_module_doc {
            self.out.module_doc = true;
        } else if is_doc {
            self.out.doc_lines.push(self.line);
        }
    }

    /// Consumes a `"..."` literal (escapes understood, may span lines).
    /// `anchor` is where the token began (before any `b` prefix).
    fn string_literal(&mut self, anchor: usize) {
        let line = self.line;
        self.i += 1;
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => {
                    // A `\` + newline is the line-continuation escape;
                    // the newline it swallows still advances the line.
                    // Clamp: an unterminated literal ending in `\` must
                    // not run the cursor past the buffer.
                    if self.peek(1) == b'\n' {
                        self.line += 1;
                    }
                    self.i = (self.i + 2).min(self.b.len());
                }
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'"' => {
                    self.i += 1;
                    break;
                }
                _ => self.i += 1,
            }
        }
        self.push_span(TokKind::Literal, anchor, line);
    }

    /// `'a'` / `'\n'` / `'…'` are char literals; `'a` / `'static` are
    /// lifetimes (skipped entirely — no rule looks at them). `anchor`
    /// is where the token began (before any `b` prefix).
    fn char_or_lifetime(&mut self, anchor: usize) {
        let next = self.peek(1);
        let is_char = next == b'\\'
            || !next.is_ascii()
            || (next != 0 && self.peek(2) == b'\'' && next != b'\'');
        if is_char {
            self.i += 1;
            while self.i < self.b.len() {
                match self.b[self.i] {
                    b'\\' => self.i = (self.i + 2).min(self.b.len()),
                    b'\'' => {
                        self.i += 1;
                        break;
                    }
                    b'\n' => break, // malformed; bail at line end
                    _ => self.i += 1,
                }
            }
            self.push_span(TokKind::Literal, anchor, self.line);
        } else {
            // Lifetime: skip the quote and the label.
            self.i += 1;
            while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
                self.i += 1;
            }
        }
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'`, and raw
    /// identifiers `r#ident`. Returns false when the `r`/`b` is just the
    /// start of a plain identifier.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let anchor = self.i;
        let mut j = self.i + 1;
        if self.b[self.i] == b'b' {
            match self.peek(1) {
                b'\'' => {
                    // Byte char literal b'x'.
                    self.i += 1;
                    self.char_or_lifetime(anchor);
                    return true;
                }
                b'"' => {
                    self.i += 1;
                    self.string_literal(anchor);
                    return true;
                }
                b'r' => j = self.i + 2,
                _ => return false,
            }
        }
        // At `r…`: count hashes, then expect a quote (raw string) or an
        // identifier start (raw identifier).
        let mut hashes = 0usize;
        while self.b.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        match self.b.get(j) {
            Some(&b'"') => {
                let line = self.line;
                self.i = j + 1;
                // Scan for `"` followed by `hashes` hashes.
                'outer: while self.i < self.b.len() {
                    if self.b[self.i] == b'\n' {
                        self.line += 1;
                    } else if self.b[self.i] == b'"' {
                        for h in 0..hashes {
                            if self.b.get(self.i + 1 + h) != Some(&b'#') {
                                self.i += 1;
                                continue 'outer;
                            }
                        }
                        self.i += 1 + hashes;
                        self.push_span(TokKind::Literal, anchor, line);
                        return true;
                    }
                    self.i += 1;
                }
                self.push_span(TokKind::Literal, anchor, line);
                true
            }
            Some(&c) if hashes == 1 && self.b[self.i] == b'r' && is_ident_start(c) => {
                // Raw identifier r#ident: the text is the bare ident,
                // the span covers the `r#` prefix.
                let text_start = j;
                self.i = j;
                while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
                    self.i += 1;
                }
                self.out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: &self.src[text_start..self.i],
                    line: self.line,
                    start: anchor as u32,
                    end: self.i as u32,
                });
                true
            }
            _ => false,
        }
    }

    fn ident(&mut self) {
        let start = self.i;
        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
            self.i += 1;
        }
        self.push_span(TokKind::Ident, start, self.line);
    }

    fn number(&mut self) {
        let start = self.i;
        // Integer part (also eats hex/suffix letters: 0x1F, 10u64, 1e9).
        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
            let c = self.b[self.i];
            self.i += 1;
            // Exponent sign in suffix-free exponents: `1e-9`.
            if (c == b'e' || c == b'E')
                && !self.src[start..].starts_with("0x")
                && matches!(self.peek(0), b'+' | b'-')
                && self.peek(1).is_ascii_digit()
            {
                self.i += 1;
            }
        }
        // Fraction: only when `.` is followed by a digit (so `1..n` and
        // `1.min(x)` stay separate tokens).
        if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
            self.i += 1;
            while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
                let c = self.b[self.i];
                self.i += 1;
                // Exponent sign: `1.5e-3`.
                if (c == b'e' || c == b'E') && matches!(self.peek(0), b'+' | b'-') {
                    self.i += 1;
                }
            }
        }
        self.push_span(TokKind::Literal, start, self.line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.to_string())
            .collect()
    }

    #[test]
    fn comments_and_strings_are_opaque() {
        let src = r##"
            // unwrap() in a comment
            /* HashMap in /* nested */ block */
            let s = "Vec::new() inside a string";
            let r = r#"format! raw "quoted" text"#;
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".into()));
        assert!(!ids.contains(&"HashMap".into()));
        assert!(!ids.contains(&"Vec".into()));
        assert!(!ids.contains(&"format".into()));
        assert!(ids.contains(&"let".into()));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let ids = idents("fn f<'a>(x: &'a str) -> char { 'x' } // 'y'");
        assert!(ids.contains(&"str".into()));
        // The lifetime label never becomes an identifier token.
        assert!(!ids.contains(&"a".into()));
        let lexed = lex("let c = '\\n'; let d = '…';");
        let lits = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .count();
        assert_eq!(lits, 2);
    }

    #[test]
    fn raw_identifiers_lex_as_plain_idents() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
        // The span still covers the `r#` prefix.
        let lexed = lex("let r#type = 1;");
        let t = lexed.toks.iter().find(|t| t.is_ident("type")).unwrap();
        assert_eq!(
            &"let r#type = 1;"[t.start as usize..t.end as usize],
            "r#type"
        );
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "let a = \"two\nlines\";\nlet b = 1;";
        let lexed = lex(src);
        let b_tok = lexed.toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b_tok.line, 3);
        // `\` + newline (line continuation) swallows the newline but the
        // escaped newline still counts toward the line number.
        let src = "let a = \"one \\\n two \\\n three\";\nlet b = 1;";
        let lexed = lex(src);
        let b_tok = lexed.toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b_tok.line, 4);
    }

    #[test]
    fn unterminated_literals_ending_in_backslash_stay_in_bounds() {
        // The escape skip must not run the cursor past the buffer.
        for src in ["let s = \"oops\\", "let c = '\\", "\"\\", "'\\"] {
            let lexed = lex(src);
            for t in &lexed.toks {
                assert!(t.end as usize <= src.len(), "{src:?}: {t:?}");
            }
        }
    }

    #[test]
    fn directives_parse() {
        let src = "\
// mkss-lint: hot-path begin
// mkss-lint: allow(no-unwrap-in-lib, nondeterminism) — proven above
// mkss-lint: allow(x)
/// mkss-lint: allow(doc) — doc comments are not directives
// mkss-lint: hot-path end";
        let d = lex(src).directives;
        assert_eq!(d.len(), 4); // the doc comment is skipped
        assert_eq!(d[0].kind, DirectiveKind::HotPathBegin);
        match &d[1].kind {
            DirectiveKind::Allow { rules, reason } => {
                assert_eq!(rules, &["no-unwrap-in-lib", "nondeterminism"]);
                assert_eq!(reason, "proven above");
            }
            other => panic!("expected allow, got {other:?}"),
        }
        assert!(matches!(d[2].kind, DirectiveKind::Malformed(_)));
        assert_eq!(d[3].kind, DirectiveKind::HotPathEnd);
        assert_eq!(d[3].line, 5);
    }

    #[test]
    fn ordering_directive_parses() {
        let d = lex("// mkss-lint: ordering — counter is telemetry only").directives;
        assert_eq!(d.len(), 1);
        match &d[0].kind {
            DirectiveKind::Ordering { reason } => {
                assert_eq!(reason, "counter is telemetry only");
            }
            other => panic!("expected ordering, got {other:?}"),
        }
        // Missing reason and glued tails are malformed, not silently ok.
        let d = lex("// mkss-lint: ordering").directives;
        assert!(matches!(d[0].kind, DirectiveKind::Malformed(_)));
        let d = lex("// mkss-lint: orderings — nope").directives;
        assert!(matches!(d[0].kind, DirectiveKind::Malformed(_)));
    }

    #[test]
    fn numeric_ranges_do_not_eat_dots() {
        let lexed = lex("for i in 0..10 { x[i] = 1.5e-3; }");
        let dots = lexed.toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2); // the `..` of the range, not the float's
    }

    #[test]
    fn float_literal_shapes() {
        // `0usize` contains an `e` but it is a suffix, not an exponent.
        let lexed = lex("let a = (1.5, 2e9, 3f64, 7, 0x1F, 10u64, 1e-9, 0usize);");
        let floats: Vec<bool> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .map(Tok::is_float_literal)
            .collect();
        assert_eq!(
            floats,
            vec![true, true, true, false, false, false, true, false]
        );
    }

    #[test]
    fn doc_lines_and_module_docs_are_recorded() {
        let src = "//! module docs\n\n/// item docs\npub fn f() {}\n//// plain again\n";
        let lexed = lex(src);
        assert!(lexed.module_doc);
        assert_eq!(lexed.doc_lines, vec![3]);
    }

    #[test]
    fn spans_reconstruct_source() {
        let src = "fn f(x: &'a str) -> f64 { x.len() as f64 + 1.5e-3 }";
        let lexed = lex(src);
        for w in lexed.toks.windows(2) {
            assert!(w[0].end <= w[1].start, "overlap: {:?} {:?}", w[0], w[1]);
        }
        let joined: String = lexed
            .toks
            .iter()
            .map(|t| &src[t.start as usize..t.end as usize])
            .collect::<Vec<_>>()
            .join("");
        assert_eq!(
            joined.replace(' ', ""),
            src.replace("'a", "").replace(' ', "")
        );
    }
}
