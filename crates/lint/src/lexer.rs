//! A hand-rolled Rust lexer, just deep enough for invariant linting.
//!
//! The lexer understands exactly the constructs that would otherwise
//! produce false positives in a token-pattern rule engine:
//!
//! * line comments (`//`), doc comments (`///`, `//!`) and nested block
//!   comments — skipped, so `unwrap()` in prose or a doc example never
//!   fires a rule;
//! * string, raw-string (`r#".."#`), byte-string and char literals —
//!   skipped, so `"Vec::new"` inside an error message is not a call;
//! * char literals vs. lifetimes (`'a'` vs. `'a`);
//! * raw identifiers (`r#type`);
//! * everything else becomes an [`Tok`] stream of identifiers,
//!   single-char punctuation, and opaque literals, each tagged with its
//!   1-based source line.
//!
//! Plain (non-doc) line comments are additionally scanned for
//! `mkss-lint:` control directives ([`Directive`]): suppression
//! annotations and `hot-path` region markers.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character (`::` arrives as two `:`).
    Punct(char),
    /// String/char/number literal; contents are opaque to the rules.
    Literal,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, Copy)]
pub struct Tok<'a> {
    pub kind: TokKind,
    /// Identifier text; empty for literals and punctuation.
    pub text: &'a str,
    pub line: u32,
}

impl<'a> Tok<'a> {
    /// True for an identifier token with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// True for this punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A parsed `mkss-lint:` control comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirectiveKind {
    /// `// mkss-lint: allow(rule-a, rule-b) — reason`
    Allow { rules: Vec<String>, reason: String },
    /// `// mkss-lint: hot-path begin`
    HotPathBegin,
    /// `// mkss-lint: hot-path end`
    HotPathEnd,
    /// A `mkss-lint:` comment that parses as none of the above; always
    /// reported (rule `malformed-directive`) so typos cannot silently
    /// disable enforcement.
    Malformed(String),
}

/// A directive and the line it appears on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    pub line: u32,
    pub kind: DirectiveKind,
}

/// Lexer output: the token stream plus any control directives.
#[derive(Debug, Default)]
pub struct Lexed<'a> {
    pub toks: Vec<Tok<'a>>,
    pub directives: Vec<Directive>,
}

/// Marker every control comment must contain.
pub const DIRECTIVE_TAG: &str = "mkss-lint:";

/// Parses the text of one comment (without the `//` / `#` lead-in) into
/// a directive, if it contains the [`DIRECTIVE_TAG`].
pub fn parse_directive(comment: &str, line: u32) -> Option<Directive> {
    let at = comment.find(DIRECTIVE_TAG)?;
    let rest = comment[at + DIRECTIVE_TAG.len()..].trim();
    let kind = if rest == "hot-path begin" {
        DirectiveKind::HotPathBegin
    } else if rest == "hot-path end" {
        DirectiveKind::HotPathEnd
    } else if let Some(args) = rest.strip_prefix("allow(") {
        match args.split_once(')') {
            Some((list, tail)) => {
                let rules: Vec<String> = list
                    .split(',')
                    .map(|r| r.trim().to_string())
                    .filter(|r| !r.is_empty())
                    .collect();
                // A reason is mandatory: `— why`, `- why`, or `: why`.
                let tail = tail.trim_start();
                let reason = tail
                    .strip_prefix('\u{2014}')
                    .or_else(|| tail.strip_prefix('-'))
                    .or_else(|| tail.strip_prefix(':'))
                    .map(str::trim)
                    .unwrap_or("");
                if rules.is_empty() {
                    DirectiveKind::Malformed("allow() lists no rules".into())
                } else if reason.is_empty() {
                    DirectiveKind::Malformed(
                        "allow(...) needs a reason: `// mkss-lint: allow(rule) — why`".into(),
                    )
                } else {
                    DirectiveKind::Allow {
                        rules,
                        reason: reason.to_string(),
                    }
                }
            }
            None => DirectiveKind::Malformed("unterminated allow(".into()),
        }
    } else {
        DirectiveKind::Malformed(format!("unknown directive {rest:?}"))
    };
    Some(Directive { line, kind })
}

/// Lexes `src`, producing tokens and directives.
///
/// The lexer is lossless about *placement* (every token knows its line)
/// and lossy about literal contents, which no rule inspects.
pub fn lex(src: &str) -> Lexed<'_> {
    Lexer {
        src,
        b: src.as_bytes(),
        i: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    b: &'a [u8],
    i: usize,
    line: u32,
    out: Lexed<'a>,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        self.b.get(self.i + ahead).copied().unwrap_or(0)
    }

    fn push(&mut self, kind: TokKind, text: &'a str) {
        self.out.toks.push(Tok {
            kind,
            text,
            line: self.line,
        });
    }

    fn run(mut self) -> Lexed<'a> {
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b' ' | b'\t' | b'\r' => self.i += 1,
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => self.string_literal(),
                b'\'' => self.char_or_lifetime(),
                b'r' | b'b' if self.raw_or_byte_prefix() => {}
                c if is_ident_start(c) => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                _ => {
                    // Multi-byte UTF-8 (arrows in comments never reach
                    // here, but be safe) advances past the whole char.
                    let ch = self.src[self.i..].chars().next().unwrap_or('\u{fffd}');
                    self.push(TokKind::Punct(ch), "");
                    self.i += ch.len_utf8();
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i] != b'\n' {
            self.i += 1;
        }
        let text = &self.src[start..self.i];
        // Only plain `//` comments carry directives; doc text (`///`,
        // `//!`) is documentation, not control flow.
        let is_doc = text.starts_with("///") || text.starts_with("//!");
        if !is_doc {
            if let Some(d) = parse_directive(text, self.line) {
                self.out.directives.push(d);
            }
        }
    }

    fn block_comment(&mut self) {
        self.i += 2;
        let mut depth = 1usize;
        while self.i < self.b.len() && depth > 0 {
            match self.b[self.i] {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'/' if self.peek(1) == b'*' => {
                    depth += 1;
                    self.i += 2;
                }
                b'*' if self.peek(1) == b'/' => {
                    depth -= 1;
                    self.i += 2;
                }
                _ => self.i += 1,
            }
        }
    }

    /// Consumes a `"..."` literal (escapes understood, may span lines).
    fn string_literal(&mut self) {
        let line = self.line;
        self.i += 1;
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => self.i += 2,
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'"' => {
                    self.i += 1;
                    break;
                }
                _ => self.i += 1,
            }
        }
        self.out.toks.push(Tok {
            kind: TokKind::Literal,
            text: "",
            line,
        });
    }

    /// `'a'` / `'\n'` / `'…'` are char literals; `'a` / `'static` are
    /// lifetimes (skipped entirely — no rule looks at them).
    fn char_or_lifetime(&mut self) {
        let next = self.peek(1);
        let is_char = next == b'\\'
            || !next.is_ascii()
            || (next != 0 && self.peek(2) == b'\'' && next != b'\'');
        if is_char {
            self.i += 1;
            while self.i < self.b.len() {
                match self.b[self.i] {
                    b'\\' => self.i += 2,
                    b'\'' => {
                        self.i += 1;
                        break;
                    }
                    b'\n' => break, // malformed; bail at line end
                    _ => self.i += 1,
                }
            }
            self.push(TokKind::Literal, "");
        } else {
            // Lifetime: skip the quote and the label.
            self.i += 1;
            while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
                self.i += 1;
            }
        }
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'`, and raw
    /// identifiers `r#ident`. Returns false when the `r`/`b` is just the
    /// start of a plain identifier.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let mut j = self.i + 1;
        if self.b[self.i] == b'b' {
            match self.peek(1) {
                b'\'' => {
                    // Byte char literal b'x'.
                    self.i += 1;
                    self.char_or_lifetime();
                    return true;
                }
                b'"' => {
                    self.i += 1;
                    self.string_literal();
                    return true;
                }
                b'r' => j = self.i + 2,
                _ => return false,
            }
        }
        // At `r…`: count hashes, then expect a quote (raw string) or an
        // identifier start (raw identifier).
        let mut hashes = 0usize;
        while self.b.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        match self.b.get(j) {
            Some(&b'"') => {
                let line = self.line;
                self.i = j + 1;
                // Scan for `"` followed by `hashes` hashes.
                'outer: while self.i < self.b.len() {
                    if self.b[self.i] == b'\n' {
                        self.line += 1;
                    } else if self.b[self.i] == b'"' {
                        for h in 0..hashes {
                            if self.b.get(self.i + 1 + h) != Some(&b'#') {
                                self.i += 1;
                                continue 'outer;
                            }
                        }
                        self.i += 1 + hashes;
                        self.out.toks.push(Tok {
                            kind: TokKind::Literal,
                            text: "",
                            line,
                        });
                        return true;
                    }
                    self.i += 1;
                }
                true
            }
            Some(&c) if hashes == 1 && is_ident_start(c) => {
                // Raw identifier r#ident: emit the ident text alone.
                self.i = j;
                self.ident();
                true
            }
            _ => false,
        }
    }

    fn ident(&mut self) {
        let start = self.i;
        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
            self.i += 1;
        }
        let text = &self.src[start..self.i];
        self.push(TokKind::Ident, text);
    }

    fn number(&mut self) {
        // Integer part (also eats hex/suffix letters: 0x1F, 10u64, 1e9).
        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
            self.i += 1;
        }
        // Fraction: only when `.` is followed by a digit (so `1..n` and
        // `1.min(x)` stay separate tokens).
        if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
            self.i += 1;
            while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
                let c = self.b[self.i];
                self.i += 1;
                // Exponent sign: `1.5e-3`.
                if (c == b'e' || c == b'E') && matches!(self.peek(0), b'+' | b'-') {
                    self.i += 1;
                }
            }
        }
        self.push(TokKind::Literal, "");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.to_string())
            .collect()
    }

    #[test]
    fn comments_and_strings_are_opaque() {
        let src = r##"
            // unwrap() in a comment
            /* HashMap in /* nested */ block */
            let s = "Vec::new() inside a string";
            let r = r#"format! raw "quoted" text"#;
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".into()));
        assert!(!ids.contains(&"HashMap".into()));
        assert!(!ids.contains(&"Vec".into()));
        assert!(!ids.contains(&"format".into()));
        assert!(ids.contains(&"let".into()));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let ids = idents("fn f<'a>(x: &'a str) -> char { 'x' } // 'y'");
        assert!(ids.contains(&"str".into()));
        // The lifetime label never becomes an identifier token.
        assert!(!ids.contains(&"a".into()));
        let lexed = lex("let c = '\\n'; let d = '…';");
        let lits = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .count();
        assert_eq!(lits, 2);
    }

    #[test]
    fn raw_identifiers_lex_as_plain_idents() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "let a = \"two\nlines\";\nlet b = 1;";
        let lexed = lex(src);
        let b_tok = lexed.toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b_tok.line, 3);
    }

    #[test]
    fn directives_parse() {
        let src = "\
// mkss-lint: hot-path begin
// mkss-lint: allow(no-unwrap-in-lib, nondeterminism) — proven above
// mkss-lint: allow(x)
/// mkss-lint: allow(doc) — doc comments are not directives
// mkss-lint: hot-path end";
        let d = lex(src).directives;
        assert_eq!(d.len(), 4); // the doc comment is skipped
        assert_eq!(d[0].kind, DirectiveKind::HotPathBegin);
        match &d[1].kind {
            DirectiveKind::Allow { rules, reason } => {
                assert_eq!(rules, &["no-unwrap-in-lib", "nondeterminism"]);
                assert_eq!(reason, "proven above");
            }
            other => panic!("expected allow, got {other:?}"),
        }
        assert!(matches!(d[2].kind, DirectiveKind::Malformed(_)));
        assert_eq!(d[3].kind, DirectiveKind::HotPathEnd);
        assert_eq!(d[3].line, 5);
    }

    #[test]
    fn numeric_ranges_do_not_eat_dots() {
        let lexed = lex("for i in 0..10 { x[i] = 1.5e-3; }");
        let dots = lexed.toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2); // the `..` of the range, not the float's
    }
}
