//! `mkss-lint` — zero-dependency static enforcement of this
//! workspace's project invariants.
//!
//! The earlier PRs created guarantees that only *runtime* differential
//! tests defended: bit-identical results across `--jobs` (PR 1), a
//! zero-allocation engine hot path (PR 2), and recorder-off
//! byte-identity with jobs-invariant counters (PR 3). In the spirit of
//! the paper's own offline (m,k) guarantees — the pattern-based
//! analysis proves the property before the system runs — this crate
//! moves those checks to CI time.
//!
//! The analyzer has two layers. A hand-rolled Rust lexer ([`lexer`])
//! produces a span-exact token stream; a lightweight item parser
//! ([`parser`]) builds per-file item skeletons (fns, impls, structs,
//! `use` resolution, brace-matched bodies) and a workspace-wide
//! [`parser::ItemGraph`]. The rule engine ([`rules`]) runs token rules
//! and item rules over every non-vendored `.rs` file and `Cargo.toml`
//! in the workspace and reports `file:line` findings, each with a
//! stable `MKSS-Lnnn` error code (see `DIAGNOSTICS.md`).
//!
//! Findings are suppressible only via an explicit annotation with a
//! mandatory reason:
//!
//! ```text
//! // mkss-lint: allow(no-unwrap-in-lib) — slot claimed exactly once above
//! ```
//!
//! (in manifests: `# mkss-lint: allow(vendored-deps-only) — …`). The
//! annotation must sit on the finding's line or the line directly
//! above. Unused or malformed annotations are findings themselves, so
//! the suppression inventory can never rot silently. Atomic-ordering
//! sites use the sibling `// mkss-lint: ordering — reason` note.
//!
//! Run `cargo run -p mkss-lint` from anywhere in the workspace; the
//! binary exits nonzero when anything fires. `--format json` emits the
//! machine-readable report ([`output`]); [`baseline`] lets a new rule
//! land as a hard CI error while existing debt is burned down
//! deliberately. See `DESIGN.md` ("Static analysis & enforced
//! invariants") for the rule table.

pub mod baseline;
pub mod lexer;
pub mod output;
pub mod parser;
pub mod rules;

use lexer::{Directive, DirectiveKind, Tok, TokKind};
use parser::{FileItems, ItemGraph};
use rules::error_hygiene::ErrorHygiene;
use rules::lock_discipline::LockDiscipline;
use rules::{Finding, MALFORMED_DIRECTIVE, UNUSED_ALLOW};
use std::path::{Path, PathBuf};

/// Outcome of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Surviving findings, sorted by path then line.
    pub findings: Vec<Finding>,
    /// Number of findings suppressed by `allow` annotations.
    pub suppressed: usize,
    /// Number of findings absorbed by a baseline file.
    pub baselined: usize,
    /// Number of files scanned.
    pub files: usize,
}

impl LintReport {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Per-file suppression context: (path, directives, test line spans).
type FileMeta = (String, Vec<Directive>, Vec<(u32, u32)>);

/// Lints an in-memory set of `(workspace-relative path, content)`
/// files. This is the whole engine — the filesystem entry points below
/// only gather the file list. The file set is also the *universe* for
/// cross-file rules: `error-hygiene` resolves impls, `lock-discipline`
/// its order graph, and `pub-api-hygiene` its module docs against
/// every file in the set.
pub fn lint_sources(files: &[(String, String)]) -> LintReport {
    let mut findings: Vec<Finding> = Vec::new();
    let mut file_meta: Vec<FileMeta> = Vec::new();
    let mut hygiene = ErrorHygiene::default();
    let mut locks = LockDiscipline::default();

    // Pass 1: lex and parse every Rust file (manifests scan directly).
    struct Parsed<'a> {
        path: &'a str,
        lexed: lexer::Lexed<'a>,
        mask: Vec<bool>,
        test_spans: Vec<(u32, u32)>,
        items: FileItems,
    }
    let mut parsed: Vec<Parsed<'_>> = Vec::new();
    for (path, content) in files {
        if path.ends_with("Cargo.toml") {
            let scan = rules::vendored_deps::check(path, content);
            findings.extend(scan.findings);
            file_meta.push((path.clone(), scan.directives, Vec::new()));
        } else if path.ends_with(".rs") {
            let lexed = lexer::lex(content);
            let (mask, test_spans) = test_mask(&lexed.toks);
            let items = parser::parse(&lexed);
            parsed.push(Parsed {
                path,
                lexed,
                mask,
                test_spans,
                items,
            });
        }
    }
    let graph = ItemGraph::build(
        &parsed
            .iter()
            .map(|p| (p.path, &p.items))
            .collect::<Vec<_>>(),
    );

    // Pass 2: run every rule with the graph in scope.
    for p in &parsed {
        let ctx = rules::FileCtx {
            path: p.path,
            toks: &p.lexed.toks,
            mask: &p.mask,
            directives: &p.lexed.directives,
            test_spans: &p.test_spans,
            items: &p.items,
            graph: &graph,
        };
        rules::no_unwrap::check(&ctx, &mut findings);
        rules::nondeterminism::check(&ctx, &mut findings);
        rules::hot_path_alloc::check(&ctx, &mut findings);
        rules::recorder_gate::check(&ctx, &mut findings);
        rules::atomic_ordering::check(&ctx, &mut findings);
        rules::condvar_wait::check(&ctx, &mut findings);
        rules::float_fold::check(&ctx, &mut findings);
        rules::pub_api::check(&ctx, &mut findings);
        hygiene.collect(&ctx);
        locks.collect(&ctx, &mut findings);
        file_meta.push((
            p.path.to_string(),
            p.lexed.directives.clone(),
            p.test_spans.clone(),
        ));
    }
    findings.extend(hygiene.finalize());
    findings.extend(locks.finalize());

    // Directive diagnostics: malformed directives and unknown rule
    // names are findings (a typo must never silently disable a rule).
    for (path, directives, _) in &file_meta {
        for d in directives {
            match &d.kind {
                DirectiveKind::Malformed(why) => findings.push(Finding {
                    path: path.clone(),
                    line: d.line,
                    rule: MALFORMED_DIRECTIVE,
                    message: why.clone(),
                }),
                DirectiveKind::Allow { rules: ids, .. } => {
                    for id in ids {
                        if !rules::is_known_rule(id) {
                            findings.push(Finding {
                                path: path.clone(),
                                line: d.line,
                                rule: MALFORMED_DIRECTIVE,
                                message: format!(
                                    "allow() names unknown rule `{id}` (see --list-rules)"
                                ),
                            });
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // Suppression: an allow annotation covers its own line (trailing
    // comment) and the line directly below (standalone comment).
    let mut used = vec![false; count_allows(&file_meta)];
    let mut suppressed = 0usize;
    findings.retain(|f| {
        let keep = !try_suppress(&file_meta, f, &mut used);
        if !keep {
            suppressed += 1;
        }
        keep
    });

    // Unused-allow: every allow that suppressed nothing — outside test
    // code, where rules do not run — is itself a finding…
    let mut unused: Vec<Finding> = Vec::new();
    let mut slot = 0usize;
    for (path, directives, test_spans) in &file_meta {
        for d in directives {
            if let DirectiveKind::Allow { rules: ids, .. } = &d.kind {
                let in_test = test_spans.iter().any(|&(a, b)| a <= d.line && d.line <= b);
                let all_known = ids.iter().all(|id| rules::is_known_rule(id));
                if !used[slot] && !in_test && all_known {
                    unused.push(Finding {
                        path: path.clone(),
                        line: d.line,
                        rule: UNUSED_ALLOW,
                        message: format!("allow({}) suppresses nothing; remove it", ids.join(", ")),
                    });
                }
                slot += 1;
            }
        }
    }
    // …which may itself be suppressed (e.g. a fixture demonstrating an
    // unused allow). One round only; deeper recursion cannot arise
    // because a used allow never produces a finding.
    unused.retain(|f| {
        let keep = !try_suppress(&file_meta, f, &mut used);
        if !keep {
            suppressed += 1;
        }
        keep
    });
    findings.extend(unused);

    findings.sort();
    LintReport {
        findings,
        suppressed,
        baselined: 0,
        files: files.len(),
    }
}

fn count_allows(file_meta: &[FileMeta]) -> usize {
    file_meta
        .iter()
        .flat_map(|(_, d, _)| d)
        .filter(|d| matches!(d.kind, DirectiveKind::Allow { .. }))
        .count()
}

/// Attempts to suppress `f` with an adjacent allow annotation in its
/// file; marks the matching annotation used.
fn try_suppress(file_meta: &[FileMeta], f: &Finding, used: &mut [bool]) -> bool {
    let mut slot = 0usize;
    for (path, directives, _) in file_meta {
        for d in directives {
            if let DirectiveKind::Allow { rules: ids, .. } = &d.kind {
                if path == &f.path
                    && (d.line == f.line || d.line + 1 == f.line)
                    && ids.iter().any(|id| id == f.rule)
                {
                    used[slot] = true;
                    return true;
                }
                slot += 1;
            }
        }
    }
    false
}

/// Computes which tokens belong to test-only items (`#[cfg(test)]`,
/// `#[test]`, `#[bench]`) and the line spans those items cover.
///
/// The attribute's idents decide: containing `test` marks the item
/// test-only unless `not` also appears (`#[cfg(not(test))]` guards
/// *shipped* code). The masked item extends over the attributes, any
/// further attributes, and either the first balanced `{…}` block or the
/// terminating `;`.
fn test_mask(toks: &[Tok<'_>]) -> (Vec<bool>, Vec<(u32, u32)>) {
    let mut mask = vec![false; toks.len()];
    let mut spans: Vec<(u32, u32)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        // Inner attribute `#![cfg(test)]` marks the whole file.
        if toks[i].is_punct('#')
            && i + 1 < toks.len()
            && toks[i + 1].is_punct('!')
            && i + 2 < toks.len()
            && toks[i + 2].is_punct('[')
        {
            let (end, is_test) = scan_attr(toks, i + 2);
            if is_test {
                mask.iter_mut().for_each(|m| *m = true);
                let last_line = toks.last().map_or(1, |t| t.line);
                return (mask, vec![(1, last_line)]);
            }
            i = end;
            continue;
        }
        if toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[') {
            let start = i;
            let (mut end, mut is_test) = scan_attr(toks, i + 1);
            // Further attributes on the same item.
            while end + 1 < toks.len() && toks[end].is_punct('#') && toks[end + 1].is_punct('[') {
                let (e, t) = scan_attr(toks, end + 1);
                is_test |= t;
                end = e;
            }
            if is_test {
                let item_end = scan_item(toks, end);
                let first_line = toks[start].line;
                let last_line = toks[item_end.saturating_sub(1).min(toks.len() - 1)].line;
                for m in &mut mask[start..item_end.min(toks.len())] {
                    *m = true;
                }
                spans.push((first_line, last_line));
                i = item_end;
                continue;
            }
            i = end;
            continue;
        }
        i += 1;
    }
    (mask, spans)
}

/// Scans one `[…]` attribute starting at the `[`; returns (index past
/// the closing `]`, attribute-is-test-only).
fn scan_attr(toks: &[Tok<'_>], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut has_test = false;
    let mut has_not = false;
    let mut j = open;
    while j < toks.len() {
        match toks[j].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (j + 1, has_test && !has_not);
                }
            }
            TokKind::Ident => {
                has_test |= toks[j].text == "test" || toks[j].text == "bench";
                has_not |= toks[j].text == "not";
            }
            _ => {}
        }
        j += 1;
    }
    (toks.len(), false)
}

/// Scans past one item starting at `from`: through the first balanced
/// `{…}` block, or to a `;` met before any `{`.
fn scan_item(toks: &[Tok<'_>], from: usize) -> usize {
    let mut j = from;
    while j < toks.len() {
        match toks[j].kind {
            TokKind::Punct(';') => return j + 1,
            TokKind::Punct('{') => {
                let mut depth = 0usize;
                while j < toks.len() {
                    match toks[j].kind {
                        TokKind::Punct('{') => depth += 1,
                        TokKind::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                return j + 1;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                return toks.len();
            }
            _ => j += 1,
        }
    }
    toks.len()
}

// ---------------------------------------------------------------------
// Filesystem entry points
// ---------------------------------------------------------------------

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &["vendor", "target", "node_modules"];

/// Lints the whole workspace rooted at `root` (every non-vendored `.rs`
/// file and `Cargo.toml`).
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let mut files = Vec::new();
    collect_files(root, root, &mut files)?;
    files.sort();
    Ok(lint_sources(&files))
}

/// Lints an explicit set of files and/or directories. Paths inside
/// `root` are reported workspace-relative; outside ones as given. The
/// given set is the whole universe for cross-file rules, which is what
/// the self-tests and the CI bad-file smoke rely on.
pub fn lint_paths(root: &Path, paths: &[PathBuf]) -> std::io::Result<LintReport> {
    let mut files = Vec::new();
    for p in paths {
        if p.is_dir() {
            collect_files(root, p, &mut files)?;
        } else {
            push_file(root, p, &mut files)?;
        }
    }
    files.sort();
    Ok(lint_sources(&files))
}

fn collect_files(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if name.starts_with('.') {
            continue;
        }
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            collect_files(root, &path, out)?;
        } else if name == "Cargo.toml" || name.ends_with(".rs") {
            push_file(root, &path, out)?;
        }
    }
    Ok(())
}

fn push_file(root: &Path, path: &Path, out: &mut Vec<(String, String)>) -> std::io::Result<()> {
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/");
    let content = std::fs::read_to_string(path)?;
    out.push((rel, content));
    Ok(())
}

/// Ascends from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
