//! End-to-end tests of the `mkss-lint` binary: exit codes, the golden
//! `--list-rules` table, the baseline workflow, and the JSON report —
//! which is round-tripped through `mkss-serve`'s hand-rolled JSON
//! *parser*, the counterpart of the linter's hand-rolled writer.
//!
//! After an intentional rule-table change, regenerate the golden with
//! `MKSS_BLESS=1 cargo test -p mkss-lint --test cli` and review the diff.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const LIST_RULES_GOLDEN: &str = include_str!("golden/list_rules.txt");

/// A pub fn in a lib-crate path with no doc and a naked unwrap: fires
/// MKSS-L002 (no-unwrap-in-lib) and MKSS-L013 (pub-api-hygiene)
/// regardless of what the rest of the item graph contains.
const BAD_SOURCE: &str = "//! Fixture crate.\n\
                          pub fn naked(x: Option<u32>) -> u32 {\n\
                          \x20   x.unwrap()\n\
                          }\n";

const CLEAN_SOURCE: &str = "//! Fixture crate.\n\
                            /// Doubles.\n\
                            pub fn doubled(x: u32) -> u32 {\n\
                            \x20   x * 2\n\
                            }\n";

/// A scratch workspace-shaped directory, removed on drop.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(test: &str, source: &str) -> Fixture {
        let root =
            std::env::temp_dir().join(format!("mkss-lint-cli-{}-{test}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let src_dir = root.join("crates/core/src");
        std::fs::create_dir_all(&src_dir).expect("create fixture tree");
        std::fs::write(src_dir.join("bad.rs"), source).expect("write fixture");
        Fixture { root }
    }

    fn file(&self) -> PathBuf {
        self.root.join("crates/core/src/bad.rs")
    }

    /// Runs the binary with `--root` pointing at the fixture.
    fn lint(&self, extra: &[&str]) -> Output {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_mkss-lint"));
        cmd.arg("--root").arg(&self.root);
        cmd.args(extra);
        cmd.arg(self.file());
        cmd.output().expect("run mkss-lint")
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

#[test]
fn list_rules_matches_golden() {
    let out = Command::new(env!("CARGO_BIN_EXE_mkss-lint"))
        .arg("--list-rules")
        .output()
        .expect("run mkss-lint");
    assert!(out.status.success());
    let text = stdout(&out);
    if std::env::var_os("MKSS_BLESS").is_some() {
        let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/list_rules.txt");
        std::fs::write(path, &text).expect("write golden");
        return;
    }
    assert_eq!(text, LIST_RULES_GOLDEN);
    // The table is the public rule catalog: all thirteen stable codes,
    // each exactly once, in order.
    for n in 1..=13 {
        let code = format!("MKSS-L{n:03}");
        assert_eq!(
            text.matches(&code).count(),
            1,
            "{code} missing from --list-rules"
        );
    }
}

#[test]
fn findings_fail_and_render_stable_text_format() {
    let fx = Fixture::new("text", BAD_SOURCE);
    let out = fx.lint(&[]);
    assert_eq!(out.status.code(), Some(1));
    let text = stdout(&out);
    assert!(
        text.contains("crates/core/src/bad.rs:3: [MKSS-L002 no-unwrap-in-lib]"),
        "unexpected text output:\n{text}"
    );
    assert!(text.contains("[MKSS-L013 pub-api-hygiene]"), "{text}");
}

#[test]
fn clean_run_exits_zero() {
    let fx = Fixture::new("clean", CLEAN_SOURCE);
    let out = fx.lint(&[]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert_eq!(stdout(&out), "");
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_mkss-lint"))
        .arg("--frobnicate")
        .output()
        .expect("run mkss-lint");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn json_report_round_trips_through_serve_parser() {
    let fx = Fixture::new("json", BAD_SOURCE);
    let out = fx.lint(&["--format", "json"]);
    assert_eq!(out.status.code(), Some(1));
    let doc = mkss_serve::json::parse(&stdout(&out)).expect("report is valid JSON");

    assert_eq!(doc.get("version").and_then(|v| v.as_u64()), Some(1));
    let findings = doc
        .get("findings")
        .and_then(|v| v.as_array())
        .expect("findings array");
    assert!(!findings.is_empty());
    for f in findings {
        assert_eq!(
            f.get("path").and_then(|v| v.as_str()),
            Some("crates/core/src/bad.rs")
        );
        assert!(f.get("line").and_then(|v| v.as_u64()).is_some());
        let code = f.get("code").and_then(|v| v.as_str()).expect("code");
        assert!(code.starts_with("MKSS-L"), "{code}");
        assert!(f.get("rule").and_then(|v| v.as_str()).is_some());
        assert!(f.get("message").and_then(|v| v.as_str()).is_some());
    }
    let counts = doc.get("counts").expect("counts object");
    assert_eq!(
        counts.get("findings").and_then(|v| v.as_u64()),
        Some(findings.len() as u64)
    );
    for key in ["suppressed", "baselined", "files"] {
        assert!(counts.get(key).and_then(|v| v.as_u64()).is_some(), "{key}");
    }
}

#[test]
fn out_flag_writes_the_same_bytes_as_stdout() {
    let fx = Fixture::new("out", BAD_SOURCE);
    let report = fx.root.join("lint-report.json");
    let out = fx.lint(&["--format", "json", "--out", report.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let on_disk = std::fs::read_to_string(&report).expect("report file written");
    assert_eq!(on_disk, stdout(&out));
    mkss_serve::json::parse(&on_disk).expect("report file is valid JSON");
}

#[test]
fn baseline_absorbs_known_findings_and_goes_stale_when_fixed() {
    let fx = Fixture::new("baseline", BAD_SOURCE);
    let baseline = fx.root.join("baseline.txt");
    let bp = baseline.to_str().unwrap();

    // Regenerate-from-run: the same run still fails (the baseline is
    // not applied to the run that wrote it).
    let out = fx.lint(&["--write-baseline", bp]);
    assert_eq!(out.status.code(), Some(1));

    // Absorbed: same debt, baseline applied, exit clean.
    let out = fx.lint(&["--baseline", bp]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("2 baselined"), "{err}");

    // Fixing the file makes every entry stale — and stale fails, so
    // absorbed debt cannot silently outlive its findings.
    std::fs::write(fx.file(), CLEAN_SOURCE).unwrap();
    let out = fx.lint(&["--baseline", bp]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("stale baseline entry"), "{err}");
}

#[test]
fn checked_in_baseline_has_zero_entries() {
    // The merge policy: the baseline mechanism is for rule rollout
    // inside a PR; the checked-in file carries no debt.
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .join("lint-baseline.txt");
    let text = std::fs::read_to_string(&path).expect("lint-baseline.txt is checked in");
    let parsed = mkss_lint::baseline::parse(&text).expect("baseline parses");
    assert!(
        parsed.entries.is_empty(),
        "lint-baseline.txt must be empty at merge, found: {:?}",
        parsed.entries
    );
}
