//! Rule self-tests: every rule has (at least) one fixture where it
//! fires, one where an `allow` annotation suppresses it, and one where
//! clean code stays silent.
//!
//! Fixtures are in-memory files run through [`mkss_lint::lint_sources`]
//! under workspace-relative virtual paths, so rule scoping (library
//! crates vs. harness vs. tests) is exercised exactly as in a real run.

use mkss_lint::lint_sources;
use mkss_lint::rules::Finding;

/// Lints one virtual file.
fn lint_one(path: &str, src: &str) -> Vec<Finding> {
    lint_sources(&[(path.to_string(), src.to_string())]).findings
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

fn assert_clean(path: &str, src: &str) {
    let found = lint_one(path, src);
    assert!(found.is_empty(), "expected clean, got: {found:#?}");
}

fn assert_fires(path: &str, src: &str, rule: &str, times: usize) {
    let found = lint_one(path, src);
    let hits = found.iter().filter(|f| f.rule == rule).count();
    assert_eq!(hits, times, "expected {rule} x{times}, got: {found:#?}");
}

/// Suppressed fixtures must produce zero findings *and* count the
/// suppression (the allow is used, so no unused-allow either).
fn assert_suppressed(path: &str, src: &str) {
    let report = lint_sources(&[(path.to_string(), src.to_string())]);
    assert!(
        report.findings.is_empty(),
        "expected full suppression, got: {:#?}",
        report.findings
    );
    assert!(report.suppressed > 0, "nothing was suppressed");
}

// ---------------------------------------------------------------- //
// no-unwrap-in-lib

#[test]
fn no_unwrap_fires_in_lib_crates() {
    let src = r#"
pub fn f(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect("present");
    if a == b { panic!("boom"); }
    a
}
"#;
    assert_fires("crates/core/src/fixture.rs", src, "no-unwrap-in-lib", 3);
}

#[test]
fn no_unwrap_suppressed_by_allow() {
    let src = r#"
pub fn f(x: Option<u32>) -> u32 {
    // mkss-lint: allow(no-unwrap-in-lib) — x is Some by construction in this fixture
    x.expect("present")
}
"#;
    assert_suppressed("crates/sim/src/fixture.rs", src);
}

#[test]
fn no_unwrap_clean_code_is_silent() {
    // unwrap_or is a different identifier; unwrap in doc comments,
    // strings, and #[cfg(test)] items is exempt; non-library crates
    // (harness, cli) are out of scope.
    let src = r#"
/// Example: `x.unwrap()` panics on None.
pub fn f(x: Option<u32>) -> u32 {
    let msg = "never unwrap() in a string";
    let _ = msg;
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(1u32).unwrap();
    }
}
"#;
    assert_clean("crates/core/src/fixture.rs", src);
    assert_clean(
        "crates/bench/src/fixture.rs",
        "pub fn f() { None::<u32>.unwrap(); }",
    );
}

// ---------------------------------------------------------------- //
// nondeterminism

#[test]
fn nondeterminism_fires_on_hash_collections_clocks_and_thread_rng() {
    let src = r#"
use std::collections::HashMap;
pub fn f() {
    let t = std::time::Instant::now();
    let _ = (t, thread_rng());
}
"#;
    assert_fires("crates/bench/src/fixture.rs", src, "nondeterminism", 3);
}

#[test]
fn nondeterminism_suppressed_by_allow() {
    let src = r#"
pub fn stage_timer() -> std::time::Instant {
    // mkss-lint: allow(nondeterminism) — timing only, never feeds results
    std::time::Instant::now()
}
"#;
    assert_suppressed("crates/bench/src/fixture.rs", src);
}

#[test]
fn nondeterminism_clean_and_test_sources_exempt() {
    assert_clean(
        "crates/bench/src/fixture.rs",
        "use std::collections::BTreeMap;\npub fn f(m: &BTreeMap<u32, u32>) -> u32 { m.len() as u32 }",
    );
    // Integration tests and benches may hash and time freely.
    assert_clean(
        "tests/fixture.rs",
        "use std::collections::HashMap;\nfn f() { let _ = std::time::Instant::now(); }",
    );
    assert_clean(
        "crates/bench/benches/fixture.rs",
        "use std::collections::HashSet;\nfn f() -> HashSet<u32> { HashSet::new() }",
    );
}

// ---------------------------------------------------------------- //
// hot-path-alloc

#[test]
fn hot_path_alloc_fires_inside_region() {
    let src = r#"
fn cold() -> Vec<u32> { Vec::new() }
// mkss-lint: hot-path begin
fn hot(xs: &[u32]) -> Vec<u32> {
    let v: Vec<u32> = xs.iter().copied().collect();
    let w = vec![1u32];
    let s = String::from("hi");
    let b = Box::new(1u32);
    let t = xs.to_vec();
    let _ = (w, s, b, t);
    v
}
// mkss-lint: hot-path end
"#;
    assert_fires("crates/sim/src/fixture.rs", src, "hot-path-alloc", 5);
}

#[test]
fn hot_path_alloc_suppressed_by_allow() {
    let src = r#"
// mkss-lint: hot-path begin
fn hot() -> Vec<u32> {
    // mkss-lint: allow(hot-path-alloc) — cold error branch, runs at most once per simulation
    Vec::new()
}
// mkss-lint: hot-path end
"#;
    assert_suppressed("crates/sim/src/fixture.rs", src);
}

#[test]
fn hot_path_alloc_outside_region_is_silent() {
    let src = r#"
fn cold() -> Vec<u32> { vec![1, 2, 3] }
// mkss-lint: hot-path begin
fn hot(x: u32) -> u32 { x + 1 }
// mkss-lint: hot-path end
fn also_cold() -> String { format!("x") }
"#;
    assert_clean("crates/sim/src/fixture.rs", src);
}

#[test]
fn hot_path_markers_must_balance() {
    assert_fires(
        "crates/sim/src/fixture.rs",
        "// mkss-lint: hot-path begin\nfn f() {}\n",
        "hot-path-alloc",
        1,
    );
    assert_fires(
        "crates/sim/src/fixture.rs",
        "fn f() {}\n// mkss-lint: hot-path end\n",
        "hot-path-alloc",
        1,
    );
}

// ---------------------------------------------------------------- //
// error-hygiene

#[test]
fn error_hygiene_fires_on_bare_error_type() {
    let src = "pub struct NakedError;\n";
    let found = lint_one("crates/core/src/fixture.rs", src);
    assert_eq!(rules_of(&found), vec!["error-hygiene"]);
    assert!(found[0].message.contains("#[non_exhaustive]"));
    assert!(found[0].message.contains("Display"));
}

#[test]
fn error_hygiene_suppressed_by_allow() {
    let src = "\
// mkss-lint: allow(error-hygiene) — internal bridge type, never crosses the API
pub struct BridgeError;
";
    assert_suppressed("crates/core/src/fixture.rs", src);
}

#[test]
fn error_hygiene_clean_on_convention() {
    let src = r#"
use std::error::Error as StdError;
use std::fmt;

#[derive(Debug)]
#[non_exhaustive]
pub enum GoodError {
    Bad,
}

impl fmt::Display for GoodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad")
    }
}

impl StdError for GoodError {}
"#;
    assert_clean("crates/core/src/fixture.rs", src);
}

#[test]
fn error_hygiene_resolves_impls_across_files() {
    let decl = "#[non_exhaustive]\npub struct SplitError;\n";
    let impls = "use std::fmt;\nuse crate::SplitError;\n\
impl fmt::Display for SplitError { fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { write!(f, \"e\") } }\n\
impl std::error::Error for SplitError {}\n";
    let report = lint_sources(&[
        ("crates/core/src/decl.rs".into(), decl.into()),
        ("crates/core/src/impls.rs".into(), impls.into()),
    ]);
    assert!(report.findings.is_empty(), "got: {:#?}", report.findings);
}

// ---------------------------------------------------------------- //
// vendored-deps-only

#[test]
fn vendored_deps_fires_on_registry_and_git_deps() {
    let src = r#"
[package]
name = "fixture"

[dependencies]
serde = "1.0"
rand = { version = "0.8", features = ["std"] }
remote = { git = "https://example.com/remote" }

[dependencies.sub]
version = "2"
"#;
    assert_fires("crates/fixture/Cargo.toml", src, "vendored-deps-only", 4);
}

#[test]
fn vendored_deps_suppressed_by_allow() {
    let src = r#"
[dependencies]
# mkss-lint: allow(vendored-deps-only) — fixture demonstrating suppression syntax in manifests
serde = "1.0"
"#;
    assert_suppressed("crates/fixture/Cargo.toml", src);
}

#[test]
fn vendored_deps_clean_on_path_and_workspace_deps() {
    let src = r#"
[package]
name = "fixture"

[workspace.dependencies]
rand = { path = "vendor/rand" }
serde = { path = "vendor/serde", features = ["derive"] }

[dependencies]
mkss-core.workspace = true
mkss-sim = { workspace = true }
local = { path = "../local" }

[dependencies.sub]
path = "vendor/sub"

[dev-dependencies]
proptest = { path = "vendor/proptest" }

[features]
default = []
"#;
    assert_clean("crates/fixture/Cargo.toml", src);
}

// ---------------------------------------------------------------- //
// recorder-gated-emit

#[test]
fn recorder_gate_fires_on_unguarded_emit() {
    let src = r#"
fn emit_badly(recorder: &dyn Recorder, c: CounterId) {
    recorder.incr(c, 1);
}
fn observe_badly(recorder: &dyn Recorder, h: HistogramId) {
    recorder.observe(h, 7);
}
"#;
    assert_fires("crates/sim/src/fixture.rs", src, "recorder-gated-emit", 2);
}

#[test]
fn recorder_gate_suppressed_by_allow() {
    let src = r#"
fn emit_knowingly(recorder: &dyn Recorder, c: CounterId) {
    // mkss-lint: allow(recorder-gated-emit) — caller already checked attachment
    recorder.incr(c, 1);
}
"#;
    assert_suppressed("crates/sim/src/fixture.rs", src);
}

#[test]
fn recorder_gate_clean_inside_gate_and_outside_sim() {
    let gated = r#"
fn emit(&self, counter: CounterId) {
    if let Some(recorder) = &self.ws.recorder.0 {
        recorder.incr(counter, 1);
    }
}
"#;
    assert_clean("crates/sim/src/fixture.rs", gated);
    // The rule only guards the simulator; the registry itself (obs
    // crate) calls incr on shards freely.
    assert_clean(
        "crates/obs/src/fixture.rs",
        "fn bump(&self) { self.shard.incr(CounterId::JobsReleased, 1); }",
    );
}

#[test]
fn recorder_gate_else_branch_is_not_gated() {
    let src = r#"
fn emit(&self, counter: CounterId) {
    if let Some(recorder) = &self.ws.recorder.0 {
        recorder.incr(counter, 1);
    } else {
        self.fallback.incr(counter, 1);
    }
}
"#;
    assert_fires("crates/sim/src/fixture.rs", src, "recorder-gated-emit", 1);
}

// ---------------------------------------------------------------- //
// malformed-directive

#[test]
fn malformed_directive_fires() {
    // Missing reason, unknown rule, and a typoed keyword all fire.
    let src = "\
// mkss-lint: allow(no-unwrap-in-lib)
// mkss-lint: allow(no-such-rule) — reason
// mkss-lint: hot-path begins
fn f() {}
";
    assert_fires("crates/core/src/fixture.rs", src, "malformed-directive", 3);
}

#[test]
fn malformed_directive_suppressed_by_allow() {
    let src = "\
// mkss-lint: allow(malformed-directive) — the next line demonstrates a typo on purpose
// mkss-lint: allos(oops)
fn f() {}
";
    assert_suppressed("crates/core/src/fixture.rs", src);
}

#[test]
fn wellformed_directives_are_silent() {
    let src = "\
pub fn f(x: Option<u32>) -> u32 {
    // mkss-lint: allow(no-unwrap-in-lib) — fixture invariant
    x.unwrap()
}
";
    assert_clean("crates/core/src/fixture.rs", src);
}

// ---------------------------------------------------------------- //
// unused-allow

#[test]
fn unused_allow_fires() {
    let src = "\
// mkss-lint: allow(no-unwrap-in-lib) — nothing here actually unwraps
fn f() {}
";
    assert_fires("crates/core/src/fixture.rs", src, "unused-allow", 1);
}

#[test]
fn unused_allow_suppressed_by_allow() {
    let src = "\
// mkss-lint: allow(unused-allow) — fixture demonstrating a deliberately-unused annotation
// mkss-lint: allow(no-unwrap-in-lib) — nothing here actually unwraps
fn f() {}
";
    assert_suppressed("crates/core/src/fixture.rs", src);
}

#[test]
fn used_allow_is_silent_and_test_code_exempt() {
    let used = "\
pub fn f(x: Option<u32>) -> u32 {
    // mkss-lint: allow(no-unwrap-in-lib) — fixture invariant
    x.unwrap()
}
";
    assert_clean("crates/core/src/fixture.rs", used);
    // Rules do not run inside #[cfg(test)], so an allow there can never
    // be "used"; it must not be punished for it.
    let in_test = "\
#[cfg(test)]
mod tests {
    fn t(x: Option<u32>) -> u32 {
        // mkss-lint: allow(no-unwrap-in-lib) — test-only
        x.unwrap()
    }
}
";
    assert_clean("crates/core/src/fixture.rs", in_test);
}

// ---------------------------------------------------------------- //
// cross-cutting engine behaviour

#[test]
fn allow_must_be_adjacent() {
    // Two lines above the finding: too far, does not suppress (and is
    // therefore itself unused).
    let src = "\
pub fn f(x: Option<u32>) -> u32 {
    // mkss-lint: allow(no-unwrap-in-lib) — too far away

    x.unwrap()
}
";
    let found = lint_one("crates/core/src/fixture.rs", src);
    let mut rules = rules_of(&found);
    rules.sort();
    assert_eq!(rules, vec!["no-unwrap-in-lib", "unused-allow"]);
}

#[test]
fn allow_on_same_line_works() {
    let src = "\
pub fn f(x: Option<u32>) -> u32 {
    x.unwrap() // mkss-lint: allow(no-unwrap-in-lib) — trailing form
}
";
    assert_suppressed("crates/core/src/fixture.rs", src);
}

#[test]
fn findings_are_sorted_and_formatted() {
    let report = lint_sources(&[
        (
            "crates/core/src/b.rs".into(),
            "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n".into(),
        ),
        (
            "crates/core/src/a.rs".into(),
            "pub fn g(x: Option<u32>) -> u32 { x.unwrap() }\n".into(),
        ),
    ]);
    let lines: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert_eq!(lines.len(), 2);
    assert!(lines[0].starts_with("crates/core/src/a.rs:1: [no-unwrap-in-lib]"));
    assert!(lines[1].starts_with("crates/core/src/b.rs:1: [no-unwrap-in-lib]"));
}
