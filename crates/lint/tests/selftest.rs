//! Rule self-tests: every rule has (at least) one fixture where it
//! fires, one where an `allow` annotation suppresses it, and one where
//! clean code stays silent.
//!
//! Fixtures are in-memory files run through [`mkss_lint::lint_sources`]
//! under workspace-relative virtual paths, so rule scoping (library
//! crates vs. harness vs. tests) is exercised exactly as in a real run.

use mkss_lint::lint_sources;
use mkss_lint::rules::Finding;

/// Lints one virtual file.
fn lint_one(path: &str, src: &str) -> Vec<Finding> {
    lint_sources(&[(path.to_string(), src.to_string())]).findings
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

fn assert_clean(path: &str, src: &str) {
    let found = lint_one(path, src);
    assert!(found.is_empty(), "expected clean, got: {found:#?}");
}

fn assert_fires(path: &str, src: &str, rule: &str, times: usize) {
    let found = lint_one(path, src);
    let hits = found.iter().filter(|f| f.rule == rule).count();
    assert_eq!(hits, times, "expected {rule} x{times}, got: {found:#?}");
}

/// Suppressed fixtures must produce zero findings *and* count the
/// suppression (the allow is used, so no unused-allow either).
fn assert_suppressed(path: &str, src: &str) {
    let report = lint_sources(&[(path.to_string(), src.to_string())]);
    assert!(
        report.findings.is_empty(),
        "expected full suppression, got: {:#?}",
        report.findings
    );
    assert!(report.suppressed > 0, "nothing was suppressed");
}

// ---------------------------------------------------------------- //
// no-unwrap-in-lib

#[test]
fn no_unwrap_fires_in_lib_crates() {
    let src = r#"
pub fn f(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect("present");
    if a == b { panic!("boom"); }
    a
}
"#;
    assert_fires("crates/core/src/fixture.rs", src, "no-unwrap-in-lib", 3);
}

#[test]
fn no_unwrap_suppressed_by_allow() {
    let src = r#"
/// Fixture: the allow below covers the expect call.
pub fn f(x: Option<u32>) -> u32 {
    // mkss-lint: allow(no-unwrap-in-lib) — x is Some by construction in this fixture
    x.expect("present")
}
"#;
    assert_suppressed("crates/sim/src/fixture.rs", src);
}

#[test]
fn no_unwrap_clean_code_is_silent() {
    // unwrap_or is a different identifier; unwrap in doc comments,
    // strings, and #[cfg(test)] items is exempt; non-library crates
    // (harness, cli) are out of scope.
    let src = r#"
/// Example: `x.unwrap()` panics on None.
pub fn f(x: Option<u32>) -> u32 {
    let msg = "never unwrap() in a string";
    let _ = msg;
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(1u32).unwrap();
    }
}
"#;
    assert_clean("crates/core/src/fixture.rs", src);
    assert_clean(
        "crates/bench/src/fixture.rs",
        "pub fn f() { None::<u32>.unwrap(); }",
    );
}

// ---------------------------------------------------------------- //
// nondeterminism

#[test]
fn nondeterminism_fires_on_hash_collections_clocks_and_thread_rng() {
    let src = r#"
use std::collections::HashMap;
pub fn f() {
    let t = std::time::Instant::now();
    let _ = (t, thread_rng());
}
"#;
    assert_fires("crates/bench/src/fixture.rs", src, "nondeterminism", 3);
}

#[test]
fn nondeterminism_suppressed_by_allow() {
    let src = r#"
pub fn stage_timer() -> std::time::Instant {
    // mkss-lint: allow(nondeterminism) — timing only, never feeds results
    std::time::Instant::now()
}
"#;
    assert_suppressed("crates/bench/src/fixture.rs", src);
}

#[test]
fn nondeterminism_clean_and_test_sources_exempt() {
    assert_clean(
        "crates/bench/src/fixture.rs",
        "use std::collections::BTreeMap;\npub fn f(m: &BTreeMap<u32, u32>) -> u32 { m.len() as u32 }",
    );
    // Integration tests and benches may hash and time freely.
    assert_clean(
        "tests/fixture.rs",
        "use std::collections::HashMap;\nfn f() { let _ = std::time::Instant::now(); }",
    );
    assert_clean(
        "crates/bench/benches/fixture.rs",
        "use std::collections::HashSet;\nfn f() -> HashSet<u32> { HashSet::new() }",
    );
}

// ---------------------------------------------------------------- //
// hot-path-alloc

#[test]
fn hot_path_alloc_fires_inside_region() {
    let src = r#"
fn cold() -> Vec<u32> { Vec::new() }
// mkss-lint: hot-path begin
fn hot(xs: &[u32]) -> Vec<u32> {
    let v: Vec<u32> = xs.iter().copied().collect();
    let w = vec![1u32];
    let s = String::from("hi");
    let b = Box::new(1u32);
    let t = xs.to_vec();
    let _ = (w, s, b, t);
    v
}
// mkss-lint: hot-path end
"#;
    assert_fires("crates/sim/src/fixture.rs", src, "hot-path-alloc", 5);
}

#[test]
fn hot_path_alloc_suppressed_by_allow() {
    let src = r#"
// mkss-lint: hot-path begin
fn hot() -> Vec<u32> {
    // mkss-lint: allow(hot-path-alloc) — cold error branch, runs at most once per simulation
    Vec::new()
}
// mkss-lint: hot-path end
"#;
    assert_suppressed("crates/sim/src/fixture.rs", src);
}

#[test]
fn hot_path_alloc_outside_region_is_silent() {
    let src = r#"
fn cold() -> Vec<u32> { vec![1, 2, 3] }
// mkss-lint: hot-path begin
fn hot(x: u32) -> u32 { x + 1 }
// mkss-lint: hot-path end
fn also_cold() -> String { format!("x") }
"#;
    assert_clean("crates/sim/src/fixture.rs", src);
}

#[test]
fn hot_path_markers_must_balance() {
    assert_fires(
        "crates/sim/src/fixture.rs",
        "// mkss-lint: hot-path begin\nfn f() {}\n",
        "hot-path-alloc",
        1,
    );
    assert_fires(
        "crates/sim/src/fixture.rs",
        "fn f() {}\n// mkss-lint: hot-path end\n",
        "hot-path-alloc",
        1,
    );
}

// ---------------------------------------------------------------- //
// error-hygiene

#[test]
fn error_hygiene_fires_on_bare_error_type() {
    let src = "/// Fixture: declared bare on purpose.\npub struct NakedError;\n";
    let found = lint_one("crates/core/src/fixture.rs", src);
    assert_eq!(rules_of(&found), vec!["error-hygiene"]);
    assert!(found[0].message.contains("#[non_exhaustive]"));
    assert!(found[0].message.contains("Display"));
}

#[test]
fn error_hygiene_suppressed_by_allow() {
    // The directive line between the doc comment and the item must not
    // break doc attachment (it is an ordinary comment to rustc).
    let src = "\
/// Fixture bridge type.
// mkss-lint: allow(error-hygiene) — internal bridge type, never crosses the API
pub struct BridgeError;
";
    assert_suppressed("crates/core/src/fixture.rs", src);
}

#[test]
fn error_hygiene_clean_on_convention() {
    let src = r#"
use std::error::Error as StdError;
use std::fmt;

/// Fixture error following the convention.
#[derive(Debug)]
#[non_exhaustive]
pub enum GoodError {
    Bad,
}

impl fmt::Display for GoodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad")
    }
}

impl StdError for GoodError {}
"#;
    assert_clean("crates/core/src/fixture.rs", src);
}

#[test]
fn error_hygiene_resolves_impls_across_files() {
    let decl =
        "/// Fixture: impls live in a sibling file.\n#[non_exhaustive]\npub struct SplitError;\n";
    let impls = "use std::fmt;\nuse crate::SplitError;\n\
impl fmt::Display for SplitError { fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { write!(f, \"e\") } }\n\
impl std::error::Error for SplitError {}\n";
    let report = lint_sources(&[
        ("crates/core/src/decl.rs".into(), decl.into()),
        ("crates/core/src/impls.rs".into(), impls.into()),
    ]);
    assert!(report.findings.is_empty(), "got: {:#?}", report.findings);
}

// ---------------------------------------------------------------- //
// vendored-deps-only

#[test]
fn vendored_deps_fires_on_registry_and_git_deps() {
    let src = r#"
[package]
name = "fixture"

[dependencies]
serde = "1.0"
rand = { version = "0.8", features = ["std"] }
remote = { git = "https://example.com/remote" }

[dependencies.sub]
version = "2"
"#;
    assert_fires("crates/fixture/Cargo.toml", src, "vendored-deps-only", 4);
}

#[test]
fn vendored_deps_suppressed_by_allow() {
    let src = r#"
[dependencies]
# mkss-lint: allow(vendored-deps-only) — fixture demonstrating suppression syntax in manifests
serde = "1.0"
"#;
    assert_suppressed("crates/fixture/Cargo.toml", src);
}

#[test]
fn vendored_deps_clean_on_path_and_workspace_deps() {
    let src = r#"
[package]
name = "fixture"

[workspace.dependencies]
rand = { path = "vendor/rand" }
serde = { path = "vendor/serde", features = ["derive"] }

[dependencies]
mkss-core.workspace = true
mkss-sim = { workspace = true }
local = { path = "../local" }

[dependencies.sub]
path = "vendor/sub"

[dev-dependencies]
proptest = { path = "vendor/proptest" }

[features]
default = []
"#;
    assert_clean("crates/fixture/Cargo.toml", src);
}

// ---------------------------------------------------------------- //
// recorder-gated-emit

#[test]
fn recorder_gate_fires_on_unguarded_emit() {
    let src = r#"
fn emit_badly(recorder: &dyn Recorder, c: CounterId) {
    recorder.incr(c, 1);
}
fn observe_badly(recorder: &dyn Recorder, h: HistogramId) {
    recorder.observe(h, 7);
}
"#;
    assert_fires("crates/sim/src/fixture.rs", src, "recorder-gated-emit", 2);
}

#[test]
fn recorder_gate_suppressed_by_allow() {
    let src = r#"
fn emit_knowingly(recorder: &dyn Recorder, c: CounterId) {
    // mkss-lint: allow(recorder-gated-emit) — caller already checked attachment
    recorder.incr(c, 1);
}
"#;
    assert_suppressed("crates/sim/src/fixture.rs", src);
}

#[test]
fn recorder_gate_clean_inside_gate_and_outside_sim() {
    let gated = r#"
fn emit(&self, counter: CounterId) {
    if let Some(recorder) = &self.ws.recorder.0 {
        recorder.incr(counter, 1);
    }
}
"#;
    assert_clean("crates/sim/src/fixture.rs", gated);
    // The rule only guards the simulator; the registry itself (obs
    // crate) calls incr on shards freely.
    assert_clean(
        "crates/obs/src/fixture.rs",
        "fn bump(&self) { self.shard.incr(CounterId::JobsReleased, 1); }",
    );
}

#[test]
fn recorder_gate_else_branch_is_not_gated() {
    let src = r#"
fn emit(&self, counter: CounterId) {
    if let Some(recorder) = &self.ws.recorder.0 {
        recorder.incr(counter, 1);
    } else {
        self.fallback.incr(counter, 1);
    }
}
"#;
    assert_fires("crates/sim/src/fixture.rs", src, "recorder-gated-emit", 1);
}

// ---------------------------------------------------------------- //
// malformed-directive

#[test]
fn malformed_directive_fires() {
    // Missing reason, unknown rule, and a typoed keyword all fire.
    let src = "\
// mkss-lint: allow(no-unwrap-in-lib)
// mkss-lint: allow(no-such-rule) — reason
// mkss-lint: hot-path begins
fn f() {}
";
    assert_fires("crates/core/src/fixture.rs", src, "malformed-directive", 3);
}

#[test]
fn malformed_directive_suppressed_by_allow() {
    let src = "\
// mkss-lint: allow(malformed-directive) — the next line demonstrates a typo on purpose
// mkss-lint: allos(oops)
fn f() {}
";
    assert_suppressed("crates/core/src/fixture.rs", src);
}

#[test]
fn wellformed_directives_are_silent() {
    let src = "\
/// Fixture: a reasoned allow is well-formed.
pub fn f(x: Option<u32>) -> u32 {
    // mkss-lint: allow(no-unwrap-in-lib) — fixture invariant
    x.unwrap()
}
";
    assert_clean("crates/core/src/fixture.rs", src);
}

// ---------------------------------------------------------------- //
// unused-allow

#[test]
fn unused_allow_fires() {
    let src = "\
// mkss-lint: allow(no-unwrap-in-lib) — nothing here actually unwraps
fn f() {}
";
    assert_fires("crates/core/src/fixture.rs", src, "unused-allow", 1);
}

#[test]
fn unused_allow_suppressed_by_allow() {
    let src = "\
// mkss-lint: allow(unused-allow) — fixture demonstrating a deliberately-unused annotation
// mkss-lint: allow(no-unwrap-in-lib) — nothing here actually unwraps
fn f() {}
";
    assert_suppressed("crates/core/src/fixture.rs", src);
}

#[test]
fn used_allow_is_silent_and_test_code_exempt() {
    let used = "\
/// Fixture: the allow below is consumed.
pub fn f(x: Option<u32>) -> u32 {
    // mkss-lint: allow(no-unwrap-in-lib) — fixture invariant
    x.unwrap()
}
";
    assert_clean("crates/core/src/fixture.rs", used);
    // Rules do not run inside #[cfg(test)], so an allow there can never
    // be "used"; it must not be punished for it.
    let in_test = "\
#[cfg(test)]
mod tests {
    fn t(x: Option<u32>) -> u32 {
        // mkss-lint: allow(no-unwrap-in-lib) — test-only
        x.unwrap()
    }
}
";
    assert_clean("crates/core/src/fixture.rs", in_test);
}

// ---------------------------------------------------------------- //
// cross-cutting engine behaviour

#[test]
fn allow_must_be_adjacent() {
    // Two lines above the finding: too far, does not suppress (and is
    // therefore itself unused).
    let src = "\
fn f(x: Option<u32>) -> u32 {
    // mkss-lint: allow(no-unwrap-in-lib) — too far away

    x.unwrap()
}
";
    let found = lint_one("crates/core/src/fixture.rs", src);
    let mut rules = rules_of(&found);
    rules.sort();
    assert_eq!(rules, vec!["no-unwrap-in-lib", "unused-allow"]);
}

#[test]
fn allow_on_same_line_works() {
    let src = "\
fn f(x: Option<u32>) -> u32 {
    x.unwrap() // mkss-lint: allow(no-unwrap-in-lib) — trailing form
}
";
    assert_suppressed("crates/core/src/fixture.rs", src);
}

#[test]
fn findings_are_sorted_and_formatted() {
    let report = lint_sources(&[
        (
            "crates/core/src/b.rs".into(),
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n".into(),
        ),
        (
            "crates/core/src/a.rs".into(),
            "fn g(x: Option<u32>) -> u32 { x.unwrap() }\n".into(),
        ),
    ]);
    let lines: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert_eq!(lines.len(), 2);
    assert!(lines[0].starts_with("crates/core/src/a.rs:1: [MKSS-L002 no-unwrap-in-lib]"));
    assert!(lines[1].starts_with("crates/core/src/b.rs:1: [MKSS-L002 no-unwrap-in-lib]"));
}

// ---------------------------------------------------------------- //
// lock-discipline

#[test]
fn lock_discipline_fires_on_guard_across_blocking() {
    let src = r#"
fn f(&self) {
    let g = lock(&self.shared.conns);
    self.tx.send(1);
    drop(g);
}
"#;
    assert_fires("crates/serve/src/fixture.rs", src, "lock-discipline", 1);
}

#[test]
fn lock_discipline_fires_on_double_acquisition() {
    let src = r#"
fn f(&self) {
    let a = self.state.lock();
    let b = self.state.lock();
    let _ = (a, b);
}
"#;
    assert_fires("crates/core/src/fixture.rs", src, "lock-discipline", 1);
}

#[test]
fn lock_discipline_reports_order_inversion_across_files() {
    let ab = "fn f(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n    let _ = (a, b);\n}\n";
    let ba = "fn g(&self) {\n    let b = self.beta.lock();\n    let a = self.alpha.lock();\n    let _ = (a, b);\n}\n";
    let report = lint_sources(&[
        ("crates/serve/src/ab.rs".into(), ab.into()),
        ("crates/serve/src/ba.rs".into(), ba.into()),
    ]);
    assert_eq!(rules_of(&report.findings), vec!["lock-discipline"]);
    assert!(report.findings[0].message.contains("inversion"));
    // Reported at the lexicographically later edge (beta-then-alpha).
    assert_eq!(report.findings[0].path, "crates/serve/src/ba.rs");
}

#[test]
fn lock_discipline_suppressed_by_allow() {
    let src = r#"
fn f(&self) {
    let g = lock(&self.shared.conns);
    // mkss-lint: allow(lock-discipline) — fixture: unbounded channel, send never blocks
    self.tx.send(1);
    drop(g);
}
"#;
    assert_suppressed("crates/serve/src/fixture.rs", src);
}

#[test]
fn lock_discipline_clean_on_scoped_guards_and_condvar_protocol() {
    // Guard dies with its block before the blocking call.
    let scoped = r#"
fn f(&self) {
    {
        let g = lock(&self.state);
        let _ = *g;
    }
    self.tx.send(1);
}
"#;
    assert_clean("crates/serve/src/fixture.rs", scoped);
    // A condvar wait consuming its own guard is the protocol working.
    let condvar = r#"
fn f(&self) {
    let mut g = lock(&self.state);
    while !g.ready {
        g = self.cv.wait(g);
    }
}
"#;
    assert_clean("crates/serve/src/fixture.rs", condvar);
    // Early drop releases the guard before the blocking call.
    let dropped = r#"
fn f(&self) {
    let g = lock(&self.state);
    let v = *g;
    drop(g);
    self.tx.send(v);
}
"#;
    assert_clean("crates/serve/src/fixture.rs", dropped);
}

// ---------------------------------------------------------------- //
// atomic-ordering-annotated

#[test]
fn atomic_ordering_fires_without_note() {
    let src = r#"
fn f(flag: &std::sync::atomic::AtomicBool) {
    flag.store(true, std::sync::atomic::Ordering::SeqCst);
}
"#;
    assert_fires(
        "crates/core/src/fixture.rs",
        src,
        "atomic-ordering-annotated",
        1,
    );
}

#[test]
fn atomic_ordering_unused_note_fires() {
    let src = "\
// mkss-lint: ordering — this note justifies nothing
fn f() {}
";
    assert_fires(
        "crates/core/src/fixture.rs",
        src,
        "atomic-ordering-annotated",
        1,
    );
}

#[test]
fn atomic_ordering_note_covers_nearby_site() {
    let src = r#"
fn f(flag: &AtomicBool) {
    // mkss-lint: ordering — fixture: stop flag, no data published through it
    flag.store(true, Ordering::Relaxed);
}
"#;
    assert_clean("crates/core/src/fixture.rs", src);
    // std::cmp::Ordering variants never collide with memory orderings.
    assert_clean(
        "crates/core/src/fixture.rs",
        "fn c(a: u32, b: u32) -> std::cmp::Ordering { a.cmp(&b) }\n",
    );
    // Test sources annotate nothing.
    assert_clean(
        "crates/core/tests/fixture.rs",
        "fn f(flag: &AtomicBool) { flag.store(true, Ordering::SeqCst); }\n",
    );
}

#[test]
fn atomic_ordering_suppressed_by_allow() {
    let src = r#"
fn f(flag: &AtomicBool) {
    // mkss-lint: allow(atomic-ordering-annotated) — fixture demonstrating the plain allow form
    flag.store(true, Ordering::SeqCst);
}
"#;
    assert_suppressed("crates/core/src/fixture.rs", src);
}

// ---------------------------------------------------------------- //
// float-fold-determinism

#[test]
fn float_fold_fires_on_accumulation_and_sum() {
    let src = r#"
fn total(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in xs {
        acc += *x;
    }
    acc
}

fn total2(xs: &[f64]) -> f64 {
    xs.iter().sum()
}
"#;
    assert_fires(
        "crates/analysis/src/fixture.rs",
        src,
        "float-fold-determinism",
        2,
    );
}

#[test]
fn float_fold_resolves_newtypes_through_item_graph() {
    // `self.0 += j` is float because Energy wraps f64 — resolved via
    // the cross-file item graph, not local tokens.
    let decl = "/// Fixture energy newtype.\npub struct Energy(pub f64);\n";
    let imp = "\
use crate::Energy;
impl Energy {
    fn add(&mut self, j: Energy) {
        self.0 += j.0;
    }
}
";
    let report = lint_sources(&[
        ("crates/sim/src/decl.rs".into(), decl.into()),
        ("crates/sim/src/imp.rs".into(), imp.into()),
    ]);
    assert_eq!(rules_of(&report.findings), vec!["float-fold-determinism"]);
}

#[test]
fn float_fold_suppressed_by_allow() {
    let src = r#"
fn total(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in xs {
        // mkss-lint: allow(float-fold-determinism) — fixture: slice order is the pinned order
        acc += *x;
    }
    acc
}
"#;
    assert_suppressed("crates/analysis/src/fixture.rs", src);
}

#[test]
fn float_fold_clean_on_integers_and_fold_helpers() {
    let src = r#"
fn count(xs: &[u32]) -> u32 {
    let mut acc = 0u32;
    for x in xs {
        acc += *x;
    }
    acc
}

fn mean(xs: &[f64]) -> f64 {
    mkss_core::fold::sum_f64(xs) / xs.len() as f64
}
"#;
    assert_clean("crates/analysis/src/fixture.rs", src);
    // The fold helpers themselves are the one sanctioned home.
    assert_clean(
        "crates/core/src/fold.rs",
        "/// Fixture.\npub fn sum_f64(xs: &[f64]) -> f64 { let mut a = 0.0; for x in xs { a += *x; } a }\n",
    );
}

// ---------------------------------------------------------------- //
// condvar-wait-in-loop

#[test]
fn condvar_wait_fires_outside_loop() {
    let src = r#"
fn f(&self) {
    let g = lock(&self.state);
    let _r = self.cv.wait_timeout(g, timeout);
}
"#;
    assert_fires(
        "crates/serve/src/fixture.rs",
        src,
        "condvar-wait-in-loop",
        1,
    );
}

#[test]
fn condvar_wait_suppressed_by_allow() {
    let src = r#"
fn f(&self) {
    let g = lock(&self.state);
    // mkss-lint: allow(condvar-wait-in-loop) — fixture: bounded grace period, waking early is safe
    let _r = self.cv.wait_timeout(g, dur);
}
"#;
    assert_suppressed("crates/serve/src/fixture.rs", src);
}

#[test]
fn condvar_wait_clean_in_loop_wait_while_and_child_wait() {
    let src = r#"
fn f(&self) {
    let mut g = lock(&self.state);
    while !g.ready {
        g = self.cv.wait(g);
    }
}

fn w(&self) {
    let g = lock(&self.state);
    let _r = self.cv.wait_while(g, |s| !s.ready);
}

fn h(child: &mut Child) {
    let _status = child.wait();
}
"#;
    assert_clean("crates/serve/src/fixture.rs", src);
}

// ---------------------------------------------------------------- //
// pub-api-hygiene

#[test]
fn pub_api_fires_on_undocumented_and_exhaustive_items() {
    let src = r#"
pub fn naked() {}

/// Documented, but the variant set is open-ended.
pub enum Mode {
    A,
    B,
}

/// A documented type.
pub struct Thing;

impl Thing {
    pub fn undocumented_method(&self) {}
}
"#;
    assert_fires("crates/core/src/fixture.rs", src, "pub-api-hygiene", 3);
}

#[test]
fn pub_api_suppressed_by_allow() {
    let src = "\
/// Fixture catalog enum.
// mkss-lint: allow(pub-api-hygiene) — fixture: variant set is closed, consumers match exhaustively
pub enum Closed {
    A,
    B,
}
";
    assert_suppressed("crates/core/src/fixture.rs", src);
}

#[test]
fn pub_api_clean_on_documented_and_private_items() {
    let src = r#"
/// Documented.
#[non_exhaustive]
pub enum Mode {
    A,
    B,
}

/// Documented fn.
pub fn f() {}

struct Hidden;

fn private() {}

mod inner {
    pub fn not_api() {}
}

/// Documented trait.
pub trait Speak {
    /// Required method.
    fn speak(&self);
}

/// Documented type.
pub struct Thing;

impl Speak for Thing {
    fn speak(&self) {}
}
"#;
    assert_clean("crates/core/src/fixture.rs", src);
    // Harness crates are not API surface.
    assert_clean("crates/bench/src/fixture.rs", "pub fn free_for_all() {}\n");
}
