//! Property tests for the lexer's span and line bookkeeping: for any
//! source assembled from awkward token shapes (raw strings with `#`
//! fences, nested block comments, escaped newlines, char literals vs
//! lifetimes, raw identifiers), every token's recorded byte span must
//! slice back to its text and its recorded line must equal one plus the
//! number of newlines before the span — the invariant every rule's
//! `path:line` anchor rests on.

use mkss_lint::lexer::{lex, TokKind};
use proptest::prelude::*;

/// Token shapes chosen for their historical treachery, not coverage of
/// pretty code. Each is a complete token (or skipped construct), so any
/// interleaving is lexable.
const FRAGMENTS: &[&str] = &[
    "ident",
    "r#type",
    "x7",
    "_",
    "0usize",
    "1.5e3",
    "2e-7",
    "0x1f",
    "42",
    "'a'",
    "'\\n'",
    "'\\''",
    "'static",
    "'a",
    "\"plain\"",
    "\"esc \\\" \\\\ \\n q\"",
    "\"two\nlines\"",
    "\"cont \\\n tail\"",
    "b\"bytes\"",
    "r\"raw\"",
    "r#\"fenced \" quote\"#",
    "r##\"deep \"# fence\"##",
    "// line comment",
    "/// doc line",
    "//! module doc",
    "/* block */",
    "/* nested /* inner */ outer */",
    "/* multi\nline\nblock */",
    "::",
    "->",
    "+=",
    ".",
    "(",
    ")",
    "{",
    "}",
];

const SEPARATORS: &[&str] = &[" ", "  ", "\t", "\n", "\n\n", " \n "];

/// Each pick packs a fragment index (low byte) and a separator index
/// (next byte) — the vendored proptest subset has no tuple strategies.
fn assemble(picks: &[u32]) -> String {
    let mut src = String::new();
    for &p in picks {
        src.push_str(FRAGMENTS[p as usize % FRAGMENTS.len()]);
        src.push_str(SEPARATORS[(p >> 8) as usize % SEPARATORS.len()]);
    }
    src
}

proptest! {
    #[test]
    fn spans_slice_back_and_lines_count_newlines(
        picks in proptest::collection::vec(any::<u32>(), 0..60),
    ) {
        let src = assemble(&picks);
        let lexed = lex(&src);
        let mut prev_end = 0u32;
        for t in &lexed.toks {
            let (start, end) = (t.start as usize, t.end as usize);
            // Spans are in-bounds, non-empty, ordered, and disjoint.
            prop_assert!(start < end && end <= src.len(), "span {start}..{end} of {:?}", t.text);
            prop_assert!(t.start >= prev_end, "overlapping token at {start}");
            prev_end = t.end;
            // The span slices back to the token text (raw identifiers
            // keep their `r#` prefix in the span but not the text).
            let slice = &src[start..end];
            prop_assert!(
                slice == t.text || (t.kind == TokKind::Ident && slice.ends_with(t.text)),
                "span slice {slice:?} != text {:?}",
                t.text
            );
            // The recorded line is where the token *starts*.
            let newlines_before = src[..start].bytes().filter(|&b| b == b'\n').count() as u32;
            prop_assert_eq!(
                t.line,
                newlines_before + 1,
                "line of {:?} at byte {}", t.text, start
            );
        }
        // Directives and doc lines carry real line numbers too.
        let total_lines = src.bytes().filter(|&b| b == b'\n').count() as u32 + 1;
        for d in &lexed.directives {
            prop_assert!(d.line >= 1 && d.line <= total_lines);
        }
        for &l in &lexed.doc_lines {
            prop_assert!(l >= 1 && l <= total_lines);
        }
    }

    /// Lexing never panics on arbitrary (possibly malformed) input.
    #[test]
    fn lexer_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let lexed = lex(&src);
        for t in &lexed.toks {
            prop_assert!((t.end as usize) <= src.len());
        }
    }
}
