//! The linter's strongest self-test: the workspace it ships in must
//! lint clean, and the hot-path region in the engine must actually be
//! there (a silently-unparsed marker would make `hot-path-alloc`
//! vacuous).

use std::path::Path;

use mkss_lint::{lint_paths, lint_workspace};

fn repo_root() -> &'static Path {
    // crates/lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root two levels up")
}

#[test]
fn workspace_has_zero_findings() {
    let report = lint_workspace(repo_root()).expect("workspace walk succeeds");
    assert!(
        report.files > 50,
        "suspiciously few files walked: {}",
        report.files
    );
    let rendered: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        rendered.is_empty(),
        "workspace must lint clean, got:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn engine_hot_path_region_is_live() {
    // Linting the real engine.rs with most of the workspace absent
    // must still resolve its hot-path region without balance errors,
    // proving the markers parse. (An unbalanced or typoed marker is
    // itself a finding, so zero findings here is the assertion.)
    // power.rs rides along so the item graph knows `Energy` is a float
    // newtype — without it the engine's float-fold allows would read as
    // unused and fire L008.
    let root = repo_root();
    let engine = root.join("crates/sim/src/engine.rs");
    let power = root.join("crates/sim/src/power.rs");
    assert!(engine.is_file(), "engine.rs moved?");
    let src = std::fs::read_to_string(&engine).expect("engine.rs is readable");
    assert!(
        src.contains("mkss-lint: hot-path begin") && src.contains("mkss-lint: hot-path end"),
        "engine.rs lost its hot-path markers"
    );
    let report = lint_paths(root, &[engine, power]).expect("two-file lint succeeds");
    let rendered: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        rendered.is_empty(),
        "engine.rs must lint clean on its own:\n{}",
        rendered.join("\n")
    );
}
