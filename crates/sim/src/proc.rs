//! Processor identities of the dual-processor standby-sparing system.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the two processors.
///
/// The system model is exactly dual: a *primary* and a *spare* processor
/// execute in parallel; each mandatory job has a main copy on one and a
/// backup copy on the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ProcId(pub usize);

impl ProcId {
    /// The primary processor.
    pub const PRIMARY: ProcId = ProcId(0);
    /// The spare processor.
    pub const SPARE: ProcId = ProcId(1);
    /// Both processors, primary first.
    pub const ALL: [ProcId; 2] = [ProcId::PRIMARY, ProcId::SPARE];

    /// The other processor.
    ///
    /// ```
    /// use mkss_sim::proc::ProcId;
    /// assert_eq!(ProcId::PRIMARY.other(), ProcId::SPARE);
    /// assert_eq!(ProcId::SPARE.other(), ProcId::PRIMARY);
    /// ```
    pub const fn other(self) -> ProcId {
        ProcId(1 - self.0)
    }

    /// Index (0 = primary, 1 = spare) for table lookups.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ProcId::PRIMARY => write!(f, "primary"),
            ProcId::SPARE => write!(f, "spare"),
            ProcId(n) => write!(f, "proc{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_flips() {
        assert_eq!(ProcId::PRIMARY.other(), ProcId::SPARE);
        assert_eq!(ProcId::SPARE.other(), ProcId::PRIMARY);
        assert_eq!(ProcId::PRIMARY.other().other(), ProcId::PRIMARY);
    }

    #[test]
    fn display_and_index() {
        assert_eq!(ProcId::PRIMARY.to_string(), "primary");
        assert_eq!(ProcId::SPARE.to_string(), "spare");
        assert_eq!(ProcId::PRIMARY.index(), 0);
        assert_eq!(ProcId::SPARE.index(), 1);
        assert_eq!(ProcId::ALL.len(), 2);
    }
}
