//! Simulation results: energy, job statistics, and QoS outcomes.

use mkss_core::task::TaskId;
use mkss_core::time::Time;
use serde::{Deserialize, Serialize};

use crate::power::{Energy, EnergyBreakdown};
use crate::trace::Trace;

/// An (m,k)-constraint violation observed during simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MkViolation {
    /// Violating task.
    pub task: TaskId,
    /// 1-based index of the job completing the first violating window.
    pub job_index: u64,
}

/// Aggregate job statistics of one run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobStats {
    /// Jobs released within the horizon.
    pub released: u64,
    /// Jobs classified mandatory at release.
    pub mandatory: u64,
    /// Optional jobs selected for execution.
    pub optional_selected: u64,
    /// Optional jobs skipped at release.
    pub optional_skipped: u64,
    /// Optional jobs abandoned because they could no longer finish by
    /// their deadline.
    pub optional_abandoned: u64,
    /// Backup copies canceled after their main succeeded (including
    /// never-started ones).
    pub backups_canceled: u64,
    /// Backup copies that ran to completion.
    pub backups_completed: u64,
    /// Copies that completed with a transient fault.
    pub transient_faults: u64,
    /// Copies destroyed by the permanent fault.
    pub copies_lost: u64,
    /// Jobs resolved as met (within the horizon).
    pub met: u64,
    /// Jobs resolved as missed (within the horizon).
    pub missed: u64,
}

/// Result of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Name of the policy that produced this run.
    pub policy: String,
    /// Simulated span `[0, horizon)`.
    pub horizon: Time,
    /// Per-processor energy breakdown (index 0 = primary, 1 = spare).
    pub energy: [EnergyBreakdown; 2],
    /// Job statistics.
    pub stats: JobStats,
    /// All (m,k)-violations (empty when the guarantee held, which
    /// Theorem 1 promises for schedulable sets).
    pub violations: Vec<MkViolation>,
    /// Full schedule trace, when recording was enabled.
    pub trace: Option<Trace>,
}

impl SimReport {
    /// Total energy of both processors.
    pub fn total_energy(&self) -> Energy {
        self.energy[0].total() + self.energy[1].total()
    }

    /// Total active (busy) energy of both processors.
    pub fn active_energy(&self) -> Energy {
        self.energy[0].active + self.energy[1].active
    }

    /// Whether the (m,k)-deadlines were assured for every task.
    pub fn mk_assured(&self) -> bool {
        self.violations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::Energy;

    #[test]
    fn report_totals() {
        let mut r = SimReport {
            policy: "test".into(),
            horizon: Time::from_ms(20),
            energy: [EnergyBreakdown::default(), EnergyBreakdown::default()],
            stats: JobStats::default(),
            violations: vec![],
            trace: None,
        };
        r.energy[0].active = Energy::from_units(8.0);
        r.energy[1].active = Energy::from_units(7.0);
        r.energy[1].idle = Energy::from_units(0.5);
        assert!((r.active_energy().units() - 15.0).abs() < 1e-12);
        assert!((r.total_energy().units() - 15.5).abs() < 1e-12);
        assert!(r.mk_assured());
        r.violations.push(MkViolation {
            task: TaskId(0),
            job_index: 3,
        });
        assert!(!r.mk_assured());
    }
}
