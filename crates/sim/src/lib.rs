//! # mkss-sim
//!
//! A deterministic discrete-event simulator for dual-processor
//! *standby-sparing* real-time systems with (m,k)-firm deadlines,
//! reproducing the execution model of *Niu & Zhu, DATE 2020*.
//!
//! The engine ([`engine::simulate`]) owns everything the paper's schemes
//! share — MJQ/OJQ fixed-priority dispatch, sibling-copy cancellation,
//! transient/permanent fault injection, and DPD energy accounting — while
//! a [`policy::Policy`] supplies only the per-release classification and
//! placement decision. The concrete schemes (`MKSS_ST`, `MKSS_DP`,
//! `MKSS_selective`, …) live in the `mkss-policies` crate.
//!
//! ## Example
//!
//! ```
//! use mkss_core::prelude::*;
//! use mkss_sim::prelude::*;
//!
//! /// A minimal policy: every job mandatory, concurrent backup.
//! struct Duplicate;
//! impl Policy for Duplicate {
//!     fn name(&self) -> &str { "duplicate" }
//!     fn on_release(&mut self, _ctx: &ReleaseCtx<'_>) -> ReleaseDecision {
//!         ReleaseDecision::Mandatory {
//!             main_proc: ProcId::PRIMARY,
//!             backup_delay: Time::ZERO,
//!         }
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ts = TaskSet::new(vec![Task::from_ms(10, 10, 2, 1, 2)?])?;
//! let report = simulate(&ts, &mut Duplicate, &SimConfig::new(Time::from_ms(100)));
//! assert!(report.mk_assured());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod fault;
pub mod metrics;
pub mod policy;
pub mod pool;
pub mod power;
pub mod proc;
pub mod report;
pub mod trace;
pub mod vcd;

/// Commonly used simulator types.
pub mod prelude {
    pub use crate::engine::{simulate, simulate_in, SimConfig, SimConfigBuilder, SimWorkspace};
    pub use crate::fault::{FaultConfig, PermanentFault, TransientSampler};
    pub use crate::policy::{Policy, ReleaseCtx, ReleaseDecision};
    pub use crate::pool::{PooledWorkspace, WorkspacePool};
    pub use crate::power::{Energy, EnergyBreakdown, PowerModel};
    pub use crate::proc::ProcId;
    pub use crate::report::{JobStats, MkViolation, SimReport};
    pub use crate::trace::{JobResolution, Segment, SegmentEnd, Trace};
}
