//! Processor power model and energy accounting.
//!
//! The paper normalizes the active power to `P_act = 1` (one energy unit
//! per unit of busy time) and controls static power with *dynamic power
//! down* (DPD): a processor whose idle interval exceeds the break-even
//! time `T_be` is shut down (Section II-A; the evaluation uses
//! `T_be = 1 ms`).
//!
//! Energies are reported in **unit-milliseconds**: 1.0 = one processor
//! running at `P_act = 1` for one millisecond, so the motivating examples'
//! "15 units" in the hyperperiod `[0,20]` come out as `15.0`.

use mkss_core::time::{Time, TICKS_PER_MS};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// An amount of energy in unit-milliseconds (`P_act = 1` for 1 ms).
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy value from unit-milliseconds.
    pub const fn from_units(units: f64) -> Self {
        Energy(units)
    }

    /// Energy of running at `power` (multiples of `P_act`) for `span`.
    pub fn from_span(span: Time, power: f64) -> Self {
        Energy(span.ticks() as f64 / TICKS_PER_MS as f64 * power)
    }

    /// The value in unit-milliseconds.
    pub const fn units(self) -> f64 {
        self.0
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        // mkss-lint: allow(float-fold-determinism) — Energy's own operator; accumulation order is each caller's contract, audited at their sites
        self.0 += rhs.0;
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, Add::add)
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}u", self.0)
    }
}

/// Power model of one processor.
///
/// * While executing a job the processor draws `p_active` (normalized to
///   1.0 in the paper).
/// * While idle but awake it draws `p_idle` (static/leakage power; the
///   paper does not give a number — see DESIGN.md — so it is
///   configurable; the motivating-example tests use 0 to reproduce the
///   paper's pure *active* energy counts).
/// * While shut down it draws `p_sleep`.
/// * An idle interval longer than the break-even time `t_be` is worth a
///   shutdown: the model charges `t_be` at `p_idle` (the transition
///   overhead that defines the break-even point) and the remainder at
///   `p_sleep`. Shorter intervals idle at `p_idle` throughout.
///
/// # Examples
///
/// ```
/// use mkss_sim::power::PowerModel;
/// use mkss_core::time::Time;
///
/// let pm = PowerModel::default();
/// // 5 ms idle gap with T_be = 1 ms: 1 ms at p_idle=0.1, 4 ms asleep.
/// let e = pm.idle_interval_energy(Time::from_ms(5));
/// assert!((e.units() - 0.1).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Power while executing (multiples of the normalized `P_act`).
    pub p_active: f64,
    /// Power while idle but awake.
    pub p_idle: f64,
    /// Power while shut down.
    pub p_sleep: f64,
    /// DPD break-even time `T_be`.
    pub t_be: Time,
}

impl Default for PowerModel {
    /// The evaluation model: `P_act = 1`, `T_be = 1 ms`, a 10% idle
    /// (leakage) power and negligible sleep power.
    fn default() -> Self {
        PowerModel {
            p_active: 1.0,
            p_idle: 0.1,
            p_sleep: 0.0,
            t_be: Time::from_ms(1),
        }
    }
}

impl PowerModel {
    /// The paper's motivating-example accounting: only active energy
    /// counts (`p_idle = p_sleep = 0`), `P_act = 1`, `T_be = 1 ms`.
    pub fn active_only() -> Self {
        PowerModel {
            p_active: 1.0,
            p_idle: 0.0,
            p_sleep: 0.0,
            t_be: Time::from_ms(1),
        }
    }

    /// Energy drawn while executing for `span`.
    pub fn active_energy(&self, span: Time) -> Energy {
        Energy::from_span(span, self.p_active)
    }

    /// Energy drawn while executing for `span` at a DVS speed of
    /// `speed_permil` thousandths of full speed: dynamic power scales
    /// cubically with frequency/voltage, so the rate is
    /// `p_active · (s/1000)³`. At full speed this equals
    /// [`PowerModel::active_energy`].
    ///
    /// ```
    /// use mkss_sim::power::PowerModel;
    /// use mkss_core::time::Time;
    ///
    /// let pm = PowerModel::active_only();
    /// // Half speed: the same work takes 2× the time at 1/8 the power →
    /// // 1/4 of the energy.
    /// let full = pm.active_energy_at(Time::from_ms(2), 1000);
    /// let half = pm.active_energy_at(Time::from_ms(4), 500);
    /// assert!((half.units() - full.units() / 4.0).abs() < 1e-12);
    /// ```
    pub fn active_energy_at(&self, span: Time, speed_permil: u32) -> Energy {
        let f = f64::from(speed_permil) / 1000.0;
        Energy::from_span(span, self.p_active * f * f * f)
    }

    /// Energy drawn over one maximal idle interval of length `span`,
    /// applying the DPD rule described on [`PowerModel`].
    pub fn idle_interval_energy(&self, span: Time) -> Energy {
        if span > self.t_be {
            Energy::from_span(self.t_be, self.p_idle)
                + Energy::from_span(span - self.t_be, self.p_sleep)
        } else {
            Energy::from_span(span, self.p_idle)
        }
    }
}

/// Energy totals of one processor, split by state.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Energy while executing jobs.
    pub active: Energy,
    /// Energy of idle intervals (including the shutdown transition
    /// charges).
    pub idle: Energy,
    /// Total busy time.
    pub busy_time: Time,
    /// Total idle + sleep time.
    pub idle_time: Time,
}

impl EnergyBreakdown {
    /// Sum of all components.
    pub fn total(&self) -> Energy {
        self.active + self.idle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_arithmetic() {
        let a = Energy::from_units(1.5);
        let b = Energy::from_units(2.0);
        assert_eq!((a + b).units(), 3.5);
        let mut c = Energy::ZERO;
        c += a;
        assert_eq!(c.units(), 1.5);
        let s: Energy = [a, b].into_iter().sum();
        assert_eq!(s.units(), 3.5);
        assert_eq!(a.to_string(), "1.500u");
    }

    #[test]
    fn active_energy_is_time_at_pact() {
        let pm = PowerModel::active_only();
        assert_eq!(pm.active_energy(Time::from_ms(3)).units(), 3.0);
        assert_eq!(pm.active_energy(Time::from_us(2_500)).units(), 2.5);
    }

    #[test]
    fn idle_below_break_even_idles() {
        let pm = PowerModel::default();
        let e = pm.idle_interval_energy(Time::from_us(800));
        assert!((e.units() - 0.08).abs() < 1e-12);
    }

    #[test]
    fn idle_above_break_even_sleeps() {
        let pm = PowerModel::default();
        // 10 ms: 1 ms at 0.1 + 9 ms at 0.0.
        let e = pm.idle_interval_energy(Time::from_ms(10));
        assert!((e.units() - 0.1).abs() < 1e-12);
        // Break-even: exactly t_be idles fully.
        let e = pm.idle_interval_energy(Time::from_ms(1));
        assert!((e.units() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn dpd_is_never_worse_than_idling() {
        let pm = PowerModel::default();
        for ms in 1..50 {
            let span = Time::from_us(ms * 137);
            let dpd = pm.idle_interval_energy(span).units();
            let idle = Energy::from_span(span, pm.p_idle).units();
            assert!(dpd <= idle + 1e-12);
        }
    }

    #[test]
    fn active_only_model_zeroes_idle() {
        let pm = PowerModel::active_only();
        assert_eq!(pm.idle_interval_energy(Time::from_ms(10)).units(), 0.0);
    }

    #[test]
    fn breakdown_total() {
        let b = EnergyBreakdown {
            active: Energy::from_units(3.0),
            idle: Energy::from_units(0.5),
            busy_time: Time::from_ms(3),
            idle_time: Time::from_ms(5),
        };
        assert_eq!(b.total().units(), 3.5);
    }
}
