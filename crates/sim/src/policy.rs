//! The policy interface: how a scheduling scheme plugs into the
//! simulation engine.
//!
//! The engine owns the mechanics that all of the paper's schemes share —
//! preemptive fixed-priority dispatch with a mandatory-job queue strictly
//! above an optional-job queue on each processor, sibling-copy
//! cancellation, outcome bookkeeping, DPD energy accounting, and fault
//! handling. A [`Policy`] only decides, at each job release, *what kind
//! of job this is and where its copies go* ([`ReleaseDecision`]), which
//! is precisely where `MKSS_ST`, `MKSS_DP` and `MKSS_selective` differ.

use mkss_core::history::MkHistory;
use mkss_core::task::{TaskId, TaskSet};
use mkss_core::time::Time;
use serde::{Deserialize, Serialize};

use crate::proc::ProcId;

/// What to do with a job at its release.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
// mkss-lint: allow(pub-api-hygiene) — closed variant set: mandatory/skip-or-optional is the policy contract with the engine; the engine must handle every decision explicitly
pub enum ReleaseDecision {
    /// The job is mandatory: run a *main* copy on `main_proc` (released
    /// immediately) and a *backup* copy on the other processor, released
    /// `backup_delay` after the job's release (0 for concurrent
    /// execution, `Y_i` under dual-priority, `θ_i` under the selective
    /// scheme's postponement).
    Mandatory {
        /// Processor of the main copy; the backup goes to the other one.
        main_proc: ProcId,
        /// Extra release delay of the backup copy.
        backup_delay: Time,
    },
    /// The job is optional and selected for execution as a single copy
    /// (no backup) on `proc`, queued in that processor's OJQ.
    Optional {
        /// Processor that executes the optional job.
        proc: ProcId,
    },
    /// Like [`ReleaseDecision::Mandatory`], but the main copy executes
    /// at a reduced DVS speed (`main_speed_permil` thousandths of full
    /// speed): its execution takes `⌈C·1000/s⌉` and draws dynamic power
    /// `(s/1000)³·p_active`. The backup copy always runs at full speed so
    /// recovery capacity is preserved (the convention of the
    /// standby-sparing DVS literature).
    MandatoryScaled {
        /// Processor of the main copy; the backup goes to the other one.
        main_proc: ProcId,
        /// Extra release delay of the backup copy.
        backup_delay: Time,
        /// Main-copy speed in permil of full speed (1..=1000).
        main_speed_permil: u32,
    },
    /// The job is optional and not selected; it is skipped entirely and
    /// will be recorded as missed at its deadline.
    Skip,
}

/// Context handed to the policy at each job release.
#[derive(Debug)]
pub struct ReleaseCtx<'a> {
    /// Releasing task.
    pub task: TaskId,
    /// 1-based job index of the release.
    pub job_index: u64,
    /// Current simulation time (= the job's release time).
    pub now: Time,
    /// Outcome history of the task's previous jobs; its
    /// [`flexibility_degree`](MkHistory::flexibility_degree) drives the
    /// dynamic-pattern schemes.
    pub history: &'a MkHistory,
    /// Liveness of the two processors (false once a permanent fault hit).
    /// The engine redirects copies off dead processors regardless, but
    /// policies may use this to re-balance.
    pub alive: [bool; 2],
}

/// A scheduling scheme for the standby-sparing system.
///
/// Implementations live in the `mkss-policies` crate; the engine invokes
/// [`Policy::on_release`] exactly once per job in release order (per
/// task, indices are strictly increasing).
pub trait Policy {
    /// Short scheme name for reports (e.g. `"MKSS_selective"`).
    fn name(&self) -> &str;

    /// Called once before the simulation starts.
    fn init(&mut self, task_set: &TaskSet) {
        let _ = task_set;
    }

    /// Classifies the released job and places its copies.
    fn on_release(&mut self, ctx: &ReleaseCtx<'_>) -> ReleaseDecision;
}

impl<P: Policy + ?Sized> Policy for Box<P> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn init(&mut self, task_set: &TaskSet) {
        (**self).init(task_set);
    }
    fn on_release(&mut self, ctx: &ReleaseCtx<'_>) -> ReleaseDecision {
        (**self).on_release(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkss_core::mk::MkConstraint;

    struct AlwaysMandatory;
    impl Policy for AlwaysMandatory {
        fn name(&self) -> &str {
            "always-mandatory"
        }
        fn on_release(&mut self, _ctx: &ReleaseCtx<'_>) -> ReleaseDecision {
            ReleaseDecision::Mandatory {
                main_proc: ProcId::PRIMARY,
                backup_delay: Time::ZERO,
            }
        }
    }

    #[test]
    fn boxed_policy_delegates() {
        let mut p: Box<dyn Policy> = Box::new(AlwaysMandatory);
        assert_eq!(p.name(), "always-mandatory");
        let history = MkHistory::new(MkConstraint::new(1, 2).unwrap());
        let ctx = ReleaseCtx {
            task: TaskId(0),
            job_index: 1,
            now: Time::ZERO,
            history: &history,
            alive: [true, true],
        };
        assert_eq!(
            p.on_release(&ctx),
            ReleaseDecision::Mandatory {
                main_proc: ProcId::PRIMARY,
                backup_delay: Time::ZERO,
            }
        );
    }
}
