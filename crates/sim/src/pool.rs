//! A shared pool of reusable [`SimWorkspace`] arenas.
//!
//! PR 2 made workspace reuse zero-alloc for a *single* caller; this pool
//! makes it concurrent. Callers [`WorkspacePool::checkout`] an arena,
//! simulate through it, and return it by dropping the guard — the
//! workspace keeps its grown capacity, so steady-state traffic (the
//! `mkss-serve` daemon, the bench harness workers) simulates without
//! per-run allocation no matter which thread picks which arena.
//!
//! The pool replaces the private `thread_local!` workspaces that
//! `mkss-bench`'s experiment pipeline and `mkss-cli compare` used to
//! hide: a thread-local arena is invisible to its owner (it cannot be
//! pre-warmed, sized, or shared across thread pools), while a pool is a
//! real object with an inspectable idle count.
//!
//! Checkout order is deliberately unspecified (LIFO today, for cache
//! warmth); simulation results never depend on *which* workspace runs a
//! job, only on the job itself — that is exactly the reuse guarantee
//! `tests/workspace_differential.rs` pins.

use std::ops::{Deref, DerefMut};
use std::sync::Mutex;

use crate::engine::SimWorkspace;

/// A thread-safe pool of reusable simulation arenas.
///
/// ```
/// use mkss_core::prelude::*;
/// use mkss_sim::pool::WorkspacePool;
/// use mkss_sim::prelude::*;
/// # use mkss_sim::policy::{Policy, ReleaseCtx, ReleaseDecision};
/// # struct Dup;
/// # impl Policy for Dup {
/// #     fn name(&self) -> &str { "dup" }
/// #     fn on_release(&mut self, _ctx: &ReleaseCtx<'_>) -> ReleaseDecision {
/// #         ReleaseDecision::Mandatory {
/// #             main_proc: ProcId::PRIMARY,
/// #             backup_delay: Time::ZERO,
/// #         }
/// #     }
/// # }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ts = TaskSet::new(vec![Task::from_ms(10, 10, 2, 1, 2)?])?;
/// let config = SimConfig::builder().horizon_ms(50).build();
/// let pool = WorkspacePool::new();
/// std::thread::scope(|scope| {
///     for _ in 0..4 {
///         scope.spawn(|| {
///             let mut ws = pool.checkout();
///             let report = simulate_in(&mut ws, &ts, &mut Dup, &config);
///             assert!(report.mk_assured());
///         });
///     }
/// });
/// assert!(pool.idle() >= 1); // arenas returned on guard drop
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct WorkspacePool {
    free: Mutex<Vec<SimWorkspace>>,
}

impl WorkspacePool {
    /// An empty pool; workspaces are created lazily on checkout misses.
    pub fn new() -> WorkspacePool {
        WorkspacePool::default()
    }

    /// A pool pre-warmed with `n` fresh workspaces (their arenas still
    /// grow on first use; pre-warming only avoids the checkout-miss
    /// construction).
    pub fn with_warm(n: usize) -> WorkspacePool {
        WorkspacePool {
            free: Mutex::new((0..n).map(|_| SimWorkspace::new()).collect()),
        }
    }

    /// Workspaces currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.lock_free().len()
    }

    /// Checks a workspace out of the pool (creating one when every arena
    /// is in use). Dropping the returned guard puts it back — with any
    /// attached recorder detached first, so observability never leaks
    /// from one checkout to the next.
    pub fn checkout(&self) -> PooledWorkspace<'_> {
        let ws = self.lock_free().pop().unwrap_or_default();
        PooledWorkspace {
            ws: Some(ws),
            pool: self,
        }
    }

    /// Locks the free list, recovering from poisoning (a panicked
    /// simulation must not wedge every other worker's checkout).
    fn lock_free(&self) -> std::sync::MutexGuard<'_, Vec<SimWorkspace>> {
        match self.free.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn give_back(&self, mut ws: SimWorkspace) {
        ws.set_recorder(None);
        self.lock_free().push(ws);
    }
}

/// RAII checkout guard: dereferences to the [`SimWorkspace`] and returns
/// it to the pool on drop.
#[derive(Debug)]
pub struct PooledWorkspace<'p> {
    /// `Some` until dropped or [`PooledWorkspace::detach`]ed.
    ws: Option<SimWorkspace>,
    pool: &'p WorkspacePool,
}

impl PooledWorkspace<'_> {
    /// Takes the workspace out of the guard permanently; it will **not**
    /// return to the pool.
    pub fn detach(mut self) -> SimWorkspace {
        // mkss-lint: allow(no-unwrap-in-lib) — `ws` is only None after drop/detach, and both consume the guard
        self.ws.take().expect("guard still holds its workspace")
    }
}

impl Deref for PooledWorkspace<'_> {
    type Target = SimWorkspace;

    fn deref(&self) -> &SimWorkspace {
        // mkss-lint: allow(no-unwrap-in-lib) — `ws` is only None after drop/detach, and both consume the guard
        self.ws.as_ref().expect("guard still holds its workspace")
    }
}

impl DerefMut for PooledWorkspace<'_> {
    fn deref_mut(&mut self) -> &mut SimWorkspace {
        // mkss-lint: allow(no-unwrap-in-lib) — `ws` is only None after drop/detach, and both consume the guard
        self.ws.as_mut().expect("guard still holds its workspace")
    }
}

impl Drop for PooledWorkspace<'_> {
    fn drop(&mut self) {
        if let Some(ws) = self.ws.take() {
            self.pool.give_back(ws);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn checkout_reuses_returned_workspaces() {
        let pool = WorkspacePool::new();
        assert_eq!(pool.idle(), 0);
        {
            let _a = pool.checkout();
            let _b = pool.checkout();
            assert_eq!(pool.idle(), 0);
        }
        assert_eq!(pool.idle(), 2);
        {
            let _c = pool.checkout();
            assert_eq!(pool.idle(), 1);
        }
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn with_warm_prefills() {
        let pool = WorkspacePool::with_warm(3);
        assert_eq!(pool.idle(), 3);
        let _a = pool.checkout();
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn recorder_is_detached_on_return() {
        let pool = WorkspacePool::new();
        {
            let mut ws = pool.checkout();
            ws.set_recorder(Some(Arc::new(mkss_obs::NoopRecorder)));
            assert!(ws.has_recorder());
        }
        let ws = pool.checkout();
        assert!(!ws.has_recorder(), "recorder leaked across pool checkouts");
    }

    #[test]
    fn detach_removes_from_pool() {
        let pool = WorkspacePool::with_warm(1);
        let guard = pool.checkout();
        let ws = guard.detach();
        drop(ws);
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn concurrent_checkouts_are_safe() {
        let pool = WorkspacePool::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        let _ws = pool.checkout();
                    }
                });
            }
        });
        assert!(pool.idle() >= 1 && pool.idle() <= 8);
    }
}
