//! Schedule traces: executed segments, per-job outcomes, and an ASCII
//! Gantt renderer for debugging and for reproducing the paper's figures.

use mkss_core::history::JobOutcome;
use mkss_core::job::{CopyKind, JobId};
use mkss_core::time::{Time, TICKS_PER_MS};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

use crate::power::{Energy, PowerModel};
use crate::proc::ProcId;

/// Why an execution segment ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
// mkss-lint: allow(pub-api-hygiene) — closed variant set: segment endings mirror the engine's fixed event alphabet; forensics match exhaustively
pub enum SegmentEnd {
    /// The copy finished its execution demand.
    Completed,
    /// A higher-priority copy preempted it.
    Preempted,
    /// The sibling copy succeeded and this copy was canceled.
    Canceled,
    /// A permanent fault destroyed the processor mid-execution.
    Lost,
    /// The simulation horizon cut the segment short.
    Horizon,
}

/// One contiguous execution of a job copy on a processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Segment {
    /// Executing processor.
    pub proc: ProcId,
    /// The job being executed.
    pub job: JobId,
    /// Which copy (main / backup / optional).
    pub kind: CopyKind,
    /// Segment start time.
    pub start: Time,
    /// Segment end time (exclusive).
    pub end: Time,
    /// Why the segment ended.
    pub ended: SegmentEnd,
}

impl Segment {
    /// Segment length.
    pub fn len(&self) -> Time {
        self.end - self.start
    }

    /// Whether the segment is empty (zero-length).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Resolution of one released job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JobResolution {
    /// The job.
    pub job: JobId,
    /// Its outcome (met / missed).
    pub outcome: JobOutcome,
    /// When the outcome was decided (success time, or the deadline for a
    /// miss).
    pub at: Time,
}

/// Full schedule trace of one simulation run.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// Executed segments in chronological order of their start.
    pub segments: Vec<Segment>,
    /// Job resolutions in chronological order.
    pub resolutions: Vec<JobResolution>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Total busy time of `proc` within `[0, until)`, clamping segments
    /// crossing the boundary.
    pub fn busy_time_within(&self, proc: ProcId, until: Time) -> Time {
        self.segments
            .iter()
            .filter(|s| s.proc == proc && s.start < until)
            .map(|s| s.end.min(until) - s.start)
            .sum()
    }

    /// Active energy of both processors within `[0, until)` under `power`
    /// — the quantity the motivating examples count ("total active energy
    /// consumption within the hyper period").
    pub fn active_energy_within(&self, power: &PowerModel, until: Time) -> Energy {
        ProcId::ALL
            .iter()
            .map(|&p| power.active_energy(self.busy_time_within(p, until)))
            // mkss-lint: allow(float-fold-determinism) — two terms in fixed ProcId order
            .sum()
    }

    /// Segments of one processor, in order.
    pub fn segments_on(&self, proc: ProcId) -> impl Iterator<Item = &Segment> {
        self.segments.iter().filter(move |s| s.proc == proc)
    }

    /// Renders an ASCII Gantt chart of `[0, until)` with one row per
    /// processor, one column per `scale` of time. Jobs are labelled by
    /// task number; backup copies in lowercase `b`, optional copies `o`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero.
    pub fn render_gantt(&self, until: Time, scale: Time) -> String {
        assert!(!scale.is_zero(), "gantt scale must be positive");
        let cols = until.div_ceil(scale) as usize;
        let mut out = String::new();
        let _ = writeln!(out, "time: one column = {scale}, span [0, {until})");
        for &proc in &ProcId::ALL {
            let mut row = vec!['.'; cols];
            for seg in self.segments_on(proc) {
                if seg.start >= until {
                    continue;
                }
                let from = (seg.start.ticks() / scale.ticks()) as usize;
                let to = (seg.end.min(until).ticks().div_ceil(scale.ticks())) as usize;
                let ch = match seg.kind {
                    CopyKind::Main => {
                        char::from_digit((seg.job.task.0 as u32 + 1) % 10, 10).unwrap_or('?')
                    }
                    CopyKind::Backup => 'b',
                    CopyKind::Optional => 'o',
                };
                for cell in row.iter_mut().take(to.min(cols)).skip(from) {
                    *cell = ch;
                }
            }
            let name = proc.to_string();
            let _ = writeln!(out, "{name:>8}: {}", row.into_iter().collect::<String>());
        }
        out
    }

    /// Convenience: Gantt with 1 ms columns.
    pub fn render_gantt_ms(&self, until: Time) -> String {
        self.render_gantt(until, Time::from_ticks(TICKS_PER_MS))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkss_core::task::TaskId;

    fn seg(proc: ProcId, task: usize, kind: CopyKind, start: u64, end: u64) -> Segment {
        Segment {
            proc,
            job: JobId::new(TaskId(task), 1),
            kind,
            start: Time::from_ms(start),
            end: Time::from_ms(end),
            ended: SegmentEnd::Completed,
        }
    }

    #[test]
    fn segment_len() {
        let s = seg(ProcId::PRIMARY, 0, CopyKind::Main, 2, 5);
        assert_eq!(s.len(), Time::from_ms(3));
        assert!(!s.is_empty());
    }

    #[test]
    fn busy_time_clamps_at_horizon() {
        let mut t = Trace::new();
        t.segments
            .push(seg(ProcId::PRIMARY, 0, CopyKind::Main, 0, 3));
        t.segments
            .push(seg(ProcId::PRIMARY, 1, CopyKind::Main, 18, 22));
        t.segments
            .push(seg(ProcId::SPARE, 0, CopyKind::Backup, 1, 2));
        assert_eq!(
            t.busy_time_within(ProcId::PRIMARY, Time::from_ms(20)),
            Time::from_ms(5)
        );
        assert_eq!(
            t.busy_time_within(ProcId::SPARE, Time::from_ms(20)),
            Time::from_ms(1)
        );
    }

    #[test]
    fn active_energy_sums_processors() {
        let mut t = Trace::new();
        t.segments
            .push(seg(ProcId::PRIMARY, 0, CopyKind::Main, 0, 3));
        t.segments
            .push(seg(ProcId::SPARE, 0, CopyKind::Backup, 5, 9));
        let e = t.active_energy_within(&PowerModel::active_only(), Time::from_ms(20));
        assert!((e.units() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn gantt_renders_rows() {
        let mut t = Trace::new();
        t.segments
            .push(seg(ProcId::PRIMARY, 0, CopyKind::Main, 0, 3));
        t.segments
            .push(seg(ProcId::SPARE, 1, CopyKind::Backup, 2, 4));
        t.segments
            .push(seg(ProcId::PRIMARY, 1, CopyKind::Optional, 4, 5));
        let g = t.render_gantt_ms(Time::from_ms(6));
        assert!(g.contains(" primary: 111.o."), "got:\n{g}");
        assert!(g.contains("   spare: ..bb.."), "got:\n{g}");
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn gantt_zero_scale_panics() {
        Trace::new().render_gantt(Time::from_ms(5), Time::ZERO);
    }
}
