//! Fault model: one permanent processor fault plus Poisson transient
//! faults (Section II-B).
//!
//! * **Permanent faults** destroy a processor at a given instant; the
//!   survivor takes over the whole system. At most one permanent fault is
//!   considered (with two processors a second one is unsurvivable).
//! * **Transient faults** hit individual job executions. They are
//!   detected at the *end* of the execution by sanity/consistency checks
//!   (whose overhead is folded into the WCET), so a faulted copy consumes
//!   its full execution time and then yields no usable result. Following
//!   the paper (and [Zhu, Melhem, Mossé 2004]) arrivals are Poisson with
//!   average rate λ, so a copy executing for `c` fails with probability
//!   `1 − e^(−λ·c)`.

use mkss_core::time::{Time, TICKS_PER_MS};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::proc::ProcId;

/// A permanent fault: processor `proc` dies at time `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PermanentFault {
    /// The processor that fails.
    pub proc: ProcId,
    /// The instant of failure.
    pub at: Time,
}

/// Fault-injection configuration for one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Optional single permanent fault.
    pub permanent: Option<PermanentFault>,
    /// Transient fault rate λ per millisecond of execution
    /// (the paper's evaluation uses `1e-6`).
    pub transient_rate_per_ms: f64,
    /// RNG seed for transient-fault sampling (simulations are fully
    /// deterministic given the seed).
    pub seed: u64,
}

impl Default for FaultConfig {
    /// No faults at all.
    fn default() -> Self {
        FaultConfig {
            permanent: None,
            transient_rate_per_ms: 0.0,
            seed: 0,
        }
    }
}

impl FaultConfig {
    /// Fault-free configuration (scenario of Fig. 6(a)).
    pub fn none() -> Self {
        FaultConfig::default()
    }

    /// One permanent fault, no transients (scenario of Fig. 6(b)).
    pub fn permanent(proc: ProcId, at: Time) -> Self {
        FaultConfig {
            permanent: Some(PermanentFault { proc, at }),
            ..FaultConfig::default()
        }
    }

    /// Permanent + transient faults (scenario of Fig. 6(c)).
    pub fn combined(proc: ProcId, at: Time, rate_per_ms: f64, seed: u64) -> Self {
        FaultConfig {
            permanent: Some(PermanentFault { proc, at }),
            transient_rate_per_ms: rate_per_ms,
            seed,
        }
    }

    /// Only transient faults.
    pub fn transient(rate_per_ms: f64, seed: u64) -> Self {
        FaultConfig {
            permanent: None,
            transient_rate_per_ms: rate_per_ms,
            seed,
        }
    }
}

/// Stateful, seeded sampler deciding whether each completed execution
/// suffered a transient fault.
#[derive(Debug, Clone)]
pub struct TransientSampler {
    rng: ChaCha8Rng,
    rate_per_ms: f64,
}

impl TransientSampler {
    /// Creates a sampler from a fault configuration.
    pub fn new(config: &FaultConfig) -> Self {
        TransientSampler {
            rng: ChaCha8Rng::seed_from_u64(config.seed),
            rate_per_ms: config.transient_rate_per_ms,
        }
    }

    /// Probability that an execution of length `exec` is hit by at least
    /// one transient fault: `1 − e^(−λ·c)`.
    pub fn fault_probability(&self, exec: Time) -> f64 {
        if self.rate_per_ms <= 0.0 {
            return 0.0;
        }
        let c_ms = exec.ticks() as f64 / TICKS_PER_MS as f64;
        1.0 - (-self.rate_per_ms * c_ms).exp()
    }

    /// Samples whether an execution of length `exec` faulted.
    pub fn sample(&mut self, exec: Time) -> bool {
        let p = self.fault_probability(exec);
        if p <= 0.0 {
            return false;
        }
        self.rng.gen_bool(p.min(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fault_free() {
        let c = FaultConfig::default();
        assert!(c.permanent.is_none());
        assert_eq!(c.transient_rate_per_ms, 0.0);
        let mut s = TransientSampler::new(&c);
        for _ in 0..100 {
            assert!(!s.sample(Time::from_ms(10)));
        }
    }

    #[test]
    fn constructors() {
        let p = FaultConfig::permanent(ProcId::PRIMARY, Time::from_ms(7));
        assert_eq!(
            p.permanent,
            Some(PermanentFault {
                proc: ProcId::PRIMARY,
                at: Time::from_ms(7)
            })
        );
        let c = FaultConfig::combined(ProcId::SPARE, Time::from_ms(3), 1e-6, 42);
        assert_eq!(c.transient_rate_per_ms, 1e-6);
        assert_eq!(c.seed, 42);
        let t = FaultConfig::transient(0.5, 1);
        assert!(t.permanent.is_none());
        assert_eq!(t.transient_rate_per_ms, 0.5);
    }

    #[test]
    fn fault_probability_formula() {
        let s = TransientSampler::new(&FaultConfig::transient(0.1, 0));
        let p = s.fault_probability(Time::from_ms(10));
        assert!((p - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert_eq!(s.fault_probability(Time::ZERO), 0.0);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let cfg = FaultConfig::transient(0.3, 1234);
        let mut a = TransientSampler::new(&cfg);
        let mut b = TransientSampler::new(&cfg);
        let seq_a: Vec<bool> = (0..50).map(|_| a.sample(Time::from_ms(5))).collect();
        let seq_b: Vec<bool> = (0..50).map(|_| b.sample(Time::from_ms(5))).collect();
        assert_eq!(seq_a, seq_b);
        assert!(
            seq_a.iter().any(|&x| x),
            "rate 0.3/ms over 5ms should fault sometimes"
        );
        assert!(!seq_a.iter().all(|&x| x));
    }

    #[test]
    fn high_rate_faults_almost_surely() {
        let mut s = TransientSampler::new(&FaultConfig::transient(100.0, 7));
        assert!(s.sample(Time::from_ms(10)));
    }

    #[test]
    fn rate_scales_with_exec_length() {
        let s = TransientSampler::new(&FaultConfig::transient(0.01, 0));
        assert!(s.fault_probability(Time::from_ms(1)) < s.fault_probability(Time::from_ms(10)));
    }
}
