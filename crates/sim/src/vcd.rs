//! Value-Change-Dump (VCD) export of schedule traces.
//!
//! Schedules are waveforms: each processor is a pair of signals (which
//! task is executing, and whether the copy is a main / backup / optional
//! one), and each task gets a one-tick pulse wire marking met deadlines.
//! The output loads in any VCD viewer (GTKWave et al.), which makes
//! multi-hyperperiod schedules far easier to inspect than ASCII Gantt
//! charts.
//!
//! The timescale is 1 µs — exactly one simulator tick.

use std::fmt::Write as _;

use mkss_core::history::JobOutcome;
use mkss_core::job::CopyKind;

use crate::proc::ProcId;
use crate::trace::Trace;

/// Copy-kind encoding used in the 2-bit `*_kind` signals.
fn kind_code(kind: CopyKind) -> u8 {
    match kind {
        CopyKind::Main => 1,
        CopyKind::Backup => 2,
        CopyKind::Optional => 3,
    }
}

/// Renders `trace` as a VCD document.
///
/// Signals, under scope `mkss`:
///
/// * `primary_task`, `spare_task` — 8-bit: executing task number
///   (1-based), 0 when idle;
/// * `primary_kind`, `spare_kind` — 2-bit: 0 idle, 1 main, 2 backup,
///   3 optional;
/// * `t<i>_met` — 1-bit pulse at each met deadline of task `i`;
/// * `t<i>_miss` — 1-bit pulse at each miss.
///
/// `task_count` sizes the pulse wires; tasks appearing in the trace
/// beyond it are ignored.
///
/// # Examples
///
/// ```
/// use mkss_core::prelude::*;
/// use mkss_sim::prelude::*;
/// use mkss_sim::vcd::render_vcd;
///
/// let mut trace = Trace::new();
/// trace.segments.push(Segment {
///     proc: ProcId::PRIMARY,
///     job: JobId::new(TaskId(0), 1),
///     kind: CopyKind::Main,
///     start: Time::ZERO,
///     end: Time::from_ms(2),
///     ended: SegmentEnd::Completed,
/// });
/// let vcd = render_vcd(&trace, 1);
/// assert!(vcd.starts_with("$timescale 1us $end"));
/// assert!(vcd.contains("primary_task"));
/// ```
pub fn render_vcd(trace: &Trace, task_count: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "$timescale 1us $end");
    let _ = writeln!(out, "$scope module mkss $end");
    // Identifier codes: printable ASCII, one per signal.
    // '!' '"' → proc task values; '#' '$' → proc kinds; then task pulses.
    let _ = writeln!(out, "$var wire 8 ! primary_task $end");
    let _ = writeln!(out, "$var wire 2 # primary_kind $end");
    let _ = writeln!(out, "$var wire 8 \" spare_task $end");
    let _ = writeln!(out, "$var wire 2 $ spare_kind $end");
    for t in 0..task_count {
        let _ = writeln!(out, "$var wire 1 {} t{}_met $end", met_code(t), t + 1);
        let _ = writeln!(out, "$var wire 1 {} t{}_miss $end", miss_code(t), t + 1);
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");

    // Build the change list: (time, code, value-bits, width).
    let mut changes: Vec<(u64, String)> = Vec::new();
    for &proc in &ProcId::ALL {
        let (task_id, kind_id) = if proc == ProcId::PRIMARY {
            ('!', '#')
        } else {
            ('"', '$')
        };
        changes.push((0, format!("b0 {task_id}")));
        changes.push((0, format!("b0 {kind_id}")));
        for seg in trace.segments_on(proc) {
            changes.push((
                seg.start.ticks(),
                format!("b{:b} {task_id}", seg.job.task.0 + 1),
            ));
            changes.push((
                seg.start.ticks(),
                format!("b{:b} {kind_id}", kind_code(seg.kind)),
            ));
            changes.push((seg.end.ticks(), format!("b0 {task_id}")));
            changes.push((seg.end.ticks(), format!("b0 {kind_id}")));
        }
    }
    for t in 0..task_count {
        changes.push((0, format!("0{}", met_code(t))));
        changes.push((0, format!("0{}", miss_code(t))));
    }
    for r in &trace.resolutions {
        if r.job.task.0 >= task_count {
            continue;
        }
        let code = match r.outcome {
            JobOutcome::Met => met_code(r.job.task.0),
            JobOutcome::Missed => miss_code(r.job.task.0),
        };
        changes.push((r.at.ticks(), format!("1{code}")));
        changes.push((r.at.ticks() + 1, format!("0{code}")));
    }

    changes.sort();
    // Emit, dropping earlier changes shadowed by a later change of the
    // same signal at the same instant (end-of-segment followed by
    // start-of-segment at a preemption boundary).
    let mut i = 0;
    let mut last_time = u64::MAX;
    while i < changes.len() {
        let (time, _) = changes[i];
        if time != last_time {
            let _ = writeln!(out, "#{time}");
            last_time = time;
        }
        // Emit only if no later same-signal change exists at this time
        // (a preemption boundary produces end-then-start pairs).
        let code = signal_code(&changes[i].1);
        let has_later = changes[i + 1..]
            .iter()
            .take_while(|(t, _)| *t == time)
            .any(|(_, v)| signal_code(v) == code);
        if !has_later {
            let _ = writeln!(out, "{}", changes[i].1);
        }
        i += 1;
    }
    out
}

fn met_code(task: usize) -> char {
    char::from_u32('A' as u32 + task as u32).unwrap_or('?')
}

fn miss_code(task: usize) -> char {
    char::from_u32('a' as u32 + task as u32).unwrap_or('?')
}

/// The identifier-code portion of a VCD value-change line.
fn signal_code(line: &str) -> &str {
    match line.split_once(' ') {
        Some((_, code)) => code, // vector: "b101 !"
        None => &line[1..],      // scalar: "1A"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Segment, SegmentEnd};
    use mkss_core::job::JobId;
    use mkss_core::task::TaskId;
    use mkss_core::time::Time;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.segments.push(Segment {
            proc: ProcId::PRIMARY,
            job: JobId::new(TaskId(0), 1),
            kind: CopyKind::Main,
            start: Time::ZERO,
            end: Time::from_ms(3),
            ended: SegmentEnd::Completed,
        });
        t.segments.push(Segment {
            proc: ProcId::PRIMARY,
            job: JobId::new(TaskId(1), 1),
            kind: CopyKind::Optional,
            start: Time::from_ms(3),
            end: Time::from_ms(5),
            ended: SegmentEnd::Completed,
        });
        t.segments.push(Segment {
            proc: ProcId::SPARE,
            job: JobId::new(TaskId(0), 1),
            kind: CopyKind::Backup,
            start: Time::from_ms(1),
            end: Time::from_ms(3),
            ended: SegmentEnd::Canceled,
        });
        t.resolutions.push(crate::trace::JobResolution {
            job: JobId::new(TaskId(0), 1),
            outcome: JobOutcome::Met,
            at: Time::from_ms(3),
        });
        t
    }

    #[test]
    fn header_and_signals() {
        let vcd = render_vcd(&sample_trace(), 2);
        assert!(vcd.starts_with("$timescale 1us $end"));
        assert!(vcd.contains("$var wire 8 ! primary_task $end"));
        assert!(vcd.contains("$var wire 1 A t1_met $end"));
        assert!(vcd.contains("$var wire 1 b t2_miss $end"));
        assert!(vcd.contains("$enddefinitions $end"));
    }

    #[test]
    fn changes_are_time_ordered_and_deduplicated() {
        let vcd = render_vcd(&sample_trace(), 2);
        let mut last = -1i64;
        let mut count_t3_task_changes = 0;
        let mut at_t3 = false;
        for line in vcd.lines() {
            if let Some(ts) = line.strip_prefix('#') {
                let t: i64 = ts.parse().unwrap();
                assert!(t > last, "timestamps must strictly increase");
                last = t;
                at_t3 = t == 3000;
            } else if at_t3 && line.ends_with(" !") {
                count_t3_task_changes += 1;
            }
        }
        // At the preemption boundary t=3ms, the primary's task signal
        // changes exactly once (to task 2), not end-then-start.
        assert_eq!(count_t3_task_changes, 1);
        assert!(vcd.contains("b10 !"), "task 2 encoded in binary");
    }

    #[test]
    fn met_pulse_emitted() {
        let vcd = render_vcd(&sample_trace(), 2);
        assert!(vcd.contains("1A"), "met pulse rises");
        assert!(vcd.contains("#3001"), "met pulse falls a tick later");
    }

    #[test]
    fn idle_trace_renders() {
        let vcd = render_vcd(&Trace::new(), 0);
        assert!(vcd.contains("#0"));
    }
}
