//! Post-hoc schedule metrics: per-task response times, preemption
//! counts, backup overlap, and energy attribution — distilled from a
//! recorded [`Trace`].
//!
//! These are the quantities the scheduling literature reports beyond raw
//! energy; EXPERIMENTS.md uses them to explain *why* one scheme beats
//! another (e.g. how much canceled-backup work the dual-priority scheme
//! wastes).

use mkss_core::history::JobOutcome;
use mkss_core::job::CopyKind;
use mkss_core::task::{TaskId, TaskSet};
use mkss_core::time::Time;
use serde::{Deserialize, Serialize};

use crate::trace::{SegmentEnd, Trace};

/// Per-task schedule metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskMetrics {
    /// The task.
    pub task: TaskId,
    /// Jobs resolved as met.
    pub met: u64,
    /// Jobs resolved as missed.
    pub missed: u64,
    /// Worst response time among met jobs (resolution − release).
    pub worst_response: Time,
    /// Summed response time among met jobs (divide by `met` for the
    /// mean).
    pub total_response: Time,
    /// Number of preemption boundaries suffered by this task's copies.
    pub preemptions: u64,
    /// Execution time spent in main copies.
    pub main_busy: Time,
    /// Execution time spent in backup copies (completed or canceled).
    pub backup_busy: Time,
    /// Execution time spent in optional copies.
    pub optional_busy: Time,
    /// The part of `backup_busy` that was thrown away by cancellation —
    /// the duplication overhead the paper's schemes try to minimize.
    pub canceled_backup_work: Time,
}

impl TaskMetrics {
    /// Mean response time of met jobs in milliseconds.
    pub fn mean_response_ms(&self) -> f64 {
        if self.met == 0 {
            return 0.0;
        }
        self.total_response.as_ms_f64() / self.met as f64
    }
}

/// Whole-trace metrics.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceMetrics {
    /// Per-task rows, priority order.
    pub per_task: Vec<TaskMetrics>,
}

impl TraceMetrics {
    /// Total canceled-backup (wasted duplicate) work across tasks.
    pub fn total_canceled_backup_work(&self) -> Time {
        self.per_task.iter().map(|t| t.canceled_backup_work).sum()
    }

    /// Total execution time across all copies of all tasks.
    pub fn total_busy(&self) -> Time {
        self.per_task
            .iter()
            .map(|t| t.main_busy + t.backup_busy + t.optional_busy)
            .sum()
    }
}

/// Computes the metrics of a recorded trace.
///
/// # Examples
///
/// ```
/// use mkss_core::prelude::*;
/// use mkss_sim::metrics::analyze_trace;
/// use mkss_sim::prelude::*;
/// # use mkss_sim::policy::{Policy, ReleaseCtx, ReleaseDecision};
///
/// # struct Dup;
/// # impl Policy for Dup {
/// #     fn name(&self) -> &str { "dup" }
/// #     fn on_release(&mut self, _: &ReleaseCtx<'_>) -> ReleaseDecision {
/// #         ReleaseDecision::Mandatory { main_proc: ProcId::PRIMARY, backup_delay: Time::ZERO }
/// #     }
/// # }
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ts = TaskSet::new(vec![Task::from_ms(10, 10, 2, 1, 2)?])?;
/// let report = simulate(&ts, &mut Dup, &SimConfig::active_only(Time::from_ms(40)));
/// let metrics = analyze_trace(&ts, report.trace.as_ref().unwrap());
/// assert_eq!(metrics.per_task[0].met, 4);
/// assert_eq!(metrics.per_task[0].worst_response, Time::from_ms(2));
/// # Ok(())
/// # }
/// ```
pub fn analyze_trace(ts: &TaskSet, trace: &Trace) -> TraceMetrics {
    let mut per_task: Vec<TaskMetrics> = ts
        .ids()
        .map(|task| TaskMetrics {
            task,
            met: 0,
            missed: 0,
            worst_response: Time::ZERO,
            total_response: Time::ZERO,
            preemptions: 0,
            main_busy: Time::ZERO,
            backup_busy: Time::ZERO,
            optional_busy: Time::ZERO,
            canceled_backup_work: Time::ZERO,
        })
        .collect();

    for r in &trace.resolutions {
        let row = &mut per_task[r.job.task.0];
        match r.outcome {
            JobOutcome::Met => {
                row.met += 1;
                let release = ts.task(r.job.task).release_of(r.job.index);
                let response = r.at.saturating_sub(release);
                row.worst_response = row.worst_response.max(response);
                row.total_response += response;
            }
            JobOutcome::Missed => row.missed += 1,
        }
    }

    for seg in &trace.segments {
        let row = &mut per_task[seg.job.task.0];
        match seg.kind {
            CopyKind::Main => row.main_busy += seg.len(),
            CopyKind::Backup => {
                row.backup_busy += seg.len();
                if seg.ended == SegmentEnd::Canceled {
                    row.canceled_backup_work += seg.len();
                }
            }
            CopyKind::Optional => row.optional_busy += seg.len(),
        }
        if seg.ended == SegmentEnd::Preempted {
            row.preemptions += 1;
        }
    }

    TraceMetrics { per_task }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use crate::policy::{Policy, ReleaseCtx, ReleaseDecision};
    use crate::proc::ProcId;
    use crate::trace::{JobResolution, Segment};
    use mkss_core::job::JobId;
    use mkss_core::task::{Task, TaskSet};

    struct Dup;
    impl Policy for Dup {
        fn name(&self) -> &str {
            "dup"
        }
        fn on_release(&mut self, _: &ReleaseCtx<'_>) -> ReleaseDecision {
            ReleaseDecision::Mandatory {
                main_proc: ProcId::PRIMARY,
                backup_delay: Time::ZERO,
            }
        }
    }

    fn two_task_set() -> TaskSet {
        TaskSet::new(vec![
            Task::from_ms(5, 4, 3, 2, 4).unwrap(),
            Task::from_ms(10, 10, 3, 1, 2).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn counts_and_responses() {
        let ts = two_task_set();
        let report = simulate(&ts, &mut Dup, &SimConfig::active_only(Time::from_ms(20)));
        let m = analyze_trace(&ts, report.trace.as_ref().unwrap());
        // Every job mandatory: τ1 4 jobs, τ2 2 jobs; all met.
        assert_eq!(m.per_task[0].met, 4);
        assert_eq!(m.per_task[1].met, 2);
        assert_eq!(m.per_task[0].missed + m.per_task[1].missed, 0);
        // τ1 never waits: worst response = 3ms; τ2 waits behind τ1.
        assert_eq!(m.per_task[0].worst_response, Time::from_ms(3));
        assert!(m.per_task[1].worst_response > Time::from_ms(3));
        assert!(m.per_task[0].mean_response_ms() >= 3.0);
        // Both copies ran fully (concurrent, no savings).
        assert_eq!(m.per_task[0].main_busy, Time::from_ms(12));
        assert_eq!(m.per_task[0].backup_busy, Time::from_ms(12));
        assert_eq!(m.total_busy(), Time::from_ms(36));
    }

    #[test]
    fn canceled_backup_work_shows_dp_overhead() {
        // Under dual-priority-style delayed backups, canceled segments
        // appear; here with concurrent copies cancellation saves nothing,
        // so canceled work is zero.
        let ts = two_task_set();
        let report = simulate(&ts, &mut Dup, &SimConfig::active_only(Time::from_ms(20)));
        let m = analyze_trace(&ts, report.trace.as_ref().unwrap());
        assert_eq!(m.total_canceled_backup_work(), Time::ZERO);
    }

    #[test]
    fn preemptions_counted() {
        let ts = two_task_set();
        let report = simulate(&ts, &mut Dup, &SimConfig::active_only(Time::from_ms(20)));
        let m = analyze_trace(&ts, report.trace.as_ref().unwrap());
        // τ2's jobs get preempted by τ1 (J21 at t=5 on both processors).
        assert!(m.per_task[1].preemptions >= 2);
        assert_eq!(m.per_task[0].preemptions, 0);
    }

    #[test]
    fn empty_trace_yields_all_zero_rows() {
        let ts = two_task_set();
        let m = analyze_trace(&ts, &Trace::default());
        assert_eq!(m.per_task.len(), ts.len());
        for row in &m.per_task {
            assert_eq!((row.met, row.missed, row.preemptions), (0, 0, 0));
            assert_eq!(row.worst_response, Time::ZERO);
            assert_eq!(row.mean_response_ms(), 0.0);
        }
        assert_eq!(m.total_busy(), Time::ZERO);
        assert_eq!(m.total_canceled_backup_work(), Time::ZERO);
    }

    #[test]
    fn zero_met_jobs_has_finite_mean_response() {
        // Every job missed: mean response over zero met jobs must be an
        // exact 0.0, not NaN/inf from a 0/0.
        let ts = two_task_set();
        let trace = Trace {
            segments: Vec::new(),
            resolutions: vec![
                JobResolution {
                    job: JobId::new(TaskId(0), 1),
                    outcome: JobOutcome::Missed,
                    at: Time::from_ms(4),
                },
                JobResolution {
                    job: JobId::new(TaskId(0), 2),
                    outcome: JobOutcome::Missed,
                    at: Time::from_ms(9),
                },
            ],
        };
        let m = analyze_trace(&ts, &trace);
        assert_eq!(m.per_task[0].met, 0);
        assert_eq!(m.per_task[0].missed, 2);
        let mean = m.per_task[0].mean_response_ms();
        assert!(mean.is_finite());
        assert_eq!(mean, 0.0);
    }

    #[test]
    fn all_backups_canceled_attributes_every_backup_tick_as_waste() {
        // Hand-built schedule: both backup segments end Canceled, so all
        // backup work must be attributed to `canceled_backup_work` and
        // none of it may leak into main/optional busy time.
        let ts = two_task_set();
        let seg = |task: usize, index: u64, kind, start_ms, end_ms, ended| Segment {
            proc: ProcId::SPARE,
            job: JobId::new(TaskId(task), index),
            kind,
            start: Time::from_ms(start_ms),
            end: Time::from_ms(end_ms),
            ended,
        };
        let trace = Trace {
            segments: vec![
                seg(0, 1, CopyKind::Main, 0, 3, SegmentEnd::Completed),
                seg(0, 1, CopyKind::Backup, 1, 3, SegmentEnd::Canceled),
                seg(0, 2, CopyKind::Backup, 5, 8, SegmentEnd::Canceled),
            ],
            resolutions: vec![JobResolution {
                job: JobId::new(TaskId(0), 1),
                outcome: JobOutcome::Met,
                at: Time::from_ms(3),
            }],
        };
        let m = analyze_trace(&ts, &trace);
        let row = &m.per_task[0];
        assert_eq!(row.backup_busy, Time::from_ms(5));
        assert_eq!(row.canceled_backup_work, Time::from_ms(5));
        assert_eq!(m.total_canceled_backup_work(), Time::from_ms(5));
        assert_eq!(row.main_busy, Time::from_ms(3));
        assert_eq!(row.optional_busy, Time::ZERO);
        assert_eq!(m.per_task[1].backup_busy, Time::ZERO);
    }
}
