//! The deterministic discrete-event simulator for the dual-processor
//! standby-sparing system.
//!
//! The engine implements the mechanics shared by all of the paper's
//! schemes:
//!
//! * per-processor preemptive fixed-priority dispatch with a mandatory
//!   job queue (MJQ) strictly above an optional job queue (OJQ)
//!   (Algorithm 1);
//! * optional jobs are only dispatched while they can still finish by
//!   their deadline, otherwise they are abandoned ("O11 will not be
//!   invoked at all", Section III); within the OJQ, less flexible jobs
//!   (smaller flexibility degree at release) run first (footnote 1);
//! * sibling cancellation: the instant any copy of a mandatory job
//!   completes fault-free, the other copy is canceled (line 3 of
//!   Algorithm 1);
//! * transient faults are detected at the end of each execution; a
//!   faulted copy consumed its full time but produced nothing;
//! * at most one permanent fault kills a processor; the survivor takes
//!   over (future mandatory jobs run as single copies on it);
//! * outcome bookkeeping: per-task execution histories (for the dynamic
//!   flexibility-degree classification) and sliding (m,k)-monitors (to
//!   report violations);
//! * DPD energy accounting: busy intervals cost `p_active`; each maximal
//!   idle interval longer than `T_be` is charged the break-even shutdown
//!   cost, shorter ones idle (Section II-A).
//!
//! What a [`Policy`] contributes is only the per-release decision: is the
//! job mandatory (and where do main/backup go, with what backup delay) or
//! optional (selected on which processor, or skipped).
//!
//! ## Sessions and throughput
//!
//! Every experiment in the repo bottoms out in millions of calls into
//! this module, so the inner loop is engineered to touch the heap only
//! when a run grows past everything seen before: all per-run state
//! (copies, job entries, task states, the ready/open index lists, and
//! the trace buffers) lives in a reusable [`SimWorkspace`] arena.
//! [`simulate_in`] runs one simulation inside a caller-owned workspace,
//! so a sweep that simulates thousands of task sets reuses the same
//! capacity throughout; [`simulate`] is the convenience wrapper that
//! creates a throwaway workspace per call. With `record_trace = false`
//! the steady-state event loop performs **zero** allocations per event.
//!
//! ## Observability
//!
//! The engine optionally narrates itself through a
//! [`Recorder`](mkss_obs::Recorder) attached to the workspace
//! ([`SimWorkspace::set_recorder`] / [`SimWorkspace::with_recorder`]):
//! job releases and resolutions, mandatory/optional classification,
//! backup release and postponement (`r̃ = r + θ`), backup cancellation,
//! fault injection and recovery, and the (m,k) distance-to-violation at
//! each resolution. The recorder lives on the workspace rather than on
//! [`SimConfig`] because the config stays `Copy + PartialEq +
//! Serialize`, which a trait-object handle cannot be. Recorders only
//! observe — they never feed back into the run — so a recorder-on
//! report is byte-identical to a recorder-off one, and with no recorder
//! attached each emit site costs a single branch (the zero-allocation
//! contract above is unchanged).

use mkss_core::history::{JobOutcome, MkHistory};
use mkss_core::job::{CopyKind, Job, JobClass};
use mkss_core::mk::MkMonitor;
use mkss_core::task::{TaskId, TaskSet};
use mkss_core::time::Time;
use mkss_obs::{CounterId, HistogramId, Recorder};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

use crate::fault::{FaultConfig, TransientSampler};
use crate::policy::{Policy, ReleaseCtx, ReleaseDecision};
use crate::power::{EnergyBreakdown, PowerModel};
use crate::proc::ProcId;
use crate::report::{JobStats, MkViolation, SimReport};
use crate::trace::{JobResolution, Segment, SegmentEnd, Trace};

/// Configuration of one simulation run.
///
/// Construct with [`SimConfig::new`] / [`SimConfig::active_only`] for the
/// common cases, or with the builder for anything else:
///
/// ```
/// use mkss_core::time::Time;
/// use mkss_sim::engine::SimConfig;
///
/// let config = SimConfig::builder()
///     .horizon(Time::from_ms(500))
///     .record_trace(true)
///     .build();
/// assert_eq!(config.horizon, Time::from_ms(500));
/// assert!(config.record_trace);
/// ```
///
/// The struct is `#[non_exhaustive]`: fields stay readable and
/// assignable, but downstream struct literals must go through the
/// builder so future knobs are not breaking changes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct SimConfig {
    /// Simulated span `[0, horizon)`. Only jobs whose absolute deadline
    /// lies within the horizon are released, so every released job is
    /// fully accounted for.
    pub horizon: Time,
    /// Power model for energy accounting.
    pub power: PowerModel,
    /// Fault injection.
    pub faults: FaultConfig,
    /// Whether to keep the full schedule trace in the report.
    pub record_trace: bool,
}

impl SimConfig {
    /// Fault-free configuration with the default power model.
    pub fn new(horizon: Time) -> Self {
        SimConfig {
            horizon,
            power: PowerModel::default(),
            faults: FaultConfig::none(),
            record_trace: false,
        }
    }

    /// Same, but counting only active energy (the motivating examples'
    /// accounting) and recording the trace.
    pub fn active_only(horizon: Time) -> Self {
        SimConfig {
            horizon,
            power: PowerModel::active_only(),
            faults: FaultConfig::none(),
            record_trace: true,
        }
    }

    /// Starts a builder with the defaults of [`SimConfig::new`] and a
    /// zero horizon; set the horizon before [`SimConfigBuilder::build`].
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder {
            config: SimConfig::new(Time::ZERO),
        }
    }
}

/// Builder for [`SimConfig`]; see [`SimConfig::builder`].
#[derive(Debug, Clone)]
#[must_use = "a builder does nothing until `.build()` is called"]
pub struct SimConfigBuilder {
    config: SimConfig,
}

impl SimConfigBuilder {
    /// Sets the simulated span `[0, horizon)`.
    pub fn horizon(mut self, horizon: Time) -> Self {
        self.config.horizon = horizon;
        self
    }

    /// Sets the horizon in whole milliseconds.
    pub fn horizon_ms(self, ms: u64) -> Self {
        self.horizon(Time::from_ms(ms))
    }

    /// Sets the power model for energy accounting.
    pub fn power(mut self, power: PowerModel) -> Self {
        self.config.power = power;
        self
    }

    /// Switches to active-only energy accounting *and* enables trace
    /// recording, mirroring [`SimConfig::active_only`] (the motivating
    /// examples' configuration).
    pub fn active_only(mut self) -> Self {
        self.config.power = PowerModel::active_only();
        self.config.record_trace = true;
        self
    }

    /// Sets the fault-injection configuration.
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.config.faults = faults;
        self
    }

    /// Sets whether the report keeps the full schedule trace.
    pub fn record_trace(mut self, record_trace: bool) -> Self {
        self.config.record_trace = record_trace;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> SimConfig {
        self.config
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CopyState {
    /// Waiting for its (possibly postponed) release, ready, or running.
    Pending,
    /// Finished executing; `faulted` if a transient fault hit it.
    Done { faulted: bool },
    /// Canceled because the sibling copy succeeded.
    Canceled,
    /// Optional copy abandoned (could no longer meet its deadline), or a
    /// copy whose job already missed.
    Abandoned,
    /// Destroyed by the permanent fault.
    Lost,
}

#[derive(Debug)]
struct CopyInst {
    job: Job,
    kind: CopyKind,
    proc: ProcId,
    release: Time,
    remaining: Time,
    /// Total execution time of this copy (its WCET stretched by the DVS
    /// speed); used for transient-fault exposure.
    exec_total: Time,
    /// DVS speed in permil of full speed (1000 = full).
    speed_permil: u32,
    state: CopyState,
    sibling: Option<usize>,
    /// Flexibility degree of the job at release (OJQ ordering key;
    /// mandatory copies store 0 and never use it).
    fd_at_release: u32,
    /// Set while this copy occupies a processor (segment start).
    running_since: Option<Time>,
    job_entry: usize,
}

/// A released job has at most two copies (main + backup); storing their
/// indices inline keeps [`JobEntry`] allocation-free.
#[derive(Debug)]
struct JobEntry {
    job: Job,
    resolved: bool,
    copies: [usize; 2],
    copy_count: u8,
}

#[derive(Debug)]
struct TaskState {
    next_index: u64,
    history: MkHistory,
    monitor: MkMonitor,
    exhausted: bool,
}

/// Reusable per-run state of the simulator: an arena for copies, job
/// entries, task states, the active/open index lists, scratch buffers,
/// and the trace.
///
/// A workspace owns no results — every [`simulate_in`] call resets it —
/// but it *retains capacity*, so back-to-back simulations stop paying
/// for allocation and the hot loop runs heap-free in steady state (with
/// `record_trace = false`). One workspace serves any number of task
/// sets, policies, and configurations, in any order:
///
/// ```
/// use mkss_core::prelude::*;
/// use mkss_sim::prelude::*;
/// # use mkss_sim::policy::{Policy, ReleaseCtx, ReleaseDecision};
/// # struct Dup;
/// # impl Policy for Dup {
/// #     fn name(&self) -> &str { "dup" }
/// #     fn on_release(&mut self, _ctx: &ReleaseCtx<'_>) -> ReleaseDecision {
/// #         ReleaseDecision::Mandatory {
/// #             main_proc: ProcId::PRIMARY,
/// #             backup_delay: Time::ZERO,
/// #         }
/// #     }
/// # }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ts = TaskSet::new(vec![Task::from_ms(10, 10, 2, 1, 2)?])?;
/// let config = SimConfig::builder().horizon_ms(100).build();
/// let mut ws = SimWorkspace::new();
/// for _ in 0..3 {
///     let report = simulate_in(&mut ws, &ts, &mut Dup, &config);
///     assert!(report.mk_assured());
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct SimWorkspace {
    copies: Vec<CopyInst>,
    jobs: Vec<JobEntry>,
    tasks: Vec<TaskState>,
    /// Indices of copies that may still need CPU time (lazily pruned of
    /// terminal-state copies to keep per-event scans O(active)).
    active_copies: Vec<usize>,
    /// Indices of jobs not yet resolved (lazily pruned).
    open_jobs: Vec<usize>,
    /// Scratch for deadline resolution (kept for its capacity).
    due_scratch: Vec<usize>,
    trace: Trace,
    /// Merged busy intervals per processor, in time order.
    busy: [Vec<(Time, Time)>; 2],
    /// Optional event sink; survives `begin_run` so one attachment
    /// covers every simulation run through this workspace.
    recorder: RecorderSlot,
}

/// Wrapper keeping `SimWorkspace`'s `derive(Debug, Default)` while
/// holding a non-`Debug` trait object.
#[derive(Default)]
struct RecorderSlot(Option<Arc<dyn Recorder>>);

impl std::fmt::Debug for RecorderSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "Recorder(attached)"
        } else {
            "Recorder(none)"
        })
    }
}

impl SimWorkspace {
    /// Creates an empty workspace. Capacity grows on first use and is
    /// retained across runs.
    pub fn new() -> Self {
        SimWorkspace::default()
    }

    /// Creates an empty workspace with `recorder` already attached.
    pub fn with_recorder(recorder: Arc<dyn Recorder>) -> Self {
        let mut ws = SimWorkspace::default();
        ws.set_recorder(Some(recorder));
        ws
    }

    /// Attaches (or with `None`, detaches) the event sink that every
    /// subsequent [`simulate_in`] call through this workspace reports to.
    ///
    /// Recorders observe the run without influencing it: the produced
    /// [`SimReport`] is byte-identical with and without one attached.
    pub fn set_recorder(&mut self, recorder: Option<Arc<dyn Recorder>>) {
        self.recorder = RecorderSlot(recorder);
    }

    /// True when an event sink is attached.
    pub fn has_recorder(&self) -> bool {
        self.recorder.0.is_some()
    }

    /// Clears per-run state, keeping every allocation. Task states are
    /// reset in place when the task-set shape matches the previous run.
    fn begin_run(&mut self, ts: &TaskSet) {
        self.copies.clear();
        self.jobs.clear();
        self.active_copies.clear();
        self.open_jobs.clear();
        self.due_scratch.clear();
        self.trace.segments.clear();
        self.trace.resolutions.clear();
        for intervals in &mut self.busy {
            intervals.clear();
        }
        let reusable = self.tasks.len() == ts.len()
            && self
                .tasks
                .iter()
                .zip(ts.iter())
                .all(|(state, (_, task))| state.history.constraint() == task.mk());
        if reusable {
            for state in &mut self.tasks {
                state.next_index = 1;
                state.history.reset();
                state.monitor.reset();
                state.exhausted = false;
            }
        } else {
            self.tasks.clear();
            self.tasks.extend(ts.iter().map(|(_, task)| TaskState {
                next_index: 1,
                history: MkHistory::new(task.mk()),
                monitor: MkMonitor::new(task.mk()),
                exhausted: false,
            }));
        }
    }
}

/// Runs one simulation of `policy` on `ts`.
///
/// The run is fully deterministic given `config` (transient faults use a
/// seeded RNG). This is a thin wrapper over [`simulate_in`] with a
/// throwaway [`SimWorkspace`]; batch callers should hold a workspace and
/// call [`simulate_in`] directly to amortize the allocations.
///
/// # Examples
///
/// ```
/// use mkss_core::prelude::*;
/// use mkss_sim::engine::{simulate, SimConfig};
/// use mkss_sim::policy::{Policy, ReleaseCtx, ReleaseDecision};
/// use mkss_sim::proc::ProcId;
///
/// /// Every job mandatory, mains on the primary, backups concurrent.
/// struct Naive;
/// impl Policy for Naive {
///     fn name(&self) -> &str { "naive" }
///     fn on_release(&mut self, _ctx: &ReleaseCtx<'_>) -> ReleaseDecision {
///         ReleaseDecision::Mandatory {
///             main_proc: ProcId::PRIMARY,
///             backup_delay: Time::ZERO,
///         }
///     }
/// }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ts = TaskSet::new(vec![Task::from_ms(10, 10, 2, 1, 2)?])?;
/// let report = simulate(&ts, &mut Naive, &SimConfig::active_only(Time::from_ms(20)));
/// assert!(report.mk_assured());
/// // Two jobs, each 2 ms on both processors… minus the cancellation:
/// // main and backup start together, so both run to completion.
/// assert!((report.active_energy().units() - 8.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn simulate<P: Policy + ?Sized>(ts: &TaskSet, policy: &mut P, config: &SimConfig) -> SimReport {
    let mut ws = SimWorkspace::new();
    simulate_in(&mut ws, ts, policy, config)
}

/// Runs one simulation of `policy` on `ts` inside a caller-owned
/// [`SimWorkspace`], reusing its capacity.
///
/// The report is **bit-identical** to what [`simulate`] produces for the
/// same inputs, regardless of what the workspace was previously used
/// for; reuse changes only where the intermediate state lives. See
/// [`SimWorkspace`] for an example.
pub fn simulate_in<P: Policy + ?Sized>(
    ws: &mut SimWorkspace,
    ts: &TaskSet,
    policy: &mut P,
    config: &SimConfig,
) -> SimReport {
    ws.begin_run(ts);
    let engine = Engine {
        ts,
        config,
        ws,
        clock: Time::ZERO,
        running: [None, None],
        alive: [true, true],
        death_time: [None, None],
        fault_applied: false,
        sampler: TransientSampler::new(&config.faults),
        active_energy: [crate::power::Energy::ZERO; 2],
        stats: JobStats::default(),
        violations: Vec::new(),
    };
    engine.run(policy)
}

struct Engine<'a, 'w> {
    ts: &'a TaskSet,
    config: &'a SimConfig,
    ws: &'w mut SimWorkspace,
    clock: Time,
    running: [Option<usize>; 2],
    alive: [bool; 2],
    death_time: [Option<Time>; 2],
    fault_applied: bool,
    sampler: TransientSampler,
    /// Active energy accumulated per processor (DVS-aware).
    active_energy: [crate::power::Energy; 2],
    stats: JobStats,
    violations: Vec<MkViolation>,
}

impl<'a, 'w> Engine<'a, 'w> {
    /// Bump a counter on the attached recorder, if any. One predictable
    /// branch when detached — cheap enough for every emit site.
    #[inline]
    fn emit(&self, counter: CounterId) {
        if let Some(recorder) = &self.ws.recorder.0 {
            recorder.incr(counter, 1);
        }
    }

    /// Record a histogram sample on the attached recorder, if any.
    #[inline]
    fn emit_observe(&self, histogram: HistogramId, value: u64) {
        if let Some(recorder) = &self.ws.recorder.0 {
            recorder.observe(histogram, value);
        }
    }

    /// Narrate one backup-copy release: postponed (`r̃ = r + θ`, θ > 0)
    /// releases additionally sample θ into the delay histogram.
    #[inline]
    fn emit_backup_release(&self, backup_delay: Time) {
        self.emit(CounterId::BackupsReleased);
        if !backup_delay.is_zero() {
            self.emit(CounterId::BackupsPostponed);
            self.emit_observe(
                HistogramId::BackupDelayMs,
                backup_delay.as_ms_f64().ceil() as u64,
            );
        }
    }

    // mkss-lint: hot-path begin
    //
    // Everything from here through `close_segment` is the steady-state
    // event loop: with `record_trace = false` it performs zero
    // allocations per event (PR 2's contract, pinned at runtime by
    // crates/sim/tests/zero_alloc.rs and at review time by the
    // `hot-path-alloc` lint rule). Pushes into workspace-owned buffers
    // are fine — they only allocate past retained capacity — but no
    // fresh allocating constructor may appear in this region.
    fn run<P: Policy + ?Sized>(mut self, policy: &mut P) -> SimReport {
        policy.init(self.ts);
        loop {
            self.prune();
            self.apply_fault_if_due();
            self.resolve_due_deadlines();
            self.process_releases(policy);
            self.dispatch();
            let Some(next) = self.next_event_time() else {
                break;
            };
            debug_assert!(next > self.clock, "no progress at {}", self.clock);
            self.advance_to(next);
            if self.clock >= self.config.horizon {
                break;
            }
        }
        // Everything released has deadline ≤ horizon; resolve stragglers.
        self.clock = self.config.horizon;
        self.resolve_due_deadlines();
        self.finish(policy.name())
    }

    /// Drops terminal copies / resolved jobs from the active lists so the
    /// per-event scans stay O(active) instead of O(everything ever
    /// released). Swap-remove keeps the scan allocation-free; the lists
    /// are unordered, which no consumer relies on (dispatch picks by
    /// unique priority keys, deadline resolution re-sorts its batch).
    fn prune(&mut self) {
        let copies = &self.ws.copies;
        let active = &mut self.ws.active_copies;
        // Swap-remove never invents indices, it only reorders; every
        // entry must keep pointing into the arena it was pushed for.
        debug_assert!(
            active.iter().all(|&c| c < copies.len()),
            "active copy index out of bounds"
        );
        let mut i = 0;
        while i < active.len() {
            if copies[active[i]].state == CopyState::Pending {
                i += 1;
            } else {
                active.swap_remove(i);
            }
        }
        let jobs = &self.ws.jobs;
        let open = &mut self.ws.open_jobs;
        debug_assert!(
            open.iter().all(|&j| j < jobs.len()),
            "open job index out of bounds"
        );
        let mut i = 0;
        while i < open.len() {
            if jobs[open[i]].resolved {
                open.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    // ----- fault handling ---------------------------------------------

    fn apply_fault_if_due(&mut self) {
        if self.fault_applied {
            return;
        }
        let Some(pf) = self.config.faults.permanent else {
            self.fault_applied = true;
            return;
        };
        if pf.at > self.clock {
            return;
        }
        self.fault_applied = true;
        self.emit(CounterId::FaultsInjected);
        self.emit(CounterId::PermanentFaults);
        let p = pf.proc;
        self.alive[p.index()] = false;
        self.death_time[p.index()] = Some(self.clock);
        if let Some(c) = self.running[p.index()].take() {
            self.close_segment(c, SegmentEnd::Lost);
        }
        for i in 0..self.ws.active_copies.len() {
            let idx = self.ws.active_copies[i];
            let copy = &mut self.ws.copies[idx];
            if copy.proc == p && copy.state == CopyState::Pending {
                copy.state = CopyState::Lost;
                self.stats.copies_lost += 1;
                self.emit(CounterId::CopiesLost);
            }
        }
    }

    // ----- deadline resolution ----------------------------------------

    fn resolve_due_deadlines(&mut self) {
        let mut due = std::mem::take(&mut self.ws.due_scratch);
        due.clear();
        for &j in &self.ws.open_jobs {
            let entry = &self.ws.jobs[j];
            if !entry.resolved && entry.job.deadline <= self.clock {
                due.push(j);
            }
        }
        // `open_jobs` is unordered (swap-remove pruning); restore release
        // order so resolutions land in the same order as the ordered-scan
        // engine did — outcome histories, violations, and the trace all
        // observe it.
        due.sort_unstable();
        for &j in &due {
            let deadline = self.ws.jobs[j].job.deadline;
            self.resolve(j, JobOutcome::Missed, deadline);
        }
        self.ws.due_scratch = due;
    }

    fn resolve(&mut self, job_idx: usize, outcome: JobOutcome, at: Time) {
        debug_assert!(!self.ws.jobs[job_idx].resolved);
        self.ws.jobs[job_idx].resolved = true;
        let job = self.ws.jobs[job_idx].job;
        let tstate = &mut self.ws.tasks[job.id.task.0];
        tstate.history.record(outcome);
        let was_violated = tstate.monitor.violated();
        tstate.monitor.record(outcome.is_met());
        let now_violated = tstate.monitor.violated();
        let distance = tstate.monitor.distance_to_violation();
        self.emit_observe(HistogramId::MkDistance, u64::from(distance));
        if now_violated && !was_violated {
            self.violations.push(MkViolation {
                task: job.id.task,
                job_index: job.id.index,
            });
            self.emit(CounterId::MkViolations);
        }
        match outcome {
            JobOutcome::Met => {
                self.stats.met += 1;
                self.emit(CounterId::JobsMet);
            }
            JobOutcome::Missed => {
                self.stats.missed += 1;
                self.emit(CounterId::JobsMissed);
            }
        }
        if self.config.record_trace {
            self.ws.trace.resolutions.push(JobResolution {
                job: job.id,
                outcome,
                at,
            });
        }
        if outcome == JobOutcome::Missed {
            // A missed job's remaining copies are useless; stop them.
            let copies = self.ws.jobs[job_idx].copies;
            let count = self.ws.jobs[job_idx].copy_count as usize;
            for &c in &copies[..count] {
                if self.ws.copies[c].state == CopyState::Pending {
                    self.stop_copy(c, CopyState::Abandoned, SegmentEnd::Canceled);
                }
            }
        }
    }

    /// Takes a pending copy off its processor (closing any open segment)
    /// and puts it into a terminal state.
    fn stop_copy(&mut self, c: usize, state: CopyState, ended: SegmentEnd) {
        debug_assert_eq!(self.ws.copies[c].state, CopyState::Pending);
        let proc = self.ws.copies[c].proc;
        if self.running[proc.index()] == Some(c) {
            self.running[proc.index()] = None;
            self.close_segment(c, ended);
        }
        self.ws.copies[c].state = state;
    }

    // ----- releases ----------------------------------------------------

    fn process_releases<P: Policy + ?Sized>(&mut self, policy: &mut P) {
        for (id, task) in self.ts.iter() {
            loop {
                let tstate = &self.ws.tasks[id.0];
                if tstate.exhausted {
                    break;
                }
                let index = tstate.next_index;
                let release = task.release_of(index);
                if task.deadline_of(index) > self.config.horizon {
                    self.ws.tasks[id.0].exhausted = true;
                    break;
                }
                if release > self.clock {
                    break;
                }
                self.ws.tasks[id.0].next_index += 1;
                self.release_job(policy, id, index, release);
            }
        }
    }

    fn release_job<P: Policy + ?Sized>(
        &mut self,
        policy: &mut P,
        id: TaskId,
        index: u64,
        release: Time,
    ) {
        debug_assert_eq!(release, self.clock, "release processed late");
        let fd = self.ws.tasks[id.0].history.flexibility_degree();
        let decision = {
            let ctx = ReleaseCtx {
                task: id,
                job_index: index,
                now: self.clock,
                history: &self.ws.tasks[id.0].history,
                alive: self.alive,
            };
            policy.on_release(&ctx)
        };
        self.stats.released += 1;
        self.emit(CounterId::JobsReleased);

        let job_entry = self.ws.jobs.len();
        // Normalize the two mandatory forms.
        let decision = match decision {
            ReleaseDecision::Mandatory {
                main_proc,
                backup_delay,
            } => ReleaseDecision::MandatoryScaled {
                main_proc,
                backup_delay,
                main_speed_permil: 1000,
            },
            other => other,
        };
        // The normalization above is exhaustive for the plain-mandatory
        // form; the match below relies on never seeing it again.
        debug_assert!(
            !matches!(decision, ReleaseDecision::Mandatory { .. }),
            "Mandatory must be normalized to MandatoryScaled before dispatch"
        );
        match decision {
            ReleaseDecision::MandatoryScaled {
                main_proc,
                backup_delay,
                main_speed_permil,
            } => {
                assert!(
                    (1..=1000).contains(&main_speed_permil),
                    "main speed must be in 1..=1000 permil"
                );
                self.stats.mandatory += 1;
                self.emit(CounterId::MandatoryReleased);
                let job = Job::nth(id, self.ts.task(id), index, JobClass::Mandatory);
                let mut copies = [0usize; 2];
                let mut copy_count = 0u8;
                // Main execution time stretched by the DVS slowdown.
                let main_exec = Time::from_ticks(
                    (job.wcet.ticks() * 1000).div_ceil(u64::from(main_speed_permil)),
                );
                if self.alive[main_proc.index()] {
                    let main_idx = self.ws.copies.len();
                    self.ws.copies.push(CopyInst {
                        job,
                        kind: CopyKind::Main,
                        proc: main_proc,
                        release,
                        remaining: main_exec,
                        exec_total: main_exec,
                        speed_permil: main_speed_permil,
                        state: CopyState::Pending,
                        sibling: None,
                        fd_at_release: 0,
                        running_since: None,
                        job_entry,
                    });
                    copies[copy_count as usize] = main_idx;
                    copy_count += 1;
                    let backup_proc = main_proc.other();
                    if self.alive[backup_proc.index()] {
                        let backup_idx = self.ws.copies.len();
                        self.ws.copies.push(CopyInst {
                            job,
                            kind: CopyKind::Backup,
                            proc: backup_proc,
                            release: release + backup_delay,
                            remaining: job.wcet,
                            exec_total: job.wcet,
                            speed_permil: 1000,
                            state: CopyState::Pending,
                            sibling: Some(main_idx),
                            fd_at_release: 0,
                            running_since: None,
                            job_entry,
                        });
                        self.ws.copies[main_idx].sibling = Some(backup_idx);
                        copies[copy_count as usize] = backup_idx;
                        copy_count += 1;
                        self.emit_backup_release(backup_delay);
                    }
                } else {
                    // The main's processor is dead: host the job as its
                    // *backup* copy on the survivor, keeping the backup
                    // release delay. Releasing at `r` instead would put a
                    // one-off shorter-than-period gap between this task's
                    // copies on the survivor (pre-fault copies there were
                    // delayed), and that release jitter can push a
                    // lower-priority backup past its deadline even though
                    // the synchronous analysis passes.
                    let idx = self.ws.copies.len();
                    self.ws.copies.push(CopyInst {
                        job,
                        kind: CopyKind::Backup,
                        proc: main_proc.other(),
                        release: release + backup_delay,
                        remaining: job.wcet,
                        exec_total: job.wcet,
                        speed_permil: 1000,
                        state: CopyState::Pending,
                        sibling: None,
                        fd_at_release: 0,
                        running_since: None,
                        job_entry,
                    });
                    copies[copy_count as usize] = idx;
                    copy_count += 1;
                    self.emit_backup_release(backup_delay);
                }
                for &c in &copies[..copy_count as usize] {
                    self.ws.active_copies.push(c);
                }
                self.ws.jobs.push(JobEntry {
                    job,
                    resolved: false,
                    copies,
                    copy_count,
                });
                self.ws.open_jobs.push(job_entry);
            }
            ReleaseDecision::Mandatory { .. } => {
                unreachable!("normalized to MandatoryScaled above")
            }
            ReleaseDecision::Optional { proc } => {
                self.stats.optional_selected += 1;
                self.emit(CounterId::OptionalSelected);
                let job = Job::nth(id, self.ts.task(id), index, JobClass::Optional);
                let proc = self.live_proc(proc);
                let idx = self.ws.copies.len();
                self.ws.copies.push(CopyInst {
                    job,
                    kind: CopyKind::Optional,
                    proc,
                    release,
                    remaining: job.wcet,
                    exec_total: job.wcet,
                    speed_permil: 1000,
                    state: CopyState::Pending,
                    sibling: None,
                    fd_at_release: fd,
                    running_since: None,
                    job_entry,
                });
                self.ws.active_copies.push(idx);
                self.ws.jobs.push(JobEntry {
                    job,
                    resolved: false,
                    copies: [idx, 0],
                    copy_count: 1,
                });
                self.ws.open_jobs.push(job_entry);
            }
            ReleaseDecision::Skip => {
                self.stats.optional_skipped += 1;
                self.emit(CounterId::OptionalSkipped);
                let job = Job::nth(id, self.ts.task(id), index, JobClass::Optional);
                self.ws.jobs.push(JobEntry {
                    job,
                    resolved: false,
                    copies: [0, 0],
                    copy_count: 0,
                });
                self.ws.open_jobs.push(job_entry);
            }
        }
    }

    fn live_proc(&self, preferred: ProcId) -> ProcId {
        if self.alive[preferred.index()] {
            preferred
        } else {
            preferred.other()
        }
    }

    // ----- dispatch ----------------------------------------------------

    fn dispatch(&mut self) {
        for &proc in &ProcId::ALL {
            if !self.alive[proc.index()] {
                continue;
            }
            self.abandon_infeasible_optionals(proc);
            let pick = self.pick_copy(proc);
            let current = self.running[proc.index()];
            if current == pick {
                continue;
            }
            if let Some(old) = current {
                // Preempted (still pending; completed/canceled copies
                // already closed their segment and cleared `running`).
                if self.ws.copies[old].state == CopyState::Pending {
                    self.close_segment(old, SegmentEnd::Preempted);
                }
            }
            if let Some(new) = pick {
                self.ws.copies[new].running_since = Some(self.clock);
            }
            self.running[proc.index()] = pick;
        }
    }

    /// Abandons every ready optional copy on `proc` that can no longer
    /// finish by its deadline even if it ran uninterrupted from now.
    fn abandon_infeasible_optionals(&mut self, proc: ProcId) {
        // `stop_copy` never touches `active_copies`, so plain index
        // iteration is safe (and allocation-free).
        for i in 0..self.ws.active_copies.len() {
            let c = self.ws.active_copies[i];
            let copy = &self.ws.copies[c];
            if copy.proc == proc
                && copy.kind == CopyKind::Optional
                && copy.state == CopyState::Pending
                && copy.release <= self.clock
                && !copy.job.feasible_from(self.clock, copy.remaining)
            {
                self.stats.optional_abandoned += 1;
                self.emit(CounterId::OptionalAbandoned);
                self.stop_copy(c, CopyState::Abandoned, SegmentEnd::Preempted);
            }
        }
    }

    /// MJQ strictly above OJQ; MJQ in fixed-priority order, OJQ ordered
    /// by (flexibility degree at release, fixed priority). The ordering
    /// keys are unique per processor (a job never has two copies on one
    /// processor), so the unordered `active_copies` scan is
    /// deterministic.
    fn pick_copy(&self, proc: ProcId) -> Option<usize> {
        let ready = |c: &CopyInst| {
            c.proc == proc && c.state == CopyState::Pending && c.release <= self.clock
        };
        let mandatory = self
            .ws
            .active_copies
            .iter()
            .map(|&i| (i, &self.ws.copies[i]))
            .filter(|(_, c)| ready(c) && c.kind != CopyKind::Optional)
            .min_by_key(|(_, c)| (c.job.id.task, c.job.id.index))
            .map(|(i, _)| i);
        if mandatory.is_some() {
            return mandatory;
        }
        self.ws
            .active_copies
            .iter()
            .map(|&i| (i, &self.ws.copies[i]))
            .filter(|(_, c)| ready(c) && c.kind == CopyKind::Optional)
            .min_by_key(|(_, c)| (c.fd_at_release, c.job.id.task, c.job.id.index))
            .map(|(i, _)| i)
    }

    // ----- time advance --------------------------------------------------

    fn next_event_time(&self) -> Option<Time> {
        let mut next = self.config.horizon;
        let mut any = self.clock < self.config.horizon;
        if !self.fault_applied {
            if let Some(pf) = self.config.faults.permanent {
                next = next.min(pf.at);
            }
        }
        for (id, task) in self.ts.iter() {
            let tstate = &self.ws.tasks[id.0];
            if !tstate.exhausted {
                next = next.min(task.release_of(tstate.next_index));
                any = true;
            }
        }
        for &i in &self.ws.active_copies {
            let copy = &self.ws.copies[i];
            if copy.state == CopyState::Pending && copy.release > self.clock {
                next = next.min(copy.release);
                any = true;
            }
        }
        for &i in &self.ws.open_jobs {
            let job = &self.ws.jobs[i];
            if !job.resolved && job.job.deadline > self.clock {
                next = next.min(job.job.deadline);
                any = true;
            }
        }
        for &proc in &ProcId::ALL {
            if let Some(c) = self.running[proc.index()] {
                next = next.min(self.clock + self.ws.copies[c].remaining);
                any = true;
            }
        }
        if !any {
            return None;
        }
        Some(next.max(self.clock))
    }

    fn advance_to(&mut self, next: Time) {
        let dt = next - self.clock;
        // At most one copy completes per processor per step.
        let mut completions = [0usize; 2];
        let mut completed = 0usize;
        for &proc in &ProcId::ALL {
            if let Some(c) = self.running[proc.index()] {
                self.extend_busy(proc, self.clock, next);
                let speed = self.ws.copies[c].speed_permil;
                self.active_energy[proc.index()] += self.config.power.active_energy_at(dt, speed);
                let copy = &mut self.ws.copies[c];
                copy.remaining -= dt;
                if copy.remaining.is_zero() {
                    completions[completed] = c;
                    completed += 1;
                }
            }
        }
        self.clock = next;
        // Mark all simultaneous completions done first (so a success does
        // not "cancel" a sibling that also just finished)…
        for &c in &completions[..completed] {
            let faulted = self.sampler.sample(self.ws.copies[c].exec_total);
            if faulted {
                self.stats.transient_faults += 1;
                self.emit(CounterId::FaultsInjected);
                self.emit(CounterId::TransientFaults);
            }
            let proc = self.ws.copies[c].proc;
            self.running[proc.index()] = None;
            self.close_segment(c, SegmentEnd::Completed);
            self.ws.copies[c].state = CopyState::Done { faulted };
            match self.ws.copies[c].kind {
                CopyKind::Backup => {
                    self.stats.backups_completed += 1;
                    self.emit(CounterId::BackupsCompleted);
                }
                CopyKind::Optional if !faulted => self.emit(CounterId::OptionalExecuted),
                _ => {}
            }
        }
        // …then act on the outcomes.
        debug_assert!(
            completions[..completed]
                .iter()
                .all(|&c| matches!(self.ws.copies[c].state, CopyState::Done { .. })),
            "every completion was marked Done by the loop above"
        );
        for &c in &completions[..completed] {
            let CopyState::Done { faulted } = self.ws.copies[c].state else {
                unreachable!("completion not marked done");
            };
            if faulted {
                continue;
            }
            let job_idx = self.ws.copies[c].job_entry;
            if !self.ws.jobs[job_idx].resolved {
                // A backup finishing fault-free with its main copy gone
                // (faulted, lost with its processor, or never created) is
                // the standby-sparing mechanism actually saving the job.
                let recovered = self.ws.copies[c].kind == CopyKind::Backup
                    && self.ws.copies[c].sibling.is_none_or(|sib| {
                        matches!(
                            self.ws.copies[sib].state,
                            CopyState::Done { faulted: true } | CopyState::Lost
                        )
                    });
                self.resolve(job_idx, JobOutcome::Met, self.clock);
                if recovered {
                    self.emit(CounterId::FaultsRecovered);
                }
            }
            if let Some(sib) = self.ws.copies[c].sibling {
                if self.ws.copies[sib].state == CopyState::Pending {
                    self.stats.backups_canceled += 1;
                    self.emit(CounterId::BackupsCanceled);
                    self.stop_copy(sib, CopyState::Canceled, SegmentEnd::Canceled);
                }
            }
        }
    }

    fn extend_busy(&mut self, proc: ProcId, from: Time, to: Time) {
        let intervals = &mut self.ws.busy[proc.index()];
        match intervals.last_mut() {
            Some(last) if last.1 == from => last.1 = to,
            _ => intervals.push((from, to)),
        }
    }

    fn close_segment(&mut self, c: usize, ended: SegmentEnd) {
        let record = self.config.record_trace;
        let clock = self.clock;
        let copy = &mut self.ws.copies[c];
        if let Some(start) = copy.running_since.take() {
            if record && start < clock {
                self.ws.trace.segments.push(Segment {
                    proc: copy.proc,
                    job: copy.job.id,
                    kind: copy.kind,
                    start,
                    end: clock,
                    ended,
                });
            }
        }
    }

    // mkss-lint: hot-path end

    // ----- wrap-up -------------------------------------------------------

    fn finish(mut self, policy_name: &str) -> SimReport {
        // Close any segment still open at the horizon.
        for &proc in &ProcId::ALL {
            if let Some(c) = self.running[proc.index()] {
                self.close_segment(c, SegmentEnd::Horizon);
            }
        }
        let mut energy = [EnergyBreakdown::default(), EnergyBreakdown::default()];
        for &proc in &ProcId::ALL {
            energy[proc.index()] = self.account_processor(proc, &self.config.power);
        }
        let trace = if self.config.record_trace {
            // Hand the buffers to the report; the workspace reallocates
            // them on the next recording run.
            let mut trace = std::mem::take(&mut self.ws.trace);
            trace.segments.sort_by_key(|s| (s.start, s.proc, s.end));
            Some(trace)
        } else {
            None
        };
        SimReport {
            policy: policy_name.to_owned(),
            horizon: self.config.horizon,
            energy,
            stats: self.stats,
            violations: self.violations,
            trace,
        }
    }

    /// Active energy from the busy intervals; idle energy from their
    /// complement within `[0, end-of-life)` using the DPD rule.
    fn account_processor(&self, proc: ProcId, power: &PowerModel) -> EnergyBreakdown {
        let end = self.death_time[proc.index()].unwrap_or(self.config.horizon);
        let mut breakdown = EnergyBreakdown::default();
        let mut cursor = Time::ZERO;
        for &(from, to) in &self.ws.busy[proc.index()] {
            let from = from.min(end);
            let to = to.min(end);
            if from > cursor {
                breakdown.idle += power.idle_interval_energy(from - cursor);
                breakdown.idle_time += from - cursor;
            }
            breakdown.busy_time += to - from;
            cursor = cursor.max(to);
        }
        if end > cursor {
            breakdown.idle += power.idle_interval_energy(end - cursor);
            breakdown.idle_time += end - cursor;
        }
        // Active energy was accumulated DVS-aware during the run.
        breakdown.active = self.active_energy[proc.index()];
        breakdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::PermanentFault;
    use mkss_core::task::Task;

    /// R-pattern static policy: mandatory per deeply-red, mains on
    /// primary, concurrent backups — the MKSS_ST reference, inlined here
    /// to keep the engine tests self-contained.
    struct StaticRef;
    impl Policy for StaticRef {
        fn name(&self) -> &str {
            "static-ref"
        }
        fn on_release(&mut self, ctx: &ReleaseCtx<'_>) -> ReleaseDecision {
            use mkss_core::mk::Pattern;
            let mk = ctx.history.constraint();
            if Pattern::DeeplyRed.is_mandatory(mk, ctx.job_index) {
                ReleaseDecision::Mandatory {
                    main_proc: ProcId::PRIMARY,
                    backup_delay: Time::ZERO,
                }
            } else {
                ReleaseDecision::Skip
            }
        }
    }

    fn fig1_set() -> TaskSet {
        TaskSet::new(vec![
            Task::from_ms(5, 4, 3, 2, 4).unwrap(),
            Task::from_ms(10, 10, 3, 1, 2).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn static_reference_energy_fig1_set() {
        // Mandatory jobs in [0,20): J11, J12 (τ1), J21 (τ2); mains and
        // backups run concurrently and identically on both processors →
        // no cancellation savings: 9 + 9 = 18 active units.
        let report = simulate(
            &fig1_set(),
            &mut StaticRef,
            &SimConfig::active_only(Time::from_ms(20)),
        );
        assert!((report.active_energy().units() - 18.0).abs() < 1e-9);
        assert!(report.mk_assured());
        assert_eq!(report.stats.mandatory, 3);
        assert_eq!(report.stats.optional_skipped, 3); // J13, J14, J22
        assert_eq!(report.stats.met, 3);
        assert_eq!(report.stats.missed, 3);
    }

    #[test]
    fn trace_is_recorded_and_consistent() {
        let report = simulate(
            &fig1_set(),
            &mut StaticRef,
            &SimConfig::active_only(Time::from_ms(20)),
        );
        let trace = report.trace.as_ref().unwrap();
        // Mains on primary: J11 [0,3), J21 [3,6), J12 [5,8)… with
        // preemption: J12 preempts J21 at 5.
        let primary: Vec<_> = trace.segments_on(ProcId::PRIMARY).collect();
        assert_eq!(primary[0].start, Time::ZERO);
        assert_eq!(primary[0].end, Time::from_ms(3));
        // Busy time on each processor = 9ms.
        assert_eq!(
            trace.busy_time_within(ProcId::PRIMARY, Time::from_ms(20)),
            Time::from_ms(9)
        );
        assert_eq!(
            trace.busy_time_within(ProcId::SPARE, Time::from_ms(20)),
            Time::from_ms(9)
        );
    }

    #[test]
    fn preemption_occurs_within_processor() {
        let report = simulate(
            &fig1_set(),
            &mut StaticRef,
            &SimConfig::active_only(Time::from_ms(20)),
        );
        let trace = report.trace.unwrap();
        // τ2's main J21 is preempted at t=5 by τ1's J12 and resumes at 8.
        let j21_segments: Vec<_> = trace
            .segments_on(ProcId::PRIMARY)
            .filter(|s| s.job.task == TaskId(1))
            .collect();
        assert_eq!(j21_segments.len(), 2);
        assert_eq!(j21_segments[0].ended, SegmentEnd::Preempted);
        assert_eq!(j21_segments[0].start, Time::from_ms(3));
        assert_eq!(j21_segments[0].end, Time::from_ms(5));
        assert_eq!(j21_segments[1].start, Time::from_ms(8));
        assert_eq!(j21_segments[1].end, Time::from_ms(9));
    }

    #[test]
    fn permanent_fault_on_spare_keeps_mains_running() {
        let config = SimConfig::builder()
            .horizon(Time::from_ms(20))
            .active_only()
            .faults(FaultConfig {
                permanent: Some(PermanentFault {
                    proc: ProcId::SPARE,
                    at: Time::from_ms(1),
                }),
                ..FaultConfig::none()
            })
            .build();
        let report = simulate(&fig1_set(), &mut StaticRef, &config);
        assert!(report.mk_assured());
        // Spare ran only [0,1): J'11 partial.
        let trace = report.trace.as_ref().unwrap();
        assert_eq!(
            trace.busy_time_within(ProcId::SPARE, Time::from_ms(20)),
            Time::from_ms(1)
        );
        // Mains unaffected; future jobs single-copy on primary.
        assert_eq!(
            trace.busy_time_within(ProcId::PRIMARY, Time::from_ms(20)),
            Time::from_ms(9)
        );
        assert!(report.stats.copies_lost >= 1);
        assert_eq!(report.stats.met, 3);
    }

    #[test]
    fn permanent_fault_on_primary_lets_backups_take_over() {
        let config = SimConfig::builder()
            .horizon(Time::from_ms(20))
            .active_only()
            .faults(FaultConfig {
                permanent: Some(PermanentFault {
                    proc: ProcId::PRIMARY,
                    at: Time::from_ms(1),
                }),
                ..FaultConfig::none()
            })
            .build();
        let report = simulate(&fig1_set(), &mut StaticRef, &config);
        // All mandatory jobs still met via backups on the spare.
        assert!(report.mk_assured());
        assert_eq!(report.stats.met, 3);
        assert_eq!(report.stats.missed, 3); // the skipped optional jobs
    }

    #[test]
    fn transient_fault_forces_backup_completion() {
        // Rate so high every execution faults: both copies fault → missed,
        // but (1,2) tolerates alternating misses… with every job faulted,
        // every job misses and (m,k) is violated — the monitor must say so.
        let ts = TaskSet::new(vec![Task::from_ms(10, 10, 2, 1, 2).unwrap()]).unwrap();
        let config = SimConfig::builder()
            .horizon(Time::from_ms(40))
            .active_only()
            .faults(FaultConfig::transient(1000.0, 7))
            .build();
        let report = simulate(&ts, &mut StaticRef, &config);
        assert!(report.stats.transient_faults > 0);
        assert!(!report.mk_assured());
        // Backups were not canceled (mains all faulted).
        assert_eq!(report.stats.backups_canceled, 0);
        assert_eq!(report.stats.backups_completed, 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let ts = fig1_set();
        let config = SimConfig::builder()
            .horizon(Time::from_ms(20))
            .active_only()
            .faults(FaultConfig::transient(0.05, 99))
            .build();
        let a = simulate(&ts, &mut StaticRef, &config);
        let b = simulate(&ts, &mut StaticRef, &config);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.stats, b.stats);
        assert!((a.total_energy().units() - b.total_energy().units()).abs() < 1e-12);
    }

    #[test]
    fn idle_energy_uses_dpd_rule() {
        // One task, one 2ms job per 10ms; default power model.
        let ts = TaskSet::new(vec![Task::from_ms(10, 10, 2, 1, 2).unwrap()]).unwrap();
        let report = simulate(&ts, &mut StaticRef, &SimConfig::new(Time::from_ms(20)));
        // Jobs: J1 mandatory (0..2 busy on both procs), J2 optional
        // skipped. Primary: busy [0,2), idle [2,20) = 18ms > T_be → 1ms
        // idle at 0.1 + 17ms sleep at 0. Active 2.0 + idle 0.1.
        let primary = report.energy[ProcId::PRIMARY.index()];
        assert!((primary.active.units() - 2.0).abs() < 1e-9);
        assert!((primary.idle.units() - 0.1).abs() < 1e-9);
        assert_eq!(primary.busy_time, Time::from_ms(2));
        assert_eq!(primary.idle_time, Time::from_ms(18));
    }

    #[test]
    fn energy_timeline_partitions() {
        let report = simulate(
            &fig1_set(),
            &mut StaticRef,
            &SimConfig::new(Time::from_ms(20)),
        );
        for e in &report.energy {
            assert_eq!(e.busy_time + e.idle_time, Time::from_ms(20));
        }
    }

    #[test]
    fn dead_processor_consumes_nothing_after_fault() {
        let config = SimConfig::builder()
            .horizon_ms(20)
            .faults(FaultConfig {
                permanent: Some(PermanentFault {
                    proc: ProcId::SPARE,
                    at: Time::from_ms(4),
                }),
                ..FaultConfig::none()
            })
            .build();
        let report = simulate(&fig1_set(), &mut StaticRef, &config);
        let spare = report.energy[ProcId::SPARE.index()];
        assert_eq!(spare.busy_time + spare.idle_time, Time::from_ms(4));
    }

    #[test]
    fn builder_matches_constructors() {
        let h = Time::from_ms(123);
        assert_eq!(SimConfig::builder().horizon(h).build(), SimConfig::new(h));
        assert_eq!(
            SimConfig::builder().horizon(h).active_only().build(),
            SimConfig::active_only(h)
        );
        assert_eq!(
            SimConfig::builder().horizon_ms(123).build(),
            SimConfig::new(h)
        );
    }

    #[test]
    fn workspace_reuse_is_bit_identical_to_fresh() {
        // Reuse one workspace across differently-shaped runs (trace on
        // and off, faults on and off, different task sets) and compare
        // every report against a fresh `simulate` call.
        let sets = [
            fig1_set(),
            TaskSet::new(vec![Task::from_ms(10, 10, 2, 1, 2).unwrap()]).unwrap(),
        ];
        let configs = [
            SimConfig::active_only(Time::from_ms(20)),
            SimConfig::new(Time::from_ms(40)),
            SimConfig::builder()
                .horizon_ms(40)
                .faults(FaultConfig::transient(0.5, 3))
                .record_trace(true)
                .build(),
        ];
        let mut ws = SimWorkspace::new();
        for _ in 0..2 {
            for ts in &sets {
                for config in &configs {
                    let reused = simulate_in(&mut ws, ts, &mut StaticRef, config);
                    let fresh = simulate(ts, &mut StaticRef, config);
                    assert_eq!(reused.stats, fresh.stats);
                    assert_eq!(reused.violations, fresh.violations);
                    assert_eq!(reused.trace, fresh.trace);
                    assert_eq!(reused.energy, fresh.energy);
                }
            }
        }
    }
}
