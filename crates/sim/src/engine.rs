//! The deterministic discrete-event simulator for the dual-processor
//! standby-sparing system.
//!
//! The engine implements the mechanics shared by all of the paper's
//! schemes:
//!
//! * per-processor preemptive fixed-priority dispatch with a mandatory
//!   job queue (MJQ) strictly above an optional job queue (OJQ)
//!   (Algorithm 1);
//! * optional jobs are only dispatched while they can still finish by
//!   their deadline, otherwise they are abandoned ("O11 will not be
//!   invoked at all", Section III); within the OJQ, less flexible jobs
//!   (smaller flexibility degree at release) run first (footnote 1);
//! * sibling cancellation: the instant any copy of a mandatory job
//!   completes fault-free, the other copy is canceled (line 3 of
//!   Algorithm 1);
//! * transient faults are detected at the end of each execution; a
//!   faulted copy consumed its full time but produced nothing;
//! * at most one permanent fault kills a processor; the survivor takes
//!   over (future mandatory jobs run as single copies on it);
//! * outcome bookkeeping: per-task execution histories (for the dynamic
//!   flexibility-degree classification) and sliding (m,k)-monitors (to
//!   report violations);
//! * DPD energy accounting: busy intervals cost `p_active`; each maximal
//!   idle interval longer than `T_be` is charged the break-even shutdown
//!   cost, shorter ones idle (Section II-A).
//!
//! What a [`Policy`] contributes is only the per-release decision: is the
//! job mandatory (and where do main/backup go, with what backup delay) or
//! optional (selected on which processor, or skipped).
//!
//! ## Sessions and throughput
//!
//! Every experiment in the repo bottoms out in millions of calls into
//! this module, so the inner loop is engineered to touch the heap only
//! when a run grows past everything seen before: all per-run state
//! (copies, job entries, task states, the ready/open index lists, and
//! the trace buffers) lives in a reusable [`SimWorkspace`] arena.
//! [`simulate_in`] runs one simulation inside a caller-owned workspace,
//! so a sweep that simulates thousands of task sets reuses the same
//! capacity throughout; [`simulate`] is the convenience wrapper that
//! creates a throwaway workspace per call. With `record_trace = false`
//! the steady-state event loop performs **zero** allocations per event.
//!
//! Time advances on a pre-sized *event calendar* (a workspace-owned
//! binary min-heap of typed entries — task releases, postponed copy
//! releases, deadlines, running-copy completions, and the permanent
//! fault) with lazy invalidation: entries are never removed when state
//! changes; stale ones are discarded as they surface at the top. See
//! [`EventCalendar`] and DESIGN.md §3 for the full mechanism.
//!
//! ## Observability
//!
//! The engine optionally narrates itself through a
//! [`Recorder`](mkss_obs::Recorder) attached to the workspace
//! ([`SimWorkspace::set_recorder`] / [`SimWorkspace::with_recorder`]):
//! job releases and resolutions, mandatory/optional classification,
//! backup release and postponement (`r̃ = r + θ`), backup cancellation,
//! fault injection and recovery, and the (m,k) distance-to-violation at
//! each resolution. The recorder lives on the workspace rather than on
//! [`SimConfig`] because the config stays `Copy + PartialEq +
//! Serialize`, which a trait-object handle cannot be. Recorders only
//! observe — they never feed back into the run — so a recorder-on
//! report is byte-identical to a recorder-off one, and with no recorder
//! attached each emit site costs a single branch (the zero-allocation
//! contract above is unchanged).

use mkss_core::history::{JobOutcome, MkHistory};
use mkss_core::job::{CopyKind, Job, JobClass};
use mkss_core::mk::MkMonitor;
use mkss_core::task::{TaskId, TaskSet};
use mkss_core::time::Time;
use mkss_obs::{CopyRole, CounterId, EngineEvent, HistogramId, Recorder, TraceKind, PROC_NONE};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

use crate::fault::{FaultConfig, TransientSampler};
use crate::policy::{Policy, ReleaseCtx, ReleaseDecision};
use crate::power::{EnergyBreakdown, PowerModel};
use crate::proc::ProcId;
use crate::report::{JobStats, MkViolation, SimReport};
use crate::trace::{JobResolution, Segment, SegmentEnd, Trace};

/// Configuration of one simulation run.
///
/// Construct with [`SimConfig::new`] / [`SimConfig::active_only`] for the
/// common cases, or with the builder for anything else:
///
/// ```
/// use mkss_core::time::Time;
/// use mkss_sim::engine::SimConfig;
///
/// let config = SimConfig::builder()
///     .horizon(Time::from_ms(500))
///     .record_trace(true)
///     .build();
/// assert_eq!(config.horizon, Time::from_ms(500));
/// assert!(config.record_trace);
/// ```
///
/// The struct is `#[non_exhaustive]`: fields stay readable and
/// assignable, but downstream struct literals must go through the
/// builder so future knobs are not breaking changes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct SimConfig {
    /// Simulated span `[0, horizon)`. Only jobs whose absolute deadline
    /// lies within the horizon are released, so every released job is
    /// fully accounted for.
    pub horizon: Time,
    /// Power model for energy accounting.
    pub power: PowerModel,
    /// Fault injection.
    pub faults: FaultConfig,
    /// Whether to keep the full schedule trace in the report.
    pub record_trace: bool,
}

impl SimConfig {
    /// Fault-free configuration with the default power model.
    pub fn new(horizon: Time) -> Self {
        SimConfig {
            horizon,
            power: PowerModel::default(),
            faults: FaultConfig::none(),
            record_trace: false,
        }
    }

    /// Same, but counting only active energy (the motivating examples'
    /// accounting) and recording the trace.
    pub fn active_only(horizon: Time) -> Self {
        SimConfig {
            horizon,
            power: PowerModel::active_only(),
            faults: FaultConfig::none(),
            record_trace: true,
        }
    }

    /// Starts a builder with the defaults of [`SimConfig::new`] and a
    /// zero horizon; set the horizon before [`SimConfigBuilder::build`].
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder {
            config: SimConfig::new(Time::ZERO),
        }
    }
}

/// Builder for [`SimConfig`]; see [`SimConfig::builder`].
#[derive(Debug, Clone)]
#[must_use = "a builder does nothing until `.build()` is called"]
pub struct SimConfigBuilder {
    config: SimConfig,
}

impl SimConfigBuilder {
    /// Sets the simulated span `[0, horizon)`.
    pub fn horizon(mut self, horizon: Time) -> Self {
        self.config.horizon = horizon;
        self
    }

    /// Sets the horizon in whole milliseconds.
    pub fn horizon_ms(self, ms: u64) -> Self {
        self.horizon(Time::from_ms(ms))
    }

    /// Sets the power model for energy accounting.
    pub fn power(mut self, power: PowerModel) -> Self {
        self.config.power = power;
        self
    }

    /// Switches to active-only energy accounting *and* enables trace
    /// recording, mirroring [`SimConfig::active_only`] (the motivating
    /// examples' configuration).
    pub fn active_only(mut self) -> Self {
        self.config.power = PowerModel::active_only();
        self.config.record_trace = true;
        self
    }

    /// Sets the fault-injection configuration.
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.config.faults = faults;
        self
    }

    /// Sets whether the report keeps the full schedule trace.
    pub fn record_trace(mut self, record_trace: bool) -> Self {
        self.config.record_trace = record_trace;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> SimConfig {
        self.config
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CopyState {
    /// Waiting for its (possibly postponed) release, ready, or running.
    Pending,
    /// Finished executing; `faulted` if a transient fault hit it.
    Done { faulted: bool },
    /// Canceled because the sibling copy succeeded.
    Canceled,
    /// Optional copy abandoned (could no longer meet its deadline), or a
    /// copy whose job already missed.
    Abandoned,
    /// Destroyed by the permanent fault.
    Lost,
}

#[derive(Debug)]
struct CopyInst {
    job: Job,
    kind: CopyKind,
    proc: ProcId,
    release: Time,
    remaining: Time,
    /// Total execution time of this copy (its WCET stretched by the DVS
    /// speed); used for transient-fault exposure.
    exec_total: Time,
    /// DVS speed in permil of full speed (1000 = full).
    speed_permil: u32,
    state: CopyState,
    sibling: Option<usize>,
    /// Flexibility degree of the job at release (OJQ ordering key;
    /// mandatory copies store 0 and never use it).
    fd_at_release: u32,
    /// Set while this copy occupies a processor (segment start).
    running_since: Option<Time>,
    job_entry: usize,
    /// Position of this copy in `SimWorkspace::active_copies` while it is
    /// `Pending` (O(1) swap-remove on the state transition out).
    active_slot: usize,
}

/// A released job has at most two copies (main + backup); storing their
/// indices inline keeps [`JobEntry`] allocation-free.
#[derive(Debug)]
struct JobEntry {
    job: Job,
    resolved: bool,
    copies: [usize; 2],
    copy_count: u8,
    /// Position of this job in `SimWorkspace::open_jobs` while it is
    /// unresolved (O(1) swap-remove at resolution).
    open_slot: usize,
}

#[derive(Debug)]
struct TaskState {
    next_index: u64,
    history: MkHistory,
    monitor: MkMonitor,
    exhausted: bool,
}

/// What a calendar entry announces. Each variant carries enough identity
/// to re-validate itself against the live engine state ([lazy
/// invalidation](EventCalendar)), so no entry ever needs to be removed
/// from the middle of the heap when plans change.
///
/// Running-copy completions and job deadlines are deliberately *not*
/// calendar entries — the calendar holds the event classes whose live
/// instances the engine does not already index:
///
/// * with at most one running copy per processor, `clock + remaining`
///   read straight off the `running` array is already the completion
///   time, and keeping completions out of the heap spares it the most
///   frequent (and, under preemption, most frequently restranded)
///   entry class;
/// * unresolved deadlines are exactly the `open_jobs` list — a handful
///   of entries, bounded by the jobs in flight — and most jobs resolve
///   well before their deadline, so per-job entries would roughly
///   double heap traffic only to go stale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// The next release of `task`; live while `next_index == index` and
    /// the task is not exhausted. Every non-exhausted task keeps exactly
    /// one live entry: `process_releases` pushes the successor whenever
    /// it advances `next_index`.
    TaskRelease { task: TaskId, index: u64 },
    /// The future (postponed) release of an already-created copy — the
    /// backup promotion `r̃ = r + θ`. Live while the copy is `Pending`
    /// and its release is still ahead of the clock.
    CopyRelease { copy: usize },
    /// The configured permanent-fault injection; live until applied.
    Fault,
}

/// One scheduled occurrence in the event calendar: the fire time plus the
/// [`EventKind`] packed into one word (2-bit variant tag in the low bits,
/// payload above), keeping the entry at 16 bytes so sift operations move
/// half the memory a naive `(Time, EventKind)` pair would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CalendarEntry {
    time: Time,
    packed: u64,
}

const TAG_TASK_RELEASE: u64 = 0;
const TAG_COPY_RELEASE: u64 = 1;
const TAG_FAULT: u64 = 3;

impl CalendarEntry {
    fn new(time: Time, kind: EventKind) -> Self {
        let packed = match kind {
            EventKind::TaskRelease { task, index } => {
                // 16 bits of task id and 46 of job index are far beyond
                // any enumerable horizon.
                debug_assert!(task.0 < (1 << 16) && index < (1 << 46));
                (index << 18) | ((task.0 as u64) << 2) | TAG_TASK_RELEASE
            }
            EventKind::CopyRelease { copy } => ((copy as u64) << 2) | TAG_COPY_RELEASE,
            EventKind::Fault => TAG_FAULT,
        };
        CalendarEntry { time, packed }
    }

    fn kind(self) -> EventKind {
        match self.packed & 0b11 {
            TAG_TASK_RELEASE => EventKind::TaskRelease {
                task: TaskId(((self.packed >> 2) & 0xFFFF) as usize),
                index: self.packed >> 18,
            },
            TAG_COPY_RELEASE => EventKind::CopyRelease {
                copy: (self.packed >> 2) as usize,
            },
            _ => EventKind::Fault,
        }
    }
}

/// Pre-sized binary min-heap of timed events, keyed by [`Time`].
///
/// Cancellations (a canceled backup, a preempted copy, a resolved job)
/// never perform heap surgery: the entry simply goes *stale* and is
/// discarded when it reaches the top ([`Engine::entry_live`]). Staleness
/// is monotone — arena indices are never reused within a run and every
/// state transition an entry checks is one-way — so a discarded entry
/// can never become live again, and no generation counters are needed.
///
/// The heap is hand-rolled over a workspace-owned `Vec` (rather than
/// `std::collections::BinaryHeap`) so `begin_run` can clear and pre-size
/// it while retaining capacity: pushes inside the hot-path region then
/// stay allocation-free in steady state. Layout depends only on the
/// push/pop sequence, never on capacity, so fresh and reused workspaces
/// behave identically.
#[derive(Debug, Default)]
struct EventCalendar {
    heap: Vec<CalendarEntry>,
}

impl EventCalendar {
    fn clear(&mut self) {
        self.heap.clear();
    }

    fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    fn push(&mut self, time: Time, kind: EventKind) {
        self.heap.push(CalendarEntry::new(time, kind));
        self.sift_up(self.heap.len() - 1);
    }

    fn peek(&self) -> Option<CalendarEntry> {
        self.heap.first().copied()
    }

    fn pop(&mut self) -> Option<CalendarEntry> {
        let last = self.heap.len().checked_sub(1)?;
        self.heap.swap(0, last);
        let top = self.heap.pop();
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        top
    }

    // Both sifts move the displaced entry into a hole instead of
    // swapping pairwise — same comparison sequence (so the exact same
    // final layout), half the writes.

    fn sift_up(&mut self, mut i: usize) {
        let item = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[parent].time <= item.time {
                break;
            }
            self.heap[i] = self.heap[parent];
            i = parent;
        }
        self.heap[i] = item;
    }

    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        let item = self.heap[i];
        loop {
            let left = 2 * i + 1;
            if left >= len {
                break;
            }
            let right = left + 1;
            let child = if right < len && self.heap[right].time < self.heap[left].time {
                right
            } else {
                left
            };
            if item.time <= self.heap[child].time {
                break;
            }
            self.heap[i] = self.heap[child];
            i = child;
        }
        self.heap[i] = item;
    }
}

/// Reusable per-run state of the simulator: an arena for copies, job
/// entries, task states, the active/open index lists, scratch buffers,
/// and the trace.
///
/// A workspace owns no results — every [`simulate_in`] call resets it —
/// but it *retains capacity*, so back-to-back simulations stop paying
/// for allocation and the hot loop runs heap-free in steady state (with
/// `record_trace = false`). One workspace serves any number of task
/// sets, policies, and configurations, in any order:
///
/// ```
/// use mkss_core::prelude::*;
/// use mkss_sim::prelude::*;
/// # use mkss_sim::policy::{Policy, ReleaseCtx, ReleaseDecision};
/// # struct Dup;
/// # impl Policy for Dup {
/// #     fn name(&self) -> &str { "dup" }
/// #     fn on_release(&mut self, _ctx: &ReleaseCtx<'_>) -> ReleaseDecision {
/// #         ReleaseDecision::Mandatory {
/// #             main_proc: ProcId::PRIMARY,
/// #             backup_delay: Time::ZERO,
/// #         }
/// #     }
/// # }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ts = TaskSet::new(vec![Task::from_ms(10, 10, 2, 1, 2)?])?;
/// let config = SimConfig::builder().horizon_ms(100).build();
/// let mut ws = SimWorkspace::new();
/// for _ in 0..3 {
///     let report = simulate_in(&mut ws, &ts, &mut Dup, &config);
///     assert!(report.mk_assured());
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct SimWorkspace {
    copies: Vec<CopyInst>,
    jobs: Vec<JobEntry>,
    tasks: Vec<TaskState>,
    /// Indices of copies that may still need CPU time (lazily pruned of
    /// terminal-state copies to keep per-event scans O(active)).
    active_copies: Vec<usize>,
    /// Indices of jobs not yet resolved (lazily pruned).
    open_jobs: Vec<usize>,
    /// Scratch for deadline resolution (kept for its capacity).
    due_scratch: Vec<usize>,
    /// Jobs whose deadline entry fired at the chosen next event time;
    /// drained (sorted into release order) by the following iteration's
    /// resolution phase. At most one job per task can share an instant,
    /// so `begin_run` pre-sizes it to the task count.
    deadline_scratch: Vec<usize>,
    /// The event calendar driving time advance; cleared and pre-sized at
    /// checkout, capacity retained across runs.
    calendar: EventCalendar,
    trace: Trace,
    /// Merged busy intervals per processor, in time order.
    busy: [Vec<(Time, Time)>; 2],
    /// Optional event sink; survives `begin_run` so one attachment
    /// covers every simulation run through this workspace.
    recorder: RecorderSlot,
}

/// Wrapper keeping `SimWorkspace`'s `derive(Debug, Default)` while
/// holding a non-`Debug` trait object.
#[derive(Default)]
struct RecorderSlot(Option<Arc<dyn Recorder>>);

impl std::fmt::Debug for RecorderSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "Recorder(attached)"
        } else {
            "Recorder(none)"
        })
    }
}

impl SimWorkspace {
    /// Creates an empty workspace. Capacity grows on first use and is
    /// retained across runs.
    pub fn new() -> Self {
        SimWorkspace::default()
    }

    /// Creates an empty workspace with `recorder` already attached.
    pub fn with_recorder(recorder: Arc<dyn Recorder>) -> Self {
        let mut ws = SimWorkspace::default();
        ws.set_recorder(Some(recorder));
        ws
    }

    /// Attaches (or with `None`, detaches) the event sink that every
    /// subsequent [`simulate_in`] call through this workspace reports to.
    ///
    /// Recorders observe the run without influencing it: the produced
    /// [`SimReport`] is byte-identical with and without one attached.
    pub fn set_recorder(&mut self, recorder: Option<Arc<dyn Recorder>>) {
        self.recorder = RecorderSlot(recorder);
    }

    /// True when an event sink is attached.
    pub fn has_recorder(&self) -> bool {
        self.recorder.0.is_some()
    }

    /// Clears per-run state, keeping every allocation. Task states are
    /// reset in place when the task-set shape matches the previous run.
    fn begin_run(&mut self, ts: &TaskSet) {
        self.copies.clear();
        self.jobs.clear();
        self.active_copies.clear();
        self.open_jobs.clear();
        self.due_scratch.clear();
        self.deadline_scratch.clear();
        self.deadline_scratch.reserve(ts.len());
        self.calendar.clear();
        // Pre-size the calendar at checkout: one release entry per task,
        // plus copy-release entries for the window of simultaneously
        // pending backups, plus the fault. Steady-state residue is
        // bounded by the same window (stale entries die as the clock
        // passes them), and capacity is retained across runs, so the hot
        // loop itself never grows the heap.
        self.calendar.reserve(4 * ts.len() + 8);
        self.trace.segments.clear();
        self.trace.resolutions.clear();
        for intervals in &mut self.busy {
            intervals.clear();
        }
        let reusable = self.tasks.len() == ts.len()
            && self
                .tasks
                .iter()
                .zip(ts.iter())
                .all(|(state, (_, task))| state.history.constraint() == task.mk());
        if reusable {
            for state in &mut self.tasks {
                state.next_index = 1;
                state.history.reset();
                state.monitor.reset();
                state.exhausted = false;
            }
        } else {
            self.tasks.clear();
            self.tasks.extend(ts.iter().map(|(_, task)| TaskState {
                next_index: 1,
                history: MkHistory::new(task.mk()),
                monitor: MkMonitor::new(task.mk()),
                exhausted: false,
            }));
        }
    }
}

/// Runs one simulation of `policy` on `ts`.
///
/// The run is fully deterministic given `config` (transient faults use a
/// seeded RNG). This is a thin wrapper over [`simulate_in`] with a
/// throwaway [`SimWorkspace`]; batch callers should hold a workspace and
/// call [`simulate_in`] directly to amortize the allocations.
///
/// # Examples
///
/// ```
/// use mkss_core::prelude::*;
/// use mkss_sim::engine::{simulate, SimConfig};
/// use mkss_sim::policy::{Policy, ReleaseCtx, ReleaseDecision};
/// use mkss_sim::proc::ProcId;
///
/// /// Every job mandatory, mains on the primary, backups concurrent.
/// struct Naive;
/// impl Policy for Naive {
///     fn name(&self) -> &str { "naive" }
///     fn on_release(&mut self, _ctx: &ReleaseCtx<'_>) -> ReleaseDecision {
///         ReleaseDecision::Mandatory {
///             main_proc: ProcId::PRIMARY,
///             backup_delay: Time::ZERO,
///         }
///     }
/// }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ts = TaskSet::new(vec![Task::from_ms(10, 10, 2, 1, 2)?])?;
/// let report = simulate(&ts, &mut Naive, &SimConfig::active_only(Time::from_ms(20)));
/// assert!(report.mk_assured());
/// // Two jobs, each 2 ms on both processors… minus the cancellation:
/// // main and backup start together, so both run to completion.
/// assert!((report.active_energy().units() - 8.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn simulate<P: Policy + ?Sized>(ts: &TaskSet, policy: &mut P, config: &SimConfig) -> SimReport {
    let mut ws = SimWorkspace::new();
    simulate_in(&mut ws, ts, policy, config)
}

/// Runs one simulation of `policy` on `ts` inside a caller-owned
/// [`SimWorkspace`], reusing its capacity.
///
/// The report is **bit-identical** to what [`simulate`] produces for the
/// same inputs, regardless of what the workspace was previously used
/// for; reuse changes only where the intermediate state lives. See
/// [`SimWorkspace`] for an example.
pub fn simulate_in<P: Policy + ?Sized>(
    ws: &mut SimWorkspace,
    ts: &TaskSet,
    policy: &mut P,
    config: &SimConfig,
) -> SimReport {
    ws.begin_run(ts);
    let engine = Engine {
        ts,
        config,
        ws,
        clock: Time::ZERO,
        running: [None, None],
        alive: [true, true],
        death_time: [None, None],
        fault_applied: false,
        sampler: TransientSampler::new(&config.faults),
        active_energy: [crate::power::Energy::ZERO; 2],
        stats: JobStats::default(),
        violations: Vec::new(),
        release_mask: u64::MAX,
        dispatch_dirty: [true; 2],
        opt_expiry: [Time::ZERO; 2],
        time_advance: TimeAdvance::Calendar,
    };
    engine.run(policy)
}

/// How [`Engine::run`] finds the next event time. `Calendar` is the
/// production path; `Scan` re-derives it with linear scans over all
/// state (the pre-calendar engine, kept as a reference oracle — it also
/// cross-checks the calendar via a `debug_assert_eq!` on every step of
/// every debug-build run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TimeAdvance {
    Calendar,
    #[cfg(test)]
    Scan,
}

struct Engine<'a, 'w> {
    ts: &'a TaskSet,
    config: &'a SimConfig,
    ws: &'w mut SimWorkspace,
    clock: Time,
    running: [Option<usize>; 2],
    alive: [bool; 2],
    death_time: [Option<Time>; 2],
    fault_applied: bool,
    sampler: TransientSampler,
    /// Active energy accumulated per processor (DVS-aware).
    active_energy: [crate::power::Energy; 2],
    stats: JobStats,
    violations: Vec<MkViolation>,
    /// Tasks whose release entry fired at the chosen next event time,
    /// as a bitset over task ids (bit 63 is shared by every task with
    /// id ≥ 63). `u64::MAX` means "consider every task" — the first
    /// iteration and the scan oracle use it. The following loop
    /// iteration processes releases only for flagged tasks; processing
    /// a task with nothing due is a no-op, so the mask only ever
    /// over-approximates.
    release_mask: u64,
    /// Copies on each processor changed readiness since the last
    /// dispatch there; cleared once the processor re-picks. While the
    /// flag is off the previous pick is provably still the pick, so
    /// dispatch skips the priority scan entirely.
    dispatch_dirty: [bool; 2],
    /// Lower bound on the earliest time an admitted optional copy on
    /// each processor can become infeasible (`deadline - remaining`,
    /// which only grows as the copy runs). The abandonment scan runs
    /// only once the clock reaches the bound, and recomputes it from
    /// the survivors; `Time::MAX` when no ready optionals exist.
    opt_expiry: [Time; 2],
    time_advance: TimeAdvance,
}

/// Map the engine's copy kind onto the trace catalog's copy role.
#[inline]
const fn copy_role(kind: CopyKind) -> CopyRole {
    match kind {
        CopyKind::Main => CopyRole::Main,
        CopyKind::Backup => CopyRole::Backup,
        CopyKind::Optional => CopyRole::Optional,
    }
}

impl<'a, 'w> Engine<'a, 'w> {
    /// Bump a counter on the attached recorder, if any. One predictable
    /// branch when detached — cheap enough for every emit site.
    #[inline]
    fn emit(&self, counter: CounterId) {
        if let Some(recorder) = &self.ws.recorder.0 {
            recorder.incr(counter, 1);
        }
    }

    /// Record a histogram sample on the attached recorder, if any.
    #[inline]
    fn emit_observe(&self, histogram: HistogramId, value: u64) {
        if let Some(recorder) = &self.ws.recorder.0 {
            recorder.observe(histogram, value);
        }
    }

    /// Hand one structured event to the attached recorder, if any — the
    /// flight-recorder feed. The event is a stack-built `Copy` value
    /// constructed inside the gate, so the detached cost stays one
    /// predictable branch and zero allocations.
    #[inline]
    #[allow(clippy::too_many_arguments)] // internal: mirrors EngineEvent's field list
    fn emit_event(
        &self,
        at: Time,
        kind: TraceKind,
        task: u32,
        job: u32,
        copy: CopyRole,
        proc: u8,
        payload: u64,
    ) {
        if let Some(recorder) = &self.ws.recorder.0 {
            recorder.event(&EngineEvent {
                at_us: at.ticks(),
                kind,
                task,
                job,
                copy,
                proc,
                payload,
            });
        }
    }

    /// Narrate one backup-copy release: postponed (`r̃ = r + θ`, θ > 0)
    /// releases additionally sample θ into the delay histogram. The
    /// structured event carries the *effective* release time `r + θ`
    /// with θ (in ticks) as payload.
    #[inline]
    fn emit_backup_release(
        &self,
        backup_delay: Time,
        task: u32,
        job: u32,
        proc: ProcId,
        release: Time,
    ) {
        self.emit(CounterId::BackupsReleased);
        if !backup_delay.is_zero() {
            self.emit(CounterId::BackupsPostponed);
            // Integer div_ceil on ticks: exact for every delay, and no
            // float math inside the recorder gate.
            self.emit_observe(HistogramId::BackupDelayMs, backup_delay.as_ms_ceil());
        }
        self.emit_event(
            release + backup_delay,
            TraceKind::BackupRelease,
            task,
            job,
            CopyRole::Backup,
            proc.index() as u8,
            backup_delay.ticks(),
        );
    }

    // mkss-lint: hot-path begin
    //
    // Everything from here through `close_segment` is the steady-state
    // event loop: with `record_trace = false` it performs zero
    // allocations per event (PR 2's contract, pinned at runtime by
    // crates/sim/tests/zero_alloc.rs and at review time by the
    // `hot-path-alloc` lint rule). Pushes into workspace-owned buffers
    // are fine — they only allocate past retained capacity — but no
    // fresh allocating constructor may appear in this region.
    fn run<P: Policy + ?Sized>(mut self, policy: &mut P) -> SimReport {
        policy.init(self.ts);
        self.seed_calendar();
        loop {
            self.apply_fault_if_due();
            match self.time_advance {
                TimeAdvance::Calendar => {
                    // Fired calendar entries name exactly the jobs and
                    // tasks each phase must look at; everything else is
                    // provably a no-op and skipped.
                    if !self.ws.deadline_scratch.is_empty() {
                        self.resolve_fired_deadlines();
                    }
                    if self.release_mask != 0 {
                        self.process_releases(policy);
                    }
                }
                #[cfg(test)]
                TimeAdvance::Scan => {
                    // The reference path re-runs every phase against all
                    // state on every iteration, exactly like the
                    // pre-calendar engine.
                    self.resolve_due_deadlines();
                    self.release_mask = u64::MAX;
                    self.process_releases(policy);
                    self.dispatch_dirty = [true; 2];
                    self.opt_expiry = [Time::ZERO; 2];
                }
            }
            self.dispatch();
            let next = match self.time_advance {
                TimeAdvance::Calendar => self.next_event_time(),
                #[cfg(test)]
                TimeAdvance::Scan => self.next_event_time_scan(),
            };
            if let Some(next) = next {
                if next <= self.clock {
                    // A zero-length step means an event source is stuck
                    // at or before the clock; advancing would spin
                    // forever. Hard invariant in every build: flag the
                    // stall and end the run (unresolved jobs miss at the
                    // horizon below) instead of silently spinning.
                    self.emit(CounterId::EngineStalls);
                    self.emit_event(
                        self.clock,
                        TraceKind::EngineStall,
                        0,
                        0,
                        CopyRole::None,
                        PROC_NONE,
                        0,
                    );
                    break;
                }
            }
            debug_assert_eq!(
                next,
                self.next_event_time_scan(),
                "calendar/scan divergence at {}",
                self.clock
            );
            let Some(next) = next else {
                break;
            };
            self.advance_to(next);
            if self.clock >= self.config.horizon {
                break;
            }
        }
        // Everything released has deadline ≤ horizon; resolve stragglers.
        self.clock = self.config.horizon;
        self.resolve_due_deadlines();
        self.finish(policy.name())
    }

    /// Seeds the run's calendar: the permanent fault (if configured) and
    /// the first release of every task. Everything else registers as the
    /// state evolves — releases chain to their successor and postponed
    /// copies enroll at creation (completions are read off the `running`
    /// array, deadlines off the open-job list, not the calendar).
    fn seed_calendar(&mut self) {
        if let Some(pf) = self.config.faults.permanent {
            self.ws.calendar.push(pf.at, EventKind::Fault);
        }
        for (id, task) in self.ts.iter() {
            let index = self.ws.tasks[id.0].next_index;
            self.ws.calendar.push(
                task.release_of(index),
                EventKind::TaskRelease { task: id, index },
            );
        }
    }

    /// Enrolls a freshly created copy in the active list, recording its
    /// slot for the O(1) removal in [`Engine::deactivate_copy`]. Marks
    /// the processor for re-dispatch, and folds an admitted optional's
    /// infeasibility time into the abandonment bound.
    fn activate_copy(&mut self, c: usize) {
        let copy = &mut self.ws.copies[c];
        copy.active_slot = self.ws.active_copies.len();
        let proc = copy.proc.index();
        self.dispatch_dirty[proc] = true;
        if copy.kind == CopyKind::Optional {
            let expiry = copy.job.latest_start(copy.remaining);
            self.opt_expiry[proc] = self.opt_expiry[proc].min(expiry);
        }
        self.ws.active_copies.push(c);
    }

    /// Removes a copy from the active list the moment it leaves
    /// `Pending`, so the dispatch scans stay O(live copies) without a
    /// per-event prune pass. The list is unordered, which no consumer
    /// relies on (dispatch picks by unique priority keys).
    fn deactivate_copy(&mut self, c: usize) {
        self.dispatch_dirty[self.ws.copies[c].proc.index()] = true;
        let slot = self.ws.copies[c].active_slot;
        debug_assert_eq!(
            self.ws.active_copies.get(slot).copied(),
            Some(c),
            "active slot out of sync"
        );
        self.ws.active_copies.swap_remove(slot);
        if let Some(&moved) = self.ws.active_copies.get(slot) {
            self.ws.copies[moved].active_slot = slot;
        }
    }

    /// Same as [`Engine::deactivate_copy`] for the open-job list, at
    /// resolution.
    fn deactivate_job(&mut self, j: usize) {
        let slot = self.ws.jobs[j].open_slot;
        debug_assert_eq!(
            self.ws.open_jobs.get(slot).copied(),
            Some(j),
            "open slot out of sync"
        );
        self.ws.open_jobs.swap_remove(slot);
        if let Some(&moved) = self.ws.open_jobs.get(slot) {
            self.ws.jobs[moved].open_slot = slot;
        }
    }

    // ----- fault handling ---------------------------------------------

    fn apply_fault_if_due(&mut self) {
        if self.fault_applied {
            return;
        }
        let Some(pf) = self.config.faults.permanent else {
            self.fault_applied = true;
            return;
        };
        if pf.at > self.clock {
            return;
        }
        self.fault_applied = true;
        self.emit(CounterId::FaultsInjected);
        self.emit(CounterId::PermanentFaults);
        self.dispatch_dirty = [true; 2];
        let p = pf.proc;
        self.emit_event(
            self.clock,
            TraceKind::PermanentFault,
            0,
            0,
            CopyRole::None,
            p.index() as u8,
            0,
        );
        self.alive[p.index()] = false;
        self.death_time[p.index()] = Some(self.clock);
        if let Some(c) = self.running[p.index()].take() {
            self.close_segment(c, SegmentEnd::Lost);
        }
        // Deactivation swap-removes the current slot, pulling an
        // unexamined entry into it — advance only on keep.
        let mut i = 0;
        while i < self.ws.active_copies.len() {
            let idx = self.ws.active_copies[i];
            debug_assert_eq!(self.ws.copies[idx].state, CopyState::Pending);
            if self.ws.copies[idx].proc == p {
                self.ws.copies[idx].state = CopyState::Lost;
                self.stats.copies_lost += 1;
                self.emit(CounterId::CopiesLost);
                let copy = &self.ws.copies[idx];
                self.emit_event(
                    self.clock,
                    TraceKind::CopyLost,
                    copy.job.id.task.0 as u32,
                    copy.job.id.index as u32,
                    copy_role(copy.kind),
                    p.index() as u8,
                    0,
                );
                self.deactivate_copy(idx);
            } else {
                i += 1;
            }
        }
    }

    // ----- deadline resolution ----------------------------------------

    fn resolve_due_deadlines(&mut self) {
        let mut due = std::mem::take(&mut self.ws.due_scratch);
        due.clear();
        for &j in &self.ws.open_jobs {
            let entry = &self.ws.jobs[j];
            if !entry.resolved && entry.job.deadline <= self.clock {
                due.push(j);
            }
        }
        // `open_jobs` is unordered (swap-remove pruning); restore release
        // order so resolutions land in the same order as the ordered-scan
        // engine did — outcome histories, violations, and the trace all
        // observe it.
        due.sort_unstable();
        for &j in &due {
            let deadline = self.ws.jobs[j].job.deadline;
            self.resolve(j, JobOutcome::Missed, deadline);
        }
        self.ws.due_scratch = due;
    }

    /// Calendar-driven counterpart of [`Engine::resolve_due_deadlines`]:
    /// resolves exactly the jobs whose deadline entry fired at the
    /// current clock, in release (arena) order. A job that completed in
    /// the advance between fire and here is already resolved and skipped
    /// — the same outcome the full scan reaches without the scan.
    fn resolve_fired_deadlines(&mut self) {
        let mut due = std::mem::take(&mut self.ws.deadline_scratch);
        due.sort_unstable();
        for &j in &due {
            if self.ws.jobs[j].resolved {
                continue;
            }
            let deadline = self.ws.jobs[j].job.deadline;
            debug_assert!(deadline <= self.clock, "deadline fired early");
            self.resolve(j, JobOutcome::Missed, deadline);
        }
        due.clear();
        self.ws.deadline_scratch = due;
    }

    fn resolve(&mut self, job_idx: usize, outcome: JobOutcome, at: Time) {
        debug_assert!(!self.ws.jobs[job_idx].resolved);
        self.ws.jobs[job_idx].resolved = true;
        self.deactivate_job(job_idx);
        let job = self.ws.jobs[job_idx].job;
        let tstate = &mut self.ws.tasks[job.id.task.0];
        tstate.history.record(outcome);
        let was_violated = tstate.monitor.violated();
        tstate.monitor.record(outcome.is_met());
        let now_violated = tstate.monitor.violated();
        let distance = tstate.monitor.distance_to_violation();
        let mk = tstate.monitor.constraint();
        self.emit_observe(HistogramId::MkDistance, u64::from(distance));
        let newly_violated = now_violated && !was_violated;
        if newly_violated {
            self.violations.push(MkViolation {
                task: job.id.task,
                job_index: job.id.index,
            });
            self.emit(CounterId::MkViolations);
        }
        match outcome {
            JobOutcome::Met => {
                self.stats.met += 1;
                self.emit(CounterId::JobsMet);
                self.emit_event(
                    at,
                    TraceKind::JobMet,
                    job.id.task.0 as u32,
                    job.id.index as u32,
                    CopyRole::None,
                    PROC_NONE,
                    u64::from(distance),
                );
            }
            JobOutcome::Missed => {
                self.stats.missed += 1;
                self.emit(CounterId::JobsMissed);
                self.emit_event(
                    at,
                    TraceKind::JobMissed,
                    job.id.task.0 as u32,
                    job.id.index as u32,
                    CopyRole::None,
                    PROC_NONE,
                    u64::from(distance),
                );
            }
        }
        if newly_violated {
            // The resolution event precedes this one in the capture
            // stream, so forensics can walk backwards from here and find
            // the tipping job first. Payload packs the constraint.
            self.emit_event(
                at,
                TraceKind::MkViolation,
                job.id.task.0 as u32,
                job.id.index as u32,
                CopyRole::None,
                PROC_NONE,
                (u64::from(mk.m()) << 32) | u64::from(mk.k()),
            );
        }
        if self.config.record_trace {
            self.ws.trace.resolutions.push(JobResolution {
                job: job.id,
                outcome,
                at,
            });
        }
        if outcome == JobOutcome::Missed {
            // A missed job's remaining copies are useless; stop them.
            let copies = self.ws.jobs[job_idx].copies;
            let count = self.ws.jobs[job_idx].copy_count as usize;
            for &c in &copies[..count] {
                if self.ws.copies[c].state == CopyState::Pending {
                    self.stop_copy(c, CopyState::Abandoned, SegmentEnd::Canceled);
                }
            }
        }
    }

    /// Takes a pending copy off its processor (closing any open segment)
    /// and puts it into a terminal state.
    fn stop_copy(&mut self, c: usize, state: CopyState, ended: SegmentEnd) {
        debug_assert_eq!(self.ws.copies[c].state, CopyState::Pending);
        let proc = self.ws.copies[c].proc;
        if self.running[proc.index()] == Some(c) {
            self.running[proc.index()] = None;
            self.close_segment(c, ended);
        }
        self.ws.copies[c].state = state;
        self.deactivate_copy(c);
    }

    // ----- releases ----------------------------------------------------

    fn process_releases<P: Policy + ?Sized>(&mut self, policy: &mut P) {
        // Consume the fired-release mask; tasks without their bit are
        // provably not due (their release entry did not fire). Only the
        // set bits are visited — in ascending task order, exactly like a
        // full scan — except for the sentinel `u64::MAX` (first
        // iteration, scan oracle) and the shared overflow bit 63 (task
        // ids ≥ 63), which fall back to considering everyone in range.
        let mask = std::mem::take(&mut self.release_mask);
        if mask == u64::MAX {
            for id in self.ts.ids() {
                self.release_due_jobs_of(policy, id);
            }
            return;
        }
        let mut bits = mask & !(1u64 << 63);
        while bits != 0 {
            let id = TaskId(bits.trailing_zeros() as usize);
            bits &= bits - 1;
            self.release_due_jobs_of(policy, id);
        }
        if mask & (1u64 << 63) != 0 {
            for id in self.ts.ids().skip(63) {
                self.release_due_jobs_of(policy, id);
            }
        }
    }

    /// Releases every due job of one task, then chains the calendar to
    /// the task's successor release: the entry for any index consumed
    /// here fired (or will lazily drop), and every non-exhausted task
    /// must keep exactly one live entry.
    fn release_due_jobs_of<P: Policy + ?Sized>(&mut self, policy: &mut P, id: TaskId) {
        let task = self.ts.task(id);
        let start_index = self.ws.tasks[id.0].next_index;
        loop {
            let tstate = &self.ws.tasks[id.0];
            if tstate.exhausted {
                break;
            }
            let index = tstate.next_index;
            let release = task.release_of(index);
            if task.deadline_of(index) > self.config.horizon {
                self.ws.tasks[id.0].exhausted = true;
                break;
            }
            if release > self.clock {
                break;
            }
            self.ws.tasks[id.0].next_index += 1;
            self.release_job(policy, id, index, release);
        }
        let tstate = &self.ws.tasks[id.0];
        if !tstate.exhausted && tstate.next_index != start_index {
            let index = tstate.next_index;
            self.ws.calendar.push(
                task.release_of(index),
                EventKind::TaskRelease { task: id, index },
            );
        }
    }

    fn release_job<P: Policy + ?Sized>(
        &mut self,
        policy: &mut P,
        id: TaskId,
        index: u64,
        release: Time,
    ) {
        debug_assert_eq!(release, self.clock, "release processed late");
        let fd = self.ws.tasks[id.0].history.flexibility_degree();
        let decision = {
            let ctx = ReleaseCtx {
                task: id,
                job_index: index,
                now: self.clock,
                history: &self.ws.tasks[id.0].history,
                alive: self.alive,
            };
            policy.on_release(&ctx)
        };
        self.stats.released += 1;
        self.emit(CounterId::JobsReleased);

        let job_entry = self.ws.jobs.len();
        // Normalize the two mandatory forms.
        let decision = match decision {
            ReleaseDecision::Mandatory {
                main_proc,
                backup_delay,
            } => ReleaseDecision::MandatoryScaled {
                main_proc,
                backup_delay,
                main_speed_permil: 1000,
            },
            other => other,
        };
        // The normalization above is exhaustive for the plain-mandatory
        // form; the match below relies on never seeing it again.
        debug_assert!(
            !matches!(decision, ReleaseDecision::Mandatory { .. }),
            "Mandatory must be normalized to MandatoryScaled before dispatch"
        );
        match decision {
            ReleaseDecision::MandatoryScaled {
                main_proc,
                backup_delay,
                main_speed_permil,
            } => {
                assert!(
                    (1..=1000).contains(&main_speed_permil),
                    "main speed must be in 1..=1000 permil"
                );
                self.stats.mandatory += 1;
                self.emit(CounterId::MandatoryReleased);
                self.emit_event(
                    release,
                    TraceKind::MandatoryRelease,
                    id.0 as u32,
                    index as u32,
                    CopyRole::Main,
                    main_proc.index() as u8,
                    u64::from(main_speed_permil),
                );
                let job = Job::nth(id, self.ts.task(id), index, JobClass::Mandatory);
                let mut copies = [0usize; 2];
                let mut copy_count = 0u8;
                // Main execution time stretched by the DVS slowdown.
                let main_exec = Time::from_ticks(
                    (job.wcet.ticks() * 1000).div_ceil(u64::from(main_speed_permil)),
                );
                if self.alive[main_proc.index()] {
                    let main_idx = self.ws.copies.len();
                    self.ws.copies.push(CopyInst {
                        job,
                        kind: CopyKind::Main,
                        proc: main_proc,
                        release,
                        remaining: main_exec,
                        exec_total: main_exec,
                        speed_permil: main_speed_permil,
                        state: CopyState::Pending,
                        sibling: None,
                        fd_at_release: 0,
                        running_since: None,
                        job_entry,
                        active_slot: usize::MAX,
                    });
                    copies[copy_count as usize] = main_idx;
                    copy_count += 1;
                    let backup_proc = main_proc.other();
                    if self.alive[backup_proc.index()] {
                        let backup_idx = self.ws.copies.len();
                        let backup_release = release + backup_delay;
                        self.ws.copies.push(CopyInst {
                            job,
                            kind: CopyKind::Backup,
                            proc: backup_proc,
                            release: backup_release,
                            remaining: job.wcet,
                            exec_total: job.wcet,
                            speed_permil: 1000,
                            state: CopyState::Pending,
                            sibling: Some(main_idx),
                            fd_at_release: 0,
                            running_since: None,
                            job_entry,
                            active_slot: usize::MAX,
                        });
                        self.ws.copies[main_idx].sibling = Some(backup_idx);
                        copies[copy_count as usize] = backup_idx;
                        copy_count += 1;
                        if backup_release > self.clock {
                            self.ws
                                .calendar
                                .push(backup_release, EventKind::CopyRelease { copy: backup_idx });
                        }
                        self.emit_backup_release(
                            backup_delay,
                            id.0 as u32,
                            index as u32,
                            backup_proc,
                            release,
                        );
                    }
                } else {
                    // The main's processor is dead: host the job as its
                    // *backup* copy on the survivor, keeping the backup
                    // release delay. Releasing at `r` instead would put a
                    // one-off shorter-than-period gap between this task's
                    // copies on the survivor (pre-fault copies there were
                    // delayed), and that release jitter can push a
                    // lower-priority backup past its deadline even though
                    // the synchronous analysis passes.
                    let idx = self.ws.copies.len();
                    let backup_release = release + backup_delay;
                    self.ws.copies.push(CopyInst {
                        job,
                        kind: CopyKind::Backup,
                        proc: main_proc.other(),
                        release: backup_release,
                        remaining: job.wcet,
                        exec_total: job.wcet,
                        speed_permil: 1000,
                        state: CopyState::Pending,
                        sibling: None,
                        fd_at_release: 0,
                        running_since: None,
                        job_entry,
                        active_slot: usize::MAX,
                    });
                    copies[copy_count as usize] = idx;
                    copy_count += 1;
                    if backup_release > self.clock {
                        self.ws
                            .calendar
                            .push(backup_release, EventKind::CopyRelease { copy: idx });
                    }
                    self.emit_backup_release(
                        backup_delay,
                        id.0 as u32,
                        index as u32,
                        main_proc.other(),
                        release,
                    );
                }
                for &c in &copies[..copy_count as usize] {
                    self.activate_copy(c);
                }
                self.ws.jobs.push(JobEntry {
                    job,
                    resolved: false,
                    copies,
                    copy_count,
                    open_slot: self.ws.open_jobs.len(),
                });
                self.ws.open_jobs.push(job_entry);
            }
            ReleaseDecision::Mandatory { .. } => {
                unreachable!("normalized to MandatoryScaled above")
            }
            ReleaseDecision::Optional { proc } => {
                self.stats.optional_selected += 1;
                self.emit(CounterId::OptionalSelected);
                let job = Job::nth(id, self.ts.task(id), index, JobClass::Optional);
                let proc = self.live_proc(proc);
                self.emit_event(
                    release,
                    TraceKind::OptionalSelect,
                    id.0 as u32,
                    index as u32,
                    CopyRole::Optional,
                    proc.index() as u8,
                    u64::from(fd),
                );
                let idx = self.ws.copies.len();
                self.ws.copies.push(CopyInst {
                    job,
                    kind: CopyKind::Optional,
                    proc,
                    release,
                    remaining: job.wcet,
                    exec_total: job.wcet,
                    speed_permil: 1000,
                    state: CopyState::Pending,
                    sibling: None,
                    fd_at_release: fd,
                    running_since: None,
                    job_entry,
                    active_slot: usize::MAX,
                });
                self.activate_copy(idx);
                self.ws.jobs.push(JobEntry {
                    job,
                    resolved: false,
                    copies: [idx, 0],
                    copy_count: 1,
                    open_slot: self.ws.open_jobs.len(),
                });
                self.ws.open_jobs.push(job_entry);
            }
            ReleaseDecision::Skip => {
                self.stats.optional_skipped += 1;
                self.emit(CounterId::OptionalSkipped);
                self.emit_event(
                    release,
                    TraceKind::OptionalSkip,
                    id.0 as u32,
                    index as u32,
                    CopyRole::None,
                    PROC_NONE,
                    u64::from(fd),
                );
                let job = Job::nth(id, self.ts.task(id), index, JobClass::Optional);
                self.ws.jobs.push(JobEntry {
                    job,
                    resolved: false,
                    copies: [0, 0],
                    copy_count: 0,
                    open_slot: self.ws.open_jobs.len(),
                });
                self.ws.open_jobs.push(job_entry);
            }
        }
    }

    fn live_proc(&self, preferred: ProcId) -> ProcId {
        if self.alive[preferred.index()] {
            preferred
        } else {
            preferred.other()
        }
    }

    // ----- dispatch ----------------------------------------------------

    fn dispatch(&mut self) {
        for &proc in &ProcId::ALL {
            if !self.alive[proc.index()] {
                continue;
            }
            // Feasibility decays with the clock even when nothing else
            // changes, so the abandonment check keys on time — but only
            // once the clock reaches the earliest possible expiry.
            if self.clock >= self.opt_expiry[proc.index()] {
                self.abandon_infeasible_optionals(proc);
            }
            // The pick is a pure function of the ready set; until some
            // copy on this processor changes readiness, the previous
            // pick stands and the scan is skipped.
            if !self.dispatch_dirty[proc.index()] {
                continue;
            }
            self.dispatch_dirty[proc.index()] = false;
            let pick = self.pick_copy(proc);
            let current = self.running[proc.index()];
            if current == pick {
                continue;
            }
            if let Some(old) = current {
                // Preempted (still pending; completed/canceled copies
                // already closed their segment and cleared `running`).
                if self.ws.copies[old].state == CopyState::Pending {
                    self.close_segment(old, SegmentEnd::Preempted);
                }
            }
            if let Some(new) = pick {
                self.ws.copies[new].running_since = Some(self.clock);
            }
            self.running[proc.index()] = pick;
        }
    }

    /// Abandons every ready optional copy on `proc` that can no longer
    /// finish by its deadline even if it ran uninterrupted from now.
    fn abandon_infeasible_optionals(&mut self, proc: ProcId) {
        // `stop_copy` swap-removes the abandoned copy from
        // `active_copies`, pulling an unexamined entry into the current
        // slot — advance only on keep. Survivors rebuild the expiry
        // bound: `latest_start` only grows as a copy runs, so the
        // recomputed minimum stays a sound lower bound until the next
        // optional is admitted (which folds itself in at activation).
        let mut next_expiry = Time::MAX;
        let mut i = 0;
        while i < self.ws.active_copies.len() {
            let c = self.ws.active_copies[i];
            let copy = &self.ws.copies[c];
            debug_assert_eq!(copy.state, CopyState::Pending);
            if copy.proc == proc
                && copy.kind == CopyKind::Optional
                && copy.release <= self.clock
                && !copy.job.feasible_from(self.clock, copy.remaining)
            {
                self.stats.optional_abandoned += 1;
                self.emit(CounterId::OptionalAbandoned);
                self.emit_event(
                    self.clock,
                    TraceKind::OptionalAbandon,
                    copy.job.id.task.0 as u32,
                    copy.job.id.index as u32,
                    CopyRole::Optional,
                    proc.index() as u8,
                    0,
                );
                self.stop_copy(c, CopyState::Abandoned, SegmentEnd::Preempted);
            } else {
                if copy.proc == proc
                    && copy.kind == CopyKind::Optional
                    && copy.release <= self.clock
                {
                    next_expiry = next_expiry.min(copy.job.latest_start(copy.remaining));
                }
                i += 1;
            }
        }
        self.opt_expiry[proc.index()] = next_expiry;
    }

    /// MJQ strictly above OJQ; MJQ in fixed-priority order, OJQ ordered
    /// by (flexibility degree at release, fixed priority). The ordering
    /// keys are unique per processor (a job never has two copies on one
    /// processor), so the unordered `active_copies` scan is
    /// deterministic.
    fn pick_copy(&self, proc: ProcId) -> Option<usize> {
        // One pass tracking the best mandatory and best optional
        // candidate; MJQ trumps OJQ. The active list holds only pending
        // copies (eager deactivation), and the priority keys are unique
        // per processor, so the unordered scan stays deterministic.
        let mut best_mandatory: Option<((TaskId, u64), usize)> = None;
        let mut best_optional: Option<((u32, TaskId, u64), usize)> = None;
        for &i in &self.ws.active_copies {
            let c = &self.ws.copies[i];
            debug_assert_eq!(c.state, CopyState::Pending);
            if c.proc != proc || c.release > self.clock {
                continue;
            }
            if c.kind == CopyKind::Optional {
                let key = (c.fd_at_release, c.job.id.task, c.job.id.index);
                if best_optional.is_none_or(|(k, _)| key < k) {
                    best_optional = Some((key, i));
                }
            } else {
                let key = (c.job.id.task, c.job.id.index);
                if best_mandatory.is_none_or(|(k, _)| key < k) {
                    best_mandatory = Some((key, i));
                }
            }
        }
        match best_mandatory {
            Some((_, i)) => Some(i),
            None => best_optional.map(|(_, i)| i),
        }
    }

    // ----- time advance --------------------------------------------------

    /// True when a calendar entry still announces a real occurrence.
    /// Every entry carries enough identity to re-check itself against
    /// the live state; staleness is monotone (arena indices are never
    /// reused within a run, each checked transition is one-way, the
    /// clock only grows), so a stale entry can be dropped for good the
    /// moment it surfaces.
    fn entry_live(&self, entry: CalendarEntry) -> bool {
        match entry.kind() {
            EventKind::TaskRelease { task, index } => {
                let tstate = &self.ws.tasks[task.0];
                !tstate.exhausted && tstate.next_index == index
            }
            EventKind::CopyRelease { copy } => {
                let c = &self.ws.copies[copy];
                c.state == CopyState::Pending && c.release > self.clock
            }
            EventKind::Fault => !self.fault_applied,
        }
    }

    /// Earliest future event: the nearer of the running copies'
    /// completions (read off the `running` array) and the calendar top.
    ///
    /// Stale tops are lazily discarded as they surface; entries firing
    /// exactly at the returned time are consumed here, and each fired
    /// entry tells the next loop iteration precisely where to look — the
    /// released task's bit in `release_mask`, the due job's index in
    /// `deadline_scratch`, the readied copy's processor in
    /// `dispatch_dirty`. Matches [`Engine::next_event_time_scan`]
    /// exactly on every reachable state (cross-checked per step in
    /// debug builds).
    fn next_event_time(&mut self) -> Option<Time> {
        let mut next = self.config.horizon;
        let mut any = self.clock < self.config.horizon;
        for &proc in &ProcId::ALL {
            if let Some(c) = self.running[proc.index()] {
                next = next.min(self.clock + self.ws.copies[c].remaining);
                any = true;
            }
        }
        for &i in &self.ws.open_jobs {
            let job = &self.ws.jobs[i];
            if !job.resolved && job.job.deadline > self.clock {
                next = next.min(job.job.deadline);
                any = true;
            }
        }
        while let Some(top) = self.ws.calendar.peek() {
            if !self.entry_live(top) {
                self.ws.calendar.pop();
                continue;
            }
            if top.time < next {
                next = top.time;
            }
            // A pending permanent fault alone does not keep the run
            // alive, matching the scan: a dead-idle system past its last
            // deadline ends even with the fault still scheduled.
            if !matches!(top.kind(), EventKind::Fault) {
                any = true;
            }
            break;
        }
        if !any {
            return None;
        }
        // Deadlines reaching resolution at `next`: every open deadline
        // took part in the min above, so the due ones equal `next`
        // exactly — and no task has two, since a task's job deadlines
        // are strictly increasing.
        for &i in &self.ws.open_jobs {
            let job = &self.ws.jobs[i];
            if !job.resolved && job.job.deadline > self.clock && job.job.deadline <= next {
                self.ws.deadline_scratch.push(i);
            }
        }
        // Consume everything firing at `next` (and any stale residue at
        // or below it), recording where the next iteration must act.
        // Fired entries need no successor push here: releases chain in
        // `process_releases`, copy releases and faults are observed
        // directly from engine state next iteration.
        while let Some(top) = self.ws.calendar.peek() {
            if top.time > next {
                break;
            }
            let live = self.entry_live(top);
            self.ws.calendar.pop();
            if live {
                match top.kind() {
                    EventKind::TaskRelease { task, .. } => {
                        self.release_mask |= 1u64 << task.0.min(63);
                    }
                    EventKind::CopyRelease { copy } => {
                        self.dispatch_dirty[self.ws.copies[copy].proc.index()] = true;
                    }
                    EventKind::Fault => {}
                }
            }
        }
        Some(next)
    }

    /// The pre-calendar linear-scan derivation of the next event time,
    /// kept as a reference oracle: `run` cross-checks the calendar
    /// against it on every step in debug builds, and the in-module
    /// differential tests drive whole runs with it (`TimeAdvance::Scan`).
    fn next_event_time_scan(&self) -> Option<Time> {
        let mut next = self.config.horizon;
        let mut any = self.clock < self.config.horizon;
        if !self.fault_applied {
            if let Some(pf) = self.config.faults.permanent {
                next = next.min(pf.at);
            }
        }
        for (id, task) in self.ts.iter() {
            let tstate = &self.ws.tasks[id.0];
            if !tstate.exhausted {
                next = next.min(task.release_of(tstate.next_index));
                any = true;
            }
        }
        for &i in &self.ws.active_copies {
            let copy = &self.ws.copies[i];
            if copy.state == CopyState::Pending && copy.release > self.clock {
                next = next.min(copy.release);
                any = true;
            }
        }
        for &i in &self.ws.open_jobs {
            let job = &self.ws.jobs[i];
            if !job.resolved && job.job.deadline > self.clock {
                next = next.min(job.job.deadline);
                any = true;
            }
        }
        for &proc in &ProcId::ALL {
            if let Some(c) = self.running[proc.index()] {
                next = next.min(self.clock + self.ws.copies[c].remaining);
                any = true;
            }
        }
        if !any {
            return None;
        }
        Some(next)
    }

    fn advance_to(&mut self, next: Time) {
        let dt = next - self.clock;
        // At most one copy completes per processor per step.
        let mut completions = [0usize; 2];
        let mut completed = 0usize;
        for &proc in &ProcId::ALL {
            if let Some(c) = self.running[proc.index()] {
                self.extend_busy(proc, self.clock, next);
                let speed = self.ws.copies[c].speed_permil;
                // mkss-lint: allow(float-fold-determinism) — per-processor accumulator advanced in event order by the single-threaded engine; the order is the simulation itself
                self.active_energy[proc.index()] += self.config.power.active_energy_at(dt, speed);
                let copy = &mut self.ws.copies[c];
                copy.remaining -= dt;
                if copy.remaining.is_zero() {
                    completions[completed] = c;
                    completed += 1;
                }
            }
        }
        self.clock = next;
        // Mark all simultaneous completions done first (so a success does
        // not "cancel" a sibling that also just finished)…
        for &c in &completions[..completed] {
            let faulted = self.sampler.sample(self.ws.copies[c].exec_total);
            let ev_task = self.ws.copies[c].job.id.task.0 as u32;
            let ev_job = self.ws.copies[c].job.id.index as u32;
            let ev_role = copy_role(self.ws.copies[c].kind);
            if faulted {
                self.stats.transient_faults += 1;
                self.emit(CounterId::FaultsInjected);
                self.emit(CounterId::TransientFaults);
                self.emit_event(
                    self.clock,
                    TraceKind::TransientFault,
                    ev_task,
                    ev_job,
                    ev_role,
                    self.ws.copies[c].proc.index() as u8,
                    0,
                );
            }
            let proc = self.ws.copies[c].proc;
            self.running[proc.index()] = None;
            self.close_segment(c, SegmentEnd::Completed);
            self.ws.copies[c].state = CopyState::Done { faulted };
            self.deactivate_copy(c);
            match self.ws.copies[c].kind {
                CopyKind::Backup => {
                    self.stats.backups_completed += 1;
                    self.emit(CounterId::BackupsCompleted);
                    self.emit_event(
                        self.clock,
                        TraceKind::BackupComplete,
                        ev_task,
                        ev_job,
                        CopyRole::Backup,
                        proc.index() as u8,
                        u64::from(faulted),
                    );
                }
                CopyKind::Optional if !faulted => {
                    self.emit(CounterId::OptionalExecuted);
                    self.emit_event(
                        self.clock,
                        TraceKind::OptionalComplete,
                        ev_task,
                        ev_job,
                        CopyRole::Optional,
                        proc.index() as u8,
                        0,
                    );
                }
                _ => {}
            }
        }
        // …then act on the outcomes.
        debug_assert!(
            completions[..completed]
                .iter()
                .all(|&c| matches!(self.ws.copies[c].state, CopyState::Done { .. })),
            "every completion was marked Done by the loop above"
        );
        for &c in &completions[..completed] {
            let CopyState::Done { faulted } = self.ws.copies[c].state else {
                unreachable!("completion not marked done");
            };
            if faulted {
                continue;
            }
            let job_idx = self.ws.copies[c].job_entry;
            if !self.ws.jobs[job_idx].resolved {
                // A backup finishing fault-free with its main copy gone
                // (faulted, lost with its processor, or never created) is
                // the standby-sparing mechanism actually saving the job.
                let recovered = self.ws.copies[c].kind == CopyKind::Backup
                    && self.ws.copies[c].sibling.is_none_or(|sib| {
                        matches!(
                            self.ws.copies[sib].state,
                            CopyState::Done { faulted: true } | CopyState::Lost
                        )
                    });
                self.resolve(job_idx, JobOutcome::Met, self.clock);
                if recovered {
                    self.emit(CounterId::FaultsRecovered);
                    let copy = &self.ws.copies[c];
                    self.emit_event(
                        self.clock,
                        TraceKind::FaultRecovered,
                        copy.job.id.task.0 as u32,
                        copy.job.id.index as u32,
                        CopyRole::Backup,
                        copy.proc.index() as u8,
                        0,
                    );
                }
            }
            if let Some(sib) = self.ws.copies[c].sibling {
                if self.ws.copies[sib].state == CopyState::Pending {
                    self.stats.backups_canceled += 1;
                    self.emit(CounterId::BackupsCanceled);
                    let sibling = &self.ws.copies[sib];
                    self.emit_event(
                        self.clock,
                        TraceKind::BackupCancel,
                        sibling.job.id.task.0 as u32,
                        sibling.job.id.index as u32,
                        copy_role(sibling.kind),
                        sibling.proc.index() as u8,
                        0,
                    );
                    self.stop_copy(sib, CopyState::Canceled, SegmentEnd::Canceled);
                }
            }
        }
    }

    fn extend_busy(&mut self, proc: ProcId, from: Time, to: Time) {
        let intervals = &mut self.ws.busy[proc.index()];
        match intervals.last_mut() {
            Some(last) if last.1 == from => last.1 = to,
            _ => intervals.push((from, to)),
        }
    }

    fn close_segment(&mut self, c: usize, ended: SegmentEnd) {
        let record = self.config.record_trace;
        let clock = self.clock;
        let copy = &mut self.ws.copies[c];
        if let Some(start) = copy.running_since.take() {
            if record && start < clock {
                self.ws.trace.segments.push(Segment {
                    proc: copy.proc,
                    job: copy.job.id,
                    kind: copy.kind,
                    start,
                    end: clock,
                    ended,
                });
            }
        }
    }

    // mkss-lint: hot-path end

    // ----- wrap-up -------------------------------------------------------

    fn finish(mut self, policy_name: &str) -> SimReport {
        // Close any segment still open at the horizon.
        for &proc in &ProcId::ALL {
            if let Some(c) = self.running[proc.index()] {
                self.close_segment(c, SegmentEnd::Horizon);
            }
        }
        let mut energy = [EnergyBreakdown::default(), EnergyBreakdown::default()];
        for &proc in &ProcId::ALL {
            energy[proc.index()] = self.account_processor(proc, &self.config.power);
        }
        let trace = if self.config.record_trace {
            // Hand the buffers to the report; the workspace reallocates
            // them on the next recording run.
            let mut trace = std::mem::take(&mut self.ws.trace);
            trace.segments.sort_by_key(|s| (s.start, s.proc, s.end));
            Some(trace)
        } else {
            None
        };
        SimReport {
            policy: policy_name.to_owned(),
            horizon: self.config.horizon,
            energy,
            stats: self.stats,
            violations: self.violations,
            trace,
        }
    }

    /// Active energy from the busy intervals; idle energy from their
    /// complement within `[0, end-of-life)` using the DPD rule.
    fn account_processor(&self, proc: ProcId, power: &PowerModel) -> EnergyBreakdown {
        let end = self.death_time[proc.index()].unwrap_or(self.config.horizon);
        let mut breakdown = EnergyBreakdown::default();
        let mut cursor = Time::ZERO;
        for &(from, to) in &self.ws.busy[proc.index()] {
            let from = from.min(end);
            let to = to.min(end);
            if from > cursor {
                // mkss-lint: allow(float-fold-determinism) — busy intervals are stored sorted; the cursor sweep pins the order
                breakdown.idle += power.idle_interval_energy(from - cursor);
                breakdown.idle_time += from - cursor;
            }
            breakdown.busy_time += to - from;
            cursor = cursor.max(to);
        }
        if end > cursor {
            // mkss-lint: allow(float-fold-determinism) — single trailing-gap term added after the sorted sweep
            breakdown.idle += power.idle_interval_energy(end - cursor);
            breakdown.idle_time += end - cursor;
        }
        // Active energy was accumulated DVS-aware during the run.
        breakdown.active = self.active_energy[proc.index()];
        breakdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::PermanentFault;
    use mkss_core::task::Task;

    /// R-pattern static policy: mandatory per deeply-red, mains on
    /// primary, concurrent backups — the MKSS_ST reference, inlined here
    /// to keep the engine tests self-contained.
    struct StaticRef;
    impl Policy for StaticRef {
        fn name(&self) -> &str {
            "static-ref"
        }
        fn on_release(&mut self, ctx: &ReleaseCtx<'_>) -> ReleaseDecision {
            use mkss_core::mk::Pattern;
            let mk = ctx.history.constraint();
            if Pattern::DeeplyRed.is_mandatory(mk, ctx.job_index) {
                ReleaseDecision::Mandatory {
                    main_proc: ProcId::PRIMARY,
                    backup_delay: Time::ZERO,
                }
            } else {
                ReleaseDecision::Skip
            }
        }
    }

    fn fig1_set() -> TaskSet {
        TaskSet::new(vec![
            Task::from_ms(5, 4, 3, 2, 4).unwrap(),
            Task::from_ms(10, 10, 3, 1, 2).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn static_reference_energy_fig1_set() {
        // Mandatory jobs in [0,20): J11, J12 (τ1), J21 (τ2); mains and
        // backups run concurrently and identically on both processors →
        // no cancellation savings: 9 + 9 = 18 active units.
        let report = simulate(
            &fig1_set(),
            &mut StaticRef,
            &SimConfig::active_only(Time::from_ms(20)),
        );
        assert!((report.active_energy().units() - 18.0).abs() < 1e-9);
        assert!(report.mk_assured());
        assert_eq!(report.stats.mandatory, 3);
        assert_eq!(report.stats.optional_skipped, 3); // J13, J14, J22
        assert_eq!(report.stats.met, 3);
        assert_eq!(report.stats.missed, 3);
    }

    #[test]
    fn trace_is_recorded_and_consistent() {
        let report = simulate(
            &fig1_set(),
            &mut StaticRef,
            &SimConfig::active_only(Time::from_ms(20)),
        );
        let trace = report.trace.as_ref().unwrap();
        // Mains on primary: J11 [0,3), J21 [3,6), J12 [5,8)… with
        // preemption: J12 preempts J21 at 5.
        let primary: Vec<_> = trace.segments_on(ProcId::PRIMARY).collect();
        assert_eq!(primary[0].start, Time::ZERO);
        assert_eq!(primary[0].end, Time::from_ms(3));
        // Busy time on each processor = 9ms.
        assert_eq!(
            trace.busy_time_within(ProcId::PRIMARY, Time::from_ms(20)),
            Time::from_ms(9)
        );
        assert_eq!(
            trace.busy_time_within(ProcId::SPARE, Time::from_ms(20)),
            Time::from_ms(9)
        );
    }

    #[test]
    fn preemption_occurs_within_processor() {
        let report = simulate(
            &fig1_set(),
            &mut StaticRef,
            &SimConfig::active_only(Time::from_ms(20)),
        );
        let trace = report.trace.unwrap();
        // τ2's main J21 is preempted at t=5 by τ1's J12 and resumes at 8.
        let j21_segments: Vec<_> = trace
            .segments_on(ProcId::PRIMARY)
            .filter(|s| s.job.task == TaskId(1))
            .collect();
        assert_eq!(j21_segments.len(), 2);
        assert_eq!(j21_segments[0].ended, SegmentEnd::Preempted);
        assert_eq!(j21_segments[0].start, Time::from_ms(3));
        assert_eq!(j21_segments[0].end, Time::from_ms(5));
        assert_eq!(j21_segments[1].start, Time::from_ms(8));
        assert_eq!(j21_segments[1].end, Time::from_ms(9));
    }

    #[test]
    fn permanent_fault_on_spare_keeps_mains_running() {
        let config = SimConfig::builder()
            .horizon(Time::from_ms(20))
            .active_only()
            .faults(FaultConfig {
                permanent: Some(PermanentFault {
                    proc: ProcId::SPARE,
                    at: Time::from_ms(1),
                }),
                ..FaultConfig::none()
            })
            .build();
        let report = simulate(&fig1_set(), &mut StaticRef, &config);
        assert!(report.mk_assured());
        // Spare ran only [0,1): J'11 partial.
        let trace = report.trace.as_ref().unwrap();
        assert_eq!(
            trace.busy_time_within(ProcId::SPARE, Time::from_ms(20)),
            Time::from_ms(1)
        );
        // Mains unaffected; future jobs single-copy on primary.
        assert_eq!(
            trace.busy_time_within(ProcId::PRIMARY, Time::from_ms(20)),
            Time::from_ms(9)
        );
        assert!(report.stats.copies_lost >= 1);
        assert_eq!(report.stats.met, 3);
    }

    #[test]
    fn permanent_fault_on_primary_lets_backups_take_over() {
        let config = SimConfig::builder()
            .horizon(Time::from_ms(20))
            .active_only()
            .faults(FaultConfig {
                permanent: Some(PermanentFault {
                    proc: ProcId::PRIMARY,
                    at: Time::from_ms(1),
                }),
                ..FaultConfig::none()
            })
            .build();
        let report = simulate(&fig1_set(), &mut StaticRef, &config);
        // All mandatory jobs still met via backups on the spare.
        assert!(report.mk_assured());
        assert_eq!(report.stats.met, 3);
        assert_eq!(report.stats.missed, 3); // the skipped optional jobs
    }

    #[test]
    fn transient_fault_forces_backup_completion() {
        // Rate so high every execution faults: both copies fault → missed,
        // but (1,2) tolerates alternating misses… with every job faulted,
        // every job misses and (m,k) is violated — the monitor must say so.
        let ts = TaskSet::new(vec![Task::from_ms(10, 10, 2, 1, 2).unwrap()]).unwrap();
        let config = SimConfig::builder()
            .horizon(Time::from_ms(40))
            .active_only()
            .faults(FaultConfig::transient(1000.0, 7))
            .build();
        let report = simulate(&ts, &mut StaticRef, &config);
        assert!(report.stats.transient_faults > 0);
        assert!(!report.mk_assured());
        // Backups were not canceled (mains all faulted).
        assert_eq!(report.stats.backups_canceled, 0);
        assert_eq!(report.stats.backups_completed, 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let ts = fig1_set();
        let config = SimConfig::builder()
            .horizon(Time::from_ms(20))
            .active_only()
            .faults(FaultConfig::transient(0.05, 99))
            .build();
        let a = simulate(&ts, &mut StaticRef, &config);
        let b = simulate(&ts, &mut StaticRef, &config);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.stats, b.stats);
        assert!((a.total_energy().units() - b.total_energy().units()).abs() < 1e-12);
    }

    #[test]
    fn idle_energy_uses_dpd_rule() {
        // One task, one 2ms job per 10ms; default power model.
        let ts = TaskSet::new(vec![Task::from_ms(10, 10, 2, 1, 2).unwrap()]).unwrap();
        let report = simulate(&ts, &mut StaticRef, &SimConfig::new(Time::from_ms(20)));
        // Jobs: J1 mandatory (0..2 busy on both procs), J2 optional
        // skipped. Primary: busy [0,2), idle [2,20) = 18ms > T_be → 1ms
        // idle at 0.1 + 17ms sleep at 0. Active 2.0 + idle 0.1.
        let primary = report.energy[ProcId::PRIMARY.index()];
        assert!((primary.active.units() - 2.0).abs() < 1e-9);
        assert!((primary.idle.units() - 0.1).abs() < 1e-9);
        assert_eq!(primary.busy_time, Time::from_ms(2));
        assert_eq!(primary.idle_time, Time::from_ms(18));
    }

    #[test]
    fn energy_timeline_partitions() {
        let report = simulate(
            &fig1_set(),
            &mut StaticRef,
            &SimConfig::new(Time::from_ms(20)),
        );
        for e in &report.energy {
            assert_eq!(e.busy_time + e.idle_time, Time::from_ms(20));
        }
    }

    #[test]
    fn dead_processor_consumes_nothing_after_fault() {
        let config = SimConfig::builder()
            .horizon_ms(20)
            .faults(FaultConfig {
                permanent: Some(PermanentFault {
                    proc: ProcId::SPARE,
                    at: Time::from_ms(4),
                }),
                ..FaultConfig::none()
            })
            .build();
        let report = simulate(&fig1_set(), &mut StaticRef, &config);
        let spare = report.energy[ProcId::SPARE.index()];
        assert_eq!(spare.busy_time + spare.idle_time, Time::from_ms(4));
    }

    #[test]
    fn builder_matches_constructors() {
        let h = Time::from_ms(123);
        assert_eq!(SimConfig::builder().horizon(h).build(), SimConfig::new(h));
        assert_eq!(
            SimConfig::builder().horizon(h).active_only().build(),
            SimConfig::active_only(h)
        );
        assert_eq!(
            SimConfig::builder().horizon_ms(123).build(),
            SimConfig::new(h)
        );
    }

    #[test]
    fn workspace_reuse_is_bit_identical_to_fresh() {
        // Reuse one workspace across differently-shaped runs (trace on
        // and off, faults on and off, different task sets) and compare
        // every report against a fresh `simulate` call.
        let sets = [
            fig1_set(),
            TaskSet::new(vec![Task::from_ms(10, 10, 2, 1, 2).unwrap()]).unwrap(),
        ];
        let configs = [
            SimConfig::active_only(Time::from_ms(20)),
            SimConfig::new(Time::from_ms(40)),
            SimConfig::builder()
                .horizon_ms(40)
                .faults(FaultConfig::transient(0.5, 3))
                .record_trace(true)
                .build(),
        ];
        let mut ws = SimWorkspace::new();
        for _ in 0..2 {
            for ts in &sets {
                for config in &configs {
                    let reused = simulate_in(&mut ws, ts, &mut StaticRef, config);
                    let fresh = simulate(ts, &mut StaticRef, config);
                    assert_eq!(reused.stats, fresh.stats);
                    assert_eq!(reused.violations, fresh.violations);
                    assert_eq!(reused.trace, fresh.trace);
                    assert_eq!(reused.energy, fresh.energy);
                }
            }
        }
    }

    /// [`simulate_in`] with two extra knobs for the tests below: the
    /// time-advance mechanism, and a hook to poke the freshly reset
    /// workspace (e.g. forge a calendar entry) before the run starts.
    fn run_prepared<P: Policy + ?Sized>(
        ws: &mut SimWorkspace,
        ts: &TaskSet,
        policy: &mut P,
        config: &SimConfig,
        time_advance: TimeAdvance,
        prepare: impl FnOnce(&mut SimWorkspace),
    ) -> SimReport {
        ws.begin_run(ts);
        prepare(ws);
        let engine = Engine {
            ts,
            config,
            ws,
            clock: Time::ZERO,
            running: [None, None],
            alive: [true, true],
            death_time: [None, None],
            fault_applied: false,
            sampler: TransientSampler::new(&config.faults),
            active_energy: [crate::power::Energy::ZERO; 2],
            stats: JobStats::default(),
            violations: Vec::new(),
            release_mask: u64::MAX,
            dispatch_dirty: [true; 2],
            opt_expiry: [Time::ZERO; 2],
            time_advance,
        };
        engine.run(policy)
    }

    /// Regression for the release-mode stall: a calendar entry stuck at
    /// (or before) the clock used to spin the event loop forever in
    /// release builds, where the old `debug_assert!(next > clock)`
    /// compiled away. The guard is now a hard invariant in every build:
    /// the run flags the stall, stops advancing, and still resolves
    /// every released job at the horizon.
    #[test]
    fn zero_length_step_ends_the_run_instead_of_spinning() {
        use mkss_obs::Registry;

        let ts = fig1_set();
        let config = SimConfig::active_only(Time::from_ms(20));
        let registry = Arc::new(Registry::new(1));
        let mut ws = SimWorkspace::with_recorder(Arc::new(registry.handle_at(0)));

        // Forge a release entry for τ1's *second* job at t = 0. The
        // first `process_releases` pass advances τ1's `next_index` to 2,
        // which makes the forged entry live, so `next_event_time`
        // returns 0 == clock: a zero-length step out of a state the
        // engine can never produce on its own.
        let report = run_prepared(
            &mut ws,
            &ts,
            &mut StaticRef,
            &config,
            TimeAdvance::Calendar,
            |ws| {
                ws.calendar.push(
                    Time::ZERO,
                    EventKind::TaskRelease {
                        task: TaskId(0),
                        index: 2,
                    },
                );
            },
        );

        let snap = registry.snapshot();
        assert_eq!(
            snap.counter(CounterId::EngineStalls),
            1,
            "stall not flagged"
        );
        // The run still terminates and accounts for everything it
        // released before stopping: both t=0 jobs miss at the horizon.
        assert_eq!(report.stats.released, 2);
        assert_eq!(
            report.stats.met + report.stats.missed,
            report.stats.released
        );

        // The same run without the forged entry never stalls.
        let clean = run_prepared(
            &mut ws,
            &ts,
            &mut StaticRef,
            &config,
            TimeAdvance::Calendar,
            |_| {},
        );
        assert_eq!(registry.snapshot().counter(CounterId::EngineStalls), 1);
        assert_eq!(clean.stats.met, 3);
    }

    /// Whole-run differential between the production calendar and the
    /// pre-calendar linear-scan oracle, across fault configs and trace
    /// on/off. The per-step `debug_assert_eq!` in `run` already
    /// cross-checks the chosen event times on every debug-build run;
    /// this pins the end-to-end reports too.
    #[test]
    fn scan_oracle_and_calendar_reports_are_identical() {
        let sets = [
            fig1_set(),
            TaskSet::new(vec![Task::from_ms(10, 10, 2, 1, 2).unwrap()]).unwrap(),
        ];
        let horizon = Time::from_ms(40);
        let configs = [
            SimConfig::active_only(horizon),
            SimConfig::new(horizon),
            SimConfig::builder()
                .horizon(horizon)
                .faults(FaultConfig::permanent(ProcId::SPARE, Time::from_ms(6)))
                .record_trace(true)
                .build(),
            SimConfig::builder()
                .horizon(horizon)
                .faults(FaultConfig::combined(
                    ProcId::PRIMARY,
                    Time::from_ms(17),
                    0.4,
                    9,
                ))
                .build(),
        ];
        let mut ws = SimWorkspace::new();
        for ts in &sets {
            for config in &configs {
                let calendar = run_prepared(
                    &mut ws,
                    ts,
                    &mut StaticRef,
                    config,
                    TimeAdvance::Calendar,
                    |_| {},
                );
                let scan = run_prepared(
                    &mut ws,
                    ts,
                    &mut StaticRef,
                    config,
                    TimeAdvance::Scan,
                    |_| {},
                );
                assert_eq!(
                    format!("{calendar:?}"),
                    format!("{scan:?}"),
                    "calendar/scan reports diverge"
                );
            }
        }
    }

    proptest::proptest! {
        /// The calendar is a min-heap on time: every pop — including
        /// pops interleaved with pushes — returns the minimum of what is
        /// currently stored, checked against a reference multiset. Drain
        /// order is therefore nondecreasing once pushes stop.
        #[test]
        fn calendar_pops_are_time_ordered(
            times in proptest::collection::vec(0u64..10_000, 1..200),
            interleave in proptest::collection::vec(proptest::prelude::any::<bool>(), 1..200),
        ) {
            let mut calendar = EventCalendar::default();
            let mut reference: Vec<u64> = Vec::new();
            let pop_and_check = |calendar: &mut EventCalendar,
                                     reference: &mut Vec<u64>|
             -> Result<(), proptest::test_runner::TestCaseError> {
                let entry = calendar.pop();
                proptest::prop_assert_eq!(entry.is_some(), !reference.is_empty());
                if let Some(entry) = entry {
                    let (slot, &min) = reference
                        .iter()
                        .enumerate()
                        .min_by_key(|&(_, t)| t)
                        .expect("reference non-empty");
                    proptest::prop_assert_eq!(
                        entry.time,
                        Time::from_ticks(min),
                        "pop is not the pending minimum"
                    );
                    reference.swap_remove(slot);
                }
                Ok(())
            };
            for (i, &t) in times.iter().enumerate() {
                calendar.push(Time::from_ticks(t), EventKind::Fault);
                reference.push(t);
                if *interleave.get(i).unwrap_or(&false) {
                    pop_and_check(&mut calendar, &mut reference)?;
                }
            }
            let mut last = Time::ZERO;
            while let Some(top) = calendar.peek() {
                proptest::prop_assert!(top.time >= last, "drain went backwards");
                last = top.time;
                pop_and_check(&mut calendar, &mut reference)?;
            }
            proptest::prop_assert!(reference.is_empty());
        }
    }
}
