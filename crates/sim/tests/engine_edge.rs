//! Edge-case integration tests for the engine, driven through the public
//! API with purpose-built micro-policies.

use mkss_core::prelude::*;
use mkss_sim::prelude::*;

/// Policy placing the main on a chosen processor with a chosen delay.
struct Place {
    main_proc: ProcId,
    backup_delay: Time,
}
impl Policy for Place {
    fn name(&self) -> &str {
        "place"
    }
    fn on_release(&mut self, _: &ReleaseCtx<'_>) -> ReleaseDecision {
        ReleaseDecision::Mandatory {
            main_proc: self.main_proc,
            backup_delay: self.backup_delay,
        }
    }
}

/// DVS policy at a fixed speed.
struct Scaled(u32);
impl Policy for Scaled {
    fn name(&self) -> &str {
        "scaled"
    }
    fn on_release(&mut self, _: &ReleaseCtx<'_>) -> ReleaseDecision {
        ReleaseDecision::MandatoryScaled {
            main_proc: ProcId::PRIMARY,
            backup_delay: Time::from_ms(50),
            main_speed_permil: self.0,
        }
    }
}

#[test]
fn backup_can_complete_first_and_cancels_the_main() {
    // A DVS-slowed main takes twice its WCET while its full-speed backup
    // (no delay) races ahead on the spare: cancellation must be
    // symmetric — the *backup's* success cancels the still-running main.
    struct SlowMainEagerBackup;
    impl Policy for SlowMainEagerBackup {
        fn name(&self) -> &str {
            "slow-main-eager-backup"
        }
        fn on_release(&mut self, _: &ReleaseCtx<'_>) -> ReleaseDecision {
            ReleaseDecision::MandatoryScaled {
                main_proc: ProcId::PRIMARY,
                backup_delay: Time::ZERO,
                main_speed_permil: 500,
            }
        }
    }
    let ts = TaskSet::new(vec![Task::from_ms(20, 20, 4, 1, 2).unwrap()]).unwrap();
    let config = SimConfig::builder().horizon_ms(20).active_only().build();
    let report = simulate(&ts, &mut SlowMainEagerBackup, &config);
    assert!(report.mk_assured());
    let trace = report.trace.as_ref().unwrap();
    // Backup completes at 4 on the spare…
    let backup = trace
        .segments_on(ProcId::SPARE)
        .find(|s| s.kind == CopyKind::Backup)
        .expect("backup ran");
    assert_eq!(backup.ended, SegmentEnd::Completed);
    assert_eq!((backup.start, backup.end), (Time::ZERO, Time::from_ms(4)));
    // …and the half-speed main (would finish at 8) is canceled at 4.
    let main = trace
        .segments_on(ProcId::PRIMARY)
        .find(|s| s.kind == CopyKind::Main)
        .expect("main ran");
    assert_eq!(main.ended, SegmentEnd::Canceled);
    assert_eq!((main.start, main.end), (Time::ZERO, Time::from_ms(4)));
    // The job resolved met exactly once, at the backup's completion.
    assert_eq!(report.stats.met, 1);
    assert_eq!(trace.resolutions[0].at, Time::from_ms(4));
}

#[test]
fn optional_feasibility_boundary_is_inclusive() {
    // An optional job dispatched exactly at its latest start must run.
    struct LateOptional;
    impl Policy for LateOptional {
        fn name(&self) -> &str {
            "late-optional"
        }
        fn on_release(&mut self, ctx: &ReleaseCtx<'_>) -> ReleaseDecision {
            if ctx.task.0 == 0 {
                ReleaseDecision::Mandatory {
                    main_proc: ProcId::PRIMARY,
                    backup_delay: Time::from_ms(100),
                }
            } else {
                ReleaseDecision::Optional {
                    proc: ProcId::PRIMARY,
                }
            }
        }
    }
    // τ1 runs [0,6) on the primary; τ2's optional job (release 0,
    // deadline 10, C = 4) becomes feasible-at-the-boundary: starts at 6,
    // finishes exactly at its deadline 10.
    let ts = TaskSet::new(vec![
        Task::from_ms(20, 20, 6, 1, 2).unwrap(),
        Task::from_ms(20, 10, 4, 1, 2).unwrap(),
    ])
    .unwrap();
    let config = SimConfig::builder().horizon_ms(20).active_only().build();
    let report = simulate(&ts, &mut LateOptional, &config);
    assert_eq!(report.stats.optional_abandoned, 0);
    assert_eq!(report.stats.met, 2);
    let trace = report.trace.unwrap();
    let opt = trace
        .segments
        .iter()
        .find(|s| s.kind == CopyKind::Optional)
        .expect("optional ran");
    assert_eq!((opt.start, opt.end), (Time::from_ms(6), Time::from_ms(10)));
}

#[test]
fn optional_one_tick_late_is_abandoned() {
    struct LateOptional;
    impl Policy for LateOptional {
        fn name(&self) -> &str {
            "late-optional"
        }
        fn on_release(&mut self, ctx: &ReleaseCtx<'_>) -> ReleaseDecision {
            if ctx.task.0 == 0 {
                ReleaseDecision::Mandatory {
                    main_proc: ProcId::PRIMARY,
                    backup_delay: Time::from_ms(100),
                }
            } else {
                ReleaseDecision::Optional {
                    proc: ProcId::PRIMARY,
                }
            }
        }
    }
    // As above but the blocking main is one tick longer: the optional
    // job can no longer make its deadline and must be abandoned, never
    // executing.
    let ts = TaskSet::new(vec![
        Task::new(
            Time::from_ms(20),
            Time::from_ms(20),
            Time::from_us(6_001),
            1,
            2,
        )
        .unwrap(),
        Task::from_ms(20, 10, 4, 1, 2).unwrap(),
    ])
    .unwrap();
    let config = SimConfig::builder().horizon_ms(20).active_only().build();
    let report = simulate(&ts, &mut LateOptional, &config);
    assert_eq!(report.stats.optional_abandoned, 1);
    assert_eq!(report.stats.met, 1);
    assert_eq!(report.stats.missed, 1);
    assert!(report.mk_assured(), "(1,2) tolerates the single miss");
    let trace = report.trace.unwrap();
    assert!(trace.segments.iter().all(|s| s.kind != CopyKind::Optional));
}

#[test]
fn dvs_scaled_copy_runs_longer_at_lower_energy() {
    let ts = TaskSet::new(vec![Task::from_ms(100, 100, 10, 1, 2).unwrap()]).unwrap();
    let config = SimConfig::builder().horizon_ms(200).active_only().build();
    let full = simulate(&ts, &mut Scaled(1000), &config);
    let half = simulate(&ts, &mut Scaled(500), &config);
    assert!(full.mk_assured() && half.mk_assured());
    // The policy makes both released jobs mandatory; at half speed each
    // 10 ms execution stretches to 20 ms.
    let exec_len = |r: &SimReport| {
        r.trace
            .as_ref()
            .unwrap()
            .segments_on(ProcId::PRIMARY)
            .map(|s| s.len())
            .sum::<Time>()
    };
    assert_eq!(exec_len(&full), Time::from_ms(20));
    assert_eq!(exec_len(&half), Time::from_ms(40));
    // …at an eighth of the power → a quarter of the energy (backup is
    // postponed past the main's completion, so only mains burn energy).
    let full_e = full.energy[0].active.units();
    let half_e = half.energy[0].active.units();
    assert!(
        (half_e - full_e / 4.0).abs() < 1e-9,
        "{half_e} vs {full_e}/4"
    );
}

#[test]
#[should_panic(expected = "main speed must be in 1..=1000")]
fn zero_speed_rejected() {
    let ts = TaskSet::new(vec![Task::from_ms(10, 10, 2, 1, 2).unwrap()]).unwrap();
    simulate(&ts, &mut Scaled(0), &SimConfig::new(Time::from_ms(20)));
}

#[test]
fn fault_at_time_zero_on_primary() {
    let ts = TaskSet::new(vec![
        Task::from_ms(10, 10, 3, 2, 3).unwrap(),
        Task::from_ms(15, 15, 8, 1, 2).unwrap(),
    ])
    .unwrap();
    let config = SimConfig::builder()
        .horizon_ms(60)
        .active_only()
        .faults(FaultConfig::permanent(ProcId::PRIMARY, Time::ZERO))
        .build();
    let report = simulate(
        &ts,
        &mut Place {
            main_proc: ProcId::PRIMARY,
            backup_delay: Time::ZERO,
        },
        &config,
    );
    assert!(report.mk_assured());
    assert_eq!(
        report.stats.copies_lost, 0,
        "nothing existed to lose at t=0"
    );
    // The primary never executed anything.
    let trace = report.trace.unwrap();
    assert_eq!(trace.segments_on(ProcId::PRIMARY).count(), 0);
}

#[test]
fn both_processors_busy_forever_partition_exactly() {
    // Full utilization on both processors: no idle time at all.
    let ts = TaskSet::new(vec![Task::from_ms(10, 10, 10, 1, 2).unwrap()]).unwrap();
    struct Dup;
    impl Policy for Dup {
        fn name(&self) -> &str {
            "dup"
        }
        fn on_release(&mut self, _: &ReleaseCtx<'_>) -> ReleaseDecision {
            ReleaseDecision::Mandatory {
                main_proc: ProcId::PRIMARY,
                backup_delay: Time::ZERO,
            }
        }
    }
    let report = simulate(&ts, &mut Dup, &SimConfig::new(Time::from_ms(100)));
    for e in &report.energy {
        // The Dup policy duplicates *every* job and C = P: both
        // processors are saturated, zero idle time.
        assert_eq!(e.busy_time, Time::from_ms(100));
        assert_eq!(e.idle_time, Time::ZERO);
    }
    assert!(report.mk_assured());
}
