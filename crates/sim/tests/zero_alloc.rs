//! Pins the zero-allocation contract of the reusable-workspace hot path:
//! once a [`SimWorkspace`] is warmed, a `record_trace = false` run
//! performs only a tiny, *horizon-independent* number of heap
//! allocations (the report's policy-name `String` and nothing per
//! event). A counting `#[global_allocator]` makes regressions — a
//! reintroduced per-event `clone()`, an ungated trace push — fail
//! loudly rather than silently costing throughput.
//!
//! The library itself forbids unsafe code; the allocator shim lives
//! here, in the test crate, where `unsafe` is unavoidable by design.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mkss_core::prelude::*;
use mkss_sim::prelude::*;

/// Passthrough to the system allocator that counts allocation calls
/// (`alloc` and `realloc`; frees are irrelevant to the contract).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation-free policy: duplicates every job with a fixed placement,
/// exercising both processors, cancellation, and deadline resolution.
struct Dup;
impl Policy for Dup {
    fn name(&self) -> &str {
        "dup"
    }
    fn on_release(&mut self, _: &ReleaseCtx<'_>) -> ReleaseDecision {
        ReleaseDecision::Mandatory {
            main_proc: ProcId::PRIMARY,
            backup_delay: Time::from_ms(1),
        }
    }
}

/// Minimum allocation count over several repetitions. The global
/// counter also sees the test harness's own threads (progress output,
/// buffering); taking the minimum filters that unrelated noise out of
/// the measured window.
fn allocations_during(mut f: impl FnMut()) -> u64 {
    (0..8)
        .map(|_| {
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            f();
            ALLOCATIONS.load(Ordering::Relaxed) - before
        })
        .min()
        .unwrap()
}

/// One test function (not several) so no sibling test's allocations can
/// interleave with the measured windows.
#[test]
fn warmed_workspace_runs_allocate_constantly_and_sparsely() {
    // Sanity: the shim actually counts.
    let probe = allocations_during(|| {
        std::hint::black_box(Vec::<u64>::with_capacity(32));
    });
    assert!(probe >= 1, "counting allocator is not wired up");

    let ts = TaskSet::new(vec![
        Task::from_ms(5, 5, 2, 2, 3).unwrap(),
        Task::from_ms(10, 10, 3, 1, 2).unwrap(),
        Task::from_ms(20, 20, 4, 3, 4).unwrap(),
    ])
    .unwrap();
    let short = SimConfig::builder().horizon_ms(400).build();
    let long = SimConfig::builder().horizon_ms(1600).build();

    let mut ws = SimWorkspace::new();
    // Warm at the *longest* horizon so every arena reaches steady-state
    // capacity before anything is measured.
    let warm = simulate_in(&mut ws, &ts, &mut Dup, &long);
    assert!(warm.mk_assured());

    let short_allocs = allocations_during(|| {
        std::hint::black_box(simulate_in(&mut ws, &ts, &mut Dup, &short));
    });
    let long_allocs = allocations_during(|| {
        std::hint::black_box(simulate_in(&mut ws, &ts, &mut Dup, &long));
    });

    // 4x the horizon => 4x the events. Any per-event allocation shows up
    // as a difference between the two counts.
    assert_eq!(
        short_allocs, long_allocs,
        "per-event allocations detected: {short_allocs} allocs at 400 ms \
         vs {long_allocs} at 1600 ms"
    );
    // The constant per-run overhead is the report's policy-name String
    // (plus dropping the report). Allow slack for allocator-internal
    // bookkeeping, but a stray clone of a queue would blow well past it.
    assert!(
        long_allocs <= 4,
        "hot path allocates too much per run: {long_allocs} allocations"
    );
}
