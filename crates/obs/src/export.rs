//! Exporters: the JSON metrics document and the human text table.
//!
//! The JSON writer is hand-rolled (this crate has no serde) but emits a
//! strict, deterministic subset: object keys in catalog/insertion order,
//! `\u`-escaped control characters, and non-finite floats clamped to `0`
//! so the document always parses.

use crate::event::HistogramId;
use crate::registry::MetricsSnapshot;

/// A complete metrics document: free-form metadata, the counter/histogram
/// snapshot, and named stage wall-times.
///
/// Top-level JSON keys are fixed — `meta`, `counters`, `histograms`,
/// `stages` — and validated by `scripts/ci.sh`. Counters and histograms
/// are deterministic across `--jobs`; `meta` and `stages` carry the
/// machine-dependent context (compare with them stripped, as
/// `RunStats::strip_timing` does).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsDoc {
    meta: Vec<(String, String)>,
    snapshot: MetricsSnapshot,
    stages: Vec<(String, f64)>,
}

impl MetricsDoc {
    /// Wrap a snapshot with no metadata or stages yet.
    pub fn new(snapshot: MetricsSnapshot) -> MetricsDoc {
        MetricsDoc {
            meta: Vec::new(),
            snapshot,
            stages: Vec::new(),
        }
    }

    /// Append a metadata entry (insertion order is preserved).
    pub fn push_meta(&mut self, key: &str, value: impl Into<String>) {
        self.meta.push((key.to_string(), value.into()));
    }

    /// Append a stage wall-time in milliseconds.
    pub fn push_stage(&mut self, name: &str, ms: f64) {
        self.stages.push((name.to_string(), ms));
    }

    /// The wrapped snapshot.
    pub fn snapshot(&self) -> &MetricsSnapshot {
        &self.snapshot
    }

    /// Serialize as a pretty-printed JSON object with the four fixed
    /// top-level keys.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n  \"meta\": {");
        for (i, (key, value)) in self.meta.iter().enumerate() {
            push_sep(&mut out, i, "    ");
            push_json_string(&mut out, key);
            out.push_str(": ");
            push_json_string(&mut out, value);
        }
        close_object(&mut out, self.meta.is_empty(), "  ");

        out.push_str(",\n  \"counters\": {");
        for (i, (name, value)) in self.snapshot.iter_counters().enumerate() {
            push_sep(&mut out, i, "    ");
            push_json_string(&mut out, name);
            out.push_str(": ");
            out.push_str(&value.to_string());
        }
        close_object(&mut out, false, "  ");

        out.push_str(",\n  \"histograms\": {");
        for (i, &h) in HistogramId::ALL.iter().enumerate() {
            push_sep(&mut out, i, "    ");
            push_json_string(&mut out, h.name());
            out.push_str(": {\"bounds\": ");
            push_u64_array(&mut out, h.bounds());
            out.push_str(", \"counts\": ");
            push_u64_array(&mut out, self.snapshot.histogram(h));
            out.push('}');
        }
        close_object(&mut out, false, "  ");

        out.push_str(",\n  \"stages\": {");
        for (i, (name, ms)) in self.stages.iter().enumerate() {
            push_sep(&mut out, i, "    ");
            push_json_string(&mut out, name);
            out.push_str(": ");
            push_json_f64(&mut out, *ms);
        }
        close_object(&mut out, self.stages.is_empty(), "  ");

        out.push_str("\n}\n");
        out
    }

    /// Serialize as a compact single-line JSON object — same fixed keys
    /// and ordering as [`MetricsDoc::to_json`], no whitespace. This is
    /// the wire form used by the `mkss-serve` line protocol, where a
    /// document must fit one response line.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"meta\":{");
        for (i, (key, value)) in self.meta.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, key);
            out.push(':');
            push_json_string(&mut out, value);
        }
        out.push_str("},\"counters\":{");
        for (i, (name, value)) in self.snapshot.iter_counters().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            out.push(':');
            out.push_str(&value.to_string());
        }
        out.push_str("},\"histograms\":{");
        for (i, &h) in HistogramId::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, h.name());
            out.push_str(":{\"bounds\":");
            push_compact_u64_array(&mut out, h.bounds());
            out.push_str(",\"counts\":");
            push_compact_u64_array(&mut out, self.snapshot.histogram(h));
            out.push('}');
        }
        out.push_str("},\"stages\":{");
        for (i, (name, ms)) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            out.push(':');
            push_json_f64(&mut out, *ms);
        }
        out.push_str("}}");
        out
    }

    /// Render as an aligned human-readable table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.meta.is_empty() {
            for (key, value) in &self.meta {
                out.push_str(&format!("# {key}: {value}\n"));
            }
        }
        let name_width = self
            .snapshot
            .iter_counters()
            .map(|(name, _)| name.len())
            .max()
            .unwrap_or(0);
        for (name, value) in self.snapshot.iter_counters() {
            out.push_str(&format!("{name:<name_width$}  {value}\n"));
        }
        for &h in HistogramId::ALL.iter() {
            let counts = self.snapshot.histogram(h);
            let total: u64 = counts.iter().sum();
            out.push_str(&format!("{} (n={total}):", h.name()));
            for (i, &count) in counts.iter().enumerate() {
                match h.bounds().get(i) {
                    Some(bound) => out.push_str(&format!(" <={bound}:{count}")),
                    None => out.push_str(&format!(" over:{count}")),
                }
            }
            out.push('\n');
        }
        if !self.stages.is_empty() {
            for (name, ms) in &self.stages {
                out.push_str(&format!("stage {name}: {ms:.1} ms\n"));
            }
        }
        out
    }
}

/// Build the standard metrics document every `mkss` binary emits, in one
/// place: the `binary` identity first, then caller metadata in order,
/// then the snapshot and stage timings.
///
/// Before this entry point existed each binary hand-assembled its
/// `MetricsDoc` (same keys, different code); unifying the assembly keeps
/// `scripts/ci.sh`'s schema validation honest — there is exactly one
/// producer shape to validate.
pub fn metrics_doc(
    binary: &str,
    snapshot: MetricsSnapshot,
    meta: &[(&str, String)],
    stages: &[(&str, f64)],
) -> MetricsDoc {
    let mut doc = MetricsDoc::new(snapshot);
    doc.push_meta("binary", binary);
    for (key, value) in meta {
        doc.push_meta(key, value.clone());
    }
    for (name, ms) in stages {
        doc.push_stage(name, *ms);
    }
    doc
}

fn push_compact_u64_array(out: &mut String, values: &[u64]) {
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

fn push_sep(out: &mut String, index: usize, indent: &str) {
    if index > 0 {
        out.push(',');
    }
    out.push('\n');
    out.push_str(indent);
}

fn close_object(out: &mut String, empty: bool, indent: &str) {
    if !empty {
        out.push('\n');
        out.push_str(indent);
    }
    out.push('}');
}

fn push_u64_array(out: &mut String, values: &[u64]) {
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

/// Escape and quote `s` per RFC 8259.
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Write a float that always parses as a JSON number (NaN/inf clamp to 0).
fn push_json_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        out.push_str(&format!("{value:.3}"));
    } else {
        out.push('0');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CounterId;
    use crate::recorder::Recorder;
    use crate::registry::Registry;
    use std::sync::Arc;

    fn sample_doc() -> MetricsDoc {
        let registry = Arc::new(Registry::new(2));
        let h = registry.handle_at(0);
        h.incr(CounterId::JobsReleased, 10);
        h.incr(CounterId::BackupsCanceled, 3);
        h.observe(HistogramId::MkDistance, 1);
        h.observe(HistogramId::BackupDelayMs, 99);
        let mut doc = MetricsDoc::new(registry.snapshot());
        doc.push_meta("binary", "test");
        doc.push_stage("simulate_ms", 12.5);
        doc
    }

    #[test]
    fn json_has_fixed_top_level_keys_and_values() {
        let json = sample_doc().to_json();
        for key in ["\"meta\"", "\"counters\"", "\"histograms\"", "\"stages\""] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("\"jobs_released\": 10"), "{json}");
        assert!(json.contains("\"backups_canceled\": 3"), "{json}");
        assert!(json.contains("\"simulate_ms\": 12.500"), "{json}");
        // Overflow bucket of backup_delay_ms caught the 99.
        assert!(json.contains("\"backup_delay_ms\""), "{json}");
    }

    #[test]
    fn json_escapes_strings_and_clamps_non_finite() {
        let mut doc = MetricsDoc::new(MetricsSnapshot::empty());
        doc.push_meta("quote\"back\\slash", "line\nbreak\ttab\u{1}");
        doc.push_stage("bad", f64::NAN);
        doc.push_stage("inf", f64::INFINITY);
        let json = doc.to_json();
        assert!(json.contains("quote\\\"back\\\\slash"), "{json}");
        assert!(json.contains("line\\nbreak\\ttab\\u0001"), "{json}");
        assert!(json.contains("\"bad\": 0"), "{json}");
        assert!(json.contains("\"inf\": 0"), "{json}");
    }

    #[test]
    fn empty_doc_still_emits_all_sections() {
        let json = MetricsDoc::new(MetricsSnapshot::empty()).to_json();
        assert!(json.contains("\"meta\": {}"), "{json}");
        assert!(json.contains("\"stages\": {}"), "{json}");
        assert!(json.contains("\"jobs_released\": 0"), "{json}");
    }

    #[test]
    fn json_line_is_single_line_and_compact() {
        let line = sample_doc().to_json_line();
        assert!(!line.contains('\n'), "{line}");
        assert!(line.starts_with("{\"meta\":{"), "{line}");
        assert!(line.contains("\"jobs_released\":10"), "{line}");
        assert!(line.contains("\"simulate_ms\":12.500"), "{line}");
        assert!(line.ends_with("}}"), "{line}");
    }

    #[test]
    fn json_line_matches_pretty_json_modulo_whitespace() {
        let doc = sample_doc();
        let pretty: String = doc.to_json().split_whitespace().collect();
        // The pretty writer puts ", " inside arrays and ": " after keys;
        // stripping all whitespace makes the two renderings identical.
        assert_eq!(pretty, doc.to_json_line());
    }

    #[test]
    fn metrics_doc_entry_point_orders_meta_and_stages() {
        let doc = metrics_doc(
            "bench_fig6",
            MetricsSnapshot::empty(),
            &[("seed", "42".to_string()), ("policy", "all".to_string())],
            &[("simulate_ms", 1.5), ("total_ms", 2.0)],
        );
        let json = doc.to_json();
        let binary_at = json.find("\"binary\": \"bench_fig6\"").expect("binary key");
        let seed_at = json.find("\"seed\": \"42\"").expect("seed key");
        let policy_at = json.find("\"policy\": \"all\"").expect("policy key");
        assert!(binary_at < seed_at && seed_at < policy_at, "{json}");
        assert!(json.contains("\"simulate_ms\": 1.500"), "{json}");
        assert!(json.contains("\"total_ms\": 2.000"), "{json}");
    }

    #[test]
    fn table_lists_counters_histograms_and_stages() {
        let table = sample_doc().render_table();
        assert!(table.contains("# binary: test"), "{table}");
        assert!(table.contains("jobs_released"), "{table}");
        assert!(table.contains("mk_distance (n=1):"), "{table}");
        assert!(table.contains("over:1"), "{table}");
        assert!(table.contains("stage simulate_ms: 12.5 ms"), "{table}");
    }
}
