//! Minimal wall-clock span timing for harness stages.

use std::time::Instant;

/// A started wall-clock timer.
///
/// Stage timings are machine-dependent by nature; everything measured with
/// this type must flow into fields that `RunStats::strip_timing` zeroes so
/// determinism checks can exclude them.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            // mkss-lint: allow(nondeterminism) — Stopwatch is the harness timing primitive; readings go to stderr/stage stats, never results
            start: Instant::now(),
        }
    }

    /// Milliseconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// Whole microseconds elapsed since [`Stopwatch::start`], saturating
    /// at `u64::MAX`. Integer-valued so readings can feed histograms
    /// (e.g. `serve_op_latency_us`) without float rounding drift.
    pub fn elapsed_us(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Whole milliseconds elapsed since [`Stopwatch::start`], rounded up.
    ///
    /// The integer counterpart of [`Stopwatch::elapsed_ms`]: use this for
    /// anything that feeds a histogram or an integer wire field (daemon
    /// uptime, latency buckets), so no float round-trip sits between the
    /// clock and the stored value.
    pub fn elapsed_ms_ceil(&self) -> u64 {
        self.elapsed_us().div_ceil(1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic_and_nonnegative() {
        let watch = Stopwatch::start();
        let first = watch.elapsed_ms();
        let second = watch.elapsed_ms();
        assert!(first >= 0.0);
        assert!(second >= first);
    }

    #[test]
    fn millisecond_ceiling_rounds_up_from_microseconds() {
        let watch = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let us = watch.elapsed_us();
        let ms = watch.elapsed_ms_ceil();
        assert!(ms >= 1, "2ms sleep reads as at least 1ms");
        // Ceiling of an earlier reading never exceeds a later reading's.
        assert!(ms >= us.div_ceil(1000), "{ms} < ceil({us}/1000)");
    }

    #[test]
    fn microsecond_readings_are_monotonic() {
        let watch = Stopwatch::start();
        let first = watch.elapsed_us();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let second = watch.elapsed_us();
        assert!(second > first, "{second} <= {first}");
    }
}
