//! Minimal wall-clock span timing for harness stages.

use std::time::Instant;

/// A started wall-clock timer.
///
/// Stage timings are machine-dependent by nature; everything measured with
/// this type must flow into fields that `RunStats::strip_timing` zeroes so
/// determinism checks can exclude them.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            // mkss-lint: allow(nondeterminism) — Stopwatch is the harness timing primitive; readings go to stderr/stage stats, never results
            start: Instant::now(),
        }
    }

    /// Milliseconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// Whole microseconds elapsed since [`Stopwatch::start`], saturating
    /// at `u64::MAX`. Integer-valued so readings can feed histograms
    /// (e.g. `serve_op_latency_us`) without float rounding drift.
    pub fn elapsed_us(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic_and_nonnegative() {
        let watch = Stopwatch::start();
        let first = watch.elapsed_ms();
        let second = watch.elapsed_ms();
        assert!(first >= 0.0);
        assert!(second >= first);
    }

    #[test]
    fn microsecond_readings_are_monotonic() {
        let watch = Stopwatch::start();
        let first = watch.elapsed_us();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let second = watch.elapsed_us();
        assert!(second > first, "{second} <= {first}");
    }
}
