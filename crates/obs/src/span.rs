//! Minimal wall-clock span timing for harness stages.

use std::time::Instant;

/// A started wall-clock timer.
///
/// Stage timings are machine-dependent by nature; everything measured with
/// this type must flow into fields that `RunStats::strip_timing` zeroes so
/// determinism checks can exclude them.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            // mkss-lint: allow(nondeterminism) — Stopwatch is the harness timing primitive; readings go to stderr/stage stats, never results
            start: Instant::now(),
        }
    }

    /// Milliseconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic_and_nonnegative() {
        let watch = Stopwatch::start();
        let first = watch.elapsed_ms();
        let second = watch.elapsed_ms();
        assert!(first >= 0.0);
        assert!(second >= first);
    }
}
