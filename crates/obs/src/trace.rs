//! The flight recorder: a pre-allocated ring buffer of structured engine
//! events, plus the exporters that turn a captured buffer into something a
//! human (or Perfetto) can read.
//!
//! The counter catalog answers "how many"; this module answers "in what
//! order, and why". The engine feeds [`Recorder::event`] one packed
//! [`EngineEvent`] per semantic step — release, classification, backup
//! postponement, cancellation, fault, resolution — and a [`TraceRecorder`]
//! copies them into a fixed-capacity [`TraceBuffer`] that never allocates
//! after construction (the same pre-sizing discipline as the engine's event
//! calendar). Everything downstream — the Chrome Trace Event export
//! ([`chrome_trace`]), the plain-text timeline ([`timeline_text`]), and the
//! (m,k) violation forensics ([`violation_reports`]) — is a pure function
//! of the buffer, so trace output is deterministic and golden-testable.

use std::sync::{Arc, Mutex, MutexGuard};

use crate::event::{CounterId, HistogramId};
use crate::recorder::Recorder;

/// A poisoned buffer mutex just means another recorder panicked mid-push;
/// keep capturing rather than cascading the panic (same recovery as the
/// reporter's sink lock).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Default [`TraceBuffer`] capacity for command-line captures: enough for
/// every event of a Section-V-scale run without resizing.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Sentinel processor id for engine-level events that belong to no
/// processor track (job resolutions, (m,k) violations, stalls).
pub const PROC_NONE: u8 = u8::MAX;

/// What one trace event records — the structured counterpart of the
/// counter catalog, covering the paper's full release / classification /
/// postponement / cancellation / fault / resolution stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum TraceKind {
    /// A mandatory job released; payload = main-copy DVS speed in permil.
    MandatoryRelease,
    /// An optional job admitted; payload = flexibility degree at release.
    OptionalSelect,
    /// An optional job skipped at release; payload = flexibility degree.
    OptionalSkip,
    /// An admitted optional copy abandoned as infeasible.
    OptionalAbandon,
    /// A backup copy released on the spare; payload = postponement θ in
    /// ticks (`r̃ = r + θ`; zero means not postponed). The event time is
    /// the *effective* release `r̃`.
    BackupRelease,
    /// A pending backup canceled because its sibling finished fault-free.
    BackupCancel,
    /// A backup copy ran to completion; payload = 1 if it faulted.
    BackupComplete,
    /// An optional copy ran to completion fault-free.
    OptionalComplete,
    /// A transient fault sampled onto a completing copy.
    TransientFault,
    /// A permanent processor fault; the `proc` field names the casualty.
    PermanentFault,
    /// A pending copy lost to a permanent processor fault.
    CopyLost,
    /// A job met *because* a backup covered a failed or lost main copy.
    FaultRecovered,
    /// A job resolved as met; payload = (m,k) distance-to-violation after
    /// recording the outcome.
    JobMet,
    /// A job resolved as missed; payload = distance-to-violation after.
    JobMissed,
    /// A task's (m,k) window newly entered violation; payload packs the
    /// constraint as `(m << 32) | k`.
    MkViolation,
    /// The event loop aborted on a non-advancing next-event time.
    EngineStall,
}

impl TraceKind {
    /// Number of event kinds in the catalog.
    pub const COUNT: usize = 16;

    /// Every kind, in catalog order.
    pub const ALL: [TraceKind; Self::COUNT] = [
        TraceKind::MandatoryRelease,
        TraceKind::OptionalSelect,
        TraceKind::OptionalSkip,
        TraceKind::OptionalAbandon,
        TraceKind::BackupRelease,
        TraceKind::BackupCancel,
        TraceKind::BackupComplete,
        TraceKind::OptionalComplete,
        TraceKind::TransientFault,
        TraceKind::PermanentFault,
        TraceKind::CopyLost,
        TraceKind::FaultRecovered,
        TraceKind::JobMet,
        TraceKind::JobMissed,
        TraceKind::MkViolation,
        TraceKind::EngineStall,
    ];

    /// Stable snake_case export name.
    pub const fn name(self) -> &'static str {
        match self {
            TraceKind::MandatoryRelease => "mandatory_release",
            TraceKind::OptionalSelect => "optional_select",
            TraceKind::OptionalSkip => "optional_skip",
            TraceKind::OptionalAbandon => "optional_abandon",
            TraceKind::BackupRelease => "backup_release",
            TraceKind::BackupCancel => "backup_cancel",
            TraceKind::BackupComplete => "backup_complete",
            TraceKind::OptionalComplete => "optional_complete",
            TraceKind::TransientFault => "transient_fault",
            TraceKind::PermanentFault => "permanent_fault",
            TraceKind::CopyLost => "copy_lost",
            TraceKind::FaultRecovered => "fault_recovered",
            TraceKind::JobMet => "job_met",
            TraceKind::JobMissed => "job_missed",
            TraceKind::MkViolation => "mk_violation",
            TraceKind::EngineStall => "engine_stall",
        }
    }
}

/// Which copy of a job an event refers to, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CopyRole {
    /// The event is about the job or the engine, not a specific copy.
    None,
    /// The main (primary-processor) copy.
    Main,
    /// The standby-sparing backup copy.
    Backup,
    /// An optional-job copy.
    Optional,
}

impl CopyRole {
    /// Stable snake_case export name.
    pub const fn name(self) -> &'static str {
        match self {
            CopyRole::None => "none",
            CopyRole::Main => "main",
            CopyRole::Backup => "backup",
            CopyRole::Optional => "optional",
        }
    }
}

/// One structured engine event, as handed to [`Recorder::event`].
///
/// A stack-built `Copy` value: emit sites construct it inline inside the
/// recorder gate, so with no recorder attached the cost stays one branch
/// and zero allocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineEvent {
    /// Simulated time in ticks (one tick is one microsecond).
    pub at_us: u64,
    /// What happened.
    pub kind: TraceKind,
    /// Task index within the task set (0 for engine-level events).
    pub task: u32,
    /// Job index within the task (0 for engine-level events).
    pub job: u32,
    /// Which copy the event refers to, if any.
    pub copy: CopyRole,
    /// Processor index, or [`PROC_NONE`] for engine-level events.
    pub proc: u8,
    /// Kind-specific detail (see [`TraceKind`] variant docs).
    pub payload: u64,
}

/// One captured flight-recorder record: the event plus its monotonically
/// increasing capture sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Position in the capture stream (0-based, never reused within a
    /// run; survives ring wrap-around so drops are visible as seq gaps).
    pub seq: u64,
    /// The captured event.
    pub event: EngineEvent,
}

/// A fixed-capacity ring of [`TraceEvent`] records.
///
/// The full capacity is allocated up front; once full, new events
/// overwrite the oldest, so the buffer always holds the *last*
/// `capacity` events. Pushing never allocates — the flight-recorder
/// counterpart of the engine's pre-sized event calendar.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    events: Vec<TraceEvent>,
    capacity: usize,
    head: usize,
    next_seq: u64,
}

impl TraceBuffer {
    /// Allocate a buffer holding up to `capacity` events (at least one).
    pub fn with_capacity(capacity: usize) -> TraceBuffer {
        let capacity = capacity.max(1);
        TraceBuffer {
            events: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            next_seq: 0,
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded (or everything was cleared).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever pushed, including ones the ring overwrote.
    pub fn total_recorded(&self) -> u64 {
        self.next_seq
    }

    /// Events pushed but no longer retained.
    pub fn dropped(&self) -> u64 {
        self.next_seq - self.events.len() as u64
    }

    /// Forget every event but keep the allocation and capacity.
    pub fn clear(&mut self) {
        self.events.clear();
        self.head = 0;
        self.next_seq = 0;
    }

    /// Append one event, overwriting the oldest once full. Returns the
    /// capture sequence number assigned to it.
    pub fn push(&mut self, event: EngineEvent) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let record = TraceEvent { seq, event };
        if self.events.len() < self.capacity {
            self.events.push(record);
        } else {
            self.events[self.head] = record;
            self.head = (self.head + 1) % self.capacity;
        }
        seq
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events[self.head..]
            .iter()
            .chain(&self.events[..self.head])
    }
}

/// A [`Recorder`] decorator that captures the structured event stream
/// into a [`TraceBuffer`] while forwarding everything — counters,
/// histograms, and the events themselves — to an optional inner recorder.
///
/// Like every recorder it is oblivious: attaching one leaves the
/// simulation byte-identical. The buffer is fully pre-allocated at
/// construction, so recording never allocates per event.
pub struct TraceRecorder {
    inner: Option<Arc<dyn Recorder>>,
    buffer: Mutex<TraceBuffer>,
}

impl TraceRecorder {
    /// A stand-alone trace capture with no inner recorder.
    pub fn with_capacity(capacity: usize) -> TraceRecorder {
        TraceRecorder {
            inner: None,
            buffer: Mutex::new(TraceBuffer::with_capacity(capacity)),
        }
    }

    /// Capture the event stream while forwarding everything to `inner`.
    pub fn wrapping(inner: Arc<dyn Recorder>, capacity: usize) -> TraceRecorder {
        TraceRecorder {
            inner: Some(inner),
            buffer: Mutex::new(TraceBuffer::with_capacity(capacity)),
        }
    }

    /// A copy of the captured buffer as of now.
    pub fn snapshot(&self) -> TraceBuffer {
        lock(&self.buffer).clone()
    }

    /// Take the captured buffer, leaving an empty one of the same
    /// capacity in place.
    pub fn take(&self) -> TraceBuffer {
        let mut guard = lock(&self.buffer);
        let capacity = guard.capacity();
        std::mem::replace(&mut guard, TraceBuffer::with_capacity(capacity))
    }
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let buffer = lock(&self.buffer);
        f.debug_struct("TraceRecorder")
            .field("inner", &self.inner.is_some())
            .field("len", &buffer.len())
            .field("capacity", &buffer.capacity())
            .finish_non_exhaustive()
    }
}

impl Recorder for TraceRecorder {
    #[inline]
    fn incr(&self, counter: CounterId, by: u64) {
        if let Some(inner) = &self.inner {
            inner.incr(counter, by);
        }
    }

    #[inline]
    fn observe(&self, histogram: HistogramId, value: u64) {
        if let Some(inner) = &self.inner {
            inner.observe(histogram, value);
        }
    }

    fn event(&self, event: &EngineEvent) {
        if let Some(inner) = &self.inner {
            inner.event(event);
        }
        lock(&self.buffer).push(*event);
    }
}

// ----- exporters -------------------------------------------------------

fn proc_tid(proc: u8) -> u8 {
    if proc == PROC_NONE {
        2
    } else {
        proc
    }
}

/// One plain-text timeline line for an event (no trailing newline).
fn timeline_line(record: &TraceEvent) -> String {
    let e = &record.event;
    let proc = if e.proc == PROC_NONE {
        "-".to_string()
    } else {
        e.proc.to_string()
    };
    format!(
        "t={:>9}us seq={:<6} {:<18} task={:<3} job={:<5} copy={:<8} proc={} payload={}",
        e.at_us,
        record.seq,
        e.kind.name(),
        e.task,
        e.job,
        e.copy.name(),
        proc,
        e.payload
    )
}

/// Render the buffer as a plain-text timeline, oldest event first —
/// a pure function of the buffer, so output is deterministic.
pub fn timeline_text(buffer: &TraceBuffer) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# trace: {} events retained, {} recorded, {} dropped\n",
        buffer.len(),
        buffer.total_recorded(),
        buffer.dropped()
    ));
    for record in buffer.iter() {
        out.push_str(&timeline_line(record));
        out.push('\n');
    }
    out
}

/// Export labeled capture buffers as Chrome Trace Event JSON — loads in
/// Perfetto or `chrome://tracing`.
///
/// Each `(label, buffer)` run becomes one process (pid = position + 1)
/// named by its label, with one thread track per processor (`primary`,
/// `spare`) plus an `engine` track for processor-less events. Every
/// event renders as an instant ("i"); each mandatory release whose
/// backup later completed or was canceled additionally opens a nestable
/// async span ("b" on the primary track, "e" on the backup's terminal
/// event) so Perfetto draws the primary→backup pairing as an arrow.
///
/// Pure function of its inputs: the same buffers produce byte-identical
/// JSON, which is what the CI trace gate pins.
pub fn chrome_trace(runs: &[(&str, &TraceBuffer)]) -> String {
    let mut entries: Vec<String> = Vec::new();
    for (i, (label, buffer)) in runs.iter().enumerate() {
        let pid = i + 1;
        entries.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\"args\":{{\"name\":{}}}}}",
            json_string(label)
        ));
        for (tid, name) in [(0, "primary"), (1, "spare"), (2, "engine")] {
            entries.push(format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"{name}\"}}}}"
            ));
        }
        // Primary→backup pairs: a mandatory release opens an async span
        // only when the matching backup terminal event is also retained,
        // so every "b" has its "e".
        let mut pairs: std::collections::BTreeMap<(u32, u32), (bool, bool)> =
            std::collections::BTreeMap::new();
        for record in buffer.iter() {
            let e = &record.event;
            match e.kind {
                TraceKind::MandatoryRelease => {
                    pairs.entry((e.task, e.job)).or_insert((false, false)).0 = true;
                }
                TraceKind::BackupCancel | TraceKind::BackupComplete => {
                    pairs.entry((e.task, e.job)).or_insert((false, false)).1 = true;
                }
                TraceKind::CopyLost if e.copy == CopyRole::Backup => {
                    pairs.entry((e.task, e.job)).or_insert((false, false)).1 = true;
                }
                _ => {}
            }
        }
        let mut closed: std::collections::BTreeMap<(u32, u32), bool> =
            std::collections::BTreeMap::new();
        for record in buffer.iter() {
            let e = &record.event;
            entries.push(format!(
                "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"s\":\"t\",\"name\":\"{name}\",\"args\":{{\"seq\":{seq},\"task\":{task},\"job\":{job},\"copy\":\"{copy}\",\"payload\":{payload}}}}}",
                tid = proc_tid(e.proc),
                ts = e.at_us,
                name = e.kind.name(),
                seq = record.seq,
                task = e.task,
                job = e.job,
                copy = e.copy.name(),
                payload = e.payload,
            ));
            let key = (e.task, e.job);
            let paired = pairs.get(&key) == Some(&(true, true));
            let is_terminal = matches!(e.kind, TraceKind::BackupCancel | TraceKind::BackupComplete)
                || (e.kind == TraceKind::CopyLost && e.copy == CopyRole::Backup);
            if paired && e.kind == TraceKind::MandatoryRelease && !closed.contains_key(&key) {
                closed.insert(key, false);
                entries.push(format!(
                    "{{\"ph\":\"b\",\"cat\":\"backup\",\"id\":\"p{pid}.t{task}.j{job}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"name\":\"primary->backup\",\"args\":{{\"task\":{task},\"job\":{job}}}}}",
                    task = e.task,
                    job = e.job,
                    tid = proc_tid(e.proc),
                    ts = e.at_us,
                ));
            }
            if is_terminal && closed.get(&key) == Some(&false) {
                closed.insert(key, true);
                entries.push(format!(
                    "{{\"ph\":\"e\",\"cat\":\"backup\",\"id\":\"p{pid}.t{task}.j{job}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"name\":\"primary->backup\",\"args\":{{}}}}",
                    task = e.task,
                    job = e.job,
                    tid = proc_tid(e.proc),
                    ts = e.at_us,
                ));
            }
        }
    }
    let mut out = String::with_capacity(64 + entries.len() * 96);
    out.push_str("{\"traceEvents\":[\n");
    out.push_str(&entries.join(",\n"));
    out.push_str("\n]}\n");
    out
}

/// Render the buffer as a compact single-line JSON object fragment —
/// `{"capacity":…,"recorded":…,"dropped":…,"events":[…]}` — the wire
/// form embedded in `mkss-serve` response lines.
pub fn trace_json_fragment(buffer: &TraceBuffer) -> String {
    let mut out = String::with_capacity(64 + buffer.len() * 80);
    out.push_str(&format!(
        "{{\"capacity\":{},\"recorded\":{},\"dropped\":{},\"events\":[",
        buffer.capacity(),
        buffer.total_recorded(),
        buffer.dropped()
    ));
    for (i, record) in buffer.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let e = &record.event;
        out.push_str(&format!(
            "{{\"t\":{},\"seq\":{},\"kind\":\"{}\",\"task\":{},\"job\":{},\"copy\":\"{}\",\"proc\":{},\"payload\":{}}}",
            e.at_us,
            record.seq,
            e.kind.name(),
            e.task,
            e.job,
            e.copy.name(),
            if e.proc == PROC_NONE {
                "null".to_string()
            } else {
                e.proc.to_string()
            },
            e.payload,
        ));
    }
    out.push_str("]}");
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ----- violation forensics ---------------------------------------------

/// Everything needed to explain one (m,k) violation after the fact: the
/// constraint, the k-sequence window that tipped over, and the task's
/// recent event history from the flight recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViolationReport {
    /// Task whose window violated.
    pub task: u32,
    /// Simulated time of the violation in ticks (microseconds).
    pub at_us: u64,
    /// Capture sequence number of the trigger event.
    pub seq: u64,
    /// The constraint's `m` (0 when the trigger carries no constraint).
    pub m: u32,
    /// The constraint's `k` (0 when the trigger carries no constraint).
    pub k: u32,
    /// The task's most recent job outcomes, oldest first, tipping job
    /// last (`true` = met). At most `k` entries — fewer if the ring
    /// already dropped the older resolutions.
    pub window: Vec<bool>,
    /// The task's last events up to and including the trigger, oldest
    /// first, capped at the `last` argument of [`violation_reports`].
    pub events: Vec<TraceEvent>,
}

impl ViolationReport {
    /// Render the report as indented plain text for stderr forensics.
    pub fn render(&self) -> String {
        let mut out = format!(
            "(m,k) violation: task {} at t={}us (seq {}), constraint ({},{})\n",
            self.task, self.at_us, self.seq, self.m, self.k
        );
        let met = self.window.iter().filter(|&&m| m).count();
        let picture: String = self
            .window
            .iter()
            .map(|&m| if m { '+' } else { '-' })
            .collect();
        out.push_str(&format!(
            "  window (oldest..tipping): {picture} ({met} met of last {})\n",
            self.window.len()
        ));
        out.push_str("  recent events:\n");
        for record in &self.events {
            out.push_str("    ");
            out.push_str(&timeline_line(record));
            out.push('\n');
        }
        out
    }
}

/// Forensics with the default trigger: one report per retained
/// [`TraceKind::MkViolation`] event, each carrying the task's last
/// `last` events.
pub fn violation_reports(buffer: &TraceBuffer, last: usize) -> Vec<ViolationReport> {
    violation_reports_on(buffer, TraceKind::MkViolation, last)
}

/// Forensics with a configurable trigger kind: snapshot the triggering
/// task's last `last` events (and, for violation triggers, the
/// k-sequence window reconstructed from its resolution events) at every
/// retained occurrence of `trigger`.
pub fn violation_reports_on(
    buffer: &TraceBuffer,
    trigger: TraceKind,
    last: usize,
) -> Vec<ViolationReport> {
    let records: Vec<&TraceEvent> = buffer.iter().collect();
    let mut reports = Vec::new();
    for (i, record) in records.iter().enumerate() {
        let e = &record.event;
        if e.kind != trigger {
            continue;
        }
        let (m, k) = if trigger == TraceKind::MkViolation {
            ((e.payload >> 32) as u32, e.payload as u32)
        } else {
            (0, 0)
        };
        // Walk backwards over this task's resolutions to rebuild the
        // window; the tipping job's resolution immediately precedes the
        // violation event in the capture stream.
        let mut window = Vec::new();
        if k > 0 {
            for past in records[..=i].iter().rev() {
                if past.event.task != e.task {
                    continue;
                }
                match past.event.kind {
                    TraceKind::JobMet => window.push(true),
                    TraceKind::JobMissed => window.push(false),
                    _ => continue,
                }
                if window.len() == k as usize {
                    break;
                }
            }
            window.reverse();
        }
        let mut events: Vec<TraceEvent> = records[..=i]
            .iter()
            .rev()
            .filter(|r| r.event.task == e.task)
            .take(last)
            .map(|r| **r)
            .collect();
        events.reverse();
        reports.push(ViolationReport {
            task: e.task,
            at_us: e.at_us,
            seq: record.seq,
            m,
            k,
            window,
            events,
        });
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_us: u64, kind: TraceKind, task: u32, job: u32, payload: u64) -> EngineEvent {
        EngineEvent {
            at_us,
            kind,
            task,
            job,
            copy: CopyRole::None,
            proc: PROC_NONE,
            payload,
        }
    }

    #[test]
    fn kind_names_are_unique_snake_case() {
        let mut seen = std::collections::HashSet::new();
        for kind in TraceKind::ALL {
            let name = kind.name();
            assert!(seen.insert(name), "duplicate kind name {name}");
            assert!(
                name.chars().all(|ch| ch.is_ascii_lowercase() || ch == '_'),
                "non-snake-case kind name {name}"
            );
        }
    }

    #[test]
    fn ring_retains_the_last_capacity_events() {
        let mut buffer = TraceBuffer::with_capacity(3);
        for i in 0..5 {
            assert_eq!(buffer.push(ev(i, TraceKind::JobMet, 0, i as u32, 0)), i);
        }
        assert_eq!(buffer.len(), 3);
        assert_eq!(buffer.total_recorded(), 5);
        assert_eq!(buffer.dropped(), 2);
        let seqs: Vec<u64> = buffer.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, [2, 3, 4], "oldest first, drops from the front");
    }

    #[test]
    fn ring_never_reallocates_after_construction() {
        let mut buffer = TraceBuffer::with_capacity(4);
        let capacity = buffer.events.capacity();
        for i in 0..100 {
            buffer.push(ev(i, TraceKind::JobMet, 0, 0, 0));
        }
        assert_eq!(buffer.events.capacity(), capacity);
    }

    #[test]
    fn clear_keeps_capacity_and_resets_sequence() {
        let mut buffer = TraceBuffer::with_capacity(2);
        buffer.push(ev(1, TraceKind::JobMet, 0, 0, 0));
        buffer.push(ev(2, TraceKind::JobMet, 0, 1, 0));
        buffer.push(ev(3, TraceKind::JobMet, 0, 2, 0));
        buffer.clear();
        assert!(buffer.is_empty());
        assert_eq!(buffer.capacity(), 2);
        assert_eq!(buffer.push(ev(4, TraceKind::JobMet, 0, 3, 0)), 0);
    }

    #[test]
    fn trace_recorder_captures_and_forwards() {
        use crate::registry::Registry;
        let registry = Arc::new(Registry::new(1));
        let recorder = TraceRecorder::wrapping(Arc::new(registry.handle_at(0)), 8);
        recorder.incr(CounterId::JobsMet, 2);
        recorder.observe(HistogramId::MkDistance, 1);
        recorder.event(&ev(10, TraceKind::JobMet, 1, 0, 3));
        let snap = registry.snapshot();
        assert_eq!(snap.counter(CounterId::JobsMet), 2);
        assert_eq!(snap.histogram(HistogramId::MkDistance)[1], 1);
        let buffer = recorder.snapshot();
        assert_eq!(buffer.len(), 1);
        assert_eq!(buffer.iter().next().expect("event").event.at_us, 10);
        let taken = recorder.take();
        assert_eq!(taken.len(), 1);
        assert!(recorder.snapshot().is_empty());
        assert_eq!(recorder.snapshot().capacity(), 8);
    }

    #[test]
    fn timeline_lists_events_oldest_first() {
        let mut buffer = TraceBuffer::with_capacity(8);
        buffer.push(ev(100, TraceKind::MandatoryRelease, 0, 0, 1000));
        buffer.push(ev(200, TraceKind::JobMet, 0, 0, 2));
        let text = timeline_text(&buffer);
        assert!(text.starts_with("# trace: 2 events retained, 2 recorded, 0 dropped\n"));
        let release = text.find("mandatory_release").expect("release line");
        let met = text.find("job_met").expect("met line");
        assert!(release < met, "{text}");
        assert!(text.contains("t=      100us"), "{text}");
    }

    #[test]
    fn chrome_trace_is_deterministic_and_labels_processes() {
        let mut buffer = TraceBuffer::with_capacity(8);
        let mut release = ev(100, TraceKind::MandatoryRelease, 0, 0, 1000);
        release.copy = CopyRole::Main;
        release.proc = 0;
        buffer.push(release);
        let mut cancel = ev(400, TraceKind::BackupCancel, 0, 0, 0);
        cancel.copy = CopyRole::Backup;
        cancel.proc = 1;
        buffer.push(cancel);
        let json = chrome_trace(&[("MKSS_selective", &buffer)]);
        assert_eq!(json, chrome_trace(&[("MKSS_selective", &buffer)]));
        assert!(json.starts_with("{\"traceEvents\":[\n"), "{json}");
        assert!(json.contains("\"process_name\",\"args\":{\"name\":\"MKSS_selective\"}"));
        assert!(json.contains("\"thread_name\",\"args\":{\"name\":\"primary\"}"));
        assert!(json.contains("\"ph\":\"i\""), "{json}");
        // The release/cancel pair opens and closes one async span.
        assert!(
            json.contains("\"ph\":\"b\",\"cat\":\"backup\",\"id\":\"p1.t0.j0\""),
            "{json}"
        );
        assert!(
            json.contains("\"ph\":\"e\",\"cat\":\"backup\",\"id\":\"p1.t0.j0\""),
            "{json}"
        );
    }

    #[test]
    fn chrome_trace_never_opens_an_unclosed_async_span() {
        let mut buffer = TraceBuffer::with_capacity(8);
        let mut release = ev(100, TraceKind::MandatoryRelease, 0, 0, 1000);
        release.proc = 0;
        buffer.push(release);
        let json = chrome_trace(&[("solo", &buffer)]);
        assert!(!json.contains("\"ph\":\"b\""), "{json}");
        assert!(!json.contains("\"ph\":\"e\""), "{json}");
    }

    #[test]
    fn json_fragment_is_compact_and_complete() {
        let mut buffer = TraceBuffer::with_capacity(2);
        buffer.push(ev(5, TraceKind::JobMissed, 2, 7, 1));
        let mut on_proc = ev(9, TraceKind::BackupRelease, 2, 8, 500);
        on_proc.proc = 1;
        on_proc.copy = CopyRole::Backup;
        buffer.push(on_proc);
        let json = trace_json_fragment(&buffer);
        assert!(!json.contains('\n'));
        assert!(json.starts_with("{\"capacity\":2,\"recorded\":2,\"dropped\":0,\"events\":["));
        assert!(json.contains(
            "\"kind\":\"job_missed\",\"task\":2,\"job\":7,\"copy\":\"none\",\"proc\":null"
        ));
        assert!(json.contains("\"kind\":\"backup_release\",\"task\":2,\"job\":8,\"copy\":\"backup\",\"proc\":1,\"payload\":500"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn violation_forensics_rebuild_the_tipping_window() {
        let mut buffer = TraceBuffer::with_capacity(32);
        // Task 1: met, missed, missed -> violation of (2,4); task 0 noise
        // interleaved to prove per-task filtering.
        buffer.push(ev(100, TraceKind::JobMet, 1, 0, 3));
        buffer.push(ev(150, TraceKind::JobMet, 0, 0, 2));
        buffer.push(ev(200, TraceKind::JobMissed, 1, 1, 1));
        buffer.push(ev(300, TraceKind::JobMissed, 1, 2, 0));
        buffer.push(ev(300, TraceKind::MkViolation, 1, 2, (2u64 << 32) | 4));
        let reports = violation_reports(&buffer, 3);
        assert_eq!(reports.len(), 1);
        let report = &reports[0];
        assert_eq!((report.task, report.m, report.k), (1, 2, 4));
        assert_eq!(report.at_us, 300);
        assert_eq!(
            report.window,
            [true, false, false],
            "oldest first, tipping last"
        );
        assert_eq!(report.events.len(), 3, "capped at last=3");
        assert!(report.events.iter().all(|r| r.event.task == 1));
        let text = report.render();
        assert!(text.contains("task 1 at t=300us"), "{text}");
        assert!(text.contains("constraint (2,4)"), "{text}");
        assert!(text.contains("+-- (1 met of last 3)"), "{text}");
    }

    #[test]
    fn configurable_trigger_reports_without_a_window() {
        let mut buffer = TraceBuffer::with_capacity(8);
        buffer.push(ev(10, TraceKind::JobMet, 0, 0, 2));
        buffer.push(ev(20, TraceKind::EngineStall, 0, 0, 0));
        let reports = violation_reports_on(&buffer, TraceKind::EngineStall, 8);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].k, 0);
        assert!(reports[0].window.is_empty());
        assert_eq!(reports[0].events.len(), 2);
    }

    #[test]
    fn buffer_clone_snapshots_are_independent() {
        let mut buffer = TraceBuffer::with_capacity(4);
        buffer.push(ev(1, TraceKind::JobMet, 0, 0, 0));
        let snap = buffer.clone();
        buffer.push(ev(2, TraceKind::JobMet, 0, 1, 0));
        assert_eq!(snap.len(), 1);
        assert_eq!(buffer.len(), 2);
    }
}
