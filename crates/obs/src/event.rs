//! The closed event catalog: every counter and histogram the engine or the
//! harness can emit, with stable snake_case names used by the exporters.

/// A named monotonic counter.
///
/// The discriminant doubles as the storage index ([`CounterId::index`]), so
/// the registry backs the whole catalog with a flat `[AtomicU64; COUNT]`
/// per shard. Names are stable export keys; renaming one is a breaking
/// change for downstream metric consumers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CounterId {
    /// Primary jobs released (one per task activation).
    JobsReleased,
    /// Jobs classified mandatory by the (m,k) pattern at release.
    MandatoryReleased,
    /// Optional jobs admitted for execution by the policy.
    OptionalSelected,
    /// Optional jobs skipped at release (policy declined them).
    OptionalSkipped,
    /// Admitted optional jobs later abandoned as infeasible.
    OptionalAbandoned,
    /// Optional jobs that ran to completion.
    OptionalExecuted,
    /// Backup copies released on the spare processor.
    BackupsReleased,
    /// Backup copies whose release was postponed (`r̃ = r + θ`, θ > 0).
    BackupsPostponed,
    /// Backup copies canceled because the sibling finished fault-free.
    BackupsCanceled,
    /// Backup copies that ran to completion.
    BackupsCompleted,
    /// Faults injected, transient and permanent combined.
    FaultsInjected,
    /// Transient faults sampled onto completing copies.
    TransientFaults,
    /// Permanent processor faults applied.
    PermanentFaults,
    /// Jobs met *because* a backup covered a failed or lost main copy.
    FaultsRecovered,
    /// Pending copies lost to a permanent processor fault.
    CopiesLost,
    /// Jobs that met their deadline.
    JobsMet,
    /// Jobs that missed their deadline (or were skipped/abandoned).
    JobsMissed,
    /// (m,k) windows that newly entered violation.
    MkViolations,
    /// Event-loop iterations aborted because the next event time did not
    /// advance the clock. Always zero in a healthy run: the engine guards
    /// against a zero-length step (which would spin a release build
    /// forever) by flagging the stall and ending the run instead.
    EngineStalls,
    /// Requests accepted by the `mkss-serve` daemon (scheduled onto the
    /// worker pool; includes requests that later fail during execution).
    ServeRequests,
    /// Requests shed by the daemon's backpressure: the bounded job queue
    /// was full, the client got an `overloaded` error.
    ServeRejected,
    /// Request lines the daemon could not parse (malformed JSON, unknown
    /// op, oversized line).
    ServeProtocolErrors,
    /// `simulate` requests completed by the daemon's worker pool.
    ServeOpSimulate,
    /// `compare` requests completed by the daemon's worker pool.
    ServeOpCompare,
    /// `sweep` requests completed by the daemon's worker pool.
    ServeOpSweep,
    /// `watch` subscriptions accepted by the daemon (one per session).
    ServeWatches,
}

impl CounterId {
    /// Number of counters in the catalog.
    pub const COUNT: usize = 26;

    /// Every counter, in storage/export order.
    pub const ALL: [CounterId; Self::COUNT] = [
        CounterId::JobsReleased,
        CounterId::MandatoryReleased,
        CounterId::OptionalSelected,
        CounterId::OptionalSkipped,
        CounterId::OptionalAbandoned,
        CounterId::OptionalExecuted,
        CounterId::BackupsReleased,
        CounterId::BackupsPostponed,
        CounterId::BackupsCanceled,
        CounterId::BackupsCompleted,
        CounterId::FaultsInjected,
        CounterId::TransientFaults,
        CounterId::PermanentFaults,
        CounterId::FaultsRecovered,
        CounterId::CopiesLost,
        CounterId::JobsMet,
        CounterId::JobsMissed,
        CounterId::MkViolations,
        CounterId::EngineStalls,
        CounterId::ServeRequests,
        CounterId::ServeRejected,
        CounterId::ServeProtocolErrors,
        CounterId::ServeOpSimulate,
        CounterId::ServeOpCompare,
        CounterId::ServeOpSweep,
        CounterId::ServeWatches,
    ];

    /// Storage index of this counter (its position in [`CounterId::ALL`]).
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case export name.
    pub const fn name(self) -> &'static str {
        match self {
            CounterId::JobsReleased => "jobs_released",
            CounterId::MandatoryReleased => "mandatory_released",
            CounterId::OptionalSelected => "optional_selected",
            CounterId::OptionalSkipped => "optional_skipped",
            CounterId::OptionalAbandoned => "optional_abandoned",
            CounterId::OptionalExecuted => "optional_executed",
            CounterId::BackupsReleased => "backups_released",
            CounterId::BackupsPostponed => "backups_postponed",
            CounterId::BackupsCanceled => "backups_canceled",
            CounterId::BackupsCompleted => "backups_completed",
            CounterId::FaultsInjected => "faults_injected",
            CounterId::TransientFaults => "transient_faults",
            CounterId::PermanentFaults => "permanent_faults",
            CounterId::FaultsRecovered => "faults_recovered",
            CounterId::CopiesLost => "copies_lost",
            CounterId::JobsMet => "jobs_met",
            CounterId::JobsMissed => "jobs_missed",
            CounterId::MkViolations => "mk_violations",
            CounterId::EngineStalls => "engine_stalls",
            CounterId::ServeRequests => "serve_requests",
            CounterId::ServeRejected => "serve_rejected",
            CounterId::ServeProtocolErrors => "serve_protocol_errors",
            CounterId::ServeOpSimulate => "serve_op_simulate",
            CounterId::ServeOpCompare => "serve_op_compare",
            CounterId::ServeOpSweep => "serve_op_sweep",
            CounterId::ServeWatches => "serve_watches",
        }
    }
}

/// A named fixed-bucket histogram.
///
/// Buckets are `value <= bound` for each bound in [`HistogramId::bounds`],
/// plus one trailing overflow bucket — [`HistogramId::BUCKETS`] cells total.
/// Bounds are fixed at compile time so shards can merge without
/// renegotiating bucket layouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum HistogramId {
    /// (m,k) distance-to-violation observed at each job resolution: how
    /// many further misses the current window tolerates before violating
    /// (0 = deeply red, every remaining job is do-or-die).
    MkDistance,
    /// Backup release postponement θ in whole milliseconds (rounded up),
    /// observed once per postponed backup.
    BackupDelayMs,
    /// `mkss-serve` job-queue depth observed at each accepted submit
    /// (after the enqueue) — the daemon's backpressure signal.
    ServeQueueDepth,
    /// Wall-clock latency of each pooled `mkss-serve` op (simulate,
    /// compare, sweep) in microseconds, from accept to response write.
    /// Recorded by the connection layer into the daemon-global registry
    /// only — never into per-request registries, which stay byte-stable.
    ServeOpLatencyUs,
}

impl HistogramId {
    /// Number of histograms in the catalog.
    pub const COUNT: usize = 4;

    /// Cells per histogram: the bounded buckets plus one overflow bucket.
    pub const BUCKETS: usize = 8;

    /// Every histogram, in storage/export order.
    pub const ALL: [HistogramId; Self::COUNT] = [
        HistogramId::MkDistance,
        HistogramId::BackupDelayMs,
        HistogramId::ServeQueueDepth,
        HistogramId::ServeOpLatencyUs,
    ];

    /// Storage index of this histogram (its position in [`HistogramId::ALL`]).
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case export name.
    pub const fn name(self) -> &'static str {
        match self {
            HistogramId::MkDistance => "mk_distance",
            HistogramId::BackupDelayMs => "backup_delay_ms",
            HistogramId::ServeQueueDepth => "serve_queue_depth",
            HistogramId::ServeOpLatencyUs => "serve_op_latency_us",
        }
    }

    /// Inclusive upper bounds of the bounded buckets (the final storage
    /// cell counts values above the last bound).
    pub const fn bounds(self) -> &'static [u64; Self::BUCKETS - 1] {
        match self {
            HistogramId::MkDistance => &[0, 1, 2, 3, 4, 6, 8],
            HistogramId::BackupDelayMs => &[0, 1, 2, 4, 8, 16, 32],
            HistogramId::ServeQueueDepth => &[0, 1, 2, 4, 8, 16, 32],
            HistogramId::ServeOpLatencyUs => &[50, 100, 250, 500, 1000, 5000, 25000],
        }
    }

    /// Storage cell for `value`: first bucket whose bound contains it, else
    /// the overflow cell.
    #[inline]
    pub fn bucket_of(self, value: u64) -> usize {
        let bounds = self.bounds();
        match bounds.iter().position(|&b| value <= b) {
            Some(i) => i,
            None => bounds.len(),
        }
    }

    /// Estimate the `q`-th percentile (`1..=100`) from stored bucket
    /// counts, at bucket resolution: the bound of the first bucket whose
    /// cumulative count reaches rank `ceil(total·q/100)`, or
    /// [`Percentile::Over`] the last bound when the rank lands in the
    /// overflow cell. `None` when the histogram is empty.
    ///
    /// Shared by the `mkss-top` frame renderer and the `mkss-cli metrics`
    /// pretty printer, so both show identical p50/p90/p99 summaries.
    pub fn percentile(self, counts: &[u64], q: u64) -> Option<Percentile> {
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = (total * q.clamp(1, 100)).div_ceil(100).max(1);
        let mut cumulative = 0u64;
        for (i, &count) in counts.iter().enumerate() {
            cumulative += count;
            if cumulative >= rank {
                return Some(match self.bounds().get(i) {
                    Some(&bound) => Percentile::AtMost(bound),
                    None => Percentile::Over(self.bounds()[Self::BUCKETS - 2]),
                });
            }
        }
        None
    }
}

/// A percentile estimate read off fixed histogram buckets — bucket
/// resolution only, so it names a bound rather than an exact value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
// mkss-lint: allow(pub-api-hygiene) — closed variant set: at-most/overflow is the complete case split for a bounded-bucket estimate
pub enum Percentile {
    /// The percentile falls inside a bounded bucket: `value <= bound`.
    AtMost(u64),
    /// The percentile falls in the overflow cell: `value > bound` (the
    /// histogram's last bound).
    Over(u64),
}

impl std::fmt::Display for Percentile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Percentile::AtMost(bound) => write!(f, "<={bound}"),
            Percentile::Over(bound) => write!(f, ">{bound}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_indices_match_catalog_order() {
        for (i, c) in CounterId::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "{} out of order", c.name());
        }
    }

    #[test]
    fn counter_names_are_unique_snake_case() {
        let mut seen = std::collections::HashSet::new();
        for c in CounterId::ALL {
            let name = c.name();
            assert!(seen.insert(name), "duplicate counter name {name}");
            assert!(
                name.chars().all(|ch| ch.is_ascii_lowercase() || ch == '_'),
                "non-snake-case counter name {name}"
            );
        }
    }

    #[test]
    fn histogram_bucket_edges_are_inclusive() {
        let h = HistogramId::BackupDelayMs;
        assert_eq!(h.bucket_of(0), 0);
        assert_eq!(h.bucket_of(1), 1);
        assert_eq!(h.bucket_of(2), 2);
        assert_eq!(h.bucket_of(3), 3); // first bound >= 3 is 4
        assert_eq!(h.bucket_of(4), 3);
        assert_eq!(h.bucket_of(32), HistogramId::BUCKETS - 2);
        assert_eq!(h.bucket_of(33), HistogramId::BUCKETS - 1); // overflow
        assert_eq!(h.bucket_of(u64::MAX), HistogramId::BUCKETS - 1);
    }

    #[test]
    fn percentiles_walk_the_cumulative_distribution() {
        let h = HistogramId::BackupDelayMs; // bounds [0,1,2,4,8,16,32]
        let counts = [5, 3, 2, 0, 0, 0, 0, 0]; // 10 samples, all <= 2
        assert_eq!(h.percentile(&counts, 50), Some(Percentile::AtMost(0)));
        assert_eq!(h.percentile(&counts, 80), Some(Percentile::AtMost(1)));
        assert_eq!(h.percentile(&counts, 99), Some(Percentile::AtMost(2)));
        assert_eq!(h.percentile(&counts, 100), Some(Percentile::AtMost(2)));
    }

    #[test]
    fn percentile_overflow_and_empty_cases() {
        let h = HistogramId::BackupDelayMs;
        assert_eq!(h.percentile(&[0; 8], 50), None, "empty histogram");
        let overflow = [0, 0, 0, 0, 0, 0, 0, 4];
        assert_eq!(h.percentile(&overflow, 50), Some(Percentile::Over(32)));
        assert_eq!(Percentile::Over(32).to_string(), ">32");
        assert_eq!(Percentile::AtMost(4).to_string(), "<=4");
        let single = [0, 1, 0, 0, 0, 0, 0, 0];
        assert_eq!(h.percentile(&single, 1), Some(Percentile::AtMost(1)));
    }

    #[test]
    fn histogram_bounds_are_strictly_increasing() {
        for h in HistogramId::ALL {
            let bounds = h.bounds();
            for pair in bounds.windows(2) {
                assert!(pair[0] < pair[1], "{} bounds not increasing", h.name());
            }
        }
    }
}
