//! Zero-dependency observability for the (m,k) standby-sparing simulator.
//!
//! This crate is the sink side of the engine event hooks: the simulator and
//! the bench harness emit *events* (a counter increment, a histogram sample)
//! through the [`Recorder`] trait, and this crate aggregates them in a
//! sharded, contention-free [`Registry`], exports them as a human table or a
//! hand-rolled JSON document ([`MetricsDoc`]), and serializes live progress
//! lines through a single-writer [`Reporter`].
//!
//! Design constraints, in order:
//!
//! 1. **Near-zero cost when off.** The hot path carries an
//!    `Option<Arc<dyn Recorder>>`; `None` costs one branch per emit site and
//!    allocates nothing (the zero-alloc counting-allocator test in
//!    `mkss-sim` runs with the recorder absent and must keep passing
//!    unchanged). [`NoopRecorder`] exists for callers that want a recorder
//!    *object* with no effect; its methods are empty `#[inline]` bodies.
//! 2. **Deterministic aggregation.** Counters are commutative sums over
//!    relaxed atomics; [`Registry::snapshot`] folds shards in catalog order,
//!    so totals are identical for any `--jobs` value and any interleaving.
//! 3. **Zero external dependencies.** The container has no network; like
//!    `mkss_core::par`, everything here is std-only — including the JSON
//!    writer.
//!
//! The event catalog ([`CounterId`], [`HistogramId`]) is a closed enum
//! rather than string keys so that emit sites are O(1) array indexing and
//! typos are compile errors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod export;
mod log;
mod recorder;
mod registry;
mod reporter;
mod span;
mod trace;

pub use event::{CounterId, HistogramId, Percentile};
pub use export::{metrics_doc, MetricsDoc};
pub use log::{LogLevel, ParseLogLevelError, LOG_ENV_VAR};
pub use recorder::{EchoRecorder, NoopRecorder, Recorder, RequestId, ScopedRecorder};
pub use registry::{MetricsSnapshot, RecorderHandle, Registry};
pub use reporter::Reporter;
pub use span::Stopwatch;
pub use trace::{
    chrome_trace, timeline_text, trace_json_fragment, violation_reports, violation_reports_on,
    CopyRole, EngineEvent, TraceBuffer, TraceEvent, TraceKind, TraceRecorder, ViolationReport,
    DEFAULT_TRACE_CAPACITY, PROC_NONE,
};
