//! Single-writer, line-buffered progress output.
//!
//! The bench binaries used to `eprintln!` ad hoc from inside parallel
//! folds; under `--jobs > 1` two workers could interleave mid-line. The
//! [`Reporter`] fixes that structurally: each message is assembled into one
//! buffer (including the trailing newline) and written with a single
//! `write_all` under a mutex, so lines can never split across workers.

use std::fmt;
use std::io::{self, Write};
use std::sync::Mutex;

/// Serialized line sink, shared across workers behind an `Arc`.
pub struct Reporter {
    sink: Mutex<Box<dyn Write + Send>>,
}

impl Reporter {
    /// A reporter writing to standard error (the conventional harness
    /// channel — stdout stays machine-readable).
    pub fn stderr() -> Reporter {
        Reporter::with_sink(Box::new(io::stderr()))
    }

    /// A reporter writing to an arbitrary sink (tests, capture buffers).
    pub fn with_sink(sink: Box<dyn Write + Send>) -> Reporter {
        Reporter {
            sink: Mutex::new(sink),
        }
    }

    /// Write `text` plus a newline as one atomic block, then flush.
    ///
    /// I/O errors are swallowed: progress output must never abort an
    /// experiment (e.g. a closed stderr pipe under `2>/dev/null`).
    pub fn line(&self, text: &str) {
        let mut buf = Vec::with_capacity(text.len() + 1);
        buf.extend_from_slice(text.as_bytes());
        buf.push(b'\n');
        // A poisoned mutex just means another emitter panicked mid-write;
        // keep reporting rather than cascading the panic.
        let mut sink = match self.sink.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        // mkss-lint: allow(lock-discipline) — serializing whole lines through the sink is this lock's purpose; the write is one pre-built buffer, not a slow producer
        let _ = sink.write_all(&buf);
        // mkss-lint: allow(lock-discipline) — flush under the same guard keeps lines atomic on the wire
        let _ = sink.flush();
    }
}

impl fmt::Debug for Reporter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Reporter(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A `Write` sink shared across threads so the test can inspect the
    /// byte stream the reporter actually produced.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn concurrent_emits_never_split_lines() {
        let buf = SharedBuf::default();
        let reporter = Arc::new(Reporter::with_sink(Box::new(buf.clone())));
        let threads = 8;
        let lines_per_thread = 200;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let reporter = Arc::clone(&reporter);
                scope.spawn(move || {
                    for i in 0..lines_per_thread {
                        // Varying lengths make torn writes detectable.
                        let payload = "x".repeat(1 + (t * 7 + i) % 61);
                        reporter.line(&format!("worker {t} line {i} {payload} end{t}"));
                    }
                });
            }
        });
        let bytes = buf.0.lock().unwrap();
        let text = std::str::from_utf8(&bytes).expect("reporter output is UTF-8");
        assert!(text.ends_with('\n'));
        let mut per_thread = vec![0usize; threads];
        for line in text.lines() {
            let mut words = line.split_whitespace();
            assert_eq!(words.next(), Some("worker"), "torn line: {line:?}");
            let t: usize = words.next().unwrap().parse().expect("thread id");
            assert!(
                line.ends_with(&format!("end{t}")),
                "line start/end from different emits: {line:?}"
            );
            per_thread[t] += 1;
        }
        assert_eq!(per_thread, vec![lines_per_thread; threads]);
    }

    #[test]
    fn line_appends_exactly_one_newline() {
        let buf = SharedBuf::default();
        let reporter = Reporter::with_sink(Box::new(buf.clone()));
        reporter.line("hello");
        reporter.line("");
        assert_eq!(&*buf.0.lock().unwrap(), b"hello\n\n");
    }
}
