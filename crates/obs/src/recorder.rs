//! The [`Recorder`] trait — the only thing emit sites know about — and the
//! two trivial implementations that bracket the cost spectrum.

use std::sync::Arc;

use crate::event::{CounterId, HistogramId};
use crate::registry::RecorderHandle;
use crate::reporter::Reporter;
use crate::trace::EngineEvent;

/// Sink for engine and harness events.
///
/// Implementations must be cheap and non-blocking: emit sites sit inside
/// the simulator inner loop. They must also be oblivious — a recorder
/// observes the simulation but never feeds back into it, which is what
/// makes recorder-on and recorder-off runs byte-identical.
pub trait Recorder: Send + Sync {
    /// Add `by` to a counter.
    fn incr(&self, counter: CounterId, by: u64);

    /// Record one sample into a histogram.
    fn observe(&self, histogram: HistogramId, value: u64);

    /// Receive one structured engine event — the flight-recorder feed.
    ///
    /// Defaults to a no-op so aggregating recorders (registry handles)
    /// stay unchanged; only trace-aware sinks like
    /// [`TraceRecorder`](crate::TraceRecorder) override it.
    #[inline]
    fn event(&self, _event: &EngineEvent) {}

    /// Add 1 to a counter (the overwhelmingly common case).
    #[inline]
    fn count(&self, counter: CounterId) {
        self.incr(counter, 1);
    }
}

/// A recorder that discards everything.
///
/// Both methods are empty `#[inline]` bodies, so with this recorder
/// attached an emit site reduces to a virtual call returning immediately;
/// with no recorder attached at all (`None`), it reduces to one branch.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline]
    fn incr(&self, _counter: CounterId, _by: u64) {}

    #[inline]
    fn observe(&self, _histogram: HistogramId, _value: u64) {}
}

/// Identifier of one request served by a long-running process, used to
/// scope recorded events to the request that caused them.
///
/// The id itself is an opaque sequence number minted by the server (not
/// the client-supplied correlation id, which is echoed in the protocol
/// instead); its only job is to name the scope in logs and debugging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req-{}", self.0)
    }
}

/// A recorder that scopes events to one request: every event is written
/// to a request-local sink (typically a single-shard [`Registry`] whose
/// snapshot becomes the response's per-request metrics) **and** forwarded
/// to an optional process-global sink.
///
/// Because the same event lands in both sinks, per-request snapshots sum
/// exactly to the global totals — the separability invariant the
/// `mkss-serve` loadgen differential asserts. Like every recorder, it is
/// oblivious: responses are byte-identical whether the global tee is
/// attached or not.
pub struct ScopedRecorder {
    request: RequestId,
    local: Arc<dyn Recorder>,
    global: Option<Arc<dyn Recorder>>,
}

impl ScopedRecorder {
    /// Scope `local` to `request`, teeing every event into `global` too.
    pub fn new(
        request: RequestId,
        local: Arc<dyn Recorder>,
        global: Option<Arc<dyn Recorder>>,
    ) -> ScopedRecorder {
        ScopedRecorder {
            request,
            local,
            global,
        }
    }

    /// The request this recorder is scoped to.
    pub fn request(&self) -> RequestId {
        self.request
    }
}

impl std::fmt::Debug for ScopedRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScopedRecorder")
            .field("request", &self.request)
            .field("global", &self.global.is_some())
            .finish_non_exhaustive()
    }
}

impl Recorder for ScopedRecorder {
    #[inline]
    fn incr(&self, counter: CounterId, by: u64) {
        self.local.incr(counter, by);
        if let Some(global) = &self.global {
            global.incr(counter, by);
        }
    }

    #[inline]
    fn observe(&self, histogram: HistogramId, value: u64) {
        self.local.observe(histogram, value);
        if let Some(global) = &self.global {
            global.observe(histogram, value);
        }
    }

    #[inline]
    fn event(&self, event: &EngineEvent) {
        self.local.event(event);
        if let Some(global) = &self.global {
            global.event(event);
        }
    }
}

/// A recorder that aggregates into a registry shard *and* narrates each
/// counter event as a line on a [`Reporter`] — the `MKSS_LOG=events`
/// backend. Strictly a debugging aid: it is far too chatty for the bench
/// harness and is only wired into the CLI and examples.
#[derive(Debug)]
pub struct EchoRecorder {
    handle: RecorderHandle,
    reporter: Arc<Reporter>,
}

impl EchoRecorder {
    /// Wrap a registry handle so every event is also echoed to `reporter`.
    pub fn new(handle: RecorderHandle, reporter: Arc<Reporter>) -> Self {
        EchoRecorder { handle, reporter }
    }
}

impl Recorder for EchoRecorder {
    fn incr(&self, counter: CounterId, by: u64) {
        self.handle.incr(counter, by);
        self.reporter
            .line(&format!("event {} +{by}", counter.name()));
    }

    fn observe(&self, histogram: HistogramId, value: u64) {
        self.handle.observe(histogram, value);
        self.reporter
            .line(&format!("event {} observe {value}", histogram.name()));
    }

    fn event(&self, event: &EngineEvent) {
        self.reporter.line(&format!(
            "event t={}us {} task={} job={} copy={} payload={}",
            event.at_us,
            event.kind.name(),
            event.task,
            event.job,
            event.copy.name(),
            event.payload
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn noop_recorder_is_callable_through_dyn() {
        let r: Arc<dyn Recorder> = Arc::new(NoopRecorder);
        r.count(CounterId::JobsReleased);
        r.incr(CounterId::JobsMet, 7);
        r.observe(HistogramId::MkDistance, 3);
    }

    #[test]
    fn scoped_recorder_tees_into_both_sinks() {
        let local = Arc::new(Registry::new(1));
        let global = Arc::new(Registry::new(1));
        let scoped = ScopedRecorder::new(
            RequestId(7),
            Arc::new(local.handle_at(0)),
            Some(Arc::new(global.handle_at(0))),
        );
        scoped.incr(CounterId::JobsMet, 4);
        scoped.observe(HistogramId::MkDistance, 2);
        assert_eq!(scoped.request(), RequestId(7));
        assert_eq!(scoped.request().to_string(), "req-7");
        for registry in [&local, &global] {
            let snap = registry.snapshot();
            assert_eq!(snap.counter(CounterId::JobsMet), 4);
            assert_eq!(snap.histogram(HistogramId::MkDistance)[2], 1);
        }
    }

    #[test]
    fn scoped_recorder_without_global_only_writes_locally() {
        let local = Arc::new(Registry::new(1));
        let scoped = ScopedRecorder::new(RequestId(0), Arc::new(local.handle_at(0)), None);
        scoped.count(CounterId::ServeRequests);
        assert_eq!(local.snapshot().counter(CounterId::ServeRequests), 1);
    }

    #[test]
    fn echo_recorder_aggregates_and_narrates() {
        let registry = Arc::new(Registry::new(1));
        let sink: Vec<u8> = Vec::new();
        let reporter = Arc::new(Reporter::with_sink(Box::new(sink)));
        let echo = EchoRecorder::new(registry.handle_at(0), Arc::clone(&reporter));
        echo.count(CounterId::BackupsCanceled);
        echo.observe(HistogramId::BackupDelayMs, 4);
        let snap = registry.snapshot();
        assert_eq!(snap.counter(CounterId::BackupsCanceled), 1);
        assert_eq!(
            snap.histogram(HistogramId::BackupDelayMs)
                .iter()
                .sum::<u64>(),
            1
        );
    }
}
