//! The [`Recorder`] trait — the only thing emit sites know about — and the
//! two trivial implementations that bracket the cost spectrum.

use std::sync::Arc;

use crate::event::{CounterId, HistogramId};
use crate::registry::RecorderHandle;
use crate::reporter::Reporter;

/// Sink for engine and harness events.
///
/// Implementations must be cheap and non-blocking: emit sites sit inside
/// the simulator inner loop. They must also be oblivious — a recorder
/// observes the simulation but never feeds back into it, which is what
/// makes recorder-on and recorder-off runs byte-identical.
pub trait Recorder: Send + Sync {
    /// Add `by` to a counter.
    fn incr(&self, counter: CounterId, by: u64);

    /// Record one sample into a histogram.
    fn observe(&self, histogram: HistogramId, value: u64);

    /// Add 1 to a counter (the overwhelmingly common case).
    #[inline]
    fn count(&self, counter: CounterId) {
        self.incr(counter, 1);
    }
}

/// A recorder that discards everything.
///
/// Both methods are empty `#[inline]` bodies, so with this recorder
/// attached an emit site reduces to a virtual call returning immediately;
/// with no recorder attached at all (`None`), it reduces to one branch.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline]
    fn incr(&self, _counter: CounterId, _by: u64) {}

    #[inline]
    fn observe(&self, _histogram: HistogramId, _value: u64) {}
}

/// A recorder that aggregates into a registry shard *and* narrates each
/// counter event as a line on a [`Reporter`] — the `MKSS_LOG=events`
/// backend. Strictly a debugging aid: it is far too chatty for the bench
/// harness and is only wired into the CLI and examples.
#[derive(Debug)]
pub struct EchoRecorder {
    handle: RecorderHandle,
    reporter: Arc<Reporter>,
}

impl EchoRecorder {
    /// Wrap a registry handle so every event is also echoed to `reporter`.
    pub fn new(handle: RecorderHandle, reporter: Arc<Reporter>) -> Self {
        EchoRecorder { handle, reporter }
    }
}

impl Recorder for EchoRecorder {
    fn incr(&self, counter: CounterId, by: u64) {
        self.handle.incr(counter, by);
        self.reporter
            .line(&format!("event {} +{by}", counter.name()));
    }

    fn observe(&self, histogram: HistogramId, value: u64) {
        self.handle.observe(histogram, value);
        self.reporter
            .line(&format!("event {} observe {value}", histogram.name()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn noop_recorder_is_callable_through_dyn() {
        let r: Arc<dyn Recorder> = Arc::new(NoopRecorder);
        r.count(CounterId::JobsReleased);
        r.incr(CounterId::JobsMet, 7);
        r.observe(HistogramId::MkDistance, 3);
    }

    #[test]
    fn echo_recorder_aggregates_and_narrates() {
        let registry = Arc::new(Registry::new(1));
        let sink: Vec<u8> = Vec::new();
        let reporter = Arc::new(Reporter::with_sink(Box::new(sink)));
        let echo = EchoRecorder::new(registry.handle_at(0), Arc::clone(&reporter));
        echo.count(CounterId::BackupsCanceled);
        echo.observe(HistogramId::BackupDelayMs, 4);
        let snap = registry.snapshot();
        assert_eq!(snap.counter(CounterId::BackupsCanceled), 1);
        assert_eq!(
            snap.histogram(HistogramId::BackupDelayMs)
                .iter()
                .sum::<u64>(),
            1
        );
    }
}
