//! Sharded counter/histogram storage and its deterministic snapshot.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::event::{CounterId, HistogramId};
use crate::recorder::Recorder;

/// One shard: a flat atomic cell per catalog entry.
struct Shard {
    counters: [AtomicU64; CounterId::COUNT],
    histograms: [[AtomicU64; HistogramId::BUCKETS]; HistogramId::COUNT],
}

impl Shard {
    fn new() -> Shard {
        Shard {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            histograms: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
        }
    }
}

/// Lock-free-ish metric storage: a fixed set of shards, each a flat array
/// of `AtomicU64` indexed by the event catalog.
///
/// Writers grab a [`RecorderHandle`] pinned to one shard and bump cells
/// with relaxed `fetch_add`; with one handle per worker thread (the bench
/// harness sizes the registry to `par::effective_jobs`) there is no
/// cross-thread contention at all. Because addition commutes,
/// [`Registry::snapshot`] — a fold over shards in catalog order — yields
/// identical totals for every `--jobs` value and every interleaving.
pub struct Registry {
    shards: Box<[Shard]>,
    next: AtomicUsize,
}

impl Registry {
    /// Maximum shard count (handles wrap around beyond it).
    pub const MAX_SHARDS: usize = 64;

    /// Create a registry with `shards` shards (clamped to `1..=64`).
    pub fn new(shards: usize) -> Registry {
        let n = shards.clamp(1, Self::MAX_SHARDS);
        Registry {
            shards: (0..n).map(|_| Shard::new()).collect(),
            next: AtomicUsize::new(0),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// A handle pinned to shard `shard % shard_count()`.
    pub fn handle_at(self: &Arc<Self>, shard: usize) -> RecorderHandle {
        RecorderHandle {
            registry: Arc::clone(self),
            shard: shard % self.shards.len(),
        }
    }

    /// A handle on the next shard in round-robin order — convenient when
    /// callers don't track worker indices themselves.
    pub fn handle(self: &Arc<Self>) -> RecorderHandle {
        // mkss-lint: ordering — round-robin shard pick; any interleaving spreads load equally well
        let shard = self.next.fetch_add(1, Ordering::Relaxed);
        self.handle_at(shard)
    }

    /// Sum every shard into a deterministic, plain-data snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = vec![0u64; CounterId::COUNT];
        let mut histograms = vec![[0u64; HistogramId::BUCKETS]; HistogramId::COUNT];
        for shard in self.shards.iter() {
            for (total, cell) in counters.iter_mut().zip(shard.counters.iter()) {
                // mkss-lint: ordering — monotonic telemetry counters; a snapshot is advisory and tolerates in-flight increments
                *total += cell.load(Ordering::Relaxed);
            }
            for (totals, cells) in histograms.iter_mut().zip(shard.histograms.iter()) {
                for (total, cell) in totals.iter_mut().zip(cells.iter()) {
                    // mkss-lint: ordering — same advisory-snapshot argument as the counter loop above
                    *total += cell.load(Ordering::Relaxed);
                }
            }
        }
        MetricsSnapshot {
            counters,
            histograms,
        }
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("shards", &self.shards.len())
            .finish()
    }
}

/// A [`Recorder`] writing into one shard of a shared [`Registry`].
#[derive(Debug, Clone)]
pub struct RecorderHandle {
    registry: Arc<Registry>,
    shard: usize,
}

impl Recorder for RecorderHandle {
    #[inline]
    fn incr(&self, counter: CounterId, by: u64) {
        // mkss-lint: ordering — commutative counter bump on the hot path; nothing reads it for synchronization
        self.registry.shards[self.shard].counters[counter.index()].fetch_add(by, Ordering::Relaxed);
    }

    #[inline]
    fn observe(&self, histogram: HistogramId, value: u64) {
        let bucket = histogram.bucket_of(value);
        // mkss-lint: ordering — commutative bucket bump, same contract as incr
        self.registry.shards[self.shard].histograms[histogram.index()][bucket]
            .fetch_add(1, Ordering::Relaxed);
    }
}

/// Plain-data copy of a registry at one instant, in catalog order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    counters: Vec<u64>,
    histograms: Vec<[u64; HistogramId::BUCKETS]>,
}

impl MetricsSnapshot {
    /// An all-zero snapshot (for documents with stage timings but no
    /// engine events, e.g. the analysis-only schedulability ladder).
    pub fn empty() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![0; CounterId::COUNT],
            histograms: vec![[0; HistogramId::BUCKETS]; HistogramId::COUNT],
        }
    }

    /// Value of one counter.
    pub fn counter(&self, counter: CounterId) -> u64 {
        self.counters[counter.index()]
    }

    /// Bucket counts of one histogram (bounded buckets then overflow).
    pub fn histogram(&self, histogram: HistogramId) -> &[u64] {
        &self.histograms[histogram.index()]
    }

    /// Iterate `(name, value)` over all counters in catalog order.
    pub fn iter_counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        CounterId::ALL.iter().map(|&c| (c.name(), self.counter(c)))
    }

    /// True when every cell is zero.
    pub fn is_zero(&self) -> bool {
        self.counters.iter().all(|&v| v == 0)
            && self.histograms.iter().all(|h| h.iter().all(|&v| v == 0))
    }

    /// The change since `earlier`: cell-by-cell saturating difference.
    ///
    /// This is what makes a live [`Registry`] *separable mid-run*: take a
    /// snapshot before a unit of work and one after, and the delta is that
    /// unit's contribution even though the registry keeps accumulating.
    /// Counters are monotonic, so with a genuinely earlier snapshot the
    /// subtraction never saturates; saturating keeps a misordered pair
    /// from panicking in release telemetry paths.
    ///
    /// Deltas recompose: for back-to-back snapshots `a ≤ b ≤ c`,
    /// `b.delta(&a)` merged with `c.delta(&b)` equals `c.delta(&a)`.
    #[must_use]
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = self.clone();
        for (cell, before) in out.counters.iter_mut().zip(earlier.counters.iter()) {
            *cell = cell.saturating_sub(*before);
        }
        for (cells, befores) in out.histograms.iter_mut().zip(earlier.histograms.iter()) {
            for (cell, before) in cells.iter_mut().zip(befores.iter()) {
                *cell = cell.saturating_sub(*before);
            }
        }
        out
    }

    /// Set one counter cell directly. This is for *reconstructing* a
    /// snapshot from an external source (a parsed `MetricsDoc`, a wire
    /// frame) — live measurement always goes through a [`Recorder`].
    pub fn set_counter(&mut self, counter: CounterId, value: u64) {
        self.counters[counter.index()] = value;
    }

    /// Set one histogram's bucket cells directly (reconstruction twin of
    /// [`MetricsSnapshot::set_counter`]).
    pub fn set_histogram(&mut self, histogram: HistogramId, buckets: [u64; HistogramId::BUCKETS]) {
        self.histograms[histogram.index()] = buckets;
    }

    /// True when this snapshot could have evolved from `earlier` by
    /// monotonic accumulation: every cell is `>=` its earlier value.
    ///
    /// Pollers use this for restart detection — a counter "going
    /// backwards" means the source registry is not the one the baseline
    /// was taken from (daemon restart, reconnect to a different process),
    /// so the baseline must be reset rather than differenced.
    pub fn is_progression_of(&self, earlier: &MetricsSnapshot) -> bool {
        self.counters
            .iter()
            .zip(earlier.counters.iter())
            .all(|(now, then)| now >= then)
            && self
                .histograms
                .iter()
                .zip(earlier.histograms.iter())
                .all(|(now, then)| now.iter().zip(then.iter()).all(|(a, b)| a >= b))
    }

    /// Add another snapshot cell-by-cell (merging independent registries).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a += b;
        }
        for (ha, hb) in self.histograms.iter_mut().zip(other.histograms.iter()) {
            for (a, b) in ha.iter_mut().zip(hb.iter()) {
                *a += b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_sums_across_shards() {
        let registry = Arc::new(Registry::new(4));
        for shard in 0..4 {
            let h = registry.handle_at(shard);
            h.incr(CounterId::JobsReleased, (shard as u64) + 1);
            h.observe(HistogramId::MkDistance, shard as u64);
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter(CounterId::JobsReleased), 1 + 2 + 3 + 4);
        assert_eq!(
            snap.histogram(HistogramId::MkDistance).iter().sum::<u64>(),
            4
        );
        assert_eq!(snap.counter(CounterId::JobsMet), 0);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let registry = Arc::new(Registry::new(3));
        let threads = 6;
        let per_thread = 1000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let handle = registry.handle_at(t);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        handle.count(CounterId::BackupsCanceled);
                        handle.observe(HistogramId::BackupDelayMs, i % 40);
                    }
                });
            }
        });
        let snap = registry.snapshot();
        let expected = threads as u64 * per_thread;
        assert_eq!(snap.counter(CounterId::BackupsCanceled), expected);
        assert_eq!(
            snap.histogram(HistogramId::BackupDelayMs)
                .iter()
                .sum::<u64>(),
            expected
        );
    }

    #[test]
    fn shard_count_is_clamped() {
        assert_eq!(Registry::new(0).shard_count(), 1);
        assert_eq!(Registry::new(1000).shard_count(), Registry::MAX_SHARDS);
    }

    #[test]
    fn round_robin_handles_cover_all_shards() {
        let registry = Arc::new(Registry::new(2));
        let a = registry.handle();
        let b = registry.handle();
        a.count(CounterId::JobsMet);
        b.count(CounterId::JobsMet);
        assert_eq!(registry.snapshot().counter(CounterId::JobsMet), 2);
    }

    #[test]
    fn delta_isolates_the_span_between_snapshots() {
        let registry = Arc::new(Registry::new(2));
        let h = registry.handle_at(0);
        h.incr(CounterId::JobsReleased, 5);
        h.observe(HistogramId::MkDistance, 1);
        let before = registry.snapshot();
        h.incr(CounterId::JobsReleased, 3);
        h.incr(CounterId::JobsMet, 2);
        h.observe(HistogramId::MkDistance, 1);
        let after = registry.snapshot();
        let delta = after.delta(&before);
        assert_eq!(delta.counter(CounterId::JobsReleased), 3);
        assert_eq!(delta.counter(CounterId::JobsMet), 2);
        assert_eq!(delta.histogram(HistogramId::MkDistance)[1], 1);
        // Unchanged cells are zero in the delta.
        assert_eq!(delta.counter(CounterId::BackupsCanceled), 0);
    }

    #[test]
    fn deltas_recompose_to_the_full_span() {
        let registry = Arc::new(Registry::new(1));
        let h = registry.handle_at(0);
        let a = registry.snapshot();
        h.incr(CounterId::JobsMet, 1);
        let b = registry.snapshot();
        h.incr(CounterId::JobsMet, 4);
        h.observe(HistogramId::BackupDelayMs, 2);
        let c = registry.snapshot();
        let mut recomposed = b.delta(&a);
        recomposed.merge(&c.delta(&b));
        assert_eq!(recomposed, c.delta(&a));
    }

    #[test]
    fn delta_of_misordered_snapshots_saturates_instead_of_panicking() {
        let registry = Arc::new(Registry::new(1));
        registry.handle_at(0).incr(CounterId::JobsMet, 7);
        let later = registry.snapshot();
        let delta = MetricsSnapshot::empty().delta(&later);
        assert!(delta.is_zero());
    }

    #[test]
    fn reconstructed_snapshots_round_trip_through_setters() {
        let registry = Arc::new(Registry::new(2));
        let h = registry.handle_at(1);
        h.incr(CounterId::JobsMet, 9);
        h.observe(HistogramId::ServeQueueDepth, 3);
        let live = registry.snapshot();
        let mut rebuilt = MetricsSnapshot::empty();
        for c in CounterId::ALL {
            rebuilt.set_counter(c, live.counter(c));
        }
        for hist in HistogramId::ALL {
            let mut buckets = [0u64; HistogramId::BUCKETS];
            buckets.copy_from_slice(live.histogram(hist));
            rebuilt.set_histogram(hist, buckets);
        }
        assert_eq!(rebuilt, live);
    }

    #[test]
    fn progression_detects_counters_going_backwards() {
        let registry = Arc::new(Registry::new(1));
        let h = registry.handle_at(0);
        h.incr(CounterId::JobsMet, 4);
        h.observe(HistogramId::MkDistance, 2);
        let earlier = registry.snapshot();
        h.incr(CounterId::JobsMet, 1);
        let later = registry.snapshot();
        assert!(later.is_progression_of(&earlier));
        assert!(later.is_progression_of(&later));
        // A restarted daemon's fresh registry is not a progression of the
        // old baseline once the old one had any activity.
        assert!(!MetricsSnapshot::empty().is_progression_of(&earlier));
        // Histogram cells count too, not just counters.
        let mut shrunk = later.clone();
        shrunk.set_histogram(HistogramId::MkDistance, [0; HistogramId::BUCKETS]);
        assert!(!shrunk.is_progression_of(&earlier));
    }

    #[test]
    fn merge_adds_cell_by_cell() {
        let r1 = Arc::new(Registry::new(1));
        let r2 = Arc::new(Registry::new(1));
        r1.handle_at(0).incr(CounterId::JobsMet, 2);
        r2.handle_at(0).incr(CounterId::JobsMet, 3);
        r2.handle_at(0).observe(HistogramId::MkDistance, 0);
        let mut snap = r1.snapshot();
        snap.merge(&r2.snapshot());
        assert_eq!(snap.counter(CounterId::JobsMet), 5);
        assert_eq!(snap.histogram(HistogramId::MkDistance)[0], 1);
        assert!(!snap.is_zero());
        assert!(MetricsSnapshot::empty().is_zero());
    }
}
