//! The `MKSS_LOG` environment filter: `off | summary | events`.

use std::error::Error;
use std::fmt;
use std::str::FromStr;
use std::sync::OnceLock;

/// Environment variable read by [`LogLevel::from_env`].
pub const LOG_ENV_VAR: &str = "MKSS_LOG";

/// Recorder verbosity for the CLI and examples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
// mkss-lint: allow(pub-api-hygiene) — closed variant set: verbosity ladder matched exhaustively by the CLI; a new level is a deliberate API change everywhere
pub enum LogLevel {
    /// No recorder attached; no extra output. The default.
    #[default]
    Off,
    /// Aggregate into a registry and print a metrics table at the end.
    Summary,
    /// `Summary` plus a narrated line per engine event (via
    /// [`EchoRecorder`](crate::EchoRecorder)) — debugging only.
    Events,
}

impl LogLevel {
    /// Every level, in increasing verbosity.
    pub const ALL: [LogLevel; 3] = [LogLevel::Off, LogLevel::Summary, LogLevel::Events];

    /// The lowercase identifier parsed by `FromStr`.
    pub const fn id(self) -> &'static str {
        match self {
            LogLevel::Off => "off",
            LogLevel::Summary => "summary",
            LogLevel::Events => "events",
        }
    }

    /// True unless the level is [`LogLevel::Off`].
    pub fn enabled(self) -> bool {
        self != LogLevel::Off
    }

    /// Level requested via `MKSS_LOG`, parsed once per process and cached.
    ///
    /// Unset (or set to the empty string) means [`LogLevel::Off`]; a value
    /// that parses as neither `off`, `summary`, nor `events` is an error —
    /// reported once, then cached like any other outcome.
    pub fn from_env() -> Result<LogLevel, ParseLogLevelError> {
        static CACHE: OnceLock<Result<LogLevel, ParseLogLevelError>> = OnceLock::new();
        CACHE
            .get_or_init(|| match std::env::var(LOG_ENV_VAR) {
                Err(_) => Ok(LogLevel::Off),
                Ok(value) if value.is_empty() => Ok(LogLevel::Off),
                Ok(value) => value.parse(),
            })
            .clone()
    }
}

impl fmt::Display for LogLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

impl FromStr for LogLevel {
    type Err = ParseLogLevelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" => Ok(LogLevel::Off),
            "summary" => Ok(LogLevel::Summary),
            "events" => Ok(LogLevel::Events),
            _ => Err(ParseLogLevelError {
                input: s.to_string(),
            }),
        }
    }
}

/// Error returned when an `MKSS_LOG` value is not a known level.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct ParseLogLevelError {
    /// The rejected input.
    pub input: String,
}

impl fmt::Display for ParseLogLevelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown {LOG_ENV_VAR} level {:?} (expected one of: off, summary, events)",
            self.input
        )
    }
}

impl Error for ParseLogLevelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_known_levels_case_insensitively() {
        assert_eq!("off".parse::<LogLevel>().unwrap(), LogLevel::Off);
        assert_eq!("Summary".parse::<LogLevel>().unwrap(), LogLevel::Summary);
        assert_eq!(" EVENTS ".parse::<LogLevel>().unwrap(), LogLevel::Events);
    }

    #[test]
    fn rejects_unknown_levels_with_context() {
        let err = "verbose".parse::<LogLevel>().unwrap_err();
        assert_eq!(err.input, "verbose");
        let msg = err.to_string();
        assert!(msg.contains("MKSS_LOG"), "{msg}");
        assert!(msg.contains("verbose"), "{msg}");
        assert!(msg.contains("summary"), "{msg}");
    }

    #[test]
    fn display_round_trips_through_from_str() {
        for level in LogLevel::ALL {
            assert_eq!(level.to_string().parse::<LogLevel>().unwrap(), level);
        }
    }

    #[test]
    fn default_is_off_and_off_is_disabled() {
        assert_eq!(LogLevel::default(), LogLevel::Off);
        assert!(!LogLevel::Off.enabled());
        assert!(LogLevel::Summary.enabled());
        assert!(LogLevel::Events.enabled());
    }
}
