//! Property tests for the snapshot algebra: `delta` and `merge` are the
//! primitives every live consumer (the daemon's separability contract,
//! `mkss-top`'s rate frames) leans on, so their laws get checked against
//! randomized multi-shard registries, not just hand-picked examples.

use std::sync::Arc;

use mkss_obs::{CounterId, HistogramId, MetricsSnapshot, Recorder, Registry};
use proptest::prelude::*;

/// One randomized increment stream: catalog slots (`which`) paired with
/// amounts, zipped to the shorter of the two generated vectors.
fn events(which: &[usize], amounts: &[u64]) -> Vec<(usize, u64)> {
    which
        .iter()
        .zip(amounts.iter())
        .map(|(&w, &a)| (w, a))
        .collect()
}

/// Apply the increment stream round-robin across the registry's shards
/// (counter bump plus a histogram observation per event), then snapshot.
fn snapshot_from(shards: usize, increments: &[(usize, u64)]) -> MetricsSnapshot {
    let registry = Arc::new(Registry::new(shards));
    for (i, &(which, amount)) in increments.iter().enumerate() {
        let handle = registry.handle_at(i);
        handle.incr(CounterId::ALL[which % CounterId::COUNT], amount);
        handle.observe(HistogramId::ALL[which % HistogramId::COUNT], amount);
    }
    registry.snapshot()
}

proptest! {
    /// A delta never has a cell exceeding its minuend, and deltas against
    /// an arbitrary (possibly *later*) snapshot saturate at zero instead
    /// of wrapping.
    #[test]
    fn delta_saturates_and_never_exceeds_minuend(
        shards in 1usize..6,
        which_a in proptest::collection::vec(0usize..64, 0..40),
        amounts_a in proptest::collection::vec(0u64..1000, 0..40),
        which_b in proptest::collection::vec(0usize..64, 0..40),
        amounts_b in proptest::collection::vec(0u64..1000, 0..40),
    ) {
        let a = snapshot_from(shards, &events(&which_a, &amounts_a));
        let b = snapshot_from(shards, &events(&which_b, &amounts_b));
        let d = a.delta(&b);
        // No cell of the delta exceeds the corresponding cell of `a`.
        prop_assert!(a.is_progression_of(&d));
        // Deltas against oneself or anything later are all-zero.
        prop_assert!(a.delta(&a).is_zero());
        let mut later = a.clone();
        later.merge(&b);
        prop_assert!(a.delta(&later).is_zero());
    }

    /// `merge` is commutative and associative — shard fold order and
    /// fanout never change totals.
    #[test]
    fn merge_is_commutative_and_associative(
        which_a in proptest::collection::vec(0usize..64, 0..30),
        amounts_a in proptest::collection::vec(0u64..1000, 0..30),
        which_b in proptest::collection::vec(0usize..64, 0..30),
        amounts_b in proptest::collection::vec(0u64..1000, 0..30),
        which_c in proptest::collection::vec(0usize..64, 0..30),
        amounts_c in proptest::collection::vec(0u64..1000, 0..30),
    ) {
        let a = snapshot_from(1, &events(&which_a, &amounts_a));
        let b = snapshot_from(2, &events(&which_b, &amounts_b));
        let c = snapshot_from(3, &events(&which_c, &amounts_c));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c, a_bc);
    }

    /// delta ∘ merge consistency: for a monotone chain `base ≤ mid ≤ top`
    /// built by merging on increments, adjacent deltas recompose to the
    /// full-span delta, and `base + (top − base)` reconstructs `top`.
    #[test]
    fn deltas_recompose_across_a_monotone_chain(
        shards in 1usize..6,
        which_base in proptest::collection::vec(0usize..64, 0..30),
        amounts_base in proptest::collection::vec(0u64..1000, 0..30),
        which_mid in proptest::collection::vec(0usize..64, 0..30),
        amounts_mid in proptest::collection::vec(0u64..1000, 0..30),
        which_top in proptest::collection::vec(0usize..64, 0..30),
        amounts_top in proptest::collection::vec(0u64..1000, 0..30),
    ) {
        let base = snapshot_from(shards, &events(&which_base, &amounts_base));
        let mut mid = base.clone();
        mid.merge(&snapshot_from(shards, &events(&which_mid, &amounts_mid)));
        let mut top = mid.clone();
        top.merge(&snapshot_from(shards, &events(&which_top, &amounts_top)));

        prop_assert!(mid.is_progression_of(&base));
        prop_assert!(top.is_progression_of(&mid));

        let mut recomposed = mid.delta(&base);
        recomposed.merge(&top.delta(&mid));
        prop_assert_eq!(&recomposed, &top.delta(&base));

        let mut rebuilt = base.clone();
        rebuilt.merge(&top.delta(&base));
        prop_assert_eq!(rebuilt, top);
    }

    /// Sharding is invisible: the same increment stream lands on the same
    /// snapshot no matter how many shards spread it.
    #[test]
    fn shard_count_never_changes_the_snapshot(
        which in proptest::collection::vec(0usize..64, 0..40),
        amounts in proptest::collection::vec(0u64..1000, 0..40),
    ) {
        let stream = events(&which, &amounts);
        let one = snapshot_from(1, &stream);
        for shards in [2usize, 3, 8] {
            prop_assert_eq!(&snapshot_from(shards, &stream), &one);
        }
    }
}
