//! The `watch` op end to end: bounded subscriptions deliver exactly the
//! requested frames and hand the connection back; unbounded ones are
//! closed promptly by the shutdown drain (no interval-long stall, no
//! leaked threads); frame contents agree with the `metrics` op.

use mkss_obs::{CounterId, Stopwatch};
use mkss_serve::json::{self, JsonValue};
use mkss_serve::{Client, Server, ServerConfig};

fn sock_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("mkss-watch-test-{}-{tag}.sock", std::process::id()))
}

/// Pull `meta.<key>` out of a watch-frame or metrics response line.
fn meta_str(response: &str, key: &str) -> String {
    let doc = json::parse(response).expect("response parses");
    doc.get("result")
        .and_then(|r| r.get("meta"))
        .and_then(|m| m.get(key))
        .and_then(JsonValue::as_str)
        .unwrap_or_else(|| panic!("meta.{key} missing in {response}"))
        .to_string()
}

/// Counter `name` from the `result.counters` member.
fn counter_of(response: &str, name: &str) -> u64 {
    let doc = json::parse(response).expect("response parses");
    doc.get("result")
        .and_then(|r| r.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| panic!("counter {name} missing in {response}"))
}

#[test]
fn bounded_watch_streams_frames_then_returns_the_connection() {
    let sock = sock_path("bounded");
    let server = Server::bind_unix(&sock, ServerConfig::default()).expect("bind");
    let mut client = Client::connect_unix(&sock).expect("connect");

    client
        .send(r#"{"id": 5, "op": "watch", "interval_ms": 10, "frames": 3}"#)
        .expect("send");
    let mut seqs = Vec::new();
    for frame in 0..3u64 {
        let line = client.recv().expect("frame");
        assert!(
            line.starts_with(r#"{"id":5,"ok":true,"result":{"meta":"#),
            "{line}"
        );
        assert_eq!(meta_str(&line, "binary"), "mkss-serve");
        assert_eq!(meta_str(&line, "endpoint"), "daemon");
        assert_eq!(meta_str(&line, "frame"), frame.to_string());
        assert_eq!(meta_str(&line, "interval_ms"), "10");
        let uptime: u64 = meta_str(&line, "uptime_ms").parse().expect("uptime");
        let _ = uptime; // parseable is the contract; magnitude is wall clock
        assert!(meta_str(&line, "workers").parse::<u64>().expect("workers") >= 1);
        seqs.push(meta_str(&line, "seq").parse::<u64>().expect("seq"));
    }
    assert!(
        seqs.windows(2).all(|w| w[0] < w[1]),
        "seq not monotonic: {seqs:?}"
    );
    let done = client.recv().expect("terminal line");
    assert_eq!(
        done,
        r#"{"id":5,"ok":true,"result":{"watch_done":true,"frames":3}}"#
    );

    // The connection is back to request/response service.
    let pong = client.request(r#"{"id": 6, "op": "ping"}"#).expect("ping");
    assert_eq!(pong, r#"{"id":6,"ok":true,"result":{"pong":true}}"#);

    let totals = server.shutdown();
    assert_eq!(totals.counter(CounterId::ServeWatches), 1);
    // Watch frames are connection-layer pushes, not pooled requests.
    assert_eq!(totals.counter(CounterId::ServeRequests), 0);
}

#[test]
fn watch_frames_agree_with_the_metrics_op() {
    let sock = sock_path("consistency");
    let server = Server::bind_unix(&sock, ServerConfig::default()).expect("bind");
    let mut client = Client::connect_unix(&sock).expect("connect");

    let sim = r#"{"id": 1, "op": "simulate", "task_set": {"tasks": [{"period_ms": 5, "deadline_ms": 4, "wcet_ms": 3, "m": 2, "k": 4}]}, "policy": "selective", "horizon_ms": 200, "faults": {"seed": 3, "transient_per_ms": 0.001}}"#;
    let resp = client.request(sim).expect("simulate");
    assert!(resp.contains("\"ok\":true"), "{resp}");

    // With the daemon otherwise idle, a watch frame and a metrics doc
    // snapshot the same registry state — counter-for-counter.
    client
        .send(r#"{"id": 2, "op": "watch", "interval_ms": 10, "frames": 1}"#)
        .expect("send");
    let frame = client.recv().expect("frame");
    let _done = client.recv().expect("terminal");
    let metrics = client
        .request(r#"{"id": 3, "op": "metrics"}"#)
        .expect("metrics");
    for name in [
        "jobs_released",
        "jobs_met",
        "serve_requests",
        "serve_op_simulate",
        "serve_watches",
    ] {
        assert_eq!(
            counter_of(&frame, name),
            counter_of(&metrics, name),
            "{name} diverged between watch frame and metrics op"
        );
    }
    assert_eq!(counter_of(&frame, "serve_op_simulate"), 1);
    assert_eq!(counter_of(&frame, "serve_watches"), 1);
    // The publication stream is shared: metrics came after the frame.
    let frame_seq: u64 = meta_str(&frame, "seq").parse().expect("seq");
    let metrics_seq: u64 = meta_str(&metrics, "seq").parse().expect("seq");
    assert!(metrics_seq > frame_seq, "{metrics_seq} <= {frame_seq}");
    server.shutdown();
}

#[test]
fn shutdown_drain_closes_unbounded_watchers_promptly() {
    let sock = sock_path("drain");
    let server = Server::bind_unix(&sock, ServerConfig::default()).expect("bind");
    let sock2 = sock.clone();
    let watcher = std::thread::spawn(move || {
        let mut client = Client::connect_unix(&sock2).expect("connect");
        // A long interval: the drain must interrupt the sleep, not wait
        // it out.
        client
            .send(r#"{"id": 9, "op": "watch", "interval_ms": 10000}"#)
            .expect("send");
        let first = client.recv().expect("first frame arrives immediately");
        assert!(first.contains("\"frame\":\"0\""), "{first}");
        // The next line is the terminal marker, pushed by the drain.
        let done = client.recv().expect("terminal line");
        assert!(done.contains("\"watch_done\":true"), "{done}");
    });
    // Give the watcher time to subscribe and park in its interval sleep.
    std::thread::sleep(std::time::Duration::from_millis(150));
    let watch = Stopwatch::start();
    let totals = server.shutdown();
    assert!(
        watch.elapsed_ms() < 5000.0,
        "shutdown stalled on a sleeping watcher: {:.0} ms",
        watch.elapsed_ms()
    );
    watcher.join().expect("watcher thread");
    assert_eq!(totals.counter(CounterId::ServeWatches), 1);
}
