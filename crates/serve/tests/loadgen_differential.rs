//! The daemon's honesty checks, end to end over a real socket:
//!
//! * **Differential**: concurrent clients get responses byte-identical
//!   to calling `exec::execute` directly in-process — the connection
//!   layer adds transport and nothing else.
//! * **Separability**: every response's per-request metrics sum exactly
//!   to the daemon-global delta observed across the run.
//! * **Protocol robustness**: malformed lines and oversized lines get
//!   error responses (and the right counters) without wedging the
//!   daemon.
//! * **Graceful drain**: shutdown joins every thread with all in-flight
//!   requests answered.

use mkss_obs::CounterId;
use mkss_serve::json::{self, JsonValue};
use mkss_serve::{execute, Client, ExecEnv, Request, Server, ServerConfig};
use mkss_sim::prelude::WorkspacePool;

/// A temp path for a per-test Unix socket.
fn sock_path(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir();
    dir.join(format!("mkss-serve-test-{}-{tag}.sock", std::process::id()))
}

fn sim_line(id: u64, policy: &str, seed: u64) -> String {
    format!(
        r#"{{"id": {id}, "op": "simulate", "task_set": {{"tasks": [
            {{"period_ms": 5, "deadline_ms": 4, "wcet_ms": 3, "m": 2, "k": 4}},
            {{"period_ms": 10, "wcet_ms": 3, "m": 1, "k": 2}}
        ]}}, "policy": "{policy}", "horizon_ms": 200,
        "faults": {{"seed": {seed}, "transient_per_ms": 0.0005}}}}"#
    )
    .split_whitespace()
    .collect::<Vec<_>>()
    .join(" ")
}

fn direct_response(line: &str) -> String {
    let pool = WorkspacePool::new();
    let env = ExecEnv {
        pool: &pool,
        global: None,
        fanout: 1,
    };
    execute(&Request::parse(line).expect("valid request"), &env)
}

/// Counter totals from one response's embedded `metrics` member.
fn embedded_counters(response: &str) -> Vec<(String, u64)> {
    let doc = json::parse(response).expect("response parses");
    let counters = doc
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .expect("metrics.counters present");
    let JsonValue::Object(members) = counters else {
        panic!("counters is an object")
    };
    members
        .iter()
        .map(|(k, v)| (k.clone(), v.as_u64().expect("counter is u64")))
        .collect()
}

/// Counter totals from a `metrics`-op response (`result` is the doc).
fn global_counters(response: &str) -> Vec<(String, u64)> {
    let doc = json::parse(response).expect("response parses");
    let counters = doc
        .get("result")
        .and_then(|m| m.get("counters"))
        .expect("result.counters present");
    let JsonValue::Object(members) = counters else {
        panic!("counters is an object")
    };
    members
        .iter()
        .map(|(k, v)| (k.clone(), v.as_u64().expect("counter is u64")))
        .collect()
}

#[test]
fn concurrent_clients_get_byte_identical_responses_and_separable_metrics() {
    let sock = sock_path("differential");
    let server = Server::bind_unix(&sock, ServerConfig::default()).expect("bind");

    // Four clients, three requests each, mixed policies and seeds.
    let policies = ["st", "dp", "selective", "greedy"];
    let before = {
        let mut c = Client::connect_unix(&sock).expect("connect");
        global_counters(
            &c.request(r#"{"id": 900, "op": "metrics"}"#)
                .expect("metrics"),
        )
    };
    let transcripts: Vec<Vec<(String, String)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4u64)
            .map(|client_idx| {
                let sock = sock.clone();
                let policy = policies[client_idx as usize];
                scope.spawn(move || {
                    let mut client = Client::connect_unix(&sock).expect("connect");
                    (0..3u64)
                        .map(|i| {
                            let line = sim_line(client_idx * 10 + i, policy, 100 + i);
                            let resp = client.request(&line).expect("request");
                            (line, resp)
                        })
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let after = {
        let mut c = Client::connect_unix(&sock).expect("connect");
        global_counters(
            &c.request(r#"{"id": 901, "op": "metrics"}"#)
                .expect("metrics"),
        )
    };

    // Differential: daemon bytes == direct library bytes, per request.
    let mut summed: Vec<(String, u64)> = Vec::new();
    let mut responses = 0;
    for (line, daemon_resp) in transcripts.iter().flatten() {
        assert_eq!(
            daemon_resp,
            &direct_response(line),
            "daemon response diverged from direct execution for {line}"
        );
        for (name, value) in embedded_counters(daemon_resp) {
            match summed.iter_mut().find(|(n, _)| *n == name) {
                Some((_, total)) => *total += value,
                None => summed.push((name, value)),
            }
        }
        responses += 1;
    }
    assert_eq!(responses, 12);

    // Separability: per-request metrics sum to the global delta for
    // every engine counter (serve_* counters are connection-layer-only
    // and never appear in per-request registries).
    for ((name, b), (name_a, a)) in before.iter().zip(after.iter()) {
        assert_eq!(name, name_a);
        let delta = a - b;
        let request_sum = summed
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0);
        if name.starts_with("serve_") {
            assert_eq!(request_sum, 0, "{name} leaked into a per-request registry");
        } else {
            assert_eq!(
                delta, request_sum,
                "counter {name}: global delta {delta} != per-request sum {request_sum}"
            );
        }
    }
    // The run did real work and the daemon accounted for it.
    let released = summed
        .iter()
        .find(|(n, _)| n == "jobs_released")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    assert!(released > 0, "no jobs released across 12 simulations");
    let serve_requests = after
        .iter()
        .find(|(n, _)| n == "serve_requests")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    assert_eq!(serve_requests, 12);

    let totals = server.shutdown();
    assert_eq!(totals.counter(CounterId::ServeRequests), 12);
    assert_eq!(totals.counter(CounterId::ServeRejected), 0);
}

#[test]
fn compare_and_sweep_are_differential_too() {
    let sock = sock_path("compare-sweep");
    let server = Server::bind_unix(
        &sock,
        ServerConfig {
            fanout: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let mut client = Client::connect_unix(&sock).expect("connect");

    let compare = r#"{"id": 1, "op": "compare", "task_set": {"tasks": [{"period_ms": 5, "deadline_ms": 4, "wcet_ms": 3, "m": 2, "k": 4}]}, "horizon_ms": 100, "policies": ["st", "dp", "selective"]}"#;
    let sweep = r#"{"id": 2, "op": "sweep", "task_set": {"tasks": [{"period_ms": 5, "deadline_ms": 4, "wcet_ms": 3, "m": 2, "k": 4}]}, "policy": "selective", "horizon_ms": 100, "faults": {"transient_per_ms": 0.001}, "seeds": 6, "seed_from": 7}"#;
    for line in [compare, sweep] {
        let daemon_resp = client.request(line).expect("request");
        // Direct execution uses fanout 1; the daemon runs fanout 2 —
        // the bytes must still match.
        assert_eq!(daemon_resp, direct_response(line), "{line}");
        assert!(daemon_resp.contains("\"ok\":true"), "{daemon_resp}");
    }
    server.shutdown();
}

#[test]
fn malformed_requests_get_errors_and_do_not_wedge_the_connection() {
    let sock = sock_path("malformed");
    let server = Server::bind_unix(&sock, ServerConfig::default()).expect("bind");
    let mut client = Client::connect_unix(&sock).expect("connect");

    // Not JSON at all: no id to echo.
    let resp = client.request("this is not json").expect("request");
    assert!(
        resp.starts_with(r#"{"id":null,"ok":false,"error":"#),
        "{resp}"
    );

    // Parsed id, unknown op.
    let resp = client
        .request(r#"{"id": 3, "op": "transmogrify"}"#)
        .expect("request");
    assert!(resp.starts_with(r#"{"id":3,"ok":false"#), "{resp}");
    assert!(resp.contains("transmogrify"), "{resp}");

    // Missing job payload.
    let resp = client
        .request(r#"{"id": 4, "op": "simulate"}"#)
        .expect("request");
    assert!(resp.contains("task_set"), "{resp}");

    // Bad policy id inside an otherwise-valid job.
    let resp = client
        .request(r#"{"id": 5, "op": "simulate", "task_set": {"tasks": [{"period_ms": 5, "wcet_ms": 1, "m": 1, "k": 2}]}, "policy": "warp", "horizon_ms": 10}"#)
        .expect("request");
    assert!(resp.contains("unknown policy"), "{resp}");

    // The connection still works after all of the above.
    let resp = client
        .request(r#"{"id": 6, "op": "ping"}"#)
        .expect("request");
    assert_eq!(resp, r#"{"id":6,"ok":true,"result":{"pong":true}}"#);

    let totals = server.shutdown();
    assert_eq!(totals.counter(CounterId::ServeProtocolErrors), 4);
}

#[test]
fn oversized_lines_are_rejected_and_the_connection_closed() {
    let sock = sock_path("oversized");
    let server = Server::bind_unix(
        &sock,
        ServerConfig {
            max_line_bytes: 256,
            ..ServerConfig::default()
        },
    )
    .expect("bind");

    let mut client = Client::connect_unix(&sock).expect("connect");
    let huge = format!(
        r#"{{"id": 1, "op": "ping", "pad": "{}"}}"#,
        "x".repeat(1024)
    );
    let resp = client
        .request(&huge)
        .expect("the error response still arrives");
    assert!(resp.contains("exceeds 256 bytes"), "{resp}");
    // The daemon closed this connection afterwards: the next request
    // fails on write (broken pipe) or read (EOF), whichever trips first.
    let err = client.request(r#"{"id": 2, "op": "ping"}"#).unwrap_err();
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::UnexpectedEof | std::io::ErrorKind::BrokenPipe
        ),
        "unexpected error kind: {err:?}"
    );

    // A fresh connection is unaffected.
    let mut client = Client::connect_unix(&sock).expect("connect");
    let resp = client
        .request(r#"{"id": 3, "op": "ping"}"#)
        .expect("request");
    assert!(resp.contains("pong"), "{resp}");

    let totals = server.shutdown();
    assert_eq!(totals.counter(CounterId::ServeProtocolErrors), 1);
}

#[test]
fn backpressure_sheds_load_and_accounts_for_every_request() {
    let sock = sock_path("backpressure");
    // One worker, tiny queue: a burst of concurrent requests must either
    // be served or shed with an explicit overloaded error — never lost.
    let server = Server::bind_unix(
        &sock,
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind");

    let clients = 6u64;
    let outcomes: Vec<bool> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|i| {
                let sock = sock.clone();
                scope.spawn(move || {
                    let mut client = Client::connect_unix(&sock).expect("connect");
                    let resp = client
                        .request(&sim_line(i, "selective", i))
                        .expect("request");
                    if resp.contains("\"ok\":true") {
                        true
                    } else {
                        assert!(resp.contains("overloaded"), "{resp}");
                        false
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });

    let served = outcomes.iter().filter(|&&ok| ok).count() as u64;
    let shed = clients - served;
    assert!(served >= 1, "at least one request must be served");

    let totals = server.shutdown();
    assert_eq!(totals.counter(CounterId::ServeRequests), served);
    assert_eq!(totals.counter(CounterId::ServeRejected), shed);
}

#[test]
fn shutdown_op_drains_cleanly_and_tcp_transport_works() {
    let server = Server::bind_tcp("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.tcp_addr().expect("tcp endpoint").to_string();

    let worker = std::thread::spawn(move || {
        let mut client = Client::connect_tcp(&addr).expect("connect");
        let resp = client
            .request(&sim_line(1, "selective", 9))
            .expect("simulate");
        assert!(resp.contains("\"ok\":true"), "{resp}");
        let resp = client
            .request(r#"{"id": 2, "op": "shutdown"}"#)
            .expect("shutdown");
        assert_eq!(
            resp,
            r#"{"id":2,"ok":true,"result":{"shutting_down":true}}"#
        );
    });

    // run() returns only after the shutdown op arrives and every thread
    // is joined; the in-flight simulate above was answered first.
    let totals = server.run();
    worker.join().expect("client thread");
    assert_eq!(totals.counter(CounterId::ServeRequests), 1);
}
