//! The daemon: listeners, connection handlers, and graceful shutdown.
//!
//! Architecture (one box per thread kind):
//!
//! ```text
//!  accept loop ──► handler (1 per connection)
//!                    │  parse line → control ops answered inline
//!                    │  simulation ops → WorkerPool::try_submit
//!                    ▼                      │ queue full → "overloaded"
//!                  mpsc::recv ◄── worker ───┘ (bounded queue)
//!                    │              runs exec::execute over the
//!                    ▼              shared WorkspacePool
//!                  write response line
//! ```
//!
//! Backpressure is the bounded [`WorkerPool`] queue: when it fills, the
//! daemon *sheds* the request with an `overloaded` error instead of
//! buffering unboundedly, and counts the shed in `serve_rejected`.
//! Accepted submissions record the post-enqueue depth in the
//! `serve_queue_depth` histogram — the signal to watch when sizing
//! `--workers`/`--queue`.
//!
//! Shutdown (client `shutdown` op or [`Server::shutdown`]) drains rather
//! than aborts: the accept loop stops, blocked readers are unblocked via
//! `shutdown(Read)` so in-flight responses still go out, every handler
//! and worker is joined, and the Unix socket file is removed. No thread
//! outlives [`Server::shutdown`].

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use mkss_core::par::WorkerPool;
use mkss_obs::{
    metrics_doc, CounterId, HistogramId, MetricsDoc, MetricsSnapshot, Recorder, Registry, Stopwatch,
};
use mkss_sim::prelude::WorkspacePool;

use crate::conn::{read_line_bounded, Conn, LineRead};
use crate::exec::{execute, ExecEnv};
use crate::protocol::{error_line, ok_line, Op, Request, WatchJob};

/// Tuning knobs for [`Server::bind_unix`] / [`Server::bind_tcp`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Simulation worker threads (`0` = available parallelism).
    pub workers: usize,
    /// Bounded job-queue capacity; submissions beyond it are shed.
    pub queue_capacity: usize,
    /// Per-request sweep fan-out threads (`0` = available parallelism).
    /// Defaults to 1: the worker pool, not the individual request, is
    /// the parallelism unit.
    pub fanout: usize,
    /// Maximum accepted request-line length in bytes; longer lines get a
    /// protocol error and the connection is closed.
    pub max_line_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            queue_capacity: 64,
            fanout: 1,
            max_line_bytes: 1 << 20,
        }
    }
}

/// Shutdown flag plus the condvar [`Server::wait_for_shutdown`] parks on.
struct ShutdownSignal {
    requested: AtomicBool,
    mutex: Mutex<()>,
    condvar: Condvar,
}

impl ShutdownSignal {
    fn new() -> ShutdownSignal {
        ShutdownSignal {
            requested: AtomicBool::new(false),
            mutex: Mutex::new(()),
            condvar: Condvar::new(),
        }
    }

    fn request(&self) {
        // mkss-lint: ordering — Release pairs with the Acquire load in is_requested; the flag carries no payload beyond itself and the notify below is already fenced by the mutex
        self.requested.store(true, Ordering::Release);
        let _guard = lock(&self.mutex);
        self.condvar.notify_all();
    }

    fn is_requested(&self) -> bool {
        // mkss-lint: ordering — Acquire pairs with the Release store in request; seeing `true` is the only obligation
        self.requested.load(Ordering::Acquire)
    }

    /// Park for up to `timeout` or until a shutdown request, whichever
    /// comes first. Returns whether shutdown has been requested — so a
    /// `watch` sampler sleeping between frames wakes *immediately* when
    /// the drain starts instead of stalling it for a full interval.
    fn wait_requested_for(&self, timeout: Duration) -> bool {
        let guard = lock(&self.mutex);
        if self.is_requested() {
            return true;
        }
        // mkss-lint: allow(condvar-wait-in-loop) — bounded doze, not a predicate wait: the caller re-checks is_requested() on return and waking early just re-samples a frame
        let (guard, _timed_out) = match self.condvar.wait_timeout(guard, timeout) {
            Ok(pair) => pair,
            Err(poisoned) => poisoned.into_inner(),
        };
        drop(guard);
        self.is_requested()
    }
}

/// State shared by the accept loop and every connection handler.
struct Shared {
    config: ServerConfig,
    jobs: WorkerPool,
    workspaces: WorkspacePool,
    registry: Arc<Registry>,
    signal: ShutdownSignal,
    /// Read-half handles of live connections (keyed by a per-connection
    /// token), shut down at exit to unblock parked readers. Handlers
    /// remove their entry when they close, so a tracked clone never
    /// holds a finished connection open.
    conns: Mutex<Vec<(u64, Conn)>>,
    next_conn: AtomicU64,
    /// Handler threads to join at exit.
    handlers: Mutex<Vec<JoinHandle<()>>>,
    /// Daemon birth time; `uptime_ms` in every published metrics doc.
    start: Stopwatch,
    /// Monotonic sequence number stamped on every published metrics doc
    /// (the `metrics` op and each `watch` frame share one stream), so
    /// pollers can detect restarts and ignore reordered frames.
    seq: AtomicU64,
}

/// Where the server listens.
enum Endpoint {
    Unix(UnixListener, PathBuf),
    Tcp(TcpListener, SocketAddr),
}

/// A running daemon; dropping or [`Server::shutdown`] stops it cleanly.
pub struct Server {
    shared: Arc<Shared>,
    endpoint: EndpointInfo,
    accept: Option<JoinHandle<()>>,
}

/// Printable description of a bound endpoint.
#[derive(Debug, Clone)]
enum EndpointInfo {
    Unix(PathBuf),
    Tcp(SocketAddr),
}

impl Server {
    /// Bind a Unix-domain socket at `path` and start serving.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (e.g. a stale socket file).
    pub fn bind_unix(path: impl AsRef<Path>, config: ServerConfig) -> io::Result<Server> {
        let path = path.as_ref().to_path_buf();
        let listener = UnixListener::bind(&path)?;
        Ok(Server::start(Endpoint::Unix(listener, path), config))
    }

    /// Bind a TCP socket (e.g. `"127.0.0.1:0"`) and start serving.
    ///
    /// # Errors
    ///
    /// Propagates bind or local-address failures.
    pub fn bind_tcp(addr: &str, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        Ok(Server::start(Endpoint::Tcp(listener, local), config))
    }

    fn start(endpoint: Endpoint, config: ServerConfig) -> Server {
        let registry = Arc::new(Registry::new(Registry::MAX_SHARDS));
        let shared = Arc::new(Shared {
            config,
            jobs: WorkerPool::new(config.workers, config.queue_capacity),
            workspaces: WorkspacePool::new(),
            registry,
            signal: ShutdownSignal::new(),
            conns: Mutex::new(Vec::new()),
            next_conn: AtomicU64::new(0),
            handlers: Mutex::new(Vec::new()),
            start: Stopwatch::start(),
            seq: AtomicU64::new(0),
        });
        let info = match &endpoint {
            Endpoint::Unix(_, path) => EndpointInfo::Unix(path.clone()),
            Endpoint::Tcp(_, addr) => EndpointInfo::Tcp(*addr),
        };
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(endpoint, &shared))
        };
        Server {
            shared,
            endpoint: info,
            accept: Some(accept),
        }
    }

    /// The bound TCP address, when listening on TCP (lets callers bind
    /// port 0 and discover the ephemeral port).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        match &self.endpoint {
            EndpointInfo::Tcp(addr) => Some(*addr),
            EndpointInfo::Unix(_) => None,
        }
    }

    /// Printable endpoint (socket path or address).
    pub fn endpoint(&self) -> String {
        match &self.endpoint {
            EndpointInfo::Unix(path) => path.display().to_string(),
            EndpointInfo::Tcp(addr) => addr.to_string(),
        }
    }

    /// The daemon's global metrics registry (serve counters plus a tee
    /// of every request's engine events).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.shared.registry
    }

    /// Whether a shutdown has been requested (by op or locally).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.signal.is_requested()
    }

    /// Block until some client sends the `shutdown` op (or
    /// [`Server::shutdown`] is called from another thread via a clone of
    /// the registry — normally the op).
    pub fn wait_for_shutdown(&self) {
        let mut guard = lock(&self.shared.signal.mutex);
        while !self.shared.signal.is_requested() {
            guard = match self.shared.signal.condvar.wait(guard) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Serve until a client requests shutdown, then stop cleanly and
    /// return the final metrics snapshot.
    pub fn run(self) -> MetricsSnapshot {
        self.wait_for_shutdown();
        self.shutdown()
    }

    /// Stop the daemon: stop accepting, let in-flight requests finish,
    /// join every thread, remove the socket file. Returns the final
    /// metrics snapshot.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.shutdown_inner();
        self.shared.registry.snapshot()
    }

    fn shutdown_inner(&mut self) {
        let Some(accept) = self.accept.take() else {
            return; // already shut down
        };
        self.shared.signal.request();
        // Wake the accept loop with a throwaway connection.
        match &self.endpoint {
            EndpointInfo::Unix(path) => drop(UnixStream::connect(path)),
            EndpointInfo::Tcp(addr) => drop(TcpStream::connect(addr)),
        }
        join_quiet(accept);
        // Unblock handlers parked in a read; responses still flush.
        for (_, conn) in lock(&self.shared.conns).drain(..) {
            let _ = conn.shutdown_read();
        }
        let handlers: Vec<_> = lock(&self.shared.handlers).drain(..).collect();
        for handler in handlers {
            join_quiet(handler);
        }
        if let EndpointInfo::Unix(path) = &self.endpoint {
            let _ = std::fs::remove_file(path);
        }
        // The worker pool drains and joins when `shared` drops (every
        // submitted job's handler has already been joined, so the queue
        // is effectively empty by now).
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("endpoint", &self.endpoint)
            .field("shutdown_requested", &self.shutdown_requested())
            .finish_non_exhaustive()
    }
}

fn accept_loop(endpoint: Endpoint, shared: &Arc<Shared>) {
    loop {
        let conn = match &endpoint {
            Endpoint::Unix(listener, _) => listener.accept().map(|(s, _)| Conn::Unix(s)),
            Endpoint::Tcp(listener, _) => listener.accept().map(|(s, _)| Conn::Tcp(s)),
        };
        if shared.signal.is_requested() {
            return; // the waking dummy connection lands here too
        }
        let Ok(conn) = conn else { continue };
        let Ok(read_half) = conn.try_clone() else {
            continue;
        };
        // mkss-lint: ordering — token allocation needs uniqueness only; fetch_add is atomic under any ordering
        let token = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        lock(&shared.conns).push((token, read_half));
        let handler = {
            let shared = Arc::clone(shared);
            std::thread::spawn(move || {
                // Drop the tracked read-half even if the handler panics,
                // so a closed connection's peer sees EOF immediately.
                let _cleanup = ConnCleanup {
                    shared: &shared,
                    token,
                };
                handle_connection(conn, &shared);
            })
        };
        lock(&shared.handlers).push(handler);
    }
}

/// Removes a connection's tracked read-half when its handler exits.
struct ConnCleanup<'a> {
    shared: &'a Arc<Shared>,
    token: u64,
}

impl Drop for ConnCleanup<'_> {
    fn drop(&mut self) {
        lock(&self.shared.conns).retain(|(t, _)| *t != self.token);
    }
}

fn handle_connection(conn: Conn, shared: &Arc<Shared>) {
    let Ok(write_half) = conn.try_clone() else {
        return;
    };
    let mut writer = write_half;
    let mut reader = BufReader::new(conn);
    // One registry shard per connection for the serve counters, and one
    // tee handle cloned into each submitted job.
    let counters = shared.registry.handle();
    let tee: Arc<dyn Recorder> = Arc::new(shared.registry.handle());
    loop {
        let line = match read_line_bounded(&mut reader, shared.config.max_line_bytes) {
            Ok(LineRead::Line(line)) => line,
            Ok(LineRead::Eof) | Err(_) => return,
            Ok(LineRead::TooLong) => {
                counters.count(CounterId::ServeProtocolErrors);
                let resp = error_line(
                    None,
                    &format!(
                        "request line exceeds {} bytes; closing connection",
                        shared.config.max_line_bytes
                    ),
                );
                let _ = write_response(&mut writer, &resp);
                return;
            }
            Ok(LineRead::NotUtf8) => {
                counters.count(CounterId::ServeProtocolErrors);
                let resp = error_line(None, "request line is not valid UTF-8; closing connection");
                let _ = write_response(&mut writer, &resp);
                return;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = match Request::parse(&line) {
            Ok(request) => request,
            Err(e) => {
                counters.count(CounterId::ServeProtocolErrors);
                let resp = error_line(e.id, &e.message);
                if write_response(&mut writer, &resp).is_err() {
                    return;
                }
                continue;
            }
        };
        let shutting_down = match respond(request, shared, &counters, &tee, &mut writer) {
            Ok(shutting_down) => shutting_down,
            Err(_) => return,
        };
        if shutting_down {
            return;
        }
    }
}

/// Answer one parsed request. Returns whether this was a `shutdown` op.
fn respond(
    request: Request,
    shared: &Arc<Shared>,
    counters: &impl Recorder,
    tee: &Arc<dyn Recorder>,
    writer: &mut Conn,
) -> io::Result<bool> {
    let id = request.id;
    match request.op {
        Op::Ping => {
            // Answered inline so liveness probes bypass a saturated
            // queue; bytes match `exec::execute` exactly.
            write_response(writer, &ok_line(id, "{\"pong\":true}", None))?;
            Ok(false)
        }
        Op::Metrics => {
            let doc = daemon_doc(shared, &[]);
            write_response(writer, &ok_line(id, &doc.to_json_line(), None))?;
            Ok(false)
        }
        Op::Watch(job) => {
            counters.count(CounterId::ServeWatches);
            let sent = stream_watch(id, job, shared, writer)?;
            let done = format!("{{\"watch_done\":true,\"frames\":{sent}}}");
            write_response(writer, &ok_line(id, &done, None))?;
            Ok(false)
        }
        Op::Shutdown => {
            shared.signal.request();
            write_response(writer, &ok_line(id, "{\"shutting_down\":true}", None))?;
            Ok(true)
        }
        op @ (Op::Simulate(_) | Op::Compare(_) | Op::Sweep(_)) => {
            let op_counter = match &op {
                Op::Simulate(_) => CounterId::ServeOpSimulate,
                Op::Compare(_) => CounterId::ServeOpCompare,
                _ => CounterId::ServeOpSweep,
            };
            let request = Request { id, op };
            let (tx, rx) = mpsc::channel::<String>();
            let job = {
                let shared = Arc::clone(shared);
                let tee = Arc::clone(tee);
                Box::new(move || {
                    let env = ExecEnv {
                        pool: &shared.workspaces,
                        global: Some(tee),
                        fanout: shared.config.fanout,
                    };
                    let _ = tx.send(execute(&request, &env));
                })
            };
            let latency = Stopwatch::start();
            let resp = match shared.jobs.try_submit(job) {
                Ok(depth) => {
                    counters.count(CounterId::ServeRequests);
                    counters.observe(HistogramId::ServeQueueDepth, depth as u64);
                    let resp = match rx.recv() {
                        Ok(resp) => resp,
                        // The worker died mid-job (a panicking policy);
                        // tell the client rather than hanging up.
                        Err(_) => error_line(Some(id), "internal error: worker terminated"),
                    };
                    // Per-op accounting lives in the daemon-global
                    // registry only; per-request registries inside
                    // `execute` stay byte-stable for the differential.
                    counters.observe(HistogramId::ServeOpLatencyUs, latency.elapsed_us());
                    counters.count(op_counter);
                    resp
                }
                Err(e) => {
                    counters.count(CounterId::ServeRejected);
                    error_line(Some(id), &format!("overloaded: {e}"))
                }
            };
            write_response(writer, &resp)?;
            Ok(false)
        }
    }
}

/// The daemon's self-describing metrics document: identity, uptime, the
/// publication sequence number, and worker-pool gauges, followed by any
/// caller-supplied entries (watch frames add their frame index), wrapping
/// the current global snapshot.
fn daemon_doc(shared: &Shared, extra: &[(&str, String)]) -> MetricsDoc {
    // mkss-lint: ordering — publication sequence label; monotonicity per document is all consumers read into it
    let seq = shared.seq.fetch_add(1, Ordering::Relaxed);
    let mut meta: Vec<(&str, String)> = vec![
        ("endpoint", "daemon".to_string()),
        ("seq", seq.to_string()),
        ("uptime_ms", shared.start.elapsed_ms_ceil().to_string()),
        ("workers", shared.jobs.worker_count().to_string()),
        ("busy_workers", shared.jobs.busy_count().to_string()),
        ("queue", shared.config.queue_capacity.to_string()),
        ("queue_depth", shared.jobs.queue_depth().to_string()),
        ("pid", std::process::id().to_string()),
    ];
    meta.extend(extra.iter().map(|(k, v)| (*k, v.clone())));
    metrics_doc("mkss-serve", shared.registry.snapshot(), &meta, &[])
}

/// Push one metrics frame per interval until the subscription's frame
/// budget is spent, shutdown begins, or the client disconnects (a write
/// error, propagated). Returns the number of frames pushed.
fn stream_watch(id: u64, job: WatchJob, shared: &Shared, writer: &mut Conn) -> io::Result<u64> {
    let mut sent = 0u64;
    loop {
        let doc = daemon_doc(
            shared,
            &[
                ("frame", sent.to_string()),
                ("interval_ms", job.interval_ms.to_string()),
            ],
        );
        write_response(writer, &ok_line(id, &doc.to_json_line(), None))?;
        sent += 1;
        if job.frames != 0 && sent >= job.frames {
            return Ok(sent);
        }
        if shared
            .signal
            .wait_requested_for(Duration::from_millis(job.interval_ms))
        {
            return Ok(sent);
        }
    }
}

fn write_response(writer: &mut Conn, line: &str) -> io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

fn lock<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn join_quiet(handle: JoinHandle<()>) {
    // A panicked handler already lost its connection; don't take the
    // daemon down with it.
    let _ = handle.join();
}
