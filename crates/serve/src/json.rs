//! A minimal hand-rolled JSON tree: parser and accessors.
//!
//! The daemon speaks line-delimited JSON but, like `mkss-obs`, must stay
//! free of external dependencies, so this module implements the subset
//! of RFC 8259 the protocol needs. Two deliberate simplifications:
//!
//! * objects are vectors of `(key, value)` pairs in document order (no
//!   hash maps — lookup is linear, and protocol objects are tiny);
//! * nesting depth is capped at [`MAX_DEPTH`] so a hostile request line
//!   cannot overflow the parser's stack.

use std::fmt;

/// Maximum nesting depth accepted by [`parse`].
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
// mkss-lint: allow(pub-api-hygiene) — closed variant set: JSON has exactly these value kinds; a parser consumer must match them all
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (always carried as `f64`; protocol integers are small
    /// enough to be exact).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object: `(key, value)` pairs in document order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member of an object, by key (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one
    /// exactly (rejects fractions, negatives, and magnitudes beyond
    /// 2^53 where `f64` stops being exact).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Error from [`parse`]: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse one complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", expected as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: require the paired low
                                // surrogate escape.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(code)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(unit)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| (b & 0xC0) == 0x80) {
                        self.pos += 1;
                    }
                    let scalar = &self.bytes[start..self.pos];
                    // mkss-lint: allow(no-unwrap-in-lib) — slicing a &str-backed byte range on scalar boundaries
                    out.push_str(std::str::from_utf8(scalar).expect("valid UTF-8"));
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut unit = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a') as u32 + 10,
                Some(c @ b'A'..=b'F') => (c - b'A') as u32 + 10,
                _ => return Err(self.err("expected four hex digits")),
            };
            unit = unit * 16 + digit;
            self.pos += 1;
        }
        Ok(unit)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let digits = &self.bytes[start..self.pos];
        // mkss-lint: allow(no-unwrap-in-lib) — the scanned range is ASCII digits/signs by construction
        let text = std::str::from_utf8(digits).expect("ASCII by construction");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(JsonValue::Num(n)),
            _ => Err(JsonError {
                offset: start,
                message: format!("invalid number '{text}'"),
            }),
        }
    }
}

/// Escape and quote `s` per RFC 8259, appending to `out`.
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a float that always parses as a JSON number (non-finite values
/// clamp to 0, matching the `mkss-obs` exporter's convention).
pub fn push_json_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        out.push_str(&format!("{value}"));
    } else {
        out.push('0');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("42").unwrap(), JsonValue::Num(42.0));
        assert_eq!(parse("-2.5e1").unwrap(), JsonValue::Num(-25.0));
        assert_eq!(parse("\"hi\"").unwrap(), JsonValue::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "c"}], "d": null}"#).unwrap();
        assert_eq!(v.get("d"), Some(&JsonValue::Null));
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].get("b").unwrap().as_str(), Some("c"));
    }

    #[test]
    fn unescapes_strings() {
        let v = parse(r#""line\nquote\"u\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("line\nquote\"uA\u{e9}"));
        // Surrogate pair → astral scalar.
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        // Raw multi-byte UTF-8 passes through.
        let v = parse("\"héllo\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"open",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "{,}",
            "01x",
            "\"\\q\"",
            "nan",
            "1e999",
            "\"\\ud800\"",
            "\u{1}",
        ] {
            let err = parse(bad).unwrap_err();
            assert!(!err.to_string().is_empty(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_limit_rejects_deep_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"), "{err}");
        let ok = "[".repeat(10) + &"]".repeat(10);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn u64_accessor_is_exact_only() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1e300").unwrap().as_u64(), None);
    }

    #[test]
    fn writer_helpers_escape_and_clamp() {
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\n\u{1}");
        assert_eq!(out, r#""a\"b\\c\n\u0001""#);
        let mut out = String::new();
        push_json_f64(&mut out, 2.5);
        push_json_f64(&mut out, f64::NAN);
        assert_eq!(out, "2.50");
    }
}
