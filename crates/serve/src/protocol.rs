//! The line protocol: request parsing and response rendering.
//!
//! Each request is one line of JSON with two fixed members — `id` (a
//! client-chosen correlation number, echoed verbatim) and `op` — plus
//! op-specific members:
//!
//! ```json
//! {"id": 1, "op": "ping"}
//! {"id": 2, "op": "simulate", "task_set": {"tasks": [{"period_ms": 10, "wcet_ms": 2, "m": 1, "k": 2}]},
//!  "policy": "selective", "horizon_ms": 100,
//!  "faults": {"seed": 7, "transient_per_ms": 1e-5, "permanent": {"proc": 0, "at_ms": 40}},
//!  "trace": {"last": 64}}
//! {"id": 3, "op": "compare", "task_set": {...}, "horizon_ms": 100, "policies": ["st", "dp"]}
//! {"id": 4, "op": "sweep", "task_set": {...}, "policy": "dp", "horizon_ms": 100,
//!  "faults": {"transient_per_ms": 1e-5}, "seeds": 32, "seed_from": 100}
//! {"id": 5, "op": "metrics"}
//! {"id": 6, "op": "shutdown"}
//! {"id": 7, "op": "watch", "interval_ms": 250, "frames": 20}
//! ```
//!
//! Every response is also one line: `{"id": ..., "ok": true, "result":
//! {...}, "metrics": {...}}` on success (the `metrics` member is present
//! only for simulation ops), `{"id": ..., "ok": false, "error": "..."}`
//! on failure. Unknown request members are ignored for forward
//! compatibility; unknown ops are errors.
//!
//! `simulate` accepts an optional `"trace": {"last": N}` member
//! (`1..=MAX_TRACE_LAST`): the run is recorded through the
//! `mkss_obs` flight recorder and the result gains a `trace` member with
//! the last `N` engine events, oldest first. Sweeps ignore the member —
//! a bounded timeline per replica would dwarf the aggregate response.
//!
//! `watch` is the one *streaming* op: the daemon pushes one `ok` line per
//! sample (the `result` is a full metrics document whose `meta` carries
//! the daemon identity, a monotonic `seq`, `uptime_ms`, and pool gauges),
//! every `interval_ms` milliseconds, until `frames` samples have been
//! sent (`0` = until shutdown or disconnect), then sends a final
//! `{"watch_done": true, "frames": N}` line and resumes normal
//! request/response service on the same connection.
//!
//! The `task_set` member uses the exact schema of `mkss-cli`'s task-set
//! files (fractional milliseconds, `deadline_ms` defaulting to the
//! period, task order = priority order), so a file passed to `--set`
//! embeds unchanged in a request.

use std::fmt;

use mkss_core::task::{Task, TaskSet};
use mkss_core::time::{Time, TICKS_PER_MS};
use mkss_policies::PolicyKind;
use mkss_sim::prelude::{FaultConfig, PermanentFault, ProcId, SimConfig};

use crate::json::{self, push_json_string, JsonValue};

/// Upper bound on `seeds` in a sweep, so one request line cannot pin the
/// worker pool for minutes.
pub const MAX_SWEEP_SEEDS: u64 = 4096;

/// Upper bound on `trace.last` in a simulate, so one request line cannot
/// balloon a response (and the per-request ring allocation) arbitrarily.
pub const MAX_TRACE_LAST: u64 = 4096;

/// A parsed request: correlation id plus the operation.
#[derive(Debug)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// What to do.
    pub op: Op,
}

/// The operations the daemon accepts.
#[derive(Debug)]
// mkss-lint: allow(pub-api-hygiene) — closed variant set: the wire protocol's op set; adding an op is a protocol version bump that every dispatcher must handle explicitly
pub enum Op {
    /// Liveness probe; responds immediately from the connection handler.
    Ping,
    /// Snapshot of the daemon's global metrics registry.
    Metrics,
    /// Graceful shutdown: drain the queue, then exit.
    Shutdown,
    /// One simulation run.
    Simulate(SimJob),
    /// One run per policy over the same task set and scenario.
    Compare(CompareJob),
    /// Seed-range replication of one scenario, fanned across the pool.
    Sweep(SweepJob),
    /// Streaming metrics subscription (the connection becomes a sampler
    /// until the subscription ends).
    Watch(WatchJob),
}

impl Op {
    /// Stable protocol name of the operation.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Ping => "ping",
            Op::Metrics => "metrics",
            Op::Shutdown => "shutdown",
            Op::Simulate(_) => "simulate",
            Op::Compare(_) => "compare",
            Op::Sweep(_) => "sweep",
            Op::Watch(_) => "watch",
        }
    }
}

/// One simulation run: a validated task set, a policy, and a scenario.
#[derive(Debug)]
pub struct SimJob {
    /// The task set, already validated by the core task model.
    pub task_set: TaskSet,
    /// The scheme to run.
    pub policy: PolicyKind,
    /// Horizon, power model, and fault scenario.
    pub config: SimConfig,
    /// When set, capture the run through the flight recorder and embed
    /// the last this-many engine events in the response
    /// (`1..=MAX_TRACE_LAST`).
    pub trace_last: Option<u64>,
}

/// Per-policy comparison over one scenario.
#[derive(Debug)]
pub struct CompareJob {
    /// The task set.
    pub task_set: TaskSet,
    /// Schemes to run, in response-row order (defaults to every scheme).
    pub policies: Vec<PolicyKind>,
    /// Shared scenario.
    pub config: SimConfig,
}

/// Fastest sampling interval a `watch` subscription may request.
pub const MIN_WATCH_INTERVAL_MS: u64 = 10;

/// Slowest sampling interval a `watch` subscription may request.
pub const MAX_WATCH_INTERVAL_MS: u64 = 10_000;

/// A live metrics subscription: how often to sample, and for how long.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchJob {
    /// Milliseconds between pushed samples
    /// (`MIN_WATCH_INTERVAL_MS..=MAX_WATCH_INTERVAL_MS`; defaults to 100).
    pub interval_ms: u64,
    /// Number of samples to push before ending the subscription; `0`
    /// (the default) streams until shutdown or disconnect.
    pub frames: u64,
}

/// Seed-range replication of one `(task set, policy, scenario)` triple.
#[derive(Debug)]
pub struct SweepJob {
    /// The run to replicate; its fault seed is replaced per replica.
    pub base: SimJob,
    /// First seed.
    pub seed_from: u64,
    /// Number of consecutive seeds (`1..=MAX_SWEEP_SEEDS`).
    pub seeds: u64,
}

/// A protocol-level failure: what to tell the client, and the request id
/// if one was recovered from the line.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct ProtocolError {
    /// Echoed id, when the line parsed far enough to recover one.
    pub id: Option<u64>,
    /// Human-readable description, sent as the `error` member.
    pub message: String,
}

impl ProtocolError {
    fn new(id: Option<u64>, message: impl Into<String>) -> ProtocolError {
        ProtocolError {
            id,
            message: message.into(),
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ProtocolError {}

impl Request {
    /// Parse one request line.
    pub fn parse(line: &str) -> Result<Request, ProtocolError> {
        let doc = json::parse(line).map_err(|e| ProtocolError::new(None, e.to_string()))?;
        if !matches!(doc, JsonValue::Object(_)) {
            return Err(ProtocolError::new(None, "request must be a JSON object"));
        }
        let id = doc.get("id").and_then(JsonValue::as_u64).ok_or_else(|| {
            ProtocolError::new(None, "missing or invalid 'id' (non-negative integer)")
        })?;
        let fail = |message: String| ProtocolError::new(Some(id), message);
        let op_name = doc
            .get("op")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| fail("missing or invalid 'op' (string)".into()))?;
        let op = match op_name {
            "ping" => Op::Ping,
            "metrics" => Op::Metrics,
            "shutdown" => Op::Shutdown,
            "simulate" => Op::Simulate(parse_sim_job(&doc).map_err(&fail)?),
            "compare" => Op::Compare(parse_compare_job(&doc).map_err(&fail)?),
            "sweep" => Op::Sweep(parse_sweep_job(&doc).map_err(&fail)?),
            "watch" => Op::Watch(parse_watch_job(&doc).map_err(&fail)?),
            other => return Err(fail(format!("unknown op '{other}'"))),
        };
        Ok(Request { id, op })
    }
}

fn parse_sim_job(doc: &JsonValue) -> Result<SimJob, String> {
    Ok(SimJob {
        task_set: parse_task_set(doc)?,
        policy: parse_policy(doc)?,
        config: parse_config(doc)?,
        trace_last: parse_trace(doc)?,
    })
}

fn parse_trace(doc: &JsonValue) -> Result<Option<u64>, String> {
    let Some(spec) = doc.get("trace") else {
        return Ok(None);
    };
    if !matches!(spec, JsonValue::Object(_)) {
        return Err("'trace' must be an object".into());
    }
    let last = req_u64(spec, "last").map_err(|e| format!("trace: {e}"))?;
    if last == 0 || last > MAX_TRACE_LAST {
        return Err(format!(
            "'trace.last' must be in 1..={MAX_TRACE_LAST}, got {last}"
        ));
    }
    Ok(Some(last))
}

fn parse_compare_job(doc: &JsonValue) -> Result<CompareJob, String> {
    let policies = match doc.get("policies") {
        None => PolicyKind::ALL.to_vec(),
        Some(value) => {
            let items = value
                .as_array()
                .ok_or("'policies' must be an array of policy ids")?;
            if items.is_empty() {
                return Err("'policies' must not be empty".into());
            }
            let mut kinds = Vec::with_capacity(items.len());
            for item in items {
                let id = item.as_str().ok_or("'policies' entries must be strings")?;
                kinds.push(id.parse::<PolicyKind>().map_err(|e| e.to_string())?);
            }
            kinds
        }
    };
    Ok(CompareJob {
        task_set: parse_task_set(doc)?,
        policies,
        config: parse_config(doc)?,
    })
}

fn parse_sweep_job(doc: &JsonValue) -> Result<SweepJob, String> {
    let seeds = req_u64(doc, "seeds")?;
    if seeds == 0 || seeds > MAX_SWEEP_SEEDS {
        return Err(format!(
            "'seeds' must be in 1..={MAX_SWEEP_SEEDS}, got {seeds}"
        ));
    }
    let seed_from = match doc.get("seed_from") {
        None => 0,
        Some(v) => v
            .as_u64()
            .ok_or("'seed_from' must be a non-negative integer")?,
    };
    if seed_from.checked_add(seeds).is_none() {
        return Err("'seed_from' + 'seeds' overflows".into());
    }
    Ok(SweepJob {
        base: parse_sim_job(doc)?,
        seed_from,
        seeds,
    })
}

fn parse_watch_job(doc: &JsonValue) -> Result<WatchJob, String> {
    let interval_ms = match doc.get("interval_ms") {
        None => 100,
        Some(v) => v
            .as_u64()
            .ok_or("'interval_ms' must be a non-negative integer")?,
    };
    if !(MIN_WATCH_INTERVAL_MS..=MAX_WATCH_INTERVAL_MS).contains(&interval_ms) {
        return Err(format!(
            "'interval_ms' must be in {MIN_WATCH_INTERVAL_MS}..={MAX_WATCH_INTERVAL_MS}, got {interval_ms}"
        ));
    }
    let frames = match doc.get("frames") {
        None => 0,
        Some(v) => v
            .as_u64()
            .ok_or("'frames' must be a non-negative integer")?,
    };
    Ok(WatchJob {
        interval_ms,
        frames,
    })
}

fn parse_policy(doc: &JsonValue) -> Result<PolicyKind, String> {
    let id = doc
        .get("policy")
        .and_then(JsonValue::as_str)
        .ok_or("missing or invalid 'policy' (string)")?;
    id.parse::<PolicyKind>().map_err(|e| e.to_string())
}

fn parse_config(doc: &JsonValue) -> Result<SimConfig, String> {
    let horizon = ms_to_time(req_f64(doc, "horizon_ms")?, "horizon_ms")?;
    if horizon.is_zero() {
        return Err("'horizon_ms' must be positive".into());
    }
    let faults = match doc.get("faults") {
        None => FaultConfig::none(),
        Some(value) => parse_faults(value)?,
    };
    Ok(SimConfig::builder().horizon(horizon).faults(faults).build())
}

fn parse_faults(value: &JsonValue) -> Result<FaultConfig, String> {
    if !matches!(value, JsonValue::Object(_)) {
        return Err("'faults' must be an object".into());
    }
    let mut faults = FaultConfig::none();
    if let Some(seed) = value.get("seed") {
        faults.seed = seed
            .as_u64()
            .ok_or("'faults.seed' must be a non-negative integer")?;
    }
    if let Some(rate) = value.get("transient_per_ms") {
        let rate = rate
            .as_f64()
            .ok_or("'faults.transient_per_ms' must be a number")?;
        if !(0.0..=1.0).contains(&rate) {
            return Err("'faults.transient_per_ms' must be in [0, 1]".into());
        }
        faults.transient_rate_per_ms = rate;
    }
    if let Some(permanent) = value.get("permanent") {
        let proc = permanent
            .get("proc")
            .and_then(JsonValue::as_u64)
            .filter(|&p| p < 2)
            .ok_or("'faults.permanent.proc' must be 0 (primary) or 1 (spare)")?;
        let at = ms_to_time(
            permanent
                .get("at_ms")
                .and_then(JsonValue::as_f64)
                .ok_or("'faults.permanent.at_ms' must be a number")?,
            "faults.permanent.at_ms",
        )?;
        faults.permanent = Some(PermanentFault {
            proc: if proc == 0 {
                ProcId::PRIMARY
            } else {
                ProcId::SPARE
            },
            at,
        });
    }
    Ok(faults)
}

/// Parse the `task_set` member with `mkss-cli`'s task-file schema.
fn parse_task_set(doc: &JsonValue) -> Result<TaskSet, String> {
    let spec = doc.get("task_set").ok_or("missing 'task_set'")?;
    let entries = spec
        .get("tasks")
        .and_then(JsonValue::as_array)
        .ok_or("'task_set.tasks' must be an array")?;
    let mut tasks = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        let context = |field: &str| format!("task {}: {field}", i + 1);
        let period = ms_to_time(
            req_f64(entry, "period_ms").map_err(|e| context(&e))?,
            "period_ms",
        )
        .map_err(|e| context(&e))?;
        let deadline = match entry.get("deadline_ms") {
            None => period,
            Some(v) => ms_to_time(
                v.as_f64()
                    .ok_or_else(|| context("'deadline_ms' must be a number"))?,
                "deadline_ms",
            )
            .map_err(|e| context(&e))?,
        };
        let wcet = ms_to_time(
            req_f64(entry, "wcet_ms").map_err(|e| context(&e))?,
            "wcet_ms",
        )
        .map_err(|e| context(&e))?;
        let m = req_u64(entry, "m").map_err(|e| context(&e))?;
        let k = req_u64(entry, "k").map_err(|e| context(&e))?;
        let (m, k) = (
            u32::try_from(m).map_err(|_| context("'m' is out of range"))?,
            u32::try_from(k).map_err(|_| context("'k' is out of range"))?,
        );
        let task =
            Task::new(period, deadline, wcet, m, k).map_err(|e| format!("task {}: {e}", i + 1))?;
        tasks.push(task);
    }
    TaskSet::new(tasks).map_err(|e| e.to_string())
}

fn req_f64(doc: &JsonValue, field: &str) -> Result<f64, String> {
    doc.get(field)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("missing or invalid '{field}' (number)"))
}

fn req_u64(doc: &JsonValue, field: &str) -> Result<u64, String> {
    doc.get(field)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing or invalid '{field}' (non-negative integer)"))
}

fn ms_to_time(ms: f64, what: &str) -> Result<Time, String> {
    if !ms.is_finite() || !(0.0..=1e15).contains(&ms) {
        return Err(format!(
            "'{what}' must be a finite non-negative number of milliseconds"
        ));
    }
    Ok(Time::from_ticks((ms * TICKS_PER_MS as f64).round() as u64))
}

/// Render a success response line (without trailing newline).
///
/// `result` and `metrics` are pre-rendered JSON embedded verbatim; the
/// `metrics` member is omitted when `None` (ping, metrics, shutdown).
pub fn ok_line(id: u64, result: &str, metrics: Option<&str>) -> String {
    let mut out = String::with_capacity(result.len() + 64);
    out.push_str("{\"id\":");
    out.push_str(&id.to_string());
    out.push_str(",\"ok\":true,\"result\":");
    out.push_str(result);
    if let Some(metrics) = metrics {
        out.push_str(",\"metrics\":");
        out.push_str(metrics);
    }
    out.push('}');
    out
}

/// Render an error response line (without trailing newline). An
/// unrecoverable id renders as `null`.
pub fn error_line(id: Option<u64>, message: &str) -> String {
    let mut out = String::with_capacity(message.len() + 48);
    out.push_str("{\"id\":");
    match id {
        Some(id) => out.push_str(&id.to_string()),
        None => out.push_str("null"),
    }
    out.push_str(",\"ok\":false,\"error\":");
    push_json_string(&mut out, message);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SET: &str = r#""task_set": {"tasks": [
        {"period_ms": 5, "deadline_ms": 4, "wcet_ms": 3, "m": 2, "k": 4},
        {"period_ms": 10, "wcet_ms": 3, "m": 1, "k": 2}
    ]}"#;

    #[test]
    fn parses_control_ops() {
        for (op, name) in [
            ("ping", "ping"),
            ("metrics", "metrics"),
            ("shutdown", "shutdown"),
        ] {
            let req = Request::parse(&format!(r#"{{"id": 3, "op": "{op}"}}"#)).unwrap();
            assert_eq!(req.id, 3);
            assert_eq!(req.op.name(), name);
        }
    }

    #[test]
    fn parses_simulate_with_faults() {
        let line = format!(
            r#"{{"id": 9, "op": "simulate", {SET}, "policy": "selective", "horizon_ms": 100.5,
               "faults": {{"seed": 7, "transient_per_ms": 1e-5, "permanent": {{"proc": 1, "at_ms": 40}}}}}}"#
        );
        let req = Request::parse(&line).unwrap();
        let Op::Simulate(job) = req.op else {
            panic!("expected simulate")
        };
        assert_eq!(job.policy, PolicyKind::Selective);
        assert_eq!(job.task_set.len(), 2);
        assert_eq!(job.config.horizon, Time::from_us(100_500));
        assert_eq!(job.config.faults.seed, 7);
        assert!((job.config.faults.transient_rate_per_ms - 1e-5).abs() < 1e-18);
        let permanent = job.config.faults.permanent.unwrap();
        assert_eq!(permanent.proc, ProcId::SPARE);
        assert_eq!(permanent.at, Time::from_ms(40));
        assert_eq!(job.trace_last, None);
    }

    #[test]
    fn parses_simulate_trace_option() {
        let line = format!(
            r#"{{"id": 9, "op": "simulate", {SET}, "policy": "st", "horizon_ms": 100,
               "trace": {{"last": 64}}}}"#
        );
        let Op::Simulate(job) = Request::parse(&line).unwrap().op else {
            panic!("expected simulate")
        };
        assert_eq!(job.trace_last, Some(64));
    }

    #[test]
    fn trace_option_is_bounded_and_shaped() {
        for (spec, msg) in [
            (r#""trace": {"last": 0}"#, "1..="),
            (r#""trace": {"last": 4097}"#, "1..="),
            (r#""trace": {}"#, "trace: "),
            (r#""trace": 64"#, "must be an object"),
        ] {
            let line = format!(
                r#"{{"id": 9, "op": "simulate", {SET}, "policy": "st", "horizon_ms": 100, {spec}}}"#
            );
            let err = Request::parse(&line).unwrap_err();
            assert!(err.message.contains(msg), "{spec}: {err}");
        }
    }

    #[test]
    fn compare_defaults_to_all_policies() {
        let line = format!(r#"{{"id": 1, "op": "compare", {SET}, "horizon_ms": 50}}"#);
        let Op::Compare(job) = Request::parse(&line).unwrap().op else {
            panic!("expected compare")
        };
        assert_eq!(job.policies, PolicyKind::ALL.to_vec());

        let line = format!(
            r#"{{"id": 1, "op": "compare", {SET}, "horizon_ms": 50, "policies": ["dp", "st"]}}"#
        );
        let Op::Compare(job) = Request::parse(&line).unwrap().op else {
            panic!("expected compare")
        };
        assert_eq!(
            job.policies,
            vec![PolicyKind::DualPriority, PolicyKind::Static]
        );
    }

    #[test]
    fn sweep_bounds_are_enforced() {
        let ok = format!(
            r#"{{"id": 1, "op": "sweep", {SET}, "policy": "st", "horizon_ms": 50, "seeds": 4, "seed_from": 10}}"#
        );
        let Op::Sweep(job) = Request::parse(&ok).unwrap().op else {
            panic!("expected sweep")
        };
        assert_eq!((job.seed_from, job.seeds), (10, 4));

        for bad in ["\"seeds\": 0", "\"seeds\": 5000", "\"seeds\": 2.5"] {
            let line = format!(
                r#"{{"id": 1, "op": "sweep", {SET}, "policy": "st", "horizon_ms": 50, {bad}}}"#
            );
            let err = Request::parse(&line).unwrap_err();
            assert_eq!(err.id, Some(1), "{bad}: {err}");
            assert!(err.message.contains("seeds"), "{bad}: {err}");
        }
    }

    #[test]
    fn watch_defaults_and_bounds() {
        let Op::Watch(job) = Request::parse(r#"{"id": 1, "op": "watch"}"#).unwrap().op else {
            panic!("expected watch")
        };
        assert_eq!(
            job,
            WatchJob {
                interval_ms: 100,
                frames: 0
            }
        );

        let Op::Watch(job) =
            Request::parse(r#"{"id": 1, "op": "watch", "interval_ms": 250, "frames": 20}"#)
                .unwrap()
                .op
        else {
            panic!("expected watch")
        };
        assert_eq!(
            job,
            WatchJob {
                interval_ms: 250,
                frames: 20
            }
        );

        for bad in [
            "\"interval_ms\": 5",
            "\"interval_ms\": 60000",
            "\"interval_ms\": 2.5",
            "\"frames\": -1",
        ] {
            let line = format!(r#"{{"id": 1, "op": "watch", {bad}}}"#);
            let err = Request::parse(&line).unwrap_err();
            assert_eq!(err.id, Some(1), "{bad}: {err}");
        }
    }

    #[test]
    fn errors_recover_the_id_once_parsed() {
        let err = Request::parse("not json at all").unwrap_err();
        assert_eq!(err.id, None);
        let err = Request::parse(r#"{"op": "ping"}"#).unwrap_err();
        assert_eq!(err.id, None);
        let err = Request::parse(r#"{"id": 5, "op": "levitate"}"#).unwrap_err();
        assert_eq!(err.id, Some(5));
        assert!(err.message.contains("levitate"));
        let err = Request::parse(r#"{"id": 5, "op": "simulate"}"#).unwrap_err();
        assert_eq!(err.id, Some(5));
        assert!(err.message.contains("task_set"));
    }

    #[test]
    fn task_validation_errors_carry_the_index() {
        let line = r#"{"id": 2, "op": "simulate", "task_set": {"tasks": [
            {"period_ms": 5, "wcet_ms": 3, "m": 9, "k": 4}
        ]}, "policy": "st", "horizon_ms": 50}"#;
        let err = Request::parse(line).unwrap_err();
        assert!(err.message.contains("task 1"), "{err}");
    }

    #[test]
    fn response_lines_render_compactly() {
        assert_eq!(
            ok_line(4, "{\"pong\":true}", None),
            r#"{"id":4,"ok":true,"result":{"pong":true}}"#
        );
        assert_eq!(
            ok_line(4, "{}", Some("{\"meta\":{}}")),
            r#"{"id":4,"ok":true,"result":{},"metrics":{"meta":{}}}"#
        );
        assert_eq!(
            error_line(None, "bad \"line\""),
            r#"{"id":null,"ok":false,"error":"bad \"line\""}"#
        );
        assert_eq!(
            error_line(Some(2), "nope"),
            r#"{"id":2,"ok":false,"error":"nope"}"#
        );
    }
}
