//! A minimal blocking client for the line protocol, shared by the
//! `loadgen` harness, the integration tests, and the CI smoke check.

use std::io::{self, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;

use crate::conn::{read_line_bounded, Conn, LineRead};

/// Generous client-side response-line budget (responses carrying a full
/// metrics document run a few KiB; compare responses a few more).
const MAX_RESPONSE_BYTES: usize = 16 << 20;

/// A blocking connection to a running daemon.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<Conn>,
    writer: Conn,
}

impl Client {
    /// Connect to a Unix-domain socket.
    ///
    /// # Errors
    ///
    /// Propagates the connection failure.
    pub fn connect_unix(path: impl AsRef<Path>) -> io::Result<Client> {
        Client::new(Conn::Unix(UnixStream::connect(path)?))
    }

    /// Connect to a TCP endpoint (e.g. `"127.0.0.1:7878"`).
    ///
    /// # Errors
    ///
    /// Propagates the connection failure.
    pub fn connect_tcp(addr: &str) -> io::Result<Client> {
        Client::new(Conn::Tcp(TcpStream::connect(addr)?))
    }

    fn new(conn: Conn) -> io::Result<Client> {
        let writer = conn.try_clone()?;
        Ok(Client {
            reader: BufReader::new(conn),
            writer,
        })
    }

    /// Send one request line and read the matching response line.
    ///
    /// `line` must be a single line (no embedded newline — embedding one
    /// would desynchronize the request/response pairing, so it is
    /// rejected here).
    ///
    /// # Errors
    ///
    /// Fails on transport errors, on a closed connection, or on an
    /// embedded newline in `line`.
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        self.send(line)?;
        self.recv()
    }

    /// Send one request line without reading a response. Streaming ops
    /// (`watch`) answer with *many* lines; pair this with repeated
    /// [`Client::recv`] calls to consume them.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an embedded newline in `line`.
    pub fn send(&mut self, line: &str) -> io::Result<()> {
        if line.contains('\n') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "request must be a single line",
            ));
        }
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(())
    }

    /// Read the next response line from the daemon.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, a closed connection, or a malformed
    /// (oversized / non-UTF-8) response line.
    pub fn recv(&mut self) -> io::Result<String> {
        match read_line_bounded(&mut self.reader, MAX_RESPONSE_BYTES)? {
            LineRead::Line(resp) => Ok(resp),
            LineRead::Eof => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            )),
            LineRead::TooLong | LineRead::NotUtf8 => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "malformed response line",
            )),
        }
    }
}
