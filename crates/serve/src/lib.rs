//! # mkss-serve
//!
//! A session-pooled simulation daemon for the (m,k) standby-sparing
//! stack: clients connect over a Unix-domain or TCP socket, send
//! line-delimited JSON requests (`simulate`, `compare`, `sweep`, plus
//! `ping` / `metrics` / `shutdown`), and get one response line per
//! request with the simulation result and that request's own metrics
//! delta. A streaming `watch` op turns a connection into a live metrics
//! feed (one document per interval, with daemon identity/uptime meta for
//! restart detection) — the transport `mkss-top` renders.
//!
//! The crate reshapes the workspace's public API around long-lived
//! serving rather than one-shot binaries:
//!
//! * simulations draw reusable arenas from a shared
//!   [`mkss_sim::pool::WorkspacePool`], so steady-state traffic
//!   allocates nothing per run;
//! * requests are scheduled on a bounded [`mkss_core::par::WorkerPool`]
//!   — when the queue fills the daemon sheds load with an `overloaded`
//!   error instead of buffering unboundedly;
//! * every request's engine events are recorded through an
//!   [`mkss_obs::ScopedRecorder`] tee into a per-request registry *and*
//!   the daemon's global one, so per-request metrics sum exactly to the
//!   daemon totals.
//!
//! The contract that keeps the daemon honest: [`exec::execute`] is the
//! entire behavior of the simulation ops, and for a given request line
//! its response line is **byte-identical** whether invoked in-process or
//! through the daemon, at any pool size or fan-out. `mkss-bench`'s
//! `loadgen` binary and this crate's integration tests assert exactly
//! that.
//!
//! Like `mkss-obs`, the crate is std-only: the protocol JSON parser is
//! hand-rolled in [`json`].
//!
//! ## Example
//!
//! ```
//! use mkss_serve::{Client, Server, ServerConfig};
//!
//! # fn main() -> std::io::Result<()> {
//! let dir = std::env::temp_dir().join(format!("mkss-serve-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir)?;
//! let sock = dir.join("daemon.sock");
//! let server = Server::bind_unix(&sock, ServerConfig::default())?;
//!
//! let mut client = Client::connect_unix(&sock)?;
//! let resp = client.request(r#"{"id": 1, "op": "ping"}"#)?;
//! assert_eq!(resp, r#"{"id":1,"ok":true,"result":{"pong":true}}"#);
//!
//! client.request(r#"{"id": 2, "op": "shutdown"}"#)?;
//! let totals = server.run(); // drains and joins every thread
//! assert!(totals.counter(mkss_obs::CounterId::ServeRejected) == 0);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod conn;
pub mod exec;
pub mod json;
pub mod protocol;
mod server;

pub use client::Client;
pub use exec::{execute, ExecEnv};
pub use protocol::{Op, ProtocolError, Request, WatchJob};
pub use server::{Server, ServerConfig};
