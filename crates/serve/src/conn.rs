//! Transport abstraction: one enum over Unix-domain and TCP streams, plus
//! the bounded line reader both the daemon and its clients use.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::os::unix::net::UnixStream;

/// A connected byte stream over either transport.
#[derive(Debug)]
pub(crate) enum Conn {
    /// Unix-domain socket stream.
    Unix(UnixStream),
    /// TCP stream.
    Tcp(TcpStream),
}

impl Conn {
    /// An independently-owned handle to the same underlying socket.
    pub(crate) fn try_clone(&self) -> io::Result<Conn> {
        Ok(match self {
            Conn::Unix(s) => Conn::Unix(s.try_clone()?),
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
        })
    }

    /// Shut down the read half, unblocking any blocked reader with EOF
    /// while still allowing an in-flight response to be written.
    pub(crate) fn shutdown_read(&self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.shutdown(Shutdown::Read),
            Conn::Tcp(s) => s.shutdown(Shutdown::Read),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

/// Outcome of one bounded line read.
#[derive(Debug)]
pub(crate) enum LineRead {
    /// A complete line (newline stripped).
    Line(String),
    /// Clean end of stream with no pending bytes.
    Eof,
    /// The line exceeded the byte budget; the connection should close.
    TooLong,
    /// The line was not valid UTF-8.
    NotUtf8,
}

/// Read one `\n`-terminated line of at most `max_bytes` bytes (excluding
/// the terminator). A final unterminated line at EOF counts as a line,
/// so piped one-shot clients need not send a trailing newline.
pub(crate) fn read_line_bounded<R: Read>(
    reader: &mut BufReader<R>,
    max_bytes: usize,
) -> io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if buf.is_empty() {
                LineRead::Eof
            } else {
                finish(buf)
            });
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.unwrap_or(chunk.len());
        if buf.len() + take > max_bytes {
            // Discard through the end of the oversized line so the
            // stream stays positioned at the next one.
            discard_line(reader, newline)?;
            return Ok(LineRead::TooLong);
        }
        buf.extend_from_slice(&chunk[..take]);
        match newline {
            Some(pos) => {
                reader.consume(pos + 1);
                return Ok(finish(buf));
            }
            None => reader.consume(take),
        }
    }
}

fn discard_line<R: Read>(reader: &mut BufReader<R>, newline_at: Option<usize>) -> io::Result<()> {
    if let Some(pos) = newline_at {
        reader.consume(pos + 1);
        return Ok(());
    }
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Ok(());
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                reader.consume(pos + 1);
                return Ok(());
            }
            None => {
                let len = chunk.len();
                reader.consume(len);
            }
        }
    }
}

fn finish(mut buf: Vec<u8>) -> LineRead {
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    match String::from_utf8(buf) {
        Ok(line) => LineRead::Line(line),
        Err(_) => LineRead::NotUtf8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_all(input: &[u8], max: usize) -> Vec<String> {
        let mut reader = BufReader::with_capacity(4, input);
        let mut lines = Vec::new();
        loop {
            match read_line_bounded(&mut reader, max).unwrap() {
                LineRead::Line(l) => lines.push(l),
                LineRead::Eof => return lines,
                LineRead::TooLong => lines.push("<too long>".into()),
                LineRead::NotUtf8 => lines.push("<not utf8>".into()),
            }
        }
    }

    #[test]
    fn splits_lines_and_handles_final_unterminated_line() {
        assert_eq!(read_all(b"a\nbb\r\nccc", 10), vec!["a", "bb", "ccc"]);
        assert_eq!(read_all(b"", 10), Vec::<String>::new());
        assert_eq!(read_all(b"\n\n", 10), vec!["", ""]);
    }

    #[test]
    fn oversized_lines_are_flagged_not_buffered() {
        // Limit 5: the 8-byte line trips TooLong, the next line still reads.
        assert_eq!(read_all(b"12345678\nok\n", 5), vec!["<too long>", "ok"]);
    }

    #[test]
    fn invalid_utf8_is_flagged() {
        assert_eq!(read_all(b"\xff\xfe\nok\n", 10), vec!["<not utf8>", "ok"]);
    }
}
