//! Pure request execution, shared by the daemon and by direct callers.
//!
//! [`execute`] turns a parsed [`Request`] into the exact response line
//! the daemon would send — it is the *whole* behavior of the simulation
//! ops, with the connection layer contributing nothing but transport.
//! That is what makes the loadgen differential possible: the bench
//! harness calls [`execute`] in-process and asserts the daemon's bytes
//! match.
//!
//! Determinism contract: for a given request line, the response line is
//! byte-identical regardless of worker-pool size, sweep fan-out, or
//! whether a global metrics tee is attached. Per-request metrics come
//! from a registry created for the request; wall-clock stages are
//! deliberately absent.

use std::sync::Arc;

use mkss_core::par;
use mkss_obs::{
    metrics_doc, trace_json_fragment, MetricsSnapshot, Recorder, Registry, RequestId,
    ScopedRecorder, TraceRecorder,
};
use mkss_policies::BuildOptions;
use mkss_sim::prelude::{simulate_in, SimReport, WorkspacePool};

use crate::json::{push_json_f64, push_json_string};
use crate::protocol::{error_line, ok_line, CompareJob, Op, Request, SimJob, SweepJob};

/// Everything [`execute`] needs besides the request itself.
pub struct ExecEnv<'a> {
    /// Workspace pool the simulations draw arenas from.
    pub pool: &'a WorkspacePool,
    /// Optional process-global metrics tee (the daemon's registry);
    /// `None` for direct library callers. Never affects response bytes.
    pub global: Option<Arc<dyn Recorder>>,
    /// Worker threads for sweep fan-out (`0` = available parallelism).
    pub fanout: usize,
}

impl std::fmt::Debug for ExecEnv<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecEnv")
            .field("pool_idle", &self.pool.idle())
            .field("global", &self.global.is_some())
            .field("fanout", &self.fanout)
            .finish()
    }
}

/// Execute one request, returning the complete response line (no
/// trailing newline).
///
/// `metrics`, `shutdown`, and `watch` are connection-layer ops — the
/// daemon answers them from its own state without touching the pool — so
/// this function answers them with an error.
pub fn execute(request: &Request, env: &ExecEnv<'_>) -> String {
    match &request.op {
        Op::Ping => ok_line(request.id, "{\"pong\":true}", None),
        Op::Metrics | Op::Shutdown | Op::Watch(_) => error_line(
            Some(request.id),
            &format!(
                "op '{}' is answered by the daemon itself",
                request.op.name()
            ),
        ),
        Op::Simulate(job) => exec_simulate(request.id, job, env),
        Op::Compare(job) => exec_compare(request.id, job, env),
        Op::Sweep(job) => exec_sweep(request.id, job, env),
    }
}

/// A recorder teeing into shard `shard` of the request-local registry
/// and (when attached) the daemon's global sink.
fn scoped(id: u64, registry: &Arc<Registry>, shard: usize, env: &ExecEnv<'_>) -> Arc<dyn Recorder> {
    Arc::new(ScopedRecorder::new(
        RequestId(id),
        Arc::new(registry.handle_at(shard)),
        env.global.clone(),
    ))
}

/// Render the per-request metrics document (compact, no timing stages).
fn request_metrics(id: u64, op: &str, snapshot: MetricsSnapshot) -> String {
    metrics_doc(
        "mkss-serve",
        snapshot,
        &[("id", id.to_string()), ("op", op.to_string())],
        &[],
    )
    .to_json_line()
}

fn exec_simulate(id: u64, job: &SimJob, env: &ExecEnv<'_>) -> String {
    let mut policy = match job.policy.build(&job.task_set, &BuildOptions::default()) {
        Ok(policy) => policy,
        Err(e) => return error_line(Some(id), &e.to_string()),
    };
    let registry = Arc::new(Registry::new(1));
    // When the request asked for a trace, tee the scoped recorder through a
    // bounded flight recorder; the ring holds exactly the last N events.
    let tracer = job.trace_last.map(|last| {
        Arc::new(TraceRecorder::wrapping(
            scoped(id, &registry, 0, env),
            last as usize,
        ))
    });
    let report = {
        let mut ws = env.pool.checkout();
        ws.set_recorder(Some(match &tracer {
            Some(tracer) => Arc::clone(tracer) as Arc<dyn Recorder>,
            None => scoped(id, &registry, 0, env),
        }));
        simulate_in(&mut ws, &job.task_set, policy.as_mut(), &job.config)
    };
    let mut result = report_json(&report);
    if let Some(tracer) = tracer {
        // Splice the timeline into the result object: `...}` → `...,"trace":{...}}`.
        result.pop();
        result.push_str(",\"trace\":");
        result.push_str(&trace_json_fragment(&tracer.snapshot()));
        result.push('}');
    }
    let metrics = request_metrics(id, "simulate", registry.snapshot());
    ok_line(id, &result, Some(&metrics))
}

fn exec_compare(id: u64, job: &CompareJob, env: &ExecEnv<'_>) -> String {
    let registry = Arc::new(Registry::new(1));
    let mut ws = env.pool.checkout();
    ws.set_recorder(Some(scoped(id, &registry, 0, env)));
    let mut rows = String::from("{\"rows\":[");
    for (i, kind) in job.policies.iter().enumerate() {
        let mut policy = match kind.build(&job.task_set, &BuildOptions::default()) {
            Ok(policy) => policy,
            Err(e) => return error_line(Some(id), &format!("policy '{kind}': {e}")),
        };
        let report = simulate_in(&mut ws, &job.task_set, policy.as_mut(), &job.config);
        if i > 0 {
            rows.push(',');
        }
        rows.push_str(&report_json(&report));
    }
    rows.push_str("]}");
    drop(ws);
    let metrics = request_metrics(id, "compare", registry.snapshot());
    ok_line(id, &rows, Some(&metrics))
}

fn exec_sweep(id: u64, job: &SweepJob, env: &ExecEnv<'_>) -> String {
    let n = job.seeds as usize;
    let registry = Arc::new(Registry::new(n.min(Registry::MAX_SHARDS)));
    let seeds: Vec<u64> = (0..job.seeds).map(|i| job.seed_from + i).collect();
    let results: Vec<Result<SimReport, String>> =
        par::map_indexed(env.fanout, &seeds, |i, &seed| {
            let mut policy = job
                .base
                .policy
                .build(&job.base.task_set, &BuildOptions::default())
                .map_err(|e| e.to_string())?;
            let mut config = job.base.config;
            config.faults.seed = seed;
            let mut ws = env.pool.checkout();
            ws.set_recorder(Some(scoped(id, &registry, i, env)));
            Ok(simulate_in(
                &mut ws,
                &job.base.task_set,
                policy.as_mut(),
                &config,
            ))
        });

    let mut reports = Vec::with_capacity(n);
    for result in results {
        match result {
            Ok(report) => reports.push(report),
            Err(e) => return error_line(Some(id), &e),
        }
    }
    let total_energy = mkss_core::fold::sum_f64_by(&reports, |r| r.total_energy().units());
    let active_energy = mkss_core::fold::sum_f64_by(&reports, |r| r.active_energy().units());
    let violations: usize = reports.iter().map(|r| r.violations.len()).sum();
    let assured = reports.iter().filter(|r| r.mk_assured()).count();
    let met: u64 = reports.iter().map(|r| r.stats.met).sum();
    let missed: u64 = reports.iter().map(|r| r.stats.missed).sum();
    let transient: u64 = reports.iter().map(|r| r.stats.transient_faults).sum();

    let mut result = String::with_capacity(256);
    result.push_str("{\"runs\":");
    result.push_str(&n.to_string());
    result.push_str(",\"seed_from\":");
    result.push_str(&job.seed_from.to_string());
    result.push_str(",\"policy\":");
    push_json_string(&mut result, &reports[0].policy);
    result.push_str(",\"mean_total_energy\":");
    push_json_f64(&mut result, total_energy / n as f64);
    result.push_str(",\"mean_active_energy\":");
    push_json_f64(&mut result, active_energy / n as f64);
    result.push_str(",\"mk_assured_runs\":");
    result.push_str(&assured.to_string());
    result.push_str(",\"violations\":");
    result.push_str(&violations.to_string());
    result.push_str(",\"met\":");
    result.push_str(&met.to_string());
    result.push_str(",\"missed\":");
    result.push_str(&missed.to_string());
    result.push_str(",\"transient_faults\":");
    result.push_str(&transient.to_string());
    result.push('}');

    let metrics = request_metrics(id, "sweep", registry.snapshot());
    ok_line(id, &result, Some(&metrics))
}

/// Render one [`SimReport`] as a compact JSON object.
fn report_json(report: &SimReport) -> String {
    let stats = &report.stats;
    let mut out = String::with_capacity(512);
    out.push_str("{\"policy\":");
    push_json_string(&mut out, &report.policy);
    out.push_str(",\"horizon_ms\":");
    push_json_f64(&mut out, report.horizon.as_ms_f64());
    out.push_str(",\"energy\":{\"active\":");
    push_json_f64(&mut out, report.active_energy().units());
    out.push_str(",\"total\":");
    push_json_f64(&mut out, report.total_energy().units());
    out.push_str("},\"jobs\":{");
    let fields: [(&str, u64); 11] = [
        ("released", stats.released),
        ("mandatory", stats.mandatory),
        ("optional_selected", stats.optional_selected),
        ("optional_skipped", stats.optional_skipped),
        ("optional_abandoned", stats.optional_abandoned),
        ("backups_canceled", stats.backups_canceled),
        ("backups_completed", stats.backups_completed),
        ("transient_faults", stats.transient_faults),
        ("copies_lost", stats.copies_lost),
        ("met", stats.met),
        ("missed", stats.missed),
    ];
    for (i, (name, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(&mut out, name);
        out.push(':');
        out.push_str(&value.to_string());
    }
    out.push_str("},\"mk_assured\":");
    out.push_str(if report.mk_assured() { "true" } else { "false" });
    out.push_str(",\"violations\":");
    out.push_str(&report.violations.len().to_string());
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mkss_obs::CounterId;

    const SIMULATE: &str = r#"{"id": 1, "op": "simulate", "task_set": {"tasks": [
        {"period_ms": 5, "deadline_ms": 4, "wcet_ms": 3, "m": 2, "k": 4},
        {"period_ms": 10, "wcet_ms": 3, "m": 1, "k": 2}
    ]}, "policy": "selective", "horizon_ms": 100}"#;

    fn env(pool: &WorkspacePool) -> ExecEnv<'_> {
        ExecEnv {
            pool,
            global: None,
            fanout: 1,
        }
    }

    fn run(line: &str, env: &ExecEnv<'_>) -> String {
        execute(&Request::parse(line).unwrap(), env)
    }

    #[test]
    fn ping_pongs() {
        let pool = WorkspacePool::new();
        assert_eq!(
            run(r#"{"id": 7, "op": "ping"}"#, &env(&pool)),
            r#"{"id":7,"ok":true,"result":{"pong":true}}"#
        );
    }

    #[test]
    fn simulate_reports_jobs_and_metrics() {
        let pool = WorkspacePool::new();
        let line = run(SIMULATE, &env(&pool));
        assert!(
            line.starts_with(r#"{"id":1,"ok":true,"result":{"policy":"MKSS_selective""#),
            "{line}"
        );
        assert!(line.contains("\"mk_assured\":true"), "{line}");
        assert!(line.contains("\"metrics\":{\"meta\":{\"binary\":\"mkss-serve\",\"id\":\"1\",\"op\":\"simulate\"}"), "{line}");
        assert!(line.contains("\"jobs_released\":"), "{line}");
        assert_eq!(pool.idle(), 1, "workspace returned to the pool");
    }

    #[test]
    fn responses_are_byte_identical_across_pool_reuse_and_tee() {
        let pool = WorkspacePool::new();
        let first = run(SIMULATE, &env(&pool));
        // Reused arena, global tee attached, different fan-out: same bytes.
        let global = Arc::new(Registry::new(2));
        let teed = ExecEnv {
            pool: &pool,
            global: Some(Arc::new(global.handle_at(0))),
            fanout: 4,
        };
        let second = run(SIMULATE, &teed);
        assert_eq!(first, second);
        assert!(
            global.snapshot().counter(CounterId::JobsReleased) > 0,
            "tee observed the run"
        );
    }

    #[test]
    fn simulate_trace_embeds_a_bounded_timeline() {
        let pool = WorkspacePool::new();
        let traced = SIMULATE.replace(
            r#""horizon_ms": 100}"#,
            r#""horizon_ms": 100, "trace": {"last": 8}}"#,
        );
        let line = run(&traced, &env(&pool));
        assert!(line.contains("\"trace\":{\"capacity\":8,"), "{line}");
        assert!(line.contains("\"events\":[{\"t\":"), "{line}");
        // Bounded: the ring holds at most 8 events however long the run.
        assert!(line.matches("\"kind\":").count() <= 8, "{line}");
        // Deterministic: repeating the request yields the same bytes.
        assert_eq!(line, run(&traced, &env(&pool)));
        // Tracing is observation-only: excising the trace member yields
        // byte-for-byte the untraced response.
        let plain = run(SIMULATE, &env(&pool));
        let (head, rest) = line.split_once(",\"trace\":").unwrap();
        let tail = rest.split_once("}]}").unwrap().1;
        assert_eq!(format!("{head}{tail}"), plain);
    }

    #[test]
    fn compare_rows_match_individual_simulations() {
        let pool = WorkspacePool::new();
        let compare = run(
            r#"{"id": 2, "op": "compare", "task_set": {"tasks": [
                {"period_ms": 5, "deadline_ms": 4, "wcet_ms": 3, "m": 2, "k": 4}
            ]}, "horizon_ms": 60, "policies": ["st", "selective"]}"#,
            &env(&pool),
        );
        let st = run(
            r#"{"id": 3, "op": "simulate", "task_set": {"tasks": [
                {"period_ms": 5, "deadline_ms": 4, "wcet_ms": 3, "m": 2, "k": 4}
            ]}, "policy": "st", "horizon_ms": 60}"#,
            &env(&pool),
        );
        // The compare row for `st` is exactly the simulate result object.
        let row = st
            .split("\"result\":")
            .nth(1)
            .unwrap()
            .split(",\"metrics\"")
            .next()
            .unwrap();
        assert!(compare.contains(row), "compare: {compare}\nrow: {row}");
        assert!(compare.contains("\"rows\":["), "{compare}");
    }

    #[test]
    fn sweep_aggregates_deterministically_across_fanout() {
        let pool = WorkspacePool::new();
        let line = r#"{"id": 4, "op": "sweep", "task_set": {"tasks": [
            {"period_ms": 5, "deadline_ms": 4, "wcet_ms": 3, "m": 2, "k": 4}
        ]}, "policy": "dp", "horizon_ms": 200,
        "faults": {"transient_per_ms": 0.001}, "seeds": 8, "seed_from": 42}"#;
        let serial = run(line, &env(&pool));
        let parallel = run(
            line,
            &ExecEnv {
                pool: &pool,
                global: None,
                fanout: 4,
            },
        );
        assert_eq!(serial, parallel);
        assert!(serial.contains("\"runs\":8"), "{serial}");
        assert!(serial.contains("\"seed_from\":42"), "{serial}");
        assert!(serial.contains("\"policy\":\"MKSS_DP\""), "{serial}");
    }

    #[test]
    fn unschedulable_set_is_a_request_error() {
        let pool = WorkspacePool::new();
        // Saturating WCETs: the R-pattern analysis must reject this for
        // the dual-priority scheme.
        let line = r#"{"id": 5, "op": "simulate", "task_set": {"tasks": [
            {"period_ms": 5, "wcet_ms": 4, "m": 3, "k": 4},
            {"period_ms": 5, "wcet_ms": 4, "m": 3, "k": 4}
        ]}, "policy": "dp", "horizon_ms": 50}"#;
        let resp = run(line, &env(&pool));
        assert!(resp.starts_with(r#"{"id":5,"ok":false,"error":"#), "{resp}");
    }

    #[test]
    fn connection_layer_ops_are_rejected_here() {
        let pool = WorkspacePool::new();
        for line in [
            r#"{"id": 6, "op": "shutdown"}"#,
            r#"{"id": 7, "op": "watch"}"#,
        ] {
            let resp = run(line, &env(&pool));
            assert!(resp.contains("\"ok\":false"), "{resp}");
            assert!(resp.contains("answered by the daemon"), "{resp}");
        }
    }
}
