//! Criterion benches for the ablation studies (scaled down; the
//! `ablations` binary runs them at full size).

use criterion::{criterion_group, criterion_main, Criterion};
use mkss_bench::experiment::{run_experiment, ExperimentConfig, Scenario};
use mkss_core::time::Time;
use mkss_policies::PolicyKind;
use std::hint::black_box;

fn scaled(policies: Vec<PolicyKind>) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::fig6(Scenario::NoFault);
    cfg.policies = policies;
    cfg.plan.sets_per_bucket = 2;
    cfg.plan.from = 0.3;
    cfg.plan.to = 0.6;
    cfg.horizon = Time::from_ms(300);
    cfg
}

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);

    group.bench_function("greedy_vs_selective", |b| {
        let cfg = scaled(vec![PolicyKind::Greedy, PolicyKind::Selective]);
        b.iter(|| black_box(run_experiment(black_box(&cfg))));
    });
    group.bench_function("fd_threshold", |b| {
        let cfg = scaled(vec![
            PolicyKind::Selective,
            PolicyKind::SelectiveFd2,
            PolicyKind::SelectiveFd3,
        ]);
        b.iter(|| black_box(run_experiment(black_box(&cfg))));
    });
    group.bench_function("placement", |b| {
        let cfg = scaled(vec![
            PolicyKind::Selective,
            PolicyKind::SelectivePrimaryOnly,
        ]);
        b.iter(|| black_box(run_experiment(black_box(&cfg))));
    });
    group.bench_function("postponement", |b| {
        let cfg = scaled(vec![PolicyKind::Selective, PolicyKind::SelectiveNoPostpone]);
        b.iter(|| black_box(run_experiment(black_box(&cfg))));
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
