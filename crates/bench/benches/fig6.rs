//! Criterion benches regenerating (scaled-down) versions of the paper's
//! Figure 6 panels. Each bench runs the full pipeline — workload
//! generation, fault planning, simulation of the three schemes,
//! normalization — on a reduced bucket plan so `cargo bench` stays
//! tractable; the `fig6` binary runs the full-size experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use mkss_bench::experiment::{run_experiment, ExperimentConfig, Scenario};
use mkss_core::time::Time;
use mkss_policies::PolicyKind;
use std::hint::black_box;

fn scaled(scenario: Scenario) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::fig6(scenario);
    cfg.plan.sets_per_bucket = 2;
    cfg.plan.from = 0.3;
    cfg.plan.to = 0.7;
    cfg.horizon = Time::from_ms(300);
    cfg
}

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    for scenario in Scenario::ALL {
        group.bench_function(scenario.id(), |b| {
            let cfg = scaled(scenario);
            b.iter(|| {
                let result = run_experiment(black_box(&cfg));
                assert_eq!(result.total_violations(), 0);
                // Sanity: both schemes beat the static reference.
                for bucket in result.buckets.iter().filter(|b| b.sets > 0) {
                    let dp = bucket.normalized[&PolicyKind::DualPriority];
                    let sel = bucket.normalized[&PolicyKind::Selective];
                    assert!(dp <= 1.0 + 1e-9 && sel <= 1.0 + 1e-9);
                }
                black_box(result)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
