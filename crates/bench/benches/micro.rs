//! Micro-benchmarks of the building blocks: response-time analysis,
//! postponement-interval computation, flexibility-degree queries,
//! workload generation, and single simulation runs per policy.

use criterion::{criterion_group, criterion_main, Criterion};
use mkss_analysis::exact::exact_sweep;
use mkss_analysis::postpone::{job_postponement, postponement_intervals, PostponeConfig};
use mkss_analysis::rotation::{find_rotation, RotationConfig};
use mkss_analysis::rta::{analyze, InterferenceModel};
use mkss_core::history::{JobOutcome, MkHistory};
use mkss_core::mk::{MkConstraint, Pattern};
use mkss_core::task::TaskSet;
use mkss_core::time::Time;
use mkss_obs::NoopRecorder;
use mkss_policies::{BuildOptions, PolicyKind};
use mkss_sim::engine::{simulate, simulate_in, SimConfig, SimWorkspace};
use mkss_workload::{Generator, WorkloadConfig};
use std::hint::black_box;
use std::sync::Arc;

fn sample_set() -> TaskSet {
    Generator::new(WorkloadConfig::paper(), 12345)
        .schedulable_set(0.5)
        .expect("0.5 utilization is generatable")
}

fn bench_analysis(c: &mut Criterion) {
    let ts = sample_set();
    c.bench_function("rta/mandatory_only", |b| {
        b.iter(|| {
            black_box(analyze(
                black_box(&ts),
                InterferenceModel::MandatoryOnly(Pattern::DeeplyRed),
            ))
        })
    });
    c.bench_function("rta/all_jobs", |b| {
        b.iter(|| black_box(analyze(black_box(&ts), InterferenceModel::AllJobs)))
    });
    c.bench_function("postpone/intervals", |b| {
        b.iter(|| {
            black_box(postponement_intervals(
                black_box(&ts),
                PostponeConfig::default(),
            ))
        })
    });
    c.bench_function("postpone/per_job", |b| {
        b.iter(|| black_box(job_postponement(black_box(&ts), PostponeConfig::default())))
    });
    c.bench_function("exact/sweep_1s", |b| {
        b.iter(|| {
            black_box(exact_sweep(
                black_box(&ts),
                Pattern::DeeplyRed,
                Time::from_ms(1_000),
            ))
        })
    });
}

fn bench_rotation(c: &mut Criterion) {
    let harmonic = WorkloadConfig {
        tasks_min: 4,
        tasks_max: 6,
        period_ms: (4, 32),
        k_range: (2, 8),
        pow2_harmonics: true,
        ..WorkloadConfig::paper()
    };
    let ts = loop {
        // A set the search actually has to work on.
        let mut g = Generator::new(harmonic, 31);
        if let Some(ts) = g.raw_set(0.75) {
            break ts;
        }
    };
    let mut group = c.benchmark_group("rotation");
    group.sample_size(20);
    group.bench_function("search", |b| {
        b.iter(|| black_box(find_rotation(black_box(&ts), RotationConfig::default())))
    });
    group.finish();
}

fn bench_trace_tools(c: &mut Criterion) {
    let ts = sample_set();
    let config = SimConfig::builder()
        .horizon_ms(500)
        .record_trace(true)
        .build();
    let mut policy = PolicyKind::Selective
        .build(&ts, &BuildOptions::default())
        .unwrap();
    let report = simulate(&ts, policy.as_mut(), &config);
    let trace = report.trace.as_ref().unwrap();
    c.bench_function("trace/vcd_render", |b| {
        b.iter(|| black_box(mkss_sim::vcd::render_vcd(black_box(trace), ts.len())))
    });
    c.bench_function("trace/metrics", |b| {
        b.iter(|| {
            black_box(mkss_sim::metrics::analyze_trace(
                black_box(&ts),
                black_box(trace),
            ))
        })
    });
}

fn bench_core(c: &mut Criterion) {
    let mk = MkConstraint::new(7, 20).unwrap();
    c.bench_function("core/flexibility_degree", |b| {
        let mut h = MkHistory::new(mk);
        for i in 0..19 {
            h.record(if i % 3 == 0 {
                JobOutcome::Missed
            } else {
                JobOutcome::Met
            });
        }
        b.iter(|| black_box(black_box(&h).flexibility_degree()))
    });
    c.bench_function("core/pattern_mandatory_among", |b| {
        b.iter(|| black_box(Pattern::DeeplyRed.mandatory_among(black_box(mk), black_box(1_000))))
    });
}

fn bench_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload");
    group.sample_size(30);
    group.bench_function("schedulable_set", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(Generator::new(WorkloadConfig::paper(), seed).schedulable_set(0.4))
        })
    });
    group.finish();
}

fn bench_simulate(c: &mut Criterion) {
    let ts = sample_set();
    let config = SimConfig::new(Time::from_ms(500));
    let mut group = c.benchmark_group("simulate_500ms");
    for kind in [
        PolicyKind::Static,
        PolicyKind::DualPriority,
        PolicyKind::Selective,
    ] {
        group.bench_function(kind.id(), |b| {
            b.iter(|| {
                let mut policy = kind.build(&ts, &BuildOptions::default()).unwrap();
                black_box(simulate(black_box(&ts), policy.as_mut(), &config))
            })
        });
    }
    group.finish();
}

/// The engine's hot path, isolated from policy construction: one full
/// `record_trace = false` run per iteration, fresh arena vs reused
/// workspace — the pair whose ratio `BENCH_sim.json` tracks.
fn bench_sim_hot_path(c: &mut Criterion) {
    let ts = sample_set();
    let config = SimConfig::builder().horizon_ms(500).build();
    let opts = BuildOptions::default();
    let mut group = c.benchmark_group("sim_hot_path");
    for kind in PolicyKind::PAPER {
        group.bench_function(format!("fresh/{}", kind.id()).as_str(), |b| {
            let mut policy = kind.build(&ts, &opts).unwrap();
            b.iter(|| black_box(simulate(black_box(&ts), policy.as_mut(), &config)))
        });
        group.bench_function(format!("reuse/{}", kind.id()).as_str(), |b| {
            let mut policy = kind.build(&ts, &opts).unwrap();
            let mut ws = SimWorkspace::new();
            b.iter(|| {
                black_box(simulate_in(
                    &mut ws,
                    black_box(&ts),
                    policy.as_mut(),
                    &config,
                ))
            })
        });
        // Same reused-workspace run with a NoopRecorder attached: the
        // observability hooks must cost nothing when nobody listens, so
        // this arm should match `reuse/*` within noise.
        group.bench_function(format!("reuse_noop_recorder/{}", kind.id()).as_str(), |b| {
            let mut policy = kind.build(&ts, &opts).unwrap();
            let mut ws = SimWorkspace::with_recorder(Arc::new(NoopRecorder));
            b.iter(|| {
                black_box(simulate_in(
                    &mut ws,
                    black_box(&ts),
                    policy.as_mut(),
                    &config,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_analysis,
    bench_core,
    bench_workload,
    bench_simulate,
    bench_sim_hot_path,
    bench_rotation,
    bench_trace_tools
);
criterion_main!(benches);
