//! Regression probe: hunts the permanent-fault release-jitter scenario
//! over the Figure-6(b) workload and asserts no policy ever violates the
//! (m,k)-guarantee. (Found a real engine-semantics bug during
//! development: post-failover replacement copies released without their
//! backup delay can squeeze two releases of a task closer than its
//! period on the survivor, exceeding the synchronous interference bound.)

use mkss_bench::experiment::{ExperimentConfig, Scenario};
use mkss_policies::{BuildOptions, PolicyKind};
use mkss_sim::engine::{simulate_in, SimConfig, SimWorkspace};
use mkss_workload::generate_buckets;

#[test]
fn no_policy_violates_under_fig6b_fault_plans() {
    let config = ExperimentConfig::fig6(Scenario::Permanent);
    let buckets = generate_buckets(config.workload, config.plan, config.seed);
    let mut set_counter = 0u64;
    let mut checked = 0u64;
    let mut ws = SimWorkspace::new();
    for bucket in &buckets {
        for ts in &bucket.sets {
            let faults = config.fault_plan(set_counter);
            set_counter += 1;
            let sim_config = SimConfig::builder()
                .horizon(config.horizon)
                .power(config.power)
                .faults(faults)
                .build();
            for kind in [
                PolicyKind::Static,
                PolicyKind::DualPriority,
                PolicyKind::DualPriorityPrimary,
                PolicyKind::Selective,
                PolicyKind::SelectiveNoPostpone,
                PolicyKind::DualPriorityTheta,
                PolicyKind::DualPriorityJobTheta,
                PolicyKind::DvsDualPriority,
            ] {
                let mut policy = kind
                    .build(ts, &BuildOptions::default())
                    .expect("schedulable set");
                let report = simulate_in(&mut ws, ts, policy.as_mut(), &sim_config);
                checked += 1;
                assert!(
                    report.mk_assured(),
                    "policy {kind} violated (m,k) on set #{} (bucket {}) with fault {:?}: {:?}\n{ts}",
                    set_counter - 1,
                    bucket.midpoint(),
                    faults.permanent,
                    report.violations,
                );
            }
        }
    }
    assert!(checked > 500, "probe barely ran ({checked} runs)");
}
