//! The Figure-6 experiment pipeline: workload generation → per-scenario
//! fault plans → simulation of every policy → normalization against
//! `MKSS_ST`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use mkss_core::par;
use mkss_core::task::TaskSet;
use mkss_core::time::Time;
use mkss_obs::{Recorder, Registry, Reporter, Stopwatch, TraceBuffer, TraceRecorder};
use mkss_policies::{BuildOptions, PolicyKind};
use mkss_sim::engine::{simulate_in, SimConfig};
use mkss_sim::fault::FaultConfig;
use mkss_sim::pool::WorkspacePool;
use mkss_sim::power::PowerModel;
use mkss_sim::proc::ProcId;
use mkss_workload::{generate_buckets_jobs, BucketPlan, Generator, WorkloadConfig};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The three fault scenarios of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scenario {
    /// Fig. 6(a): no fault occurs within the simulated span.
    NoFault,
    /// Fig. 6(b): one permanent fault at a random instant on a random
    /// processor.
    Permanent,
    /// Fig. 6(c): the permanent fault plus Poisson transient faults.
    Combined,
}

impl Scenario {
    /// All scenarios, in the paper's panel order.
    pub const ALL: [Scenario; 3] = [Scenario::NoFault, Scenario::Permanent, Scenario::Combined];

    /// Stable identifier, also used by the `fig6` binary's `--scenario`.
    pub fn id(self) -> &'static str {
        match self {
            Scenario::NoFault => "no-fault",
            Scenario::Permanent => "permanent",
            Scenario::Combined => "combined",
        }
    }

    /// The figure panel this scenario reproduces.
    pub fn panel(self) -> &'static str {
        match self {
            Scenario::NoFault => "Fig. 6(a)",
            Scenario::Permanent => "Fig. 6(b)",
            Scenario::Combined => "Fig. 6(c)",
        }
    }
}

/// Error parsing a [`Scenario`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct ParseScenarioError {
    input: String,
}

impl std::fmt::Display for ParseScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown scenario '{}'; expected no-fault|permanent|combined",
            self.input
        )
    }
}

impl std::error::Error for ParseScenarioError {}

impl std::str::FromStr for Scenario {
    type Err = ParseScenarioError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Scenario::ALL
            .into_iter()
            .find(|sc| sc.id() == s)
            .ok_or_else(|| ParseScenarioError {
                input: s.to_owned(),
            })
    }
}

/// Full configuration of one experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Fault scenario.
    pub scenario: Scenario,
    /// Policies to compare (the normalization reference `MKSS_ST` is
    /// always simulated regardless).
    pub policies: Vec<PolicyKind>,
    /// Workload generator parameters.
    pub workload: WorkloadConfig,
    /// Utilization bucketing plan.
    pub plan: BucketPlan,
    /// Simulated span per task set (the paper simulates "within the
    /// hyper period"; random-period hyperperiods are astronomically
    /// large, so a fixed span is used — shapes are insensitive to it).
    pub horizon: Time,
    /// Power model.
    pub power: PowerModel,
    /// Transient fault rate per millisecond (used by
    /// [`Scenario::Combined`]; the paper uses `1e-6`).
    pub transient_rate_per_ms: f64,
    /// Window, as fractions of the horizon, in which the permanent
    /// fault's instant is drawn uniformly. `(0.0, 1.0)` = anywhere
    /// (default); the paper observes that its permanent-fault energies
    /// stay "similar to the case when no fault ever occurred", which
    /// corresponds to a late window such as `(0.9, 1.0)`.
    pub permanent_fault_window: (f64, f64),
    /// Master seed; workloads and fault plans derive from it.
    pub seed: u64,
}

impl ExperimentConfig {
    /// The paper's Figure-6 setup for one scenario.
    pub fn fig6(scenario: Scenario) -> Self {
        ExperimentConfig {
            scenario,
            policies: PolicyKind::PAPER.to_vec(),
            workload: WorkloadConfig::paper(),
            plan: BucketPlan::default(),
            horizon: Time::from_ms(1_000),
            power: PowerModel::default(),
            transient_rate_per_ms: 1e-6,
            permanent_fault_window: (0.0, 1.0),
            seed: 0x6d6b_7373, // "mkss"
        }
    }

    /// Fault configuration for one task set (deterministic per
    /// `set_index`; identical across policies so the comparison is fair).
    pub fn fault_plan(&self, set_index: u64) -> FaultConfig {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ (0xfa17 + set_index));
        let (w_lo, w_hi) = self.permanent_fault_window;
        let lo = (self.horizon.ticks() as f64 * w_lo) as u64;
        let hi = ((self.horizon.ticks() as f64 * w_hi) as u64).max(lo + 1);
        let permanent_at = Time::from_ticks(rng.gen_range(lo..hi));
        let proc = if rng.gen_bool(0.5) {
            ProcId::PRIMARY
        } else {
            ProcId::SPARE
        };
        let transient_seed = rng.gen();
        match self.scenario {
            Scenario::NoFault => FaultConfig::none(),
            Scenario::Permanent => FaultConfig::permanent(proc, permanent_at),
            Scenario::Combined => FaultConfig::combined(
                proc,
                permanent_at,
                self.transient_rate_per_ms,
                transient_seed,
            ),
        }
    }
}

/// Result row for one utilization bucket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BucketResult {
    /// Bucket midpoint ((m,k)-utilization).
    pub midpoint: f64,
    /// Number of schedulable task sets simulated.
    pub sets: usize,
    /// Task sets generated to fill the bucket.
    pub generated: u64,
    /// Mean energy normalized to `MKSS_ST`, per policy.
    pub normalized: BTreeMap<PolicyKind, f64>,
    /// Mean absolute energy in unit-ms, per policy.
    pub absolute: BTreeMap<PolicyKind, f64>,
    /// Total (m,k)-violations observed per policy (expected 0).
    pub violations: BTreeMap<PolicyKind, u64>,
}

/// Per-bucket observability counters of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketStats {
    /// Bucket midpoint ((m,k)-utilization).
    pub midpoint: f64,
    /// Summed wall time of the bucket's set simulations in milliseconds
    /// (CPU time under parallel runs; zeroed by
    /// [`RunStats::strip_timing`]).
    pub wall_ms: f64,
    /// Sets simulated and counted into the bucket's means.
    pub sets_simulated: usize,
    /// Sets the workload generator produced while filling the bucket.
    pub sets_generated: u64,
    /// Sets dropped because a policy could not be built for them.
    pub skipped_build_errors: u64,
    /// Sets dropped because the `MKSS_ST` reference consumed no energy.
    pub skipped_zero_reference: u64,
    /// First policy-build error observed in this bucket, if any.
    pub first_build_error: Option<String>,
}

/// Wall time of the harness pipeline stages, summed across workers (so
/// under `--jobs > 1` these are CPU-time-like totals, not elapsed time).
/// Machine-dependent; zeroed by [`RunStats::strip_timing`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StageTimes {
    /// Workload generation (bucket filling).
    pub generate_ms: f64,
    /// Policy construction (analysis: response times, promotion, θ).
    pub build_ms: f64,
    /// Simulation proper (every set × policy).
    pub simulate_ms: f64,
    /// Folding per-set outcomes into bucket rows and stats.
    pub fold_ms: f64,
}

impl StageTimes {
    /// Sum of all stages.
    pub fn total_ms(&self) -> f64 {
        self.generate_ms + self.build_ms + self.simulate_ms + self.fold_ms
    }

    /// Add another run's stage times (multi-scenario/replication totals).
    pub fn absorb(&mut self, other: &StageTimes) {
        self.generate_ms += other.generate_ms;
        self.build_ms += other.build_ms;
        self.simulate_ms += other.simulate_ms;
        self.fold_ms += other.fold_ms;
    }
}

/// Observability wiring for an observed harness run: an optional engine
/// event registry and an optional live progress reporter. The default
/// (`HarnessObs::none()`) records nothing and reports nothing, leaving
/// the hot path untouched.
#[derive(Debug, Clone, Default)]
pub struct HarnessObs {
    /// Sink for engine event counters/histograms. Size it to the worker
    /// count (`Registry::new(par::effective_jobs(jobs))`) for a
    /// contention-free shard per worker.
    pub registry: Option<Arc<Registry>>,
    /// Live progress lines on this single-writer reporter (never
    /// interleaves across workers).
    pub progress: Option<Arc<Reporter>>,
    /// Label prefixed to progress lines (e.g. the scenario id).
    pub label: String,
}

impl HarnessObs {
    /// No recording, no progress output.
    pub fn none() -> HarnessObs {
        HarnessObs::default()
    }

    /// True when neither a registry nor a reporter is attached.
    pub fn is_off(&self) -> bool {
        self.registry.is_none() && self.progress.is_none()
    }
}

/// Assembles the standard `--metrics-out` document shared by the bench
/// binaries: the registry snapshot, `binary` plus caller metadata, and
/// the four harness stage wall-times. A thin wrapper over the
/// workspace-wide [`mkss_obs::metrics_doc`] entry point that fixes the
/// stage names to the harness pipeline's.
pub fn metrics_doc(
    binary: &str,
    registry: &Registry,
    stages: &StageTimes,
    meta: &[(&str, String)],
) -> mkss_obs::MetricsDoc {
    mkss_obs::metrics_doc(
        binary,
        registry.snapshot(),
        meta,
        &[
            ("generate_ms", stages.generate_ms),
            ("build_ms", stages.build_ms),
            ("simulate_ms", stages.simulate_ms),
            ("fold_ms", stages.fold_ms),
        ],
    )
}

/// Observability counters of one [`run_experiment_jobs`] call, serialized
/// alongside the results. Timing fields (and the worker count) depend on
/// the machine and scheduling; everything else is deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Worker threads used (resolved from the `jobs` knob).
    pub jobs: usize,
    /// Total wall time of the run in milliseconds.
    pub wall_ms: f64,
    /// Simulations per wall-clock second (sets × policies / wall time).
    pub sims_per_second: f64,
    /// Buckets in the plan (including ones that came up empty).
    pub buckets_planned: usize,
    /// Buckets omitted from [`ExperimentResult::buckets`] because no
    /// generated set survived simulation.
    pub empty_buckets: usize,
    /// Sets simulated and counted across all buckets.
    pub sets_simulated: u64,
    /// Sets the workload generator produced across all buckets.
    pub sets_generated: u64,
    /// Sets dropped because a policy could not be built.
    pub skipped_build_errors: u64,
    /// Sets dropped because the reference consumed no energy.
    pub skipped_zero_reference: u64,
    /// Total (m,k)-violations per policy across all buckets.
    pub violations: BTreeMap<PolicyKind, u64>,
    /// Per-stage wall time (generate / build / simulate / fold), summed
    /// across workers. Absent in older serialized results.
    #[serde(default)]
    pub stages: StageTimes,
    /// Per-bucket breakdown (every planned bucket, empty ones included).
    pub buckets: Vec<BucketStats>,
}

impl RunStats {
    /// Zeroes every machine- or schedule-dependent field (wall times,
    /// throughput, worker count), leaving only deterministic counters —
    /// two runs of the same config then compare equal regardless of the
    /// `jobs` knob.
    pub fn strip_timing(&mut self) {
        self.jobs = 0;
        self.wall_ms = 0.0;
        self.sims_per_second = 0.0;
        self.stages = StageTimes::default();
        for bucket in &mut self.buckets {
            bucket.wall_ms = 0.0;
        }
    }

    /// One-line human summary (for stderr progress output).
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} sets simulated ({} generated, {} skipped) across {}/{} buckets \
             in {:.1} ms on {} worker(s), {:.0} sims/s",
            self.sets_simulated,
            self.sets_generated,
            self.skipped_build_errors + self.skipped_zero_reference,
            self.buckets_planned - self.empty_buckets,
            self.buckets_planned,
            self.wall_ms,
            self.jobs,
            self.sims_per_second,
        )
    }

    fn absorb(&mut self, other: &RunStats) {
        self.wall_ms += other.wall_ms;
        self.buckets_planned += other.buckets_planned;
        self.empty_buckets += other.empty_buckets;
        self.sets_simulated += other.sets_simulated;
        self.sets_generated += other.sets_generated;
        self.skipped_build_errors += other.skipped_build_errors;
        self.skipped_zero_reference += other.skipped_zero_reference;
        for (&kind, &count) in &other.violations {
            *self.violations.entry(kind).or_default() += count;
        }
        self.stages.absorb(&other.stages);
        self.buckets.extend(other.buckets.iter().cloned());
    }
}

/// Result of a whole experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// The configuration that produced it.
    pub config: ExperimentConfig,
    /// One row per utilization bucket **that produced data**; buckets
    /// where no generated set survived simulation are omitted (see
    /// [`RunStats::empty_buckets`]).
    pub buckets: Vec<BucketResult>,
    /// Observability counters of the run.
    pub stats: RunStats,
}

impl ExperimentResult {
    /// Maximum energy reduction (in percent) of `a` relative to `b`
    /// across all buckets — the paper's headline "up to X%" numbers
    /// (e.g. `MKSS_selective` vs `MKSS_DP`). `None` when no bucket has
    /// data for both policies (previously this returned `-inf`).
    pub fn max_reduction_pct(&self, a: PolicyKind, b: PolicyKind) -> Option<f64> {
        self.buckets
            .iter()
            .filter_map(|bkt| {
                let ea = bkt.normalized.get(&a)?;
                let eb = bkt.normalized.get(&b)?;
                if *eb > 0.0 {
                    Some((1.0 - ea / eb) * 100.0)
                } else {
                    None
                }
            })
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |m| m.max(v)))
            })
    }

    /// Mean normalized energy of `policy` across buckets.
    pub fn mean_normalized(&self, policy: PolicyKind) -> f64 {
        let values: Vec<f64> = self
            .buckets
            .iter()
            .filter_map(|b| b.normalized.get(&policy).copied())
            .collect();
        if values.is_empty() {
            return f64::NAN;
        }
        values.iter().sum::<f64>() / values.len() as f64
    }

    /// Total violations across all buckets and policies (expected 0 in
    /// every scenario — Theorem 1 plus fault tolerance).
    pub fn total_violations(&self) -> u64 {
        self.buckets
            .iter()
            .flat_map(|b| b.violations.values())
            .sum()
    }
}

/// Runs the experiment with the default worker count (all available
/// parallelism); see [`run_experiment_jobs`].
pub fn run_experiment(config: &ExperimentConfig) -> ExperimentResult {
    run_experiment_jobs(config, 0)
}

/// Per-bucket accumulator used while folding simulation outcomes back
/// into `BucketResult`/`BucketStats` rows.
#[derive(Default)]
struct BucketAccumulator {
    sums: BTreeMap<PolicyKind, f64>,
    abs_sums: BTreeMap<PolicyKind, f64>,
    violations: BTreeMap<PolicyKind, u64>,
    counted: usize,
    build_errors: u64,
    zero_references: u64,
    first_build_error: Option<String>,
    wall_ms: f64,
}

/// Runs the experiment: generates the bucketed workloads, simulates every
/// policy on every set under the scenario's fault plan, and aggregates
/// normalized energies.
///
/// `jobs` bounds the worker-thread pool (`0` = available parallelism).
/// The result is **bit-identical for every `jobs` value** except the
/// timing fields of [`RunStats`]: workloads use one RNG stream per
/// bucket, fault plans key off the set's global index, and sums are
/// folded in set order.
///
/// Task sets where a policy cannot be built (not R-pattern schedulable —
/// excluded by the generator already) or where the reference consumes no
/// energy are skipped and counted in [`RunStats`]. Buckets that end up
/// with no surviving sets are omitted from [`ExperimentResult::buckets`].
pub fn run_experiment_jobs(config: &ExperimentConfig, jobs: usize) -> ExperimentResult {
    run_experiment_observed(config, jobs, &HarnessObs::none())
}

/// [`run_experiment_jobs`] with observability attached: engine events go
/// to `obs.registry` (if any), live progress lines to `obs.progress`, and
/// per-stage wall times land in [`RunStats::stages`] either way.
///
/// Recording changes **nothing** about the results: counters aggregate
/// commutatively, so even the registry totals are identical for every
/// `jobs` value.
pub fn run_experiment_observed(
    config: &ExperimentConfig,
    jobs: usize,
    obs: &HarnessObs,
) -> ExperimentResult {
    // mkss-lint: allow(nondeterminism) — wall-clock run timing lands in RunStats timing fields only, never in results
    let run_start = Instant::now();
    let generate_watch = Stopwatch::start();
    let buckets = generate_buckets_jobs(config.workload, config.plan, config.seed, jobs);
    let generate_ms = generate_watch.elapsed_ms();
    let mut policies = config.policies.clone();
    if !policies.contains(&PolicyKind::Static) {
        policies.push(PolicyKind::Static);
    }
    // Flatten (bucket, set) pairs in bucket order. A set's position in
    // this list equals the running counter the serial loop used, so the
    // per-set fault plans are unchanged.
    let mut work: Vec<(usize, u64, &TaskSet)> = Vec::new();
    for (bucket_index, bucket) in buckets.iter().enumerate() {
        for ts in &bucket.sets {
            work.push((bucket_index, work.len() as u64, ts));
        }
    }
    // One boxed handle per registry shard, built up front so the hot
    // closure only clones `Arc`s (no per-set allocation).
    let handles: Vec<Arc<dyn Recorder>> = match &obs.registry {
        Some(registry) => (0..registry.shard_count())
            .map(|shard| Arc::new(registry.handle_at(shard)) as Arc<dyn Recorder>)
            .collect(),
        None => Vec::new(),
    };
    let total_sets = work.len() as u64;
    let progress_step = (total_sets / 20).max(1);
    let completed = AtomicU64::new(0);
    let label_prefix = if obs.label.is_empty() {
        String::new()
    } else {
        format!("{}: ", obs.label)
    };
    let outcomes = par::map_indexed(jobs, &work, |index, &(bucket_index, set_index, ts)| {
        // mkss-lint: allow(nondeterminism) — per-set wall timing feeds the progress reporter only
        let set_start = Instant::now();
        let recorder = if handles.is_empty() {
            None
        } else {
            Some(&handles[index % handles.len()])
        };
        let (outcome, timing) = simulate_set(
            ts,
            &policies,
            config,
            config.fault_plan(set_index),
            recorder,
        );
        let elapsed_ms = set_start.elapsed().as_secs_f64() * 1e3;
        if let Some(reporter) = &obs.progress {
            // mkss-lint: ordering — progress tally; only its eventual total matters and workers join before results are read
            let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
            if done.is_multiple_of(progress_step) || done == total_sets {
                reporter.line(&format!("{label_prefix}{done}/{total_sets} sets simulated"));
            }
        }
        (bucket_index, outcome, elapsed_ms, timing)
    });

    // Fold in work order — the summation order (and therefore every
    // float result) matches the serial loop exactly.
    let fold_watch = Stopwatch::start();
    let mut stage_build_ms = 0.0;
    let mut stage_simulate_ms = 0.0;
    let mut accs: Vec<BucketAccumulator> = Vec::with_capacity(buckets.len());
    accs.resize_with(buckets.len(), BucketAccumulator::default);
    for (bucket_index, outcome, elapsed_ms, timing) in outcomes {
        let acc = &mut accs[bucket_index];
        acc.wall_ms += elapsed_ms;
        stage_build_ms += timing.build_ms;
        stage_simulate_ms += timing.simulate_ms;
        match outcome {
            SetOutcome::Row(row) => {
                acc.counted += 1;
                for (kind, (norm, abs, viol)) in row {
                    *acc.sums.entry(kind).or_default() += norm;
                    *acc.abs_sums.entry(kind).or_default() += abs;
                    *acc.violations.entry(kind).or_default() += viol;
                }
            }
            SetOutcome::BuildError(message) => {
                acc.build_errors += 1;
                acc.first_build_error.get_or_insert(message);
            }
            SetOutcome::ZeroReference => acc.zero_references += 1,
        }
    }

    let mut results = Vec::with_capacity(buckets.len());
    let mut stats = RunStats {
        jobs: par::effective_jobs(jobs),
        wall_ms: 0.0,
        sims_per_second: 0.0,
        buckets_planned: buckets.len(),
        empty_buckets: 0,
        sets_simulated: 0,
        sets_generated: 0,
        skipped_build_errors: 0,
        skipped_zero_reference: 0,
        violations: BTreeMap::new(),
        stages: StageTimes::default(),
        buckets: Vec::with_capacity(buckets.len()),
    };
    for (bucket, acc) in buckets.iter().zip(accs) {
        stats.sets_simulated += acc.counted as u64;
        stats.sets_generated += bucket.generated;
        stats.skipped_build_errors += acc.build_errors;
        stats.skipped_zero_reference += acc.zero_references;
        for (&kind, &count) in &acc.violations {
            *stats.violations.entry(kind).or_default() += count;
        }
        stats.buckets.push(BucketStats {
            midpoint: bucket.midpoint(),
            wall_ms: acc.wall_ms,
            sets_simulated: acc.counted,
            sets_generated: bucket.generated,
            skipped_build_errors: acc.build_errors,
            skipped_zero_reference: acc.zero_references,
            first_build_error: acc.first_build_error,
        });
        if acc.counted == 0 {
            // No surviving set: omitting the bucket beats publishing a
            // row of empty maps that panics every `normalized[&kind]`
            // consumer downstream.
            stats.empty_buckets += 1;
            continue;
        }
        let normalized = acc
            .sums
            .iter()
            .map(|(&k, &v)| (k, v / acc.counted as f64))
            .collect();
        let absolute = acc
            .abs_sums
            .iter()
            .map(|(&k, &v)| (k, v / acc.counted as f64))
            .collect();
        results.push(BucketResult {
            midpoint: bucket.midpoint(),
            sets: acc.counted,
            generated: bucket.generated,
            normalized,
            absolute,
            violations: acc.violations,
        });
    }
    stats.stages = StageTimes {
        generate_ms,
        build_ms: stage_build_ms,
        simulate_ms: stage_simulate_ms,
        fold_ms: fold_watch.elapsed_ms(),
    };
    stats.wall_ms = run_start.elapsed().as_secs_f64() * 1e3;
    let total_sims = stats.sets_simulated as f64 * policies.len() as f64;
    stats.sims_per_second = if stats.wall_ms > 0.0 {
        total_sims / (stats.wall_ms / 1e3)
    } else {
        0.0
    };
    ExperimentResult {
        config: config.clone(),
        buckets: results,
        stats,
    }
}

/// Captures one representative run of `config` through the flight
/// recorder: the first schedulable set at the plan's middle utilization,
/// simulated under the first buildable policy with the set-0 fault plan.
///
/// A pure function of the config — repeated calls return buffers with
/// identical contents — so harness trace exports are deterministic. An
/// empty buffer is returned when no set can be generated or no policy
/// applies; exporters render it as an empty track.
pub fn trace_representative(config: &ExperimentConfig) -> TraceBuffer {
    let tracer = TraceRecorder::with_capacity(mkss_obs::DEFAULT_TRACE_CAPACITY);
    let midpoint = (config.plan.from + config.plan.to) / 2.0;
    let Some(ts) = Generator::new(config.workload, config.seed).schedulable_set(midpoint) else {
        return tracer.take();
    };
    let build_opts = BuildOptions::default();
    let Some(mut policy) = config
        .policies
        .iter()
        .find_map(|kind| kind.build(&ts, &build_opts).ok())
    else {
        return tracer.take();
    };
    let sim_config = SimConfig::builder()
        .horizon(config.horizon)
        .power(config.power)
        .faults(config.fault_plan(0))
        .build();
    let tracer = Arc::new(tracer);
    let mut ws = workspace_pool().checkout();
    ws.set_recorder(Some(Arc::clone(&tracer) as Arc<dyn Recorder>));
    simulate_in(&mut ws, &ts, policy.as_mut(), &sim_config);
    drop(ws);
    tracer.take()
}

/// Mean-and-spread of one quantity across replications.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Spread {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (0 for a single replication).
    pub std: f64,
}

impl Spread {
    /// Mean and sample standard deviation of `values`; `None` for an
    /// empty slice (previously this fabricated a `mean` of `0.0`).
    pub fn of(values: &[f64]) -> Option<Spread> {
        if values.is_empty() {
            return None;
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = if values.len() > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        Some(Spread {
            mean,
            std: var.sqrt(),
        })
    }
}

/// Result of [`run_replicated`]: per-bucket, per-policy mean ± std of the
/// normalized energy across independent replications (each replication
/// regenerates its workloads and fault plans from a distinct master
/// seed).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicatedResult {
    /// The base configuration (its seed is the first replication's).
    pub config: ExperimentConfig,
    /// Replications run.
    pub replications: u32,
    /// Bucket midpoints (same order as the rows). A midpoint appears as
    /// soon as **any** replication produced data for it.
    pub midpoints: Vec<f64>,
    /// `spreads[bucket][policy]`. A policy is absent from a bucket's map
    /// when no replication produced data for that pair.
    pub spreads: Vec<BTreeMap<PolicyKind, Spread>>,
    /// Total violations across every run of every replication.
    pub total_violations: u64,
    /// Combined observability counters of all replications.
    pub stats: RunStats,
}

/// Runs `replications` independent instances of the experiment with the
/// default worker count; see [`run_replicated_jobs`].
pub fn run_replicated(config: &ExperimentConfig, replications: u32) -> ReplicatedResult {
    run_replicated_jobs(config, replications, 0)
}

/// Runs `replications` independent instances of the experiment (each
/// regenerates workloads and fault plans from a distinct master seed,
/// fanned across up to `jobs` workers) and aggregates the per-bucket
/// normalized energies.
///
/// Buckets are matched **by midpoint**, not position, so a replication
/// whose low-utilization bucket came up empty cannot shift later
/// buckets' statistics onto the wrong row.
///
/// # Panics
///
/// Panics if `replications` is zero.
///
/// ```
/// use mkss_bench::experiment::{run_replicated, ExperimentConfig, Scenario};
/// use mkss_core::time::Time;
/// use mkss_policies::PolicyKind;
///
/// let mut cfg = ExperimentConfig::fig6(Scenario::NoFault);
/// cfg.plan.sets_per_bucket = 2;
/// cfg.plan.from = 0.3;
/// cfg.plan.to = 0.4;
/// cfg.horizon = Time::from_ms(200);
/// let result = run_replicated(&cfg, 3);
/// assert_eq!(result.replications, 3);
/// for bucket in &result.spreads {
///     if let Some(sel) = bucket.get(&PolicyKind::Selective) {
///         assert!(sel.mean > 0.0 && sel.std >= 0.0);
///     }
/// }
/// ```
pub fn run_replicated_jobs(
    config: &ExperimentConfig,
    replications: u32,
    jobs: usize,
) -> ReplicatedResult {
    run_replicated_observed(config, replications, jobs, &HarnessObs::none())
}

/// [`run_replicated_jobs`] with observability attached; every replication
/// reports into the same registry/reporter, with progress lines labelled
/// by replication index.
pub fn run_replicated_observed(
    config: &ExperimentConfig,
    replications: u32,
    jobs: usize,
    obs: &HarnessObs,
) -> ReplicatedResult {
    assert!(replications >= 1, "need at least one replication");
    let configs: Vec<ExperimentConfig> = (0..replications)
        .map(|r| {
            let mut cfg = config.clone();
            cfg.seed = config
                .seed
                .wrapping_add(u64::from(r).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            cfg
        })
        .collect();
    // Fan replications across the pool, splitting the budget so the
    // nested per-set fan-out doesn't oversubscribe.
    let inner_jobs = (par::effective_jobs(jobs) / replications as usize).max(1);
    let results = par::map_indexed(jobs, &configs, |r, cfg| {
        let rep_obs = HarnessObs {
            registry: obs.registry.clone(),
            progress: obs.progress.clone(),
            label: if obs.label.is_empty() {
                format!("rep {r}")
            } else {
                format!("{} rep {r}", obs.label)
            },
        };
        run_experiment_observed(cfg, inner_jobs, &rep_obs)
    });

    // Key buckets by midpoint bits (midpoints are positive, so the bit
    // order equals the numeric order in the BTreeMap).
    let mut per_midpoint: BTreeMap<u64, BTreeMap<PolicyKind, Vec<f64>>> = BTreeMap::new();
    let mut total_violations = 0;
    let mut stats = RunStats {
        jobs: par::effective_jobs(jobs),
        wall_ms: 0.0,
        sims_per_second: 0.0,
        buckets_planned: 0,
        empty_buckets: 0,
        sets_simulated: 0,
        sets_generated: 0,
        skipped_build_errors: 0,
        skipped_zero_reference: 0,
        violations: BTreeMap::new(),
        stages: StageTimes::default(),
        buckets: Vec::new(),
    };
    for result in &results {
        total_violations += result.total_violations();
        stats.absorb(&result.stats);
        for bucket in &result.buckets {
            let slot = per_midpoint.entry(bucket.midpoint.to_bits()).or_default();
            for (&kind, &value) in &bucket.normalized {
                slot.entry(kind).or_default().push(value);
            }
        }
    }
    let mut policy_count = config.policies.len();
    if !config.policies.contains(&PolicyKind::Static) {
        policy_count += 1;
    }
    stats.sims_per_second = if stats.wall_ms > 0.0 {
        stats.sets_simulated as f64 * policy_count as f64 / (stats.wall_ms / 1e3)
    } else {
        0.0
    };
    let mut midpoints = Vec::with_capacity(per_midpoint.len());
    let mut spreads = Vec::with_capacity(per_midpoint.len());
    for (bits, policies) in per_midpoint {
        midpoints.push(f64::from_bits(bits));
        spreads.push(
            policies
                .into_iter()
                .filter_map(|(k, values)| Spread::of(&values).map(|s| (k, s)))
                .collect(),
        );
    }
    ReplicatedResult {
        config: config.clone(),
        replications,
        midpoints,
        spreads,
        total_violations,
        stats,
    }
}

/// What happened to one task set's simulation.
enum SetOutcome {
    /// Per-policy (normalized, absolute, violations).
    Row(BTreeMap<PolicyKind, (f64, f64, u64)>),
    /// A policy could not be built for the set; the whole set is dropped
    /// (comparing the remaining policies on it would be unfair) but the
    /// drop is counted and its reason surfaced instead of silently
    /// discarded.
    BuildError(String),
    /// The `MKSS_ST` reference consumed no energy, so normalization is
    /// undefined.
    ZeroReference,
}

/// Process-wide simulation arena pool shared by every experiment run.
/// Replaces the old per-thread `thread_local!` arenas: a worker checks
/// an arena out per set and returns it on drop, so capacity grown by one
/// run is reused by the next no matter which thread picks it up — and
/// the pool is inspectable/pre-warmable where a thread-local never was.
fn workspace_pool() -> &'static WorkspacePool {
    static POOL: std::sync::OnceLock<WorkspacePool> = std::sync::OnceLock::new();
    POOL.get_or_init(WorkspacePool::new)
}

/// Per-set stage timing (analysis/build vs. simulation proper).
#[derive(Debug, Clone, Copy, Default)]
struct SetTiming {
    build_ms: f64,
    simulate_ms: f64,
}

/// Simulates all policies on one set (inside an arena checked out of the
/// shared pool), optionally reporting engine events to `recorder`.
fn simulate_set(
    ts: &TaskSet,
    policies: &[PolicyKind],
    config: &ExperimentConfig,
    faults: FaultConfig,
    recorder: Option<&Arc<dyn Recorder>>,
) -> (SetOutcome, SetTiming) {
    let sim_config = SimConfig::builder()
        .horizon(config.horizon)
        .power(config.power)
        .faults(faults)
        .build();
    let build_opts = BuildOptions::default();
    let mut timing = SetTiming::default();
    let mut energies: BTreeMap<PolicyKind, (f64, u64)> = BTreeMap::new();
    // One checkout covers every policy on this set; the guard returns the
    // arena (recorder detached) when the set is done.
    let mut ws = workspace_pool().checkout();
    ws.set_recorder(recorder.cloned());
    for &kind in policies {
        let build_watch = Stopwatch::start();
        let mut policy = match kind.build(ts, &build_opts) {
            Ok(policy) => policy,
            Err(error) => {
                timing.build_ms += build_watch.elapsed_ms();
                return (SetOutcome::BuildError(format!("{kind}: {error}")), timing);
            }
        };
        timing.build_ms += build_watch.elapsed_ms();
        let simulate_watch = Stopwatch::start();
        let report = simulate_in(&mut ws, ts, policy.as_mut(), &sim_config);
        timing.simulate_ms += simulate_watch.elapsed_ms();
        energies.insert(
            kind,
            (
                report.total_energy().units(),
                report.violations.len() as u64,
            ),
        );
    }
    let Some(&(reference, _)) = energies.get(&PolicyKind::Static) else {
        return (
            SetOutcome::BuildError("reference MKSS_ST was not simulated".to_string()),
            timing,
        );
    };
    if reference <= 0.0 {
        return (SetOutcome::ZeroReference, timing);
    }
    (
        SetOutcome::Row(
            energies
                .into_iter()
                .map(|(k, (e, v))| (k, (e / reference, e, v)))
                .collect(),
        ),
        timing,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(scenario: Scenario) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::fig6(scenario);
        cfg.plan.sets_per_bucket = 3;
        cfg.plan.from = 0.2;
        cfg.plan.to = 0.6;
        cfg.horizon = Time::from_ms(400);
        cfg
    }

    #[test]
    fn representative_trace_is_deterministic_and_nonempty() {
        let cfg = quick_config(Scenario::Combined);
        let first = trace_representative(&cfg);
        let second = trace_representative(&cfg);
        assert!(!first.is_empty(), "representative run captured no events");
        assert_eq!(
            mkss_obs::timeline_text(&first),
            mkss_obs::timeline_text(&second),
            "same config must capture the same stream"
        );
    }

    #[test]
    fn scenario_parsing() {
        assert_eq!("no-fault".parse::<Scenario>().unwrap(), Scenario::NoFault);
        assert_eq!("combined".parse::<Scenario>().unwrap(), Scenario::Combined);
        assert!("x".parse::<Scenario>().is_err());
        assert_eq!(Scenario::Permanent.panel(), "Fig. 6(b)");
    }

    #[test]
    fn fault_plans_deterministic_and_scenario_appropriate() {
        let cfg = quick_config(Scenario::Permanent);
        let a = cfg.fault_plan(3);
        let b = cfg.fault_plan(3);
        assert_eq!(a, b);
        assert!(a.permanent.is_some());
        assert_eq!(a.transient_rate_per_ms, 0.0);
        let c = quick_config(Scenario::Combined).fault_plan(3);
        assert!(c.transient_rate_per_ms > 0.0);
        assert!(quick_config(Scenario::NoFault)
            .fault_plan(3)
            .permanent
            .is_none());
    }

    #[test]
    fn no_fault_ordering_matches_paper() {
        let result = run_experiment(&quick_config(Scenario::NoFault));
        assert_eq!(result.total_violations(), 0);
        for bucket in &result.buckets {
            assert!(bucket.sets > 0, "bucket {} empty", bucket.midpoint);
            let st = bucket.normalized[&PolicyKind::Static];
            let dp = bucket.normalized[&PolicyKind::DualPriority];
            let sel = bucket.normalized[&PolicyKind::Selective];
            assert!((st - 1.0).abs() < 1e-9);
            assert!(dp <= st + 1e-9, "DP {dp} vs ST {st} at {}", bucket.midpoint);
            assert!(
                sel <= st + 1e-9,
                "selective {sel} vs ST at {}",
                bucket.midpoint
            );
            // Selective and DP track each other within a band; see
            // EXPERIMENTS.md for the measured crossover.
            assert!(
                (sel - dp).abs() <= 0.15,
                "selective {sel} vs DP {dp} diverged at {}",
                bucket.midpoint
            );
        }
    }

    #[test]
    fn permanent_fault_scenario_keeps_guarantee() {
        let result = run_experiment(&quick_config(Scenario::Permanent));
        assert_eq!(result.total_violations(), 0);
    }

    #[test]
    fn combined_scenario_keeps_guarantee() {
        let result = run_experiment(&quick_config(Scenario::Combined));
        assert_eq!(result.total_violations(), 0);
    }

    #[test]
    fn parallel_runs_are_bit_identical_to_serial() {
        let mut cfg = quick_config(Scenario::Combined);
        cfg.plan.to = 0.5;
        cfg.horizon = Time::from_ms(200);
        let mut serial = run_experiment_jobs(&cfg, 1);
        serial.stats.strip_timing();
        let serial_json = serde_json::to_string(&serial).unwrap();
        for jobs in [0, 2, 5] {
            let mut parallel = run_experiment_jobs(&cfg, jobs);
            parallel.stats.strip_timing();
            let parallel_json = serde_json::to_string(&parallel).unwrap();
            assert_eq!(
                parallel_json, serial_json,
                "jobs={jobs} diverged from serial"
            );
        }
    }

    #[test]
    fn unfillable_bucket_is_omitted_not_panicking() {
        let mut cfg = quick_config(Scenario::NoFault);
        cfg.plan.from = 0.2;
        cfg.plan.to = 0.4;
        cfg.plan.max_generated = 0; // the generator can never fill a bucket
        let result = run_experiment(&cfg);
        assert!(result.buckets.is_empty());
        assert_eq!(result.stats.buckets_planned, 2);
        assert_eq!(result.stats.empty_buckets, 2);
        assert_eq!(result.stats.sets_simulated, 0);
        assert!(result
            .max_reduction_pct(PolicyKind::Selective, PolicyKind::DualPriority)
            .is_none());
        assert!(result.mean_normalized(PolicyKind::Selective).is_nan());
    }

    #[test]
    fn replicated_handles_all_empty_buckets() {
        let mut cfg = quick_config(Scenario::NoFault);
        cfg.plan.max_generated = 0;
        let result = run_replicated(&cfg, 2);
        assert!(result.midpoints.is_empty());
        assert!(result.spreads.is_empty());
        assert_eq!(result.total_violations, 0);
        assert_eq!(result.stats.empty_buckets, result.stats.buckets_planned);
    }

    #[test]
    fn run_stats_counters_are_consistent() {
        let result = run_experiment(&quick_config(Scenario::NoFault));
        let stats = &result.stats;
        assert_eq!(stats.buckets_planned, stats.buckets.len());
        assert_eq!(
            stats.buckets_planned - stats.empty_buckets,
            result.buckets.len()
        );
        assert_eq!(
            stats.sets_simulated,
            result.buckets.iter().map(|b| b.sets as u64).sum::<u64>()
        );
        assert_eq!(
            stats.sets_generated,
            stats.buckets.iter().map(|b| b.sets_generated).sum::<u64>()
        );
        assert_eq!(
            stats.violations.values().sum::<u64>(),
            result.total_violations()
        );
        assert!(stats.wall_ms > 0.0);
        assert!(stats.summary().contains("sets simulated"));
    }

    #[test]
    fn build_failures_are_reported_not_silently_dropped() {
        use mkss_core::task::Task;
        // τ2's response time (8 + interference from τ1's 4 ms mandatory
        // jobs) exceeds its 10 ms deadline, so no policy can be built.
        let ts = TaskSet::new(vec![
            Task::from_ms(5, 5, 4, 3, 4).unwrap(),
            Task::from_ms(10, 10, 8, 3, 4).unwrap(),
        ])
        .unwrap();
        let cfg = quick_config(Scenario::NoFault);
        let (outcome, _) = simulate_set(
            &ts,
            &[PolicyKind::Selective],
            &cfg,
            FaultConfig::none(),
            None,
        );
        match outcome {
            SetOutcome::BuildError(message) => {
                assert!(
                    message.contains("selective"),
                    "unexpected message: {message}"
                );
            }
            _ => panic!("expected a build error for an unschedulable set"),
        }
    }

    #[test]
    fn spread_of_empty_is_none() {
        assert!(Spread::of(&[]).is_none());
        let s = Spread::of(&[2.0]).unwrap();
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn stage_times_are_populated_and_stripped() {
        let mut result = run_experiment(&quick_config(Scenario::NoFault));
        let stages = result.stats.stages;
        assert!(stages.simulate_ms > 0.0, "{stages:?}");
        assert!(stages.build_ms > 0.0, "{stages:?}");
        assert!(stages.generate_ms >= 0.0 && stages.fold_ms >= 0.0);
        assert!(stages.total_ms() > 0.0);
        result.stats.strip_timing();
        assert_eq!(result.stats.stages, StageTimes::default());
    }

    #[test]
    fn observed_run_matches_unobserved_and_counters_are_jobs_invariant() {
        use mkss_obs::CounterId;
        let cfg = quick_config(Scenario::Combined);
        let mut plain = run_experiment_jobs(&cfg, 1);
        plain.stats.strip_timing();
        let plain_json = serde_json::to_string(&plain).unwrap();
        let mut reference_snapshot = None;
        for jobs in [1usize, 3] {
            let registry = Arc::new(Registry::new(par::effective_jobs(jobs)));
            let obs = HarnessObs {
                registry: Some(Arc::clone(&registry)),
                progress: None,
                label: String::new(),
            };
            let mut observed = run_experiment_observed(&cfg, jobs, &obs);
            observed.stats.strip_timing();
            assert_eq!(
                serde_json::to_string(&observed).unwrap(),
                plain_json,
                "recording changed the results (jobs={jobs})"
            );
            let snapshot = registry.snapshot();
            assert_eq!(
                snapshot.counter(CounterId::JobsMet) + snapshot.counter(CounterId::JobsMissed),
                snapshot.counter(CounterId::JobsReleased),
                "released jobs must all resolve"
            );
            assert!(snapshot.counter(CounterId::JobsReleased) > 0);
            match &reference_snapshot {
                None => reference_snapshot = Some(snapshot),
                Some(reference) => assert_eq!(
                    reference, &snapshot,
                    "registry totals diverged across jobs values"
                ),
            }
        }
    }

    #[test]
    fn progress_reporter_emits_labelled_lines() {
        use std::io::Write;
        use std::sync::Mutex;

        #[derive(Clone, Default)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = SharedBuf::default();
        let obs = HarnessObs {
            registry: None,
            progress: Some(Arc::new(Reporter::with_sink(Box::new(buf.clone())))),
            label: "unit".to_string(),
        };
        assert!(!obs.is_off());
        let result = run_experiment_observed(&quick_config(Scenario::NoFault), 2, &obs);
        let bytes = buf.0.lock().unwrap();
        let text = std::str::from_utf8(&bytes).unwrap();
        // The work list holds every kept set, whether or not it later
        // survives simulation (skips still pass through the worker).
        let total = result.stats.sets_simulated
            + result.stats.skipped_build_errors
            + result.stats.skipped_zero_reference;
        assert!(
            text.contains(&format!("unit: {total}/{total} sets simulated")),
            "missing final progress line in {text:?}"
        );
    }
}
