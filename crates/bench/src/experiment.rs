//! The Figure-6 experiment pipeline: workload generation → per-scenario
//! fault plans → simulation of every policy → normalization against
//! `MKSS_ST`.

use std::collections::BTreeMap;

use mkss_core::task::TaskSet;
use mkss_core::time::Time;
use mkss_policies::PolicyKind;
use mkss_sim::engine::{simulate, SimConfig};
use mkss_sim::fault::FaultConfig;
use mkss_sim::power::PowerModel;
use mkss_sim::proc::ProcId;
use mkss_workload::{generate_buckets, BucketPlan, WorkloadConfig};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The three fault scenarios of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scenario {
    /// Fig. 6(a): no fault occurs within the simulated span.
    NoFault,
    /// Fig. 6(b): one permanent fault at a random instant on a random
    /// processor.
    Permanent,
    /// Fig. 6(c): the permanent fault plus Poisson transient faults.
    Combined,
}

impl Scenario {
    /// All scenarios, in the paper's panel order.
    pub const ALL: [Scenario; 3] = [Scenario::NoFault, Scenario::Permanent, Scenario::Combined];

    /// Stable identifier, also used by the `fig6` binary's `--scenario`.
    pub fn id(self) -> &'static str {
        match self {
            Scenario::NoFault => "no-fault",
            Scenario::Permanent => "permanent",
            Scenario::Combined => "combined",
        }
    }

    /// The figure panel this scenario reproduces.
    pub fn panel(self) -> &'static str {
        match self {
            Scenario::NoFault => "Fig. 6(a)",
            Scenario::Permanent => "Fig. 6(b)",
            Scenario::Combined => "Fig. 6(c)",
        }
    }
}

impl std::str::FromStr for Scenario {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Scenario::ALL
            .into_iter()
            .find(|sc| sc.id() == s)
            .ok_or_else(|| format!("unknown scenario '{s}'; expected no-fault|permanent|combined"))
    }
}

/// Full configuration of one experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Fault scenario.
    pub scenario: Scenario,
    /// Policies to compare (the normalization reference `MKSS_ST` is
    /// always simulated regardless).
    pub policies: Vec<PolicyKind>,
    /// Workload generator parameters.
    pub workload: WorkloadConfig,
    /// Utilization bucketing plan.
    pub plan: BucketPlan,
    /// Simulated span per task set (the paper simulates "within the
    /// hyper period"; random-period hyperperiods are astronomically
    /// large, so a fixed span is used — shapes are insensitive to it).
    pub horizon: Time,
    /// Power model.
    pub power: PowerModel,
    /// Transient fault rate per millisecond (used by
    /// [`Scenario::Combined`]; the paper uses `1e-6`).
    pub transient_rate_per_ms: f64,
    /// Window, as fractions of the horizon, in which the permanent
    /// fault's instant is drawn uniformly. `(0.0, 1.0)` = anywhere
    /// (default); the paper observes that its permanent-fault energies
    /// stay "similar to the case when no fault ever occurred", which
    /// corresponds to a late window such as `(0.9, 1.0)`.
    pub permanent_fault_window: (f64, f64),
    /// Master seed; workloads and fault plans derive from it.
    pub seed: u64,
}

impl ExperimentConfig {
    /// The paper's Figure-6 setup for one scenario.
    pub fn fig6(scenario: Scenario) -> Self {
        ExperimentConfig {
            scenario,
            policies: PolicyKind::PAPER.to_vec(),
            workload: WorkloadConfig::paper(),
            plan: BucketPlan::default(),
            horizon: Time::from_ms(1_000),
            power: PowerModel::default(),
            transient_rate_per_ms: 1e-6,
            permanent_fault_window: (0.0, 1.0),
            seed: 0x6d6b_7373, // "mkss"
        }
    }

    /// Fault configuration for one task set (deterministic per
    /// `set_index`; identical across policies so the comparison is fair).
    pub fn fault_plan(&self, set_index: u64) -> FaultConfig {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ (0xfa17 + set_index));
        let (w_lo, w_hi) = self.permanent_fault_window;
        let lo = (self.horizon.ticks() as f64 * w_lo) as u64;
        let hi = ((self.horizon.ticks() as f64 * w_hi) as u64).max(lo + 1);
        let permanent_at = Time::from_ticks(rng.gen_range(lo..hi));
        let proc = if rng.gen_bool(0.5) {
            ProcId::PRIMARY
        } else {
            ProcId::SPARE
        };
        let transient_seed = rng.gen();
        match self.scenario {
            Scenario::NoFault => FaultConfig::none(),
            Scenario::Permanent => FaultConfig::permanent(proc, permanent_at),
            Scenario::Combined => FaultConfig::combined(
                proc,
                permanent_at,
                self.transient_rate_per_ms,
                transient_seed,
            ),
        }
    }
}

/// Result row for one utilization bucket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BucketResult {
    /// Bucket midpoint ((m,k)-utilization).
    pub midpoint: f64,
    /// Number of schedulable task sets simulated.
    pub sets: usize,
    /// Task sets generated to fill the bucket.
    pub generated: u64,
    /// Mean energy normalized to `MKSS_ST`, per policy.
    pub normalized: BTreeMap<PolicyKind, f64>,
    /// Mean absolute energy in unit-ms, per policy.
    pub absolute: BTreeMap<PolicyKind, f64>,
    /// Total (m,k)-violations observed per policy (expected 0).
    pub violations: BTreeMap<PolicyKind, u64>,
}

/// Result of a whole experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// The configuration that produced it.
    pub config: ExperimentConfig,
    /// One row per utilization bucket.
    pub buckets: Vec<BucketResult>,
}

impl ExperimentResult {
    /// Maximum energy reduction (in percent) of `a` relative to `b`
    /// across all buckets — the paper's headline "up to X%" numbers
    /// (e.g. `MKSS_selective` vs `MKSS_DP`).
    pub fn max_reduction_pct(&self, a: PolicyKind, b: PolicyKind) -> f64 {
        self.buckets
            .iter()
            .filter_map(|bkt| {
                let ea = bkt.normalized.get(&a)?;
                let eb = bkt.normalized.get(&b)?;
                if *eb > 0.0 {
                    Some((1.0 - ea / eb) * 100.0)
                } else {
                    None
                }
            })
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean normalized energy of `policy` across buckets.
    pub fn mean_normalized(&self, policy: PolicyKind) -> f64 {
        let values: Vec<f64> = self
            .buckets
            .iter()
            .filter_map(|b| b.normalized.get(&policy).copied())
            .collect();
        if values.is_empty() {
            return f64::NAN;
        }
        values.iter().sum::<f64>() / values.len() as f64
    }

    /// Total violations across all buckets and policies (expected 0 in
    /// every scenario — Theorem 1 plus fault tolerance).
    pub fn total_violations(&self) -> u64 {
        self.buckets
            .iter()
            .flat_map(|b| b.violations.values())
            .sum()
    }
}

/// Runs the experiment: generates the bucketed workloads, simulates every
/// policy on every set under the scenario's fault plan, and aggregates
/// normalized energies.
///
/// Task sets where a policy cannot be built (not R-pattern schedulable —
/// excluded by the generator already) or where the reference consumes no
/// energy are skipped defensively.
pub fn run_experiment(config: &ExperimentConfig) -> ExperimentResult {
    let buckets = generate_buckets(config.workload, config.plan, config.seed);
    let mut policies = config.policies.clone();
    if !policies.contains(&PolicyKind::Static) {
        policies.push(PolicyKind::Static);
    }
    let mut results = Vec::with_capacity(buckets.len());
    let mut set_counter = 0u64;
    for bucket in &buckets {
        let mut sums: BTreeMap<PolicyKind, f64> = BTreeMap::new();
        let mut abs_sums: BTreeMap<PolicyKind, f64> = BTreeMap::new();
        let mut violations: BTreeMap<PolicyKind, u64> = BTreeMap::new();
        let mut counted = 0usize;
        for ts in &bucket.sets {
            let faults = config.fault_plan(set_counter);
            set_counter += 1;
            if let Some(row) = simulate_set(ts, &policies, config, faults) {
                counted += 1;
                for (kind, (norm, abs, viol)) in row {
                    *sums.entry(kind).or_default() += norm;
                    *abs_sums.entry(kind).or_default() += abs;
                    *violations.entry(kind).or_default() += viol;
                }
            }
        }
        let normalized = sums
            .iter()
            .map(|(&k, &v)| (k, v / counted.max(1) as f64))
            .collect();
        let absolute = abs_sums
            .iter()
            .map(|(&k, &v)| (k, v / counted.max(1) as f64))
            .collect();
        results.push(BucketResult {
            midpoint: bucket.midpoint(),
            sets: counted,
            generated: bucket.generated,
            normalized,
            absolute,
            violations,
        });
    }
    ExperimentResult {
        config: config.clone(),
        buckets: results,
    }
}

/// Mean-and-spread of one quantity across replications.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Spread {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (0 for a single replication).
    pub std: f64,
}

impl Spread {
    fn of(values: &[f64]) -> Spread {
        let n = values.len().max(1) as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = if values.len() > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        Spread {
            mean,
            std: var.sqrt(),
        }
    }
}

/// Result of [`run_replicated`]: per-bucket, per-policy mean ± std of the
/// normalized energy across independent replications (each replication
/// regenerates its workloads and fault plans from a distinct master
/// seed).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicatedResult {
    /// The base configuration (its seed is the first replication's).
    pub config: ExperimentConfig,
    /// Replications run.
    pub replications: u32,
    /// Bucket midpoints (same order as the rows).
    pub midpoints: Vec<f64>,
    /// `spreads[bucket][policy]`.
    pub spreads: Vec<BTreeMap<PolicyKind, Spread>>,
    /// Total violations across every run of every replication.
    pub total_violations: u64,
}

/// Runs `replications` independent instances of the experiment and
/// aggregates the per-bucket normalized energies.
///
/// # Panics
///
/// Panics if `replications` is zero.
///
/// ```
/// use mkss_bench::experiment::{run_replicated, ExperimentConfig, Scenario};
/// use mkss_core::time::Time;
/// use mkss_policies::PolicyKind;
///
/// let mut cfg = ExperimentConfig::fig6(Scenario::NoFault);
/// cfg.plan.sets_per_bucket = 2;
/// cfg.plan.from = 0.3;
/// cfg.plan.to = 0.4;
/// cfg.horizon = Time::from_ms(200);
/// let result = run_replicated(&cfg, 3);
/// assert_eq!(result.replications, 3);
/// let sel = result.spreads[0][&PolicyKind::Selective];
/// assert!(sel.mean > 0.0 && sel.std >= 0.0);
/// ```
pub fn run_replicated(config: &ExperimentConfig, replications: u32) -> ReplicatedResult {
    assert!(replications >= 1, "need at least one replication");
    let mut per_bucket: Vec<BTreeMap<PolicyKind, Vec<f64>>> = Vec::new();
    let mut midpoints: Vec<f64> = Vec::new();
    let mut total_violations = 0;
    for r in 0..replications {
        let mut cfg = config.clone();
        cfg.seed = config
            .seed
            .wrapping_add(u64::from(r).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let result = run_experiment(&cfg);
        total_violations += result.total_violations();
        if midpoints.is_empty() {
            midpoints = result.buckets.iter().map(|b| b.midpoint).collect();
            per_bucket = vec![BTreeMap::new(); midpoints.len()];
        }
        for (i, bucket) in result.buckets.iter().enumerate() {
            if bucket.sets == 0 {
                continue;
            }
            for (&kind, &value) in &bucket.normalized {
                per_bucket[i].entry(kind).or_default().push(value);
            }
        }
    }
    let spreads = per_bucket
        .into_iter()
        .map(|m| {
            m.into_iter()
                .map(|(k, values)| (k, Spread::of(&values)))
                .collect()
        })
        .collect();
    ReplicatedResult {
        config: config.clone(),
        replications,
        midpoints,
        spreads,
        total_violations,
    }
}

/// Simulates all policies on one set; returns per-policy
/// (normalized, absolute, violations).
fn simulate_set(
    ts: &TaskSet,
    policies: &[PolicyKind],
    config: &ExperimentConfig,
    faults: FaultConfig,
) -> Option<BTreeMap<PolicyKind, (f64, f64, u64)>> {
    let sim_config = SimConfig {
        horizon: config.horizon,
        power: config.power,
        faults,
        record_trace: false,
    };
    let mut energies: BTreeMap<PolicyKind, (f64, u64)> = BTreeMap::new();
    for &kind in policies {
        let mut policy = kind.build(ts).ok()?;
        let report = simulate(ts, policy.as_mut(), &sim_config);
        energies.insert(
            kind,
            (
                report.total_energy().units(),
                report.violations.len() as u64,
            ),
        );
    }
    let (reference, _) = *energies.get(&PolicyKind::Static)?;
    if reference <= 0.0 {
        return None;
    }
    Some(
        energies
            .into_iter()
            .map(|(k, (e, v))| (k, (e / reference, e, v)))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(scenario: Scenario) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::fig6(scenario);
        cfg.plan.sets_per_bucket = 3;
        cfg.plan.from = 0.2;
        cfg.plan.to = 0.6;
        cfg.horizon = Time::from_ms(400);
        cfg
    }

    #[test]
    fn scenario_parsing() {
        assert_eq!("no-fault".parse::<Scenario>().unwrap(), Scenario::NoFault);
        assert_eq!("combined".parse::<Scenario>().unwrap(), Scenario::Combined);
        assert!("x".parse::<Scenario>().is_err());
        assert_eq!(Scenario::Permanent.panel(), "Fig. 6(b)");
    }

    #[test]
    fn fault_plans_deterministic_and_scenario_appropriate() {
        let cfg = quick_config(Scenario::Permanent);
        let a = cfg.fault_plan(3);
        let b = cfg.fault_plan(3);
        assert_eq!(a, b);
        assert!(a.permanent.is_some());
        assert_eq!(a.transient_rate_per_ms, 0.0);
        let c = quick_config(Scenario::Combined).fault_plan(3);
        assert!(c.transient_rate_per_ms > 0.0);
        assert!(quick_config(Scenario::NoFault).fault_plan(3).permanent.is_none());
    }

    #[test]
    fn no_fault_ordering_matches_paper() {
        let result = run_experiment(&quick_config(Scenario::NoFault));
        assert_eq!(result.total_violations(), 0);
        for bucket in &result.buckets {
            assert!(bucket.sets > 0, "bucket {} empty", bucket.midpoint);
            let st = bucket.normalized[&PolicyKind::Static];
            let dp = bucket.normalized[&PolicyKind::DualPriority];
            let sel = bucket.normalized[&PolicyKind::Selective];
            assert!((st - 1.0).abs() < 1e-9);
            assert!(dp <= st + 1e-9, "DP {dp} vs ST {st} at {}", bucket.midpoint);
            assert!(sel <= st + 1e-9, "selective {sel} vs ST at {}", bucket.midpoint);
            // Selective and DP track each other within a band; see
            // EXPERIMENTS.md for the measured crossover.
            assert!(
                (sel - dp).abs() <= 0.15,
                "selective {sel} vs DP {dp} diverged at {}",
                bucket.midpoint
            );
        }
    }

    #[test]
    fn permanent_fault_scenario_keeps_guarantee() {
        let result = run_experiment(&quick_config(Scenario::Permanent));
        assert_eq!(result.total_violations(), 0);
    }

    #[test]
    fn combined_scenario_keeps_guarantee() {
        let result = run_experiment(&quick_config(Scenario::Combined));
        assert_eq!(result.total_violations(), 0);
    }
}
