//! # mkss-bench
//!
//! Experiment harness regenerating the evaluation of *Niu & Zhu, DATE
//! 2020* (Figure 6, panels a–c) and the ablation studies called out in
//! DESIGN.md.
//!
//! The harness follows Section V: random task sets bucketed by total
//! (m,k)-utilization (width-0.1 intervals, ≥ 20 schedulable sets or 5000
//! attempts per bucket), three fault scenarios (no fault / one permanent
//! fault / permanent + Poisson-10⁻⁶ transient faults), and per-set
//! energies normalized to the `MKSS_ST` reference.
//!
//! ```
//! use mkss_bench::experiment::{run_experiment, ExperimentConfig, Scenario};
//! use mkss_policies::PolicyKind;
//!
//! let mut cfg = ExperimentConfig::fig6(Scenario::NoFault);
//! cfg.plan.sets_per_bucket = 2; // keep the doctest quick
//! cfg.plan.to = 0.3;
//! let result = run_experiment(&cfg);
//! assert_eq!(result.buckets.len(), 2);
//! // The selective scheme never exceeds the reference.
//! for bucket in &result.buckets {
//!     let sel = bucket.normalized[&PolicyKind::Selective];
//!     assert!(sel <= 1.0 + 1e-9);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod perf;
pub mod report_html;
pub mod sched;
pub mod table;
