//! Hot-path throughput measurement for the simulation engine, backing
//! the checked-in `BENCH_sim.json` snapshot.
//!
//! The quantity tracked is the experiment pipeline's unit of work: build
//! a policy and run one full simulation of a Section-V-sized random task
//! set with `record_trace = false`. Two variants are timed:
//!
//! * **fresh** — the plain [`mkss_sim::engine::simulate`] entry point,
//!   which sets up a new arena per call;
//! * **reuse** — [`mkss_sim::engine::simulate_in`] against one
//!   [`mkss_sim::engine::SimWorkspace`] reused across all runs, the way
//!   the harness drives it per worker thread.

use std::time::Instant;

use mkss_core::task::TaskSet;
use mkss_core::time::Time;
use mkss_policies::{BuildOptions, PolicyKind};
use mkss_sim::engine::{simulate, simulate_in, SimConfig, SimWorkspace};
use mkss_workload::{Generator, WorkloadConfig};
use serde::{Deserialize, Serialize};

/// Configuration of one [`measure`] call.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimBenchConfig {
    /// Task sets per utilization point.
    pub sets_per_util: usize,
    /// Timed repetitions of the whole workload (results are averaged).
    pub reps: usize,
    /// Simulated span per run, in milliseconds.
    pub horizon_ms: u64,
    /// Workload generator seed.
    pub seed: u64,
    /// (m,k)-utilization points sampled.
    pub utils: Vec<f64>,
    /// Policies simulated per set.
    pub policies: Vec<PolicyKind>,
}

impl Default for SimBenchConfig {
    /// Section-V-sized sets (5–10 tasks, the paper's generator), the
    /// three Figure-6 policies, 1 s horizons.
    fn default() -> Self {
        SimBenchConfig {
            sets_per_util: 8,
            reps: 3,
            horizon_ms: 1_000,
            seed: 0xbe9c,
            utils: vec![0.3, 0.5, 0.7],
            policies: PolicyKind::PAPER.to_vec(),
        }
    }
}

/// Timing of one engine entry path.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PathStats {
    /// Best-of-`reps` wall time for the whole workload, in milliseconds.
    pub wall_ms: f64,
    /// Simulations per second at that wall time.
    pub sims_per_second: f64,
    /// Released jobs processed per second (a machine-independent-ish
    /// proxy for events).
    pub jobs_per_second: f64,
}

/// The `BENCH_sim.json` payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimBenchReport {
    /// Harness configuration.
    pub config: SimBenchConfig,
    /// Simulations per timed repetition (sets × policies).
    pub simulations: u64,
    /// Jobs released per timed repetition, summed over all runs.
    pub released_jobs: u64,
    /// Plain `simulate` (fresh arena per call).
    pub fresh: PathStats,
    /// `simulate_in` with one reused [`SimWorkspace`].
    pub reuse: PathStats,
}

impl SimBenchReport {
    /// Throughput of the reused-workspace path over the fresh path.
    pub fn reuse_speedup(&self) -> f64 {
        self.reuse.sims_per_second / self.fresh.sims_per_second
    }
}

fn sample_sets(config: &SimBenchConfig) -> Vec<TaskSet> {
    let mut sets = Vec::new();
    for (i, &util) in config.utils.iter().enumerate() {
        let mut generator = Generator::new(
            WorkloadConfig::paper(),
            config.seed.wrapping_add(i as u64 * 0x9e37_79b9),
        );
        for _ in 0..config.sets_per_util {
            if let Some(ts) = generator.schedulable_set(util) {
                sets.push(ts);
            }
        }
    }
    sets
}

/// Runs the workload through both entry paths and reports throughput.
/// Each path is timed `config.reps` times; the best repetition counts
/// (standard practice for throughput snapshots — the minimum is the run
/// least disturbed by the machine).
pub fn measure(config: &SimBenchConfig) -> SimBenchReport {
    let sets = sample_sets(config);
    let sim_config = SimConfig::builder()
        .horizon(Time::from_ms(config.horizon_ms))
        .build();
    let opts = BuildOptions::default();

    let mut released = 0u64;
    let mut sims = 0u64;
    for ts in &sets {
        for &kind in &config.policies {
            let mut policy = kind.build(ts, &opts).expect("schedulable set");
            let report = simulate(ts, policy.as_mut(), &sim_config);
            released += report.stats.released;
            sims += 1;
        }
    }

    let time_path = |use_workspace: bool| -> PathStats {
        let mut workspace = SimWorkspace::new();
        let mut best = f64::INFINITY;
        for _ in 0..config.reps.max(1) {
            // mkss-lint: allow(nondeterminism) — throughput measurement; wall time is the measured quantity here
            let start = Instant::now();
            for ts in &sets {
                for &kind in &config.policies {
                    let mut policy = kind.build(ts, &opts).expect("schedulable set");
                    let report = if use_workspace {
                        simulate_in(&mut workspace, ts, policy.as_mut(), &sim_config)
                    } else {
                        simulate(ts, policy.as_mut(), &sim_config)
                    };
                    std::hint::black_box(&report);
                }
            }
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
        }
        PathStats {
            wall_ms: best,
            sims_per_second: sims as f64 / (best / 1e3),
            jobs_per_second: released as f64 / (best / 1e3),
        }
    };

    let fresh = time_path(false);
    let reuse = time_path(true);
    SimBenchReport {
        config: config.clone(),
        simulations: sims,
        released_jobs: released,
        fresh,
        reuse,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_smoke() {
        let config = SimBenchConfig {
            sets_per_util: 1,
            reps: 1,
            horizon_ms: 100,
            utils: vec![0.4],
            ..SimBenchConfig::default()
        };
        let report = measure(&config);
        assert!(report.simulations >= 1);
        assert!(report.fresh.sims_per_second > 0.0);
        assert!(report.reuse.sims_per_second > 0.0);
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("sims_per_second"));
    }
}
