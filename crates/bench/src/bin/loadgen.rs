//! Concurrent load harness for the `mkss-serve` daemon.
//!
//! ```text
//! loadgen (--socket PATH | --tcp ADDR) [--clients N] [--requests M]
//!         [--seed S] [--differential] [--shutdown]
//! ```
//!
//! Spawns `--clients` concurrent connections, each sending `--requests`
//! deterministic simulate/compare/sweep lines. With `--differential`
//! every daemon response is re-derived in-process through
//! [`mkss_serve::execute`] and compared **byte-for-byte** — the exit
//! code is non-zero on any mismatch, which is how `scripts/ci.sh` pins
//! the daemon's "same bytes in-process or over the wire" contract. With
//! `--shutdown` the daemon is asked to drain and exit once the load
//! completes.

use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mkss_obs::{Reporter, Stopwatch};
use mkss_serve::{execute, Client, ExecEnv, Request};
use mkss_sim::pool::WorkspacePool;

/// Policies cycled through by the generated load. All of them build for
/// the embedded task sets, so every response is a success row — error
/// responses are covered by the serve crate's own protocol tests.
const POLICIES: [&str; 6] = ["st", "dp", "greedy", "selective", "st-even", "dp-theta"];

/// Small task-set templates (cli `format.rs` schema) the load cycles
/// through. Kept modest so a default run finishes in well under a second.
const TASK_SETS: [&str; 3] = [
    r#"{"tasks":[{"period_ms":10,"wcet_ms":2,"m":1,"k":2},{"period_ms":20,"wcet_ms":4,"m":2,"k":3}]}"#,
    r#"{"tasks":[{"period_ms":8,"wcet_ms":1.5,"m":2,"k":4},{"period_ms":12,"wcet_ms":2,"m":1,"k":3},{"period_ms":24,"wcet_ms":3,"m":3,"k":5}]}"#,
    r#"{"tasks":[{"period_ms":5,"deadline_ms":4,"wcet_ms":1,"m":3,"k":4}]}"#,
];

struct Args {
    socket: Option<String>,
    tcp: Option<String>,
    clients: usize,
    requests: usize,
    seed: u64,
    differential: bool,
    shutdown: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        socket: None,
        tcp: None,
        clients: 4,
        requests: 16,
        seed: 1,
        differential: false,
        shutdown: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .ok_or_else(|| format!("flag {flag} expects a value"))
        };
        match flag.as_str() {
            "--socket" => parsed.socket = Some(value()?),
            "--tcp" => parsed.tcp = Some(value()?),
            "--clients" => {
                parsed.clients = value()?.parse().map_err(|e| format!("--clients: {e}"))?
            }
            "--requests" => {
                parsed.requests = value()?.parse().map_err(|e| format!("--requests: {e}"))?
            }
            "--seed" => parsed.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--differential" => parsed.differential = true,
            "--shutdown" => parsed.shutdown = true,
            "--help" | "-h" => {
                println!(
                    "usage: loadgen (--socket PATH | --tcp ADDR) [--clients N] [--requests M]\n\
                     \x20              [--seed S] [--differential] [--shutdown]\n\
                     \n\
                     --differential re-derives every response in-process and fails on\n\
                     any byte mismatch; --shutdown asks the daemon to drain and exit\n\
                     after the load completes."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    if parsed.clients == 0 || parsed.requests == 0 {
        return Err("--clients and --requests must be at least 1".into());
    }
    match (&parsed.socket, &parsed.tcp) {
        (Some(_), None) | (None, Some(_)) => Ok(parsed),
        _ => Err("expects exactly one of --socket PATH or --tcp ADDR".into()),
    }
}

fn connect(args: &Args) -> std::io::Result<Client> {
    match (&args.socket, &args.tcp) {
        (Some(path), _) => Client::connect_unix(path),
        (_, Some(addr)) => Client::connect_tcp(addr),
        _ => unreachable!("parse_args enforces one endpoint"),
    }
}

/// The deterministic request line for (client, request-index). Every 5th
/// request is a compare, every 7th a sweep, the rest simulate — so one
/// run exercises all three simulation ops at every fan-out.
fn request_line(id: u64, client: usize, index: usize, seed: u64) -> String {
    let n = client * 31 + index;
    let task_set = TASK_SETS[n % TASK_SETS.len()];
    let policy = POLICIES[n % POLICIES.len()];
    let seed = seed.wrapping_add(id);
    if index % 7 == 3 {
        format!(
            "{{\"id\":{id},\"op\":\"sweep\",\"task_set\":{task_set},\"policy\":\"{policy}\",\
             \"horizon_ms\":100,\"faults\":{{\"transient_per_ms\":0.001}},\
             \"seeds\":6,\"seed_from\":{seed}}}"
        )
    } else if index % 5 == 2 {
        format!(
            "{{\"id\":{id},\"op\":\"compare\",\"task_set\":{task_set},\"horizon_ms\":100,\
             \"policies\":[\"st\",\"{policy}\"],\"faults\":{{\"seed\":{seed},\
             \"transient_per_ms\":0.0005}}}}"
        )
    } else {
        format!(
            "{{\"id\":{id},\"op\":\"simulate\",\"task_set\":{task_set},\"policy\":\"{policy}\",\
             \"horizon_ms\":200,\"faults\":{{\"seed\":{seed},\"transient_per_ms\":0.0005,\
             \"permanent\":{{\"proc\":0,\"at_ms\":60}}}}}}"
        )
    }
}

/// Re-derives the expected response bytes in-process (fresh per-request
/// metrics, shared local arena pool, no global tee — exactly the daemon's
/// observable behavior by the serve crate's byte-identity contract).
fn direct_response(line: &str, pool: &WorkspacePool) -> String {
    match Request::parse(line) {
        Ok(request) => execute(
            &request,
            &ExecEnv {
                pool,
                global: None,
                fanout: 1,
            },
        ),
        Err(error) => mkss_serve::protocol::error_line(error.id, &error.message),
    }
}

fn main() -> ExitCode {
    let reporter = Arc::new(Reporter::stderr());
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            reporter.line(&format!("error: {e}"));
            return ExitCode::FAILURE;
        }
    };
    let pool = WorkspacePool::new();
    let sent = AtomicU64::new(0);
    let mismatches = AtomicU64::new(0);
    let failures = AtomicU64::new(0);
    let watch = Stopwatch::start();
    std::thread::scope(|scope| {
        for client_index in 0..args.clients {
            let (args, reporter, pool) = (&args, &reporter, &pool);
            let (sent, mismatches, failures) = (&sent, &mismatches, &failures);
            scope.spawn(move || {
                let mut client = match connect(args) {
                    Ok(client) => client,
                    Err(e) => {
                        reporter.line(&format!("client {client_index}: connect failed: {e}"));
                        // mkss-lint: ordering — commutative tally; totals are read only after scope join, which synchronizes
                        failures.fetch_add(args.requests as u64, Ordering::Relaxed);
                        return;
                    }
                };
                for index in 0..args.requests {
                    let id = (client_index * args.requests + index) as u64 + 1;
                    let line = request_line(id, client_index, index, args.seed);
                    let response = match client.request(&line) {
                        Ok(response) => response,
                        Err(e) => {
                            reporter.line(&format!("client {client_index} req {id}: {e}"));
                            // mkss-lint: ordering — commutative tally read after scope join
                            failures.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                    };
                    // mkss-lint: ordering — commutative tally read after scope join
                    sent.fetch_add(1, Ordering::Relaxed);
                    if args.differential && response != direct_response(&line, pool) {
                        // mkss-lint: ordering — commutative tally read after scope join
                        mismatches.fetch_add(1, Ordering::Relaxed);
                        reporter.line(&format!(
                            "client {client_index} req {id}: daemon bytes diverge from \
                             in-process execute()"
                        ));
                    }
                }
            });
        }
    });
    let wall_ms = watch.elapsed_ms();
    // mkss-lint: ordering — all writers joined at the scope exit above; these loads race with nothing
    let sent = sent.load(Ordering::Relaxed);
    let mismatches = mismatches.load(Ordering::Relaxed);
    // mkss-lint: ordering — same: all writers joined at the scope exit
    let failures = failures.load(Ordering::Relaxed);
    let throughput = if wall_ms > 0.0 {
        f64::from(u32::try_from(sent).unwrap_or(u32::MAX)) / (wall_ms / 1e3)
    } else {
        0.0
    };
    reporter.line(&format!(
        "{sent} responses from {} client(s) in {wall_ms:.1} ms ({throughput:.0} req/s), \
         {mismatches} mismatches, {failures} transport failures",
        args.clients,
    ));
    if args.shutdown {
        match connect(&args).and_then(|mut c| c.request("{\"id\":0,\"op\":\"shutdown\"}")) {
            Ok(_) => reporter.line("shutdown requested"),
            Err(e) => {
                reporter.line(&format!("shutdown request failed: {e}"));
                return ExitCode::FAILURE;
            }
        }
    }
    if mismatches > 0 || failures > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
