//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. greedy vs selective optional-job execution (Section III's
//!    motivation, Figs. 2–4 at scale);
//! 2. the FD = 1 selection threshold vs FD ≤ 2 / FD ≤ 3;
//! 3. alternating optional placement vs primary-only;
//! 4. θ-postponement vs promotion-times-only vs the static reference.
//!
//! ```text
//! ablations [--sets N] [--horizon-ms MS] [--seed S] [--scenario ...]
//!           [--jobs N] [--metrics-out FILE] [--progress]
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use mkss_bench::experiment::{
    metrics_doc, run_experiment_observed, ExperimentConfig, HarnessObs, Scenario, StageTimes,
};
use mkss_bench::table;
use mkss_core::par;
use mkss_core::time::Time;
use mkss_obs::{Registry, Reporter};
use mkss_policies::PolicyKind;

fn main() -> ExitCode {
    let reporter = Arc::new(Reporter::stderr());
    let mut template = ExperimentConfig::fig6(Scenario::NoFault);
    let mut jobs = 0usize;
    let mut metrics_out: Option<String> = None;
    let mut progress = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .ok_or_else(|| format!("flag {flag} expects a value"))
        };
        let result: Result<(), String> = (|| {
            match flag.as_str() {
                "--sets" => {
                    template.plan.sets_per_bucket =
                        value()?.parse().map_err(|e| format!("--sets: {e}"))?
                }
                "--horizon-ms" => {
                    template.horizon =
                        Time::from_ms(value()?.parse().map_err(|e| format!("--horizon-ms: {e}"))?)
                }
                "--seed" => template.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
                "--scenario" => template.scenario = value()?.parse().map_err(|e| format!("{e}"))?,
                "--jobs" => jobs = value()?.parse().map_err(|e| format!("--jobs: {e}"))?,
                "--metrics-out" => metrics_out = Some(value()?),
                "--progress" => progress = true,
                "--help" | "-h" => {
                    println!(
                        "usage: ablations [--sets N] [--horizon-ms MS] [--seed S] \
                         [--scenario no-fault|permanent|combined] [--jobs N] \
                         [--metrics-out FILE] [--progress]"
                    );
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag '{other}' (try --help)")),
            }
            Ok(())
        })();
        if let Err(e) = result {
            reporter.line(&format!("error: {e}"));
            return ExitCode::FAILURE;
        }
    }

    let studies: [(&str, Vec<PolicyKind>); 6] = [
        (
            "ablation 1: greedy vs selective optional execution",
            vec![
                PolicyKind::Greedy,
                PolicyKind::Selective,
                PolicyKind::DualPriority,
            ],
        ),
        (
            "ablation 2: flexibility-degree selection threshold",
            vec![
                PolicyKind::Selective,
                PolicyKind::SelectiveFd2,
                PolicyKind::SelectiveFd3,
            ],
        ),
        (
            "ablation 3: optional-job placement",
            vec![PolicyKind::Selective, PolicyKind::SelectivePrimaryOnly],
        ),
        (
            "ablation 4: backup procrastination on the static scheme (Y vs θ vs θ_ij)",
            vec![
                PolicyKind::DualPriority,
                PolicyKind::DualPriorityTheta,
                PolicyKind::DualPriorityJobTheta,
                PolicyKind::Selective,
                PolicyKind::SelectiveNoPostpone,
            ],
        ),
        (
            "ablation 5: static pattern shape (deeply-red vs evenly-distributed)",
            vec![PolicyKind::Static, PolicyKind::StaticEven],
        ),
        (
            "ablation 6: DVS-slowed mains (the extension the paper omits)",
            vec![
                PolicyKind::DualPriority,
                PolicyKind::DualPriorityTheta,
                PolicyKind::DvsDualPriority,
                PolicyKind::Selective,
            ],
        ),
    ];

    let registry = metrics_out
        .as_ref()
        .map(|_| Arc::new(Registry::new(par::effective_jobs(jobs))));
    let mut stage_totals = StageTimes::default();
    for (number, (title, policies)) in studies.into_iter().enumerate() {
        println!("== {title} ==");
        let mut config = template.clone();
        config.policies = policies;
        let obs = HarnessObs {
            registry: registry.clone(),
            progress: progress.then(|| Arc::clone(&reporter)),
            label: format!("ablation {}", number + 1),
        };
        let result = run_experiment_observed(&config, jobs, &obs);
        reporter.line(&format!("{title}: {}", result.stats.summary()));
        stage_totals.absorb(&result.stats.stages);
        println!("{}", table::render(&result));
    }
    if let (Some(path), Some(registry)) = (&metrics_out, &registry) {
        let doc = metrics_doc(
            "ablations",
            registry,
            &stage_totals,
            &[
                ("studies", "6".to_string()),
                ("jobs", par::effective_jobs(jobs).to_string()),
            ],
        );
        if let Err(e) = std::fs::write(path, doc.to_json()) {
            reporter.line(&format!("error writing {path}: {e}"));
            return ExitCode::FAILURE;
        }
        reporter.line(&format!("wrote {path}"));
    }
    ExitCode::SUCCESS
}
