//! Sensitivity analysis of the model parameters the paper leaves open:
//! the DPD break-even time `T_be`, the idle (leakage) power, and the
//! transient fault rate. For each knob value the harness reports the
//! mean normalized energy of `MKSS_DP` and `MKSS_selective` on a fixed
//! mid-utilization workload — showing how robust the Figure-6
//! conclusions are to the unspecified parameters.
//!
//! ```text
//! sensitivity [--sets N] [--horizon-ms MS] [--seed S] [--jobs N]
//!             [--metrics-out FILE] [--trace-out FILE] [--progress]
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use mkss_bench::experiment::{
    metrics_doc, run_experiment_observed, trace_representative, ExperimentConfig, HarnessObs,
    Scenario, StageTimes,
};
use mkss_core::par;
use mkss_core::time::Time;
use mkss_obs::{Registry, Reporter};
use mkss_policies::PolicyKind;

fn base_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::fig6(Scenario::NoFault);
    cfg.plan.from = 0.4;
    cfg.plan.to = 0.6;
    cfg.plan.sets_per_bucket = 10;
    cfg.horizon = Time::from_ms(600);
    cfg
}

/// Shared observability context of one sensitivity sweep.
struct Obs {
    reporter: Arc<Reporter>,
    registry: Option<Arc<Registry>>,
    progress: bool,
    stage_totals: StageTimes,
}

fn report_line(cfg: &ExperimentConfig, jobs: usize, label: &str, obs: &mut Obs) {
    let harness_obs = HarnessObs {
        registry: obs.registry.clone(),
        progress: obs.progress.then(|| Arc::clone(&obs.reporter)),
        label: label.to_string(),
    };
    let result = run_experiment_observed(cfg, jobs, &harness_obs);
    obs.reporter
        .line(&format!("{label}: {}", result.stats.summary()));
    obs.stage_totals.absorb(&result.stats.stages);
    println!(
        "{label:>22}: dp {:.4}  selective {:.4}  (violations {})",
        result.mean_normalized(PolicyKind::DualPriority),
        result.mean_normalized(PolicyKind::Selective),
        result.total_violations(),
    );
}

fn main() -> ExitCode {
    let reporter = Arc::new(Reporter::stderr());
    let mut template = base_config();
    let mut jobs = 0usize;
    let mut metrics_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut progress = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .ok_or_else(|| format!("flag {flag} expects a value"))
        };
        let result: Result<(), String> = (|| {
            match flag.as_str() {
                "--sets" => {
                    template.plan.sets_per_bucket =
                        value()?.parse().map_err(|e| format!("--sets: {e}"))?
                }
                "--horizon-ms" => {
                    template.horizon =
                        Time::from_ms(value()?.parse().map_err(|e| format!("--horizon-ms: {e}"))?)
                }
                "--seed" => template.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
                "--jobs" => jobs = value()?.parse().map_err(|e| format!("--jobs: {e}"))?,
                "--metrics-out" => metrics_out = Some(value()?),
                "--trace-out" => trace_out = Some(value()?),
                "--progress" => progress = true,
                "--help" | "-h" => {
                    println!(
                        "usage: sensitivity [--sets N] [--horizon-ms MS] [--seed S] [--jobs N] \
                         [--metrics-out FILE] [--trace-out FILE] [--progress]\n\
                         --trace-out FILE flight-records one representative run per\n\
                         knob family as Chrome Trace Event JSON (open in Perfetto)."
                    );
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag '{other}' (try --help)")),
            }
            Ok(())
        })();
        if let Err(e) = result {
            reporter.line(&format!("error: {e}"));
            return ExitCode::FAILURE;
        }
    }

    let registry = metrics_out
        .as_ref()
        .map(|_| Arc::new(Registry::new(par::effective_jobs(jobs))));
    let mut obs = Obs {
        reporter: Arc::clone(&reporter),
        registry: registry.clone(),
        progress,
        stage_totals: StageTimes::default(),
    };

    println!("== sensitivity: DPD break-even time T_be (idle power 0.1) ==");
    for tbe_us in [100u64, 500, 1_000, 5_000, 20_000] {
        let mut cfg = template.clone();
        cfg.power.t_be = Time::from_us(tbe_us);
        report_line(
            &cfg,
            jobs,
            &format!("T_be = {}", Time::from_us(tbe_us)),
            &mut obs,
        );
    }

    println!("\n== sensitivity: idle (leakage) power, fraction of P_act ==");
    for p_idle in [0.0, 0.05, 0.1, 0.3, 1.0] {
        let mut cfg = template.clone();
        cfg.power.p_idle = p_idle;
        report_line(&cfg, jobs, &format!("p_idle = {p_idle}"), &mut obs);
    }

    println!("\n== sensitivity: transient fault rate (permanent+transient scenario) ==");
    for rate in [0.0, 1e-6, 1e-4, 1e-3, 1e-2] {
        let mut cfg = template.clone();
        cfg.scenario = Scenario::Combined;
        cfg.transient_rate_per_ms = rate;
        report_line(&cfg, jobs, &format!("λ = {rate}/ms"), &mut obs);
    }

    if let Some(path) = &trace_out {
        // One representative capture per knob family, each at a mid-range
        // knob value, on its own track.
        let mut tbe_cfg = template.clone();
        tbe_cfg.power.t_be = Time::from_us(1_000);
        let mut idle_cfg = template.clone();
        idle_cfg.power.p_idle = 0.1;
        let mut rate_cfg = template.clone();
        rate_cfg.scenario = Scenario::Combined;
        rate_cfg.transient_rate_per_ms = 1e-4;
        let buffers = [
            ("t_be=1ms", trace_representative(&tbe_cfg)),
            ("p_idle=0.1", trace_representative(&idle_cfg)),
            ("rate=1e-4", trace_representative(&rate_cfg)),
        ];
        let runs: Vec<(&str, &mkss_obs::TraceBuffer)> =
            buffers.iter().map(|(id, b)| (*id, b)).collect();
        if let Err(e) = std::fs::write(path, mkss_obs::chrome_trace(&runs)) {
            reporter.line(&format!("error writing {path}: {e}"));
            return ExitCode::FAILURE;
        }
        reporter.line(&format!("wrote {path}"));
    }
    if let (Some(path), Some(registry)) = (&metrics_out, &registry) {
        let doc = metrics_doc(
            "sensitivity",
            registry,
            &obs.stage_totals,
            &[
                ("knobs", "t_be,p_idle,transient_rate".to_string()),
                ("jobs", par::effective_jobs(jobs).to_string()),
            ],
        );
        if let Err(e) = std::fs::write(path, doc.to_json()) {
            reporter.line(&format!("error writing {path}: {e}"));
            return ExitCode::FAILURE;
        }
        reporter.line(&format!("wrote {path}"));
    }
    ExitCode::SUCCESS
}
