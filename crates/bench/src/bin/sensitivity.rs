//! Sensitivity analysis of the model parameters the paper leaves open:
//! the DPD break-even time `T_be`, the idle (leakage) power, and the
//! transient fault rate. For each knob value the harness reports the
//! mean normalized energy of `MKSS_DP` and `MKSS_selective` on a fixed
//! mid-utilization workload — showing how robust the Figure-6
//! conclusions are to the unspecified parameters.
//!
//! ```text
//! sensitivity [--sets N] [--horizon-ms MS] [--seed S] [--jobs N]
//! ```

use std::process::ExitCode;

use mkss_bench::experiment::{run_experiment_jobs, ExperimentConfig, Scenario};
use mkss_core::time::Time;
use mkss_policies::PolicyKind;

fn base_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::fig6(Scenario::NoFault);
    cfg.plan.from = 0.4;
    cfg.plan.to = 0.6;
    cfg.plan.sets_per_bucket = 10;
    cfg.horizon = Time::from_ms(600);
    cfg
}

fn report_line(cfg: &ExperimentConfig, jobs: usize, label: &str) {
    let result = run_experiment_jobs(cfg, jobs);
    eprintln!("{label}: {}", result.stats.summary());
    println!(
        "{label:>22}: dp {:.4}  selective {:.4}  (violations {})",
        result.mean_normalized(PolicyKind::DualPriority),
        result.mean_normalized(PolicyKind::Selective),
        result.total_violations(),
    );
}

fn main() -> ExitCode {
    let mut template = base_config();
    let mut jobs = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .ok_or_else(|| format!("flag {flag} expects a value"))
        };
        let result: Result<(), String> = (|| {
            match flag.as_str() {
                "--sets" => {
                    template.plan.sets_per_bucket =
                        value()?.parse().map_err(|e| format!("--sets: {e}"))?
                }
                "--horizon-ms" => {
                    template.horizon =
                        Time::from_ms(value()?.parse().map_err(|e| format!("--horizon-ms: {e}"))?)
                }
                "--seed" => template.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
                "--jobs" => jobs = value()?.parse().map_err(|e| format!("--jobs: {e}"))?,
                "--help" | "-h" => {
                    println!(
                        "usage: sensitivity [--sets N] [--horizon-ms MS] [--seed S] [--jobs N]"
                    );
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag '{other}' (try --help)")),
            }
            Ok(())
        })();
        if let Err(e) = result {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }

    println!("== sensitivity: DPD break-even time T_be (idle power 0.1) ==");
    for tbe_us in [100u64, 500, 1_000, 5_000, 20_000] {
        let mut cfg = template.clone();
        cfg.power.t_be = Time::from_us(tbe_us);
        report_line(&cfg, jobs, &format!("T_be = {}", Time::from_us(tbe_us)));
    }

    println!("\n== sensitivity: idle (leakage) power, fraction of P_act ==");
    for p_idle in [0.0, 0.05, 0.1, 0.3, 1.0] {
        let mut cfg = template.clone();
        cfg.power.p_idle = p_idle;
        report_line(&cfg, jobs, &format!("p_idle = {p_idle}"));
    }

    println!("\n== sensitivity: transient fault rate (permanent+transient scenario) ==");
    for rate in [0.0, 1e-6, 1e-4, 1e-3, 1e-2] {
        let mut cfg = template.clone();
        cfg.scenario = Scenario::Combined;
        cfg.transient_rate_per_ms = rate;
        report_line(&cfg, jobs, &format!("λ = {rate}/ms"));
    }

    ExitCode::SUCCESS
}
