//! Schedulability-ratio experiment (extension beyond the paper's
//! Figure 6): fraction of random Section-V task sets provably
//! schedulable per (m,k)-utilization bucket, under the deeply-red RTA,
//! plus the exact hyperperiod sweep, plus Quan-&-Hu-style pattern
//! rotation.
//!
//! ```text
//! schedulability [--samples N] [--from U] [--to U] [--seed S] [--jobs N]
//!                [--metrics-out FILE] [--progress]
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use mkss_bench::sched::{render, schedulability_experiment_observed, SchedConfig};
use mkss_core::par;
use mkss_obs::{MetricsSnapshot, Reporter, Stopwatch};

fn main() -> ExitCode {
    let reporter = Arc::new(Reporter::stderr());
    let mut config = SchedConfig::default();
    let mut jobs = 0usize;
    let mut metrics_out: Option<String> = None;
    let mut progress = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .ok_or_else(|| format!("flag {flag} expects a value"))
        };
        let result: Result<(), String> = (|| {
            match flag.as_str() {
                "--samples" => {
                    config.samples_per_bucket =
                        value()?.parse().map_err(|e| format!("--samples: {e}"))?
                }
                "--from" => config.from = value()?.parse().map_err(|e| format!("--from: {e}"))?,
                "--to" => config.to = value()?.parse().map_err(|e| format!("--to: {e}"))?,
                "--seed" => config.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
                "--jobs" => jobs = value()?.parse().map_err(|e| format!("--jobs: {e}"))?,
                "--metrics-out" => metrics_out = Some(value()?),
                "--progress" => progress = true,
                "--help" | "-h" => {
                    println!(
                        "usage: schedulability [--samples N] [--from U] [--to U] [--seed S] \
                         [--jobs N] [--metrics-out FILE] [--progress]"
                    );
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag '{other}' (try --help)")),
            }
            Ok(())
        })();
        if let Err(e) = result {
            reporter.line(&format!("error: {e}"));
            return ExitCode::FAILURE;
        }
    }
    let watch = Stopwatch::start();
    let rows = schedulability_experiment_observed(&config, jobs, progress.then_some(&reporter));
    let analyze_ms = watch.elapsed_ms();
    let samples: u64 = rows.iter().map(|r| u64::from(r.samples)).sum();
    reporter.line(&format!(
        "{} buckets, {} samples in {:.1} ms",
        rows.len(),
        samples,
        analyze_ms
    ));
    print!("{}", render(&rows));
    if let Some(path) = &metrics_out {
        // No simulation runs here, so the engine-event snapshot is empty;
        // the document still records the analysis wall time and scale.
        let doc = mkss_obs::metrics_doc(
            "schedulability",
            MetricsSnapshot::empty(),
            &[
                ("buckets", rows.len().to_string()),
                ("samples", samples.to_string()),
                ("jobs", par::effective_jobs(jobs).to_string()),
            ],
            &[("analyze_ms", analyze_ms)],
        );
        if let Err(e) = std::fs::write(path, doc.to_json()) {
            reporter.line(&format!("error writing {path}: {e}"));
            return ExitCode::FAILURE;
        }
        reporter.line(&format!("wrote {path}"));
    }
    ExitCode::SUCCESS
}
