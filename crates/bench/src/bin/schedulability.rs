//! Schedulability-ratio experiment (extension beyond the paper's
//! Figure 6): fraction of random Section-V task sets provably
//! schedulable per (m,k)-utilization bucket, under the deeply-red RTA,
//! plus the exact hyperperiod sweep, plus Quan-&-Hu-style pattern
//! rotation.
//!
//! ```text
//! schedulability [--samples N] [--from U] [--to U] [--seed S]
//! ```

use std::process::ExitCode;

use mkss_bench::sched::{render, schedulability_experiment, SchedConfig};

fn main() -> ExitCode {
    let mut config = SchedConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .ok_or_else(|| format!("flag {flag} expects a value"))
        };
        let result: Result<(), String> = (|| {
            match flag.as_str() {
                "--samples" => {
                    config.samples_per_bucket =
                        value()?.parse().map_err(|e| format!("--samples: {e}"))?
                }
                "--from" => config.from = value()?.parse().map_err(|e| format!("--from: {e}"))?,
                "--to" => config.to = value()?.parse().map_err(|e| format!("--to: {e}"))?,
                "--seed" => config.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
                "--help" | "-h" => {
                    println!("usage: schedulability [--samples N] [--from U] [--to U] [--seed S]");
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag '{other}' (try --help)")),
            }
            Ok(())
        })();
        if let Err(e) = result {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    let rows = schedulability_experiment(&config);
    print!("{}", render(&rows));
    ExitCode::SUCCESS
}
