//! Schedulability-ratio experiment (extension beyond the paper's
//! Figure 6): fraction of random Section-V task sets provably
//! schedulable per (m,k)-utilization bucket, under the deeply-red RTA,
//! plus the exact hyperperiod sweep, plus Quan-&-Hu-style pattern
//! rotation.
//!
//! ```text
//! schedulability [--samples N] [--from U] [--to U] [--seed S] [--jobs N]
//! ```

use std::process::ExitCode;
use std::time::Instant;

use mkss_bench::sched::{render, schedulability_experiment_jobs, SchedConfig};

fn main() -> ExitCode {
    let mut config = SchedConfig::default();
    let mut jobs = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .ok_or_else(|| format!("flag {flag} expects a value"))
        };
        let result: Result<(), String> = (|| {
            match flag.as_str() {
                "--samples" => {
                    config.samples_per_bucket =
                        value()?.parse().map_err(|e| format!("--samples: {e}"))?
                }
                "--from" => config.from = value()?.parse().map_err(|e| format!("--from: {e}"))?,
                "--to" => config.to = value()?.parse().map_err(|e| format!("--to: {e}"))?,
                "--seed" => config.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
                "--jobs" => jobs = value()?.parse().map_err(|e| format!("--jobs: {e}"))?,
                "--help" | "-h" => {
                    println!(
                        "usage: schedulability [--samples N] [--from U] [--to U] [--seed S] \
                         [--jobs N]"
                    );
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag '{other}' (try --help)")),
            }
            Ok(())
        })();
        if let Err(e) = result {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    let start = Instant::now();
    let rows = schedulability_experiment_jobs(&config, jobs);
    let samples: u64 = rows.iter().map(|r| u64::from(r.samples)).sum();
    eprintln!(
        "{} buckets, {} samples in {:.1} ms",
        rows.len(),
        samples,
        start.elapsed().as_secs_f64() * 1e3
    );
    print!("{}", render(&rows));
    ExitCode::SUCCESS
}
