//! Regenerates the paper's Figure 6: normalized energy vs total
//! (m,k)-utilization for `MKSS_ST`, `MKSS_DP`, and `MKSS_selective`
//! under the three fault scenarios.
//!
//! ```text
//! fig6 [--scenario no-fault|permanent|combined|all]
//!      [--sets N] [--from U] [--to U] [--horizon-ms MS]
//!      [--seed S] [--policies st,dp,selective,...] [--jobs N]
//!      [--json FILE] [--metrics-out FILE] [--progress]
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use mkss_bench::experiment::{
    metrics_doc, run_experiment_observed, run_replicated_observed, trace_representative,
    ExperimentConfig, HarnessObs, RunStats, Scenario, StageTimes,
};
use mkss_bench::table;
use mkss_core::par;
use mkss_core::time::Time;
use mkss_obs::{Registry, Reporter};
use mkss_policies::PolicyKind;

struct Args {
    scenarios: Vec<Scenario>,
    config_template: ExperimentConfig,
    json: Option<String>,
    html: Option<String>,
    metrics_out: Option<String>,
    trace_out: Option<String>,
    progress: bool,
    replications: u32,
    jobs: usize,
}

/// Stderr report of one run's counters, including warnings that would
/// otherwise hide inside the serialized stats. All lines go through the
/// single-writer reporter so they cannot interleave with worker output.
fn report_stats(reporter: &Reporter, stats: &RunStats) {
    reporter.line(&format!("  {}", stats.summary()));
    for bucket in &stats.buckets {
        if let Some(error) = &bucket.first_build_error {
            reporter.line(&format!(
                "  warning: bucket {:.2} dropped {} set(s) on build errors (first: {error})",
                bucket.midpoint, bucket.skipped_build_errors
            ));
        }
    }
    if stats.empty_buckets > 0 {
        reporter.line(&format!(
            "  warning: {} of {} buckets produced no data and were omitted",
            stats.empty_buckets, stats.buckets_planned
        ));
    }
}

fn parse_args() -> Result<Args, String> {
    let mut scenarios = Scenario::ALL.to_vec();
    let mut template = ExperimentConfig::fig6(Scenario::NoFault);
    let mut json = None;
    let mut html = None;
    let mut metrics_out = None;
    let mut trace_out = None;
    let mut progress = false;
    let mut replications = 1u32;
    let mut jobs = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .ok_or_else(|| format!("flag {flag} expects a value"))
        };
        match flag.as_str() {
            "--scenario" => {
                let v = value()?;
                scenarios = if v == "all" {
                    Scenario::ALL.to_vec()
                } else {
                    vec![v.parse().map_err(|e| format!("{e}"))?]
                };
            }
            "--sets" => {
                template.plan.sets_per_bucket =
                    value()?.parse().map_err(|e| format!("--sets: {e}"))?
            }
            "--from" => {
                template.plan.from = value()?.parse().map_err(|e| format!("--from: {e}"))?
            }
            "--to" => template.plan.to = value()?.parse().map_err(|e| format!("--to: {e}"))?,
            "--horizon-ms" => {
                template.horizon =
                    Time::from_ms(value()?.parse().map_err(|e| format!("--horizon-ms: {e}"))?)
            }
            "--seed" => template.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--policies" => {
                template.policies = value()?
                    .split(',')
                    .map(|s| s.trim().parse::<PolicyKind>().map_err(|e| e.to_string()))
                    .collect::<Result<_, _>>()?;
            }
            "--fault-window" => {
                let v = value()?;
                let (lo, hi) = v
                    .split_once("..")
                    .ok_or_else(|| "--fault-window expects LO..HI fractions".to_string())?;
                template.permanent_fault_window = (
                    lo.parse().map_err(|e| format!("--fault-window: {e}"))?,
                    hi.parse().map_err(|e| format!("--fault-window: {e}"))?,
                );
            }
            "--json" => json = Some(value()?),
            "--html" => html = Some(value()?),
            "--metrics-out" => metrics_out = Some(value()?),
            "--trace-out" => trace_out = Some(value()?),
            "--progress" => progress = true,
            "--replications" => {
                replications = value()?
                    .parse()
                    .map_err(|e| format!("--replications: {e}"))?;
                if replications == 0 {
                    return Err("--replications must be at least 1".into());
                }
            }
            "--jobs" => jobs = value()?.parse().map_err(|e| format!("--jobs: {e}"))?,
            "--help" | "-h" => {
                println!(
                    "usage: fig6 [--scenario no-fault|permanent|combined|all] [--sets N] \
                     [--from U] [--to U] [--horizon-ms MS] [--seed S] \
                     [--policies st,dp,selective,...] [--fault-window LO..HI] \
                     [--replications N] [--jobs N] [--json FILE] [--html FILE] \
                     [--metrics-out FILE] [--trace-out FILE] [--progress]\n\
                     --jobs N bounds the worker threads (0 = all cores, the default);\n\
                     results are identical for every value.\n\
                     --metrics-out FILE records engine event counters (backups\n\
                     canceled/postponed, faults, …) and per-stage wall times as JSON.\n\
                     --trace-out FILE flight-records one representative run per\n\
                     scenario as Chrome Trace Event JSON (open in Perfetto).\n\
                     --progress streams live per-scenario completion lines on stderr."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    Ok(Args {
        scenarios,
        config_template: template,
        json,
        html,
        metrics_out,
        trace_out,
        progress,
        replications,
        jobs,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let reporter = Arc::new(Reporter::stderr());
    let registry = args
        .metrics_out
        .as_ref()
        .map(|_| Arc::new(Registry::new(par::effective_jobs(args.jobs))));
    let mut stage_totals = StageTimes::default();
    let mut all_results = Vec::new();
    for scenario in &args.scenarios {
        let mut config = args.config_template.clone();
        config.scenario = *scenario;
        reporter.line(&format!(
            "running {} ({} buckets x {} sets, horizon {})…",
            scenario.panel(),
            ((config.plan.to - config.plan.from) / config.plan.width).round() as usize,
            config.plan.sets_per_bucket,
            config.horizon,
        ));
        let obs = HarnessObs {
            registry: registry.clone(),
            progress: args.progress.then(|| Arc::clone(&reporter)),
            label: format!("fig6 {}", scenario.id()),
        };
        if args.replications > 1 {
            let replicated = run_replicated_observed(&config, args.replications, args.jobs, &obs);
            report_stats(&reporter, &replicated.stats);
            println!("{}", table::render_replicated(&replicated));
        }
        let result = run_experiment_observed(&config, args.jobs, &obs);
        report_stats(&reporter, &result.stats);
        stage_totals.absorb(&result.stats.stages);
        println!("{}", table::render(&result));
        all_results.push(result);
    }
    if let Some(path) = args.html {
        if let Err(e) = std::fs::write(&path, mkss_bench::report_html::render_report(&all_results))
        {
            reporter.line(&format!("error writing {path}: {e}"));
            return ExitCode::FAILURE;
        }
        reporter.line(&format!("wrote {path}"));
    }
    if let Some(path) = args.json {
        match serde_json::to_string_pretty(&all_results) {
            Ok(body) => {
                if let Err(e) = std::fs::write(&path, body) {
                    reporter.line(&format!("error writing {path}: {e}"));
                    return ExitCode::FAILURE;
                }
                reporter.line(&format!("wrote {path}"));
            }
            Err(e) => {
                reporter.line(&format!("error serializing results: {e}"));
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &args.trace_out {
        // One representative run per scenario, each on its own track; the
        // capture is a pure function of the config, so the file is
        // byte-identical across invocations and `--jobs` values.
        let buffers: Vec<_> = args
            .scenarios
            .iter()
            .map(|scenario| {
                let mut config = args.config_template.clone();
                config.scenario = *scenario;
                (scenario.id(), trace_representative(&config))
            })
            .collect();
        let runs: Vec<(&str, &mkss_obs::TraceBuffer)> =
            buffers.iter().map(|(id, b)| (*id, b)).collect();
        if let Err(e) = std::fs::write(path, mkss_obs::chrome_trace(&runs)) {
            reporter.line(&format!("error writing {path}: {e}"));
            return ExitCode::FAILURE;
        }
        reporter.line(&format!("wrote {path}"));
    }
    if let (Some(path), Some(registry)) = (&args.metrics_out, &registry) {
        let scenario_ids: Vec<&str> = args.scenarios.iter().map(|s| s.id()).collect();
        let doc = metrics_doc(
            "fig6",
            registry,
            &stage_totals,
            &[
                ("scenarios", scenario_ids.join(",")),
                ("jobs", par::effective_jobs(args.jobs).to_string()),
            ],
        );
        if let Err(e) = std::fs::write(path, doc.to_json()) {
            reporter.line(&format!("error writing {path}: {e}"));
            return ExitCode::FAILURE;
        }
        reporter.line(&format!("wrote {path}"));
    }
    ExitCode::SUCCESS
}
