//! Engine-throughput snapshot: times the fresh (`simulate`) and
//! reused-workspace (`simulate_in`) entry paths on Section-V-sized task
//! sets and writes the `BENCH_sim.json` tracked in the repo root.
//!
//! ```text
//! sim_bench [--sets N] [--reps N] [--horizon-ms MS] [--seed S]
//!           [--out PATH]
//! ```

use std::process::ExitCode;

use mkss_bench::perf::{measure, SimBenchConfig};
use mkss_obs::Reporter;

fn main() -> ExitCode {
    let reporter = Reporter::stderr();
    let mut config = SimBenchConfig::default();
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .ok_or_else(|| format!("flag {flag} expects a value"))
        };
        let result: Result<(), String> = (|| {
            match flag.as_str() {
                "--sets" => {
                    config.sets_per_util = value()?.parse().map_err(|e| format!("--sets: {e}"))?
                }
                "--reps" => config.reps = value()?.parse().map_err(|e| format!("--reps: {e}"))?,
                "--horizon-ms" => {
                    config.horizon_ms =
                        value()?.parse().map_err(|e| format!("--horizon-ms: {e}"))?
                }
                "--seed" => config.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
                "--out" => out = Some(value()?),
                "--help" | "-h" => {
                    println!(
                        "usage: sim_bench [--sets N] [--reps N] [--horizon-ms MS] [--seed S] \
                         [--out PATH]"
                    );
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag '{other}' (try --help)")),
            }
            Ok(())
        })();
        if let Err(e) = result {
            reporter.line(&format!("error: {e}"));
            return ExitCode::FAILURE;
        }
    }

    let report = measure(&config);
    reporter.line(&format!(
        "{} simulations, {} released jobs per rep",
        report.simulations, report.released_jobs
    ));
    reporter.line(&format!(
        "fresh: {:8.1} ms  {:8.1} sims/s  {:10.0} jobs/s",
        report.fresh.wall_ms, report.fresh.sims_per_second, report.fresh.jobs_per_second
    ));
    reporter.line(&format!(
        "reuse: {:8.1} ms  {:8.1} sims/s  {:10.0} jobs/s  ({:.2}x)",
        report.reuse.wall_ms,
        report.reuse.sims_per_second,
        report.reuse.jobs_per_second,
        report.reuse_speedup()
    ));
    let json = match serde_json::to_string_pretty(&report) {
        Ok(json) => json,
        Err(e) => {
            reporter.line(&format!("error: serializing report: {e}"));
            return ExitCode::FAILURE;
        }
    };
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, json + "\n") {
                reporter.line(&format!("error: writing {path}: {e}"));
                return ExitCode::FAILURE;
            }
            reporter.line(&format!("wrote {path}"));
        }
        None => println!("{json}"),
    }
    ExitCode::SUCCESS
}
