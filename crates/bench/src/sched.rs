//! Schedulability-ratio experiment: what fraction of random task sets
//! can be *proven* schedulable per (m,k)-utilization bucket, under a
//! ladder of increasingly powerful tests:
//!
//! 1. the busy-window RTA on the deeply-red pattern (the paper's
//!    premise);
//! 2. \+ the exact hyperperiod sweep (no stronger for deeply-red, where
//!    the RTA is tight, but it can *prove* sets whose hyperperiod is
//!    enumerable when the RTA is inconclusive for other patterns);
//! 3. \+ pattern rotation (Quan & Hu \[13\]) — de-clustering the
//!    synchronous release rescues sets the deeply-red alignment kills.
//!
//! This experiment extends the paper (whose 0.8–0.9 bucket came out
//! empty: nothing deeply-red-schedulable was found in 5000 draws).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mkss_analysis::exact::exact_sweep;
use mkss_analysis::rotation::{find_rotation, RotationConfig};
use mkss_analysis::rta::is_schedulable_r_pattern;
use mkss_core::mk::Pattern;
use mkss_core::par;
use mkss_obs::Reporter;
use mkss_workload::{Generator, WorkloadConfig};
use serde::{Deserialize, Serialize};

/// Configuration of the schedulability experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchedConfig {
    /// Workload generator parameters.
    pub workload: WorkloadConfig,
    /// Inclusive lower bound of the first bucket.
    pub from: f64,
    /// Exclusive upper bound of the last bucket.
    pub to: f64,
    /// Bucket width.
    pub width: f64,
    /// Task sets sampled per bucket.
    pub samples_per_bucket: u32,
    /// Rotation search configuration.
    pub rotation: RotationConfig,
    /// Master seed.
    pub seed: u64,
}

impl Default for SchedConfig {
    /// Rotation needs an enumerable pattern hyperperiod, so the default
    /// workload draws harmonic (power-of-two) periods and window lengths
    /// — `LCM(kᵢPᵢ)` stays within a few hundred ms.
    fn default() -> Self {
        SchedConfig {
            workload: WorkloadConfig {
                period_ms: (4, 32),
                k_range: (2, 8),
                pow2_harmonics: true,
                ..WorkloadConfig::paper()
            },
            from: 0.5,
            to: 1.0,
            width: 0.1,
            samples_per_bucket: 100,
            rotation: RotationConfig::default(),
            seed: 0x005c_4ed0,
        }
    }
}

/// One bucket's schedulability counts.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SchedRow {
    /// Bucket midpoint.
    pub midpoint: f64,
    /// Sets sampled.
    pub samples: u32,
    /// Provably schedulable by the deeply-red RTA.
    pub rta: u32,
    /// Provable by RTA *or* the exact deeply-red sweep.
    pub with_exact: u32,
    /// Provable by any of the above *or* a rotation assignment.
    pub with_rotation: u32,
}

/// Runs the experiment with the default worker count; see
/// [`schedulability_experiment_jobs`].
pub fn schedulability_experiment(config: &SchedConfig) -> Vec<SchedRow> {
    schedulability_experiment_jobs(config, 0)
}

/// Runs the experiment; one row per bucket, fanned across up to `jobs`
/// worker threads (`0` = available parallelism). Each bucket samples
/// from its own RNG stream (seeded from the master seed and the bucket
/// index), so the rows are identical for every `jobs` value.
pub fn schedulability_experiment_jobs(config: &SchedConfig, jobs: usize) -> Vec<SchedRow> {
    schedulability_experiment_observed(config, jobs, None)
}

/// Like [`schedulability_experiment_jobs`], but streams a per-bucket
/// completion line through `progress` (when given) as workers finish.
/// The progress lines never change the computed rows.
pub fn schedulability_experiment_observed(
    config: &SchedConfig,
    jobs: usize,
    progress: Option<&Arc<Reporter>>,
) -> Vec<SchedRow> {
    let mut bounds: Vec<(u64, f64, f64)> = Vec::new();
    let mut lo = config.from;
    while lo + config.width <= config.to + 1e-9 {
        let hi = lo + config.width;
        bounds.push((bounds.len() as u64, lo, hi));
        lo = hi;
    }
    let total = bounds.len() as u64;
    let completed = AtomicU64::new(0);
    par::map_indexed(jobs, &bounds, |_, &(bucket_index, lo, hi)| {
        let row = analyze_bucket(config, bucket_index, lo, hi);
        if let Some(reporter) = progress {
            // mkss-lint: ordering — progress tally feeding log lines only; never read for results
            let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
            reporter.line(&format!("sched: {done}/{total} buckets analyzed"));
        }
        row
    })
}

/// Samples and classifies one utilization bucket.
fn analyze_bucket(config: &SchedConfig, bucket_index: u64, lo: f64, hi: f64) -> SchedRow {
    let mut generator = Generator::new(
        config.workload,
        config.seed.wrapping_add(bucket_index * 0x9e37_79b9),
    );
    let mut row = SchedRow {
        midpoint: (lo + hi) / 2.0,
        samples: 0,
        rta: 0,
        with_exact: 0,
        with_rotation: 0,
    };
    while row.samples < config.samples_per_bucket {
        let Some(ts) = generator.raw_set_in(lo, hi) else {
            continue;
        };
        row.samples += 1;
        let rta_ok = is_schedulable_r_pattern(&ts);
        let exact_ok = rta_ok
            || exact_sweep(&ts, Pattern::DeeplyRed, config.rotation.max_hyperperiod)
                .schedulable_forever();
        let rot_ok = exact_ok
            || find_rotation(&ts, config.rotation)
                .map(|a| a.schedulable())
                .unwrap_or(false);
        row.rta += u32::from(rta_ok);
        row.with_exact += u32::from(exact_ok);
        row.with_rotation += u32::from(rot_ok);
    }
    row
}

/// Renders the rows as an aligned text table.
pub fn render(rows: &[SchedRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "schedulability ratio vs (m,k)-utilization (deeply-red RTA / +exact sweep / +rotation)"
    );
    let _ = writeln!(
        out,
        "{:>10} {:>8} {:>10} {:>10} {:>10}",
        "util", "samples", "rta", "+exact", "+rotation"
    );
    for r in rows {
        let pct = |n: u32| f64::from(n) / f64::from(r.samples.max(1));
        let _ = writeln!(
            out,
            "{:>10.2} {:>8} {:>10.3} {:>10.3} {:>10.3}",
            r.midpoint,
            r.samples,
            pct(r.rta),
            pct(r.with_exact),
            pct(r.with_rotation)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_monotone() {
        let config = SchedConfig {
            samples_per_bucket: 12,
            from: 0.5,
            to: 0.8,
            ..SchedConfig::default()
        };
        let rows = schedulability_experiment(&config);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert_eq!(r.samples, 12);
            assert!(r.rta <= r.with_exact);
            assert!(r.with_exact <= r.with_rotation);
        }
        let text = render(&rows);
        assert!(text.contains("+rotation"));
    }

    #[test]
    fn parallel_rows_match_serial() {
        let config = SchedConfig {
            samples_per_bucket: 8,
            from: 0.5,
            to: 0.8,
            ..SchedConfig::default()
        };
        let serial = schedulability_experiment_jobs(&config, 1);
        for jobs in [0, 3] {
            let parallel = schedulability_experiment_jobs(&config, jobs);
            assert_eq!(render(&parallel), render(&serial), "jobs={jobs}");
        }
    }

    #[test]
    fn rotation_rescues_some_high_utilization_sets() {
        let config = SchedConfig {
            samples_per_bucket: 40,
            from: 0.7,
            to: 0.9,
            ..SchedConfig::default()
        };
        let rows = schedulability_experiment(&config);
        let rescued: u32 = rows.iter().map(|r| r.with_rotation - r.rta).sum();
        assert!(rescued > 0, "rotation rescued nothing: {rows:?}");
    }
}
