//! Plain-text rendering of experiment results — the "same rows the paper
//! plots" for Figure 6 and the ablations.

use std::fmt::Write as _;

use mkss_policies::PolicyKind;

use crate::experiment::{ExperimentResult, ReplicatedResult};

/// Renders the per-bucket normalized energies as an aligned table with
/// one row per utilization bucket and one column per policy, mirroring
/// the series of the paper's Figure 6.
pub fn render(result: &ExperimentResult) -> String {
    let mut out = String::new();
    let policies: Vec<PolicyKind> = result
        .buckets
        .first()
        .map(|b| b.normalized.keys().copied().collect())
        .unwrap_or_default();

    let _ = writeln!(
        out,
        "{} — normalized energy vs (m,k)-utilization ({} scenario)",
        result.config.scenario.panel(),
        result.config.scenario.id(),
    );
    let _ = write!(out, "{:>10} {:>6} {:>6}", "util", "sets", "gen");
    for p in &policies {
        let _ = write!(out, " {:>18}", p.id());
    }
    let _ = writeln!(out);
    for bucket in &result.buckets {
        let _ = write!(
            out,
            "{:>10.2} {:>6} {:>6}",
            bucket.midpoint, bucket.sets, bucket.generated
        );
        for p in &policies {
            match bucket.normalized.get(p) {
                Some(v) => {
                    let _ = write!(out, " {v:>18.4}");
                }
                None => {
                    let _ = write!(out, " {:>18}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }

    // Headline numbers in the paper's phrasing.
    if policies.contains(&PolicyKind::Selective) && policies.contains(&PolicyKind::DualPriority) {
        match result.max_reduction_pct(PolicyKind::Selective, PolicyKind::DualPriority) {
            Some(pct) => {
                let _ = writeln!(out, "max energy reduction of selective over dp: {pct:.1}%");
            }
            None => {
                let _ = writeln!(out, "max energy reduction of selective over dp: n/a");
            }
        }
    }
    let _ = writeln!(
        out,
        "(m,k)-violations across all runs: {}",
        result.total_violations()
    );
    out
}

/// Renders a replicated experiment as mean ± std per bucket and policy.
pub fn render_replicated(result: &ReplicatedResult) -> String {
    let mut out = String::new();
    let policies: Vec<PolicyKind> = result
        .spreads
        .iter()
        .find(|m| !m.is_empty())
        .map(|m| m.keys().copied().collect())
        .unwrap_or_default();
    let _ = writeln!(
        out,
        "{} — normalized energy, mean ± std over {} replications",
        result.config.scenario.panel(),
        result.replications,
    );
    let _ = write!(out, "{:>10}", "util");
    for p in &policies {
        let _ = write!(out, " {:>22}", p.id());
    }
    let _ = writeln!(out);
    for (i, midpoint) in result.midpoints.iter().enumerate() {
        let _ = write!(out, "{midpoint:>10.2}");
        for p in &policies {
            match result.spreads[i].get(p) {
                Some(s) => {
                    let cell = format!("{:.4} ± {:.4}", s.mean, s.std);
                    let _ = write!(out, " {cell:>22}");
                }
                None => {
                    let _ = write!(out, " {:>22}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "(m,k)-violations across all replications: {}",
        result.total_violations
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_experiment, ExperimentConfig, Scenario};
    use mkss_core::time::Time;

    #[test]
    fn renders_replicated_spreads() {
        use crate::experiment::run_replicated;
        let mut cfg = ExperimentConfig::fig6(Scenario::NoFault);
        cfg.plan.sets_per_bucket = 2;
        cfg.plan.from = 0.3;
        cfg.plan.to = 0.4;
        cfg.horizon = Time::from_ms(200);
        let result = run_replicated(&cfg, 2);
        let text = render_replicated(&result);
        assert!(text.contains("mean ± std over 2 replications"));
        assert!(text.contains("±"));
        assert!(text.contains("violations across all replications: 0"));
    }

    #[test]
    fn renders_rows_and_headline() {
        let mut cfg = ExperimentConfig::fig6(Scenario::NoFault);
        cfg.plan.sets_per_bucket = 2;
        cfg.plan.from = 0.3;
        cfg.plan.to = 0.5;
        cfg.horizon = Time::from_ms(300);
        let result = run_experiment(&cfg);
        let text = render(&result);
        assert!(text.contains("Fig. 6(a)"));
        assert!(text.contains("selective"));
        assert!(text.contains("max energy reduction"));
        assert!(text.contains("(m,k)-violations across all runs: 0"));
        // Two buckets → header + 2 rows + 2 footer lines.
        assert!(text.lines().count() >= 5);
    }
}
