//! Self-contained HTML report of experiment results: one SVG line chart
//! per scenario (normalized energy vs (m,k)-utilization, one series per
//! policy) plus the full data table.
//!
//! Chart design follows the repository's data-viz conventions: a
//! CVD-validated categorical palette applied in fixed slot order keyed to
//! the policy's identity (never its rank in the current chart), 2px
//! lines with 8px markers, a recessive grid, one y-axis, direct labels at
//! the line ends *and* a legend, a hover tooltip, a data table under
//! every chart (two light-mode slots sit below 3:1 contrast, so the
//! relief rule applies), and a selected dark mode via
//! `prefers-color-scheme`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use mkss_policies::PolicyKind;

use crate::experiment::ExperimentResult;

/// Categorical palette (light, dark) per slot — validated with the
/// six-checks palette validator against both surfaces.
const SLOTS: [(&str, &str); 8] = [
    ("#2a78d6", "#3987e5"), // blue
    ("#1baf7a", "#199e70"), // aqua
    ("#eda100", "#c98500"), // yellow
    ("#008300", "#008300"), // green
    ("#4a3aa7", "#9085e9"), // violet
    ("#e34948", "#e66767"), // red
    ("#e87ba4", "#d55181"), // magenta
    ("#eb6834", "#d95926"), // orange
];

const WIDTH: f64 = 680.0;
const HEIGHT: f64 = 380.0;
const MARGIN_LEFT: f64 = 56.0;
const MARGIN_RIGHT: f64 = 120.0; // room for direct labels
const MARGIN_TOP: f64 = 24.0;
const MARGIN_BOTTOM: f64 = 44.0;

/// Stable slot for a policy: its position in [`PolicyKind::ALL`], so the
/// same policy is always the same hue across charts and filters.
fn slot_of(kind: PolicyKind) -> usize {
    PolicyKind::ALL.iter().position(|&k| k == kind).unwrap_or(0) % SLOTS.len()
}

struct Series {
    kind: PolicyKind,
    points: Vec<(f64, f64)>, // (utilization, normalized energy)
}

fn series_of(result: &ExperimentResult) -> Vec<Series> {
    let mut map: BTreeMap<PolicyKind, Vec<(f64, f64)>> = BTreeMap::new();
    for bucket in result.buckets.iter().filter(|b| b.sets > 0) {
        for (&kind, &value) in &bucket.normalized {
            map.entry(kind).or_default().push((bucket.midpoint, value));
        }
    }
    map.into_iter()
        .map(|(kind, points)| Series { kind, points })
        .collect()
}

fn x_pos(u: f64, lo: f64, hi: f64) -> f64 {
    let span = (hi - lo).max(1e-9);
    MARGIN_LEFT + (u - lo) / span * (WIDTH - MARGIN_LEFT - MARGIN_RIGHT)
}

fn y_pos(v: f64, max: f64) -> f64 {
    let h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM;
    MARGIN_TOP + (1.0 - v / max) * h
}

fn chart_svg(result: &ExperimentResult, chart_id: usize) -> String {
    let series = series_of(result);
    let (lo, hi) = series
        .iter()
        .flat_map(|s| s.points.iter())
        .fold((f64::MAX, f64::MIN), |(lo, hi), &(u, _)| {
            (lo.min(u), hi.max(u))
        });
    let y_max = 1.05
        * series
            .iter()
            .flat_map(|s| s.points.iter())
            .fold(1.0f64, |m, &(_, v)| m.max(v));

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg class="chart" role="img" aria-label="{} normalized energy vs utilization" viewBox="0 0 {WIDTH} {HEIGHT}" data-chart="{chart_id}">"#,
        result.config.scenario.panel()
    );
    // Recessive grid + y axis ticks.
    for i in 0..=4 {
        let v = y_max * f64::from(i) / 4.0;
        let y = y_pos(v, y_max);
        let _ = write!(
            svg,
            r#"<line class="grid" x1="{MARGIN_LEFT}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}"/>"#,
            WIDTH - MARGIN_RIGHT
        );
        let _ = write!(
            svg,
            r#"<text class="tick" x="{:.1}" y="{:.1}" text-anchor="end">{v:.2}</text>"#,
            MARGIN_LEFT - 8.0,
            y + 4.0
        );
    }
    // X ticks at bucket midpoints.
    let mut midpoints: Vec<f64> = result
        .buckets
        .iter()
        .filter(|b| b.sets > 0)
        .map(|b| b.midpoint)
        .collect();
    midpoints.dedup();
    for &u in &midpoints {
        let x = x_pos(u, lo, hi);
        let _ = write!(
            svg,
            r#"<text class="tick" x="{x:.1}" y="{:.1}" text-anchor="middle">{u:.2}</text>"#,
            HEIGHT - MARGIN_BOTTOM + 18.0
        );
    }
    // Axis titles (text tokens, never series color).
    let _ = write!(
        svg,
        r#"<text class="axis-title" x="{:.1}" y="{:.1}" text-anchor="middle">(m,k)-utilization</text>"#,
        (MARGIN_LEFT + WIDTH - MARGIN_RIGHT) / 2.0,
        HEIGHT - 8.0
    );
    let _ = write!(
        svg,
        r#"<text class="axis-title" x="14" y="{:.1}" text-anchor="middle" transform="rotate(-90 14 {:.1})">energy / MKSS_ST</text>"#,
        HEIGHT / 2.0,
        HEIGHT / 2.0
    );

    // Series: 2px lines, 8px markers, direct label at the last point.
    for s in &series {
        let slot = slot_of(s.kind);
        let path: String = s
            .points
            .iter()
            .enumerate()
            .map(|(i, &(u, v))| {
                format!(
                    "{}{:.1},{:.1}",
                    if i == 0 { "M" } else { "L" },
                    x_pos(u, lo, hi),
                    y_pos(v, y_max)
                )
            })
            .collect();
        let _ = write!(
            svg,
            r#"<path class="line s{slot}" d="{path}" fill="none"/>"#
        );
        for &(u, v) in &s.points {
            let _ = write!(
                svg,
                r#"<circle class="dot s{slot}" cx="{:.1}" cy="{:.1}" r="4" data-u="{u:.2}" data-v="{v:.4}" data-name="{}"><title>{} at {u:.2}: {v:.4}</title></circle>"#,
                x_pos(u, lo, hi),
                y_pos(v, y_max),
                s.kind.id(),
                s.kind.id(),
            );
        }
    }
    // Direct labels at the line ends, de-collided: sort by the final
    // point's y and enforce a 14px minimum separation.
    let mut labels: Vec<(usize, &str, f64, f64)> = series
        .iter()
        .filter_map(|s| {
            s.points.last().map(|&(u, v)| {
                (
                    slot_of(s.kind),
                    s.kind.id(),
                    x_pos(u, lo, hi) + 10.0,
                    y_pos(v, y_max) + 4.0,
                )
            })
        })
        .collect();
    labels.sort_by(|a, b| a.3.total_cmp(&b.3));
    for i in 1..labels.len() {
        if labels[i].3 - labels[i - 1].3 < 14.0 {
            labels[i].3 = labels[i - 1].3 + 14.0;
        }
    }
    for (slot, name, x, y) in labels {
        let _ = write!(
            svg,
            r#"<text class="direct-label s{slot}-ink" x="{x:.1}" y="{y:.1}">{name}</text>"#
        );
    }
    svg.push_str("</svg>");
    svg
}

fn data_table(result: &ExperimentResult) -> String {
    let series = series_of(result);
    let mut html = String::from("<table><thead><tr><th>(m,k)-util</th><th>sets</th>");
    for s in &series {
        let _ = write!(html, "<th>{}</th>", s.kind.id());
    }
    html.push_str("</tr></thead><tbody>");
    for bucket in &result.buckets {
        let _ = write!(
            html,
            "<tr><td>{:.2}</td><td>{}</td>",
            bucket.midpoint, bucket.sets
        );
        for s in &series {
            match bucket.normalized.get(&s.kind) {
                Some(v) if bucket.sets > 0 => {
                    let _ = write!(html, "<td>{v:.4}</td>");
                }
                _ => html.push_str("<td>–</td>"),
            }
        }
        html.push_str("</tr>");
    }
    html.push_str("</tbody></table>");
    html
}

fn legend(result: &ExperimentResult) -> String {
    let mut html = String::from(r#"<div class="legend">"#);
    for s in &series_of(result) {
        let slot = slot_of(s.kind);
        let _ = write!(
            html,
            r#"<span class="legend-item"><span class="swatch s{slot}-bg"></span>{}</span>"#,
            s.kind.id()
        );
    }
    html.push_str("</div>");
    html
}

/// Renders a complete standalone HTML report for the given experiment
/// results (typically the three Figure-6 scenarios).
///
/// # Examples
///
/// ```
/// use mkss_bench::experiment::{run_experiment, ExperimentConfig, Scenario};
/// use mkss_bench::report_html::render_report;
/// use mkss_core::time::Time;
///
/// let mut cfg = ExperimentConfig::fig6(Scenario::NoFault);
/// cfg.plan.sets_per_bucket = 1;
/// cfg.plan.from = 0.3;
/// cfg.plan.to = 0.5;
/// cfg.horizon = Time::from_ms(200);
/// let html = render_report(&[run_experiment(&cfg)]);
/// assert!(html.contains("<svg"));
/// assert!(html.contains("<table>"));
/// ```
pub fn render_report(results: &[ExperimentResult]) -> String {
    let mut style = String::from(
        r#"
  .viz-root { --surface-1:#fcfcfb; --text-primary:#0b0b0b; --text-secondary:#52514e;
              --grid:#e7e6e2; font:14px/1.45 system-ui,sans-serif;
              background:var(--surface-1); color:var(--text-primary);
              max-width:760px; margin:0 auto; padding:24px; }
"#,
    );
    for (i, &(light, _)) in SLOTS.iter().enumerate() {
        let _ = writeln!(style, "  .viz-root .s{i} {{ stroke: {light}; }}");
        let _ = writeln!(style, "  .viz-root .s{i}-bg {{ background: {light}; }}");
        let _ = writeln!(style, "  .viz-root .s{i}-ink {{ fill: {light}; }}");
    }
    style.push_str(
        r#"  @media (prefers-color-scheme: dark) {
    .viz-root { --surface-1:#1a1a19; --text-primary:#ffffff; --text-secondary:#c3c2b7;
                --grid:#34332f; }
"#,
    );
    for (i, &(_, dark)) in SLOTS.iter().enumerate() {
        let _ = writeln!(style, "    .viz-root .s{i} {{ stroke: {dark}; }}");
        let _ = writeln!(style, "    .viz-root .s{i}-bg {{ background: {dark}; }}");
        let _ = writeln!(style, "    .viz-root .s{i}-ink {{ fill: {dark}; }}");
    }
    style.push_str(
        r#"  }
  .viz-root h1 { font-size: 20px; }
  .viz-root h2 { font-size: 16px; margin: 28px 0 4px; }
  .viz-root .subtitle { color: var(--text-secondary); margin: 0 0 12px; }
  .viz-root svg.chart { width: 100%; height: auto; display: block; }
  .viz-root .grid { stroke: var(--grid); stroke-width: 1; }
  .viz-root .tick, .viz-root .axis-title { fill: var(--text-secondary); font-size: 11px; }
  .viz-root .line { stroke-width: 2; }
  .viz-root .dot { fill: var(--surface-1); stroke-width: 2; }
  .viz-root .direct-label { font-size: 12px; }
  .viz-root .legend { display: flex; gap: 16px; margin: 8px 0; color: var(--text-secondary); }
  .viz-root .legend-item { display: inline-flex; align-items: center; gap: 6px; }
  .viz-root .swatch { width: 10px; height: 10px; border-radius: 2px; display: inline-block; }
  .viz-root table { border-collapse: collapse; margin: 12px 0 4px; font-size: 12px; }
  .viz-root th, .viz-root td { padding: 3px 10px; text-align: right;
                               border-bottom: 1px solid var(--grid); }
  .viz-root th:first-child, .viz-root td:first-child { text-align: left; }
  .viz-root .tooltip { position: fixed; pointer-events: none; background: var(--text-primary);
                       color: var(--surface-1); padding: 4px 8px; border-radius: 4px;
                       font-size: 12px; display: none; z-index: 10; }
"#,
    );

    let mut body = String::new();
    body.push_str("<h1>mkss — Figure 6 reproduction report</h1>");
    body.push_str(
        r#"<p class="subtitle">Normalized energy (MKSS_ST = 1.0) vs total (m,k)-utilization;
           deterministic seeded runs — see EXPERIMENTS.md for the analysis.</p>"#,
    );
    for (i, result) in results.iter().enumerate() {
        let _ = write!(
            body,
            "<h2>{} — {} scenario</h2>",
            result.config.scenario.panel(),
            result.config.scenario.id()
        );
        body.push_str(&legend(result));
        body.push_str(&chart_svg(result, i));
        body.push_str(&data_table(result));
        let _ = write!(
            body,
            r#"<p class="subtitle">run: {}</p>"#,
            result.stats.summary()
        );
    }
    body.push_str(r#"<div class="tooltip" id="tooltip"></div>"#);

    // Hover layer: nearest-marker tooltip.
    let script = r#"
  const tip = document.getElementById('tooltip');
  document.querySelectorAll('svg.chart').forEach(svg => {
    svg.addEventListener('mousemove', e => {
      let best = null, bestDist = 24 * 24;
      svg.querySelectorAll('circle.dot').forEach(dot => {
        const r = dot.getBoundingClientRect();
        const dx = e.clientX - (r.left + r.width / 2);
        const dy = e.clientY - (r.top + r.height / 2);
        const d = dx * dx + dy * dy;
        if (d < bestDist) { bestDist = d; best = dot; }
      });
      if (best) {
        tip.textContent = `${best.dataset.name} @ util ${best.dataset.u}: ${best.dataset.v}`;
        tip.style.left = (e.clientX + 12) + 'px';
        tip.style.top = (e.clientY - 10) + 'px';
        tip.style.display = 'block';
      } else {
        tip.style.display = 'none';
      }
    });
    svg.addEventListener('mouseleave', () => { tip.style.display = 'none'; });
  });
"#;

    format!(
        "<!doctype html><html lang=\"en\"><head><meta charset=\"utf-8\">\
         <meta name=\"viewport\" content=\"width=device-width,initial-scale=1\">\
         <title>mkss Figure 6 report</title><style>{style}</style></head>\
         <body class=\"viz-root\">{body}<script>{script}</script></body></html>"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_experiment, ExperimentConfig, Scenario};
    use mkss_core::time::Time;

    fn sample() -> ExperimentResult {
        let mut cfg = ExperimentConfig::fig6(Scenario::NoFault);
        cfg.plan.sets_per_bucket = 2;
        cfg.plan.from = 0.3;
        cfg.plan.to = 0.5;
        cfg.horizon = Time::from_ms(200);
        run_experiment(&cfg)
    }

    #[test]
    fn report_structure() {
        let result = sample();
        let html = render_report(&[result]);
        assert!(html.starts_with("<!doctype html>"));
        // One chart with three series: 3 paths, markers, direct labels.
        assert_eq!(html.matches("<path class=\"line").count(), 3);
        assert!(html.matches("circle class=\"dot").count() >= 6);
        assert_eq!(html.matches("direct-label").count(), 3 + 1); // 3 uses + css
                                                                 // Legend, table view (relief rule), tooltip, dark mode.
        assert!(html.contains("legend-item"));
        assert!(html.contains("<table>"));
        assert!(html.contains("prefers-color-scheme: dark"));
        assert!(html.contains("tooltip"));
        // Series colors keyed by stable slots, not chart-local rank.
        assert!(html.contains(".s0 { stroke: #2a78d6; }"));
    }

    #[test]
    fn slots_are_stable_per_policy() {
        // Static is slot 0 regardless of which policies a chart shows.
        assert_eq!(slot_of(PolicyKind::Static), 0);
        assert_eq!(slot_of(PolicyKind::DualPriority), 1);
        assert_eq!(slot_of(PolicyKind::Selective), 4);
        // A chart with only {DualPriority, Selective} must not repaint
        // them to slots 0/1.
        let mut cfg = ExperimentConfig::fig6(Scenario::NoFault);
        cfg.policies = vec![PolicyKind::Selective];
        cfg.plan.sets_per_bucket = 1;
        cfg.plan.from = 0.3;
        cfg.plan.to = 0.4;
        cfg.horizon = Time::from_ms(200);
        let html = render_report(&[run_experiment(&cfg)]);
        assert!(html.contains("class=\"line s4\""), "selective keeps slot 4");
    }

    #[test]
    fn empty_buckets_are_dashed_in_table() {
        let mut cfg = ExperimentConfig::fig6(Scenario::NoFault);
        cfg.plan.sets_per_bucket = 1;
        cfg.plan.from = 0.8; // likely empty at this utilization
        cfg.plan.to = 0.9;
        cfg.horizon = Time::from_ms(200);
        cfg.workload.max_attempts = 5;
        let result = run_experiment(&cfg);
        let html = render_report(&[result]);
        assert!(html.contains("<table>"));
    }
}
